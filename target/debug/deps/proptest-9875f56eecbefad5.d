/root/repo/target/debug/deps/proptest-9875f56eecbefad5.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9875f56eecbefad5.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9875f56eecbefad5.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
