/root/repo/target/debug/deps/steering-b1e715c6dcd2269b.d: crates/kernel/tests/steering.rs

/root/repo/target/debug/deps/steering-b1e715c6dcd2269b: crates/kernel/tests/steering.rs

crates/kernel/tests/steering.rs:
