/root/repo/target/debug/deps/paper_outcomes-41ea04f95b47c8ff.d: tests/paper_outcomes.rs

/root/repo/target/debug/deps/paper_outcomes-41ea04f95b47c8ff: tests/paper_outcomes.rs

tests/paper_outcomes.rs:
