/root/repo/target/release/deps/revalidator_proptests-c3ea15ea0e3e7c57.d: crates/core/tests/revalidator_proptests.rs

/root/repo/target/release/deps/revalidator_proptests-c3ea15ea0e3e7c57: crates/core/tests/revalidator_proptests.rs

crates/core/tests/revalidator_proptests.rs:
