//! ERSPAN mirroring through the datapath and megaflow revalidation on
//! rule changes.

use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_core::dpif::{DpifNetdev, PortType};
use ovs_core::mirror::{self, MirrorSession};
use ovs_core::ofproto::{OfAction, OfRule};
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_packet::flow::{fields, FlowKey, FlowMask};
use ovs_packet::{builder, MacAddr};

fn setup() -> (Kernel, DpifNetdev, Vec<u32>) {
    let mut k = Kernel::new(8);
    let mut dp = DpifNetdev::new();
    let mut nics = Vec::new();
    for i in 0..3u8 {
        let nic = k.add_device(NetDevice::new(
            &format!("eth{i}"),
            MacAddr::new(2, 0, 0, 0, 0, i + 1),
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        dp.add_port(
            &format!("eth{i}"),
            PortType::Afxdp(AfxdpPort::open(&mut k, nic, 256, OptLevel::O5).unwrap()),
        );
        nics.push(nic);
    }
    (k, dp, nics)
}

fn fwd_rule(in_port: u32, out_port: u32, priority: i32) -> OfRule {
    let mut key = FlowKey::default();
    key.set_in_port(in_port);
    OfRule {
        table: 0,
        priority,
        key,
        mask: FlowMask::of_fields(&[&fields::IN_PORT]),
        actions: vec![OfAction::Output(out_port)],
        cookie: 0,
    }
}

fn frame() -> Vec<u8> {
    builder::udp_ipv4_frame(
        MacAddr::new(2, 0, 0, 0, 9, 9),
        MacAddr::new(2, 0, 0, 0, 0, 1),
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        5000,
        6000,
        96,
    )
}

#[test]
fn erspan_mirror_copies_watched_traffic() {
    let (mut k, mut dp, nics) = setup();
    dp.ofproto.add_rule(fwd_rule(0, 1, 10));
    // Mirror everything leaving port 1 toward a collector behind port 2.
    dp.mirrors.push(MirrorSession::new(
        42,
        1,
        2,
        [172, 16, 0, 1],
        [172, 16, 0, 99],
        MacAddr::new(4, 0, 0, 0, 0, 1),
        MacAddr::new(4, 0, 0, 0, 0, 99),
    ));

    for _ in 0..5 {
        k.receive(nics[0], 0, frame());
        dp.pmd_poll(&mut k, 0, 0, 1);
    }
    // Original traffic on eth1, mirrored copies on eth2.
    assert_eq!(k.device(nics[1]).tx_wire.len(), 5);
    assert_eq!(k.device(nics[2]).tx_wire.len(), 5);
    for (i, wrapped) in k.device(nics[2]).tx_wire.iter().enumerate() {
        let (sid, seq, inner) = mirror::decode(wrapped).expect("valid ERSPAN");
        assert_eq!(sid, 42);
        assert_eq!(seq as usize, i + 1);
        assert_eq!(inner, frame(), "mirror copy is byte-identical");
    }
    assert_eq!(dp.mirrors[0].mirrored, 5);
}

#[test]
fn flow_mod_revalidates_cached_megaflows() {
    let (mut k, mut dp, nics) = setup();
    dp.ofproto.add_rule(fwd_rule(0, 1, 10));
    // An unrelated flow in the other direction, cached alongside.
    dp.ofproto.add_rule(fwd_rule(1, 0, 10));
    // Warm the caches toward eth1, and the reverse flow toward eth0.
    for _ in 0..3 {
        k.receive(nics[0], 0, frame());
        dp.pmd_poll(&mut k, 0, 0, 1);
        k.receive(nics[1], 0, frame());
        dp.pmd_poll(&mut k, 1, 0, 1);
    }
    assert_eq!(k.dev_mut(nics[1]).tx_wire.drain(..).count(), 3);
    assert_eq!(k.dev_mut(nics[0]).tx_wire.drain(..).count(), 3);
    assert_eq!(dp.megaflow_count(), 2);

    // Redirect port 0's traffic to eth2 at higher priority. Without
    // revalidation the stale megaflow would keep winning. Revalidation
    // is *selective*: only the flow whose translation changed dies — the
    // unrelated port-1 flow keeps its cache entry.
    dp.flow_mod(fwd_rule(0, 2, 50));
    assert_eq!(
        dp.megaflow_count(),
        1,
        "only the changed megaflow was deleted"
    );
    let upcalls_before = dp.stats.upcalls;
    for _ in 0..3 {
        k.receive(nics[0], 0, frame());
        dp.pmd_poll(&mut k, 0, 0, 1);
        k.receive(nics[1], 0, frame());
        dp.pmd_poll(&mut k, 1, 0, 1);
    }
    assert_eq!(k.device(nics[1]).tx_wire.len(), 0, "old path unused");
    assert_eq!(k.device(nics[2]).tx_wire.len(), 3, "new rule in effect");
    assert_eq!(k.device(nics[0]).tx_wire.len(), 3, "reverse flow intact");
    assert_eq!(
        dp.stats.upcalls,
        upcalls_before + 1,
        "exactly one re-translation upcall: the surviving flow stayed hot"
    );
}

#[test]
fn pmd_stats_report_cache_distribution() {
    let (mut k, mut dp, nics) = setup();
    dp.ofproto.add_rule(fwd_rule(0, 1, 10));
    for _ in 0..10 {
        k.receive(nics[0], 0, frame());
        dp.pmd_poll(&mut k, 0, 0, 1);
    }
    let stats = dp.pmd_stats();
    assert!(stats.contains("packets received: 10"), "{stats}");
    assert!(stats.contains("upcalls (miss): 1"), "{stats}");
    assert!(stats.contains("megaflows installed: 1"), "{stats}");
}
