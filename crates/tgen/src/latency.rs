//! Latency-centric scenarios and the empirical delay model.
//!
//! Everything here rides on the datapath's per-packet rx→tx
//! timestamping (`DpifNetdev::latency`): sweeps measure *real* pipeline
//! latency percentiles from raw samples, not modelled compositions.
//!
//! * [`run_latency_sweep`] — delay vs offered burst size (the rate
//!   proxy: queue occupancy at poll), flow count, and NSX rule count,
//!   over the full two-host NSX fast path.
//! * [`fit_delay_models`] — a Sattar–Matrawy-style empirical delay
//!   model: least-squares fit of p50/p99 delay against
//!   `[1, burst, log2(flows), log2(rules)]`, with per-point
//!   predicted-vs-measured errors.
//! * [`run_latency_autolb`] — p99.9 jitter transient across a
//!   `pmd-auto-lb` rebalance: moved rxqs land on a PMD whose private
//!   EMC is cold, spike, then settle.
//! * [`run_latency_crash`] — the same signal across a HealthMonitor
//!   crash-restart: the rebuilt datapath re-warms every cache through
//!   the upcall path.
//! * [`run_latency_interrupt_ablation`] — interrupt vs busy-poll rx on
//!   an otherwise identical AF_XDP forward rig.

use crate::flood::{make_flows, rss_queue};
use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_core::dpif::{DpifNetdev, PortType};
use ovs_core::health::HealthMonitor;
use ovs_core::pmd::{AssignmentPolicy, PmdSet};
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_packet::{builder, DpPacket, MacAddr};
use ovs_sim::Percentiles;

// ----------------------------------------------------------------------
// The sweep: delay vs burst (rate proxy) x flow count x rule count
// ----------------------------------------------------------------------

/// One measured point of the latency sweep.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// Offered burst size — the rate proxy: how many packets are
    /// waiting in the queue when the PMD polls.
    pub burst: usize,
    /// Distinct 5-tuples in the offered traffic.
    pub n_flows: usize,
    /// NSX `target_rules` the pipeline was compiled from.
    pub rules: usize,
    /// Packets offered in the measured window.
    pub offered: usize,
    /// Raw rx→tx samples captured (delivered packets).
    pub samples: usize,
    /// Exact percentiles over the raw samples, nanoseconds.
    pub lat_ns: Percentiles,
}

/// The sweep grid `run_latency_sweep` walks (kept public so reports can
/// annotate coverage).
pub const SWEEP_BURSTS: [usize; 4] = [4, 8, 16, 32];
pub const SWEEP_FLOWS: [usize; 3] = [8, 64, 256];
pub const SWEEP_RULES: [usize; 2] = [200, 800];

/// Measure one sweep point: `n_pkts` VM frames cross the full NSX
/// pipeline (DFW conntrack recirculations, then Geneve encap to the
/// AF_XDP uplink) in bursts of `burst` with `n_flows` distinct
/// 5-tuples, against a ruleset compiled for `rules` target rules.
/// Latency percentiles are exact, from raw rx→tx samples.
pub fn run_latency_point(
    burst: usize,
    n_flows: usize,
    rules: usize,
    n_pkts: usize,
) -> LatencyPoint {
    use ovs_nsx::ruleset::{self as nsx_ruleset, NsxConfig};
    use ovs_nsx::topology::{DatapathKind, Host, HostConfig, VmAttachment};

    let dpk = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O5,
        interrupt_mode: false,
    };
    let mut cfg = HostConfig::nsx_default(1, dpk, VmAttachment::VhostUser);
    cfg.nsx = NsxConfig {
        vms: 2,
        tunnels: 4,
        target_rules: rules,
        local_vtep: [172, 16, 0, 1],
        remote_vtep: [172, 16, 0, 2],
        ..NsxConfig::default()
    };
    let mut h = Host::build(&cfg);
    h.peer([172, 16, 0, 2], MacAddr::new(2, 0, 0, 0, 0, 0xEE));
    let core = h.switch_core;
    let vif = h.ports.vifs[0];

    let frame = |flow: usize| {
        builder::udp_ipv4_frame(
            nsx_ruleset::vm_mac(1, 0, 0),
            nsx_ruleset::vm_mac(2, 0, 0),
            nsx_ruleset::vm_ip(1, 0, 0),
            nsx_ruleset::vm_ip(2, 0, 0),
            (5000 + (flow % 50_000)) as u16,
            4444,
            64,
        )
    };
    // Flow locality: packets arrive in runs of 4 per flow, the shape
    // per-megaflow batching exploits (same as the fastpath ablation).
    const RUN_LEN: usize = 4;
    let flow_of = |seq: usize| (seq / RUN_LEN) % n_flows;

    // Warm-up: every flow upcalls once, installing its megaflows.
    for f in 0..n_flows {
        let mut p = DpPacket::from_data(&frame(f));
        p.in_port = vif;
        let dp = h.dp.as_mut().expect("userspace datapath");
        dp.process_packet(&mut h.kernel, p, core);
    }
    let _ = h.wire_take();

    // Measured window, with raw-sample capture on.
    {
        let dp = h.dp.as_mut().expect("userspace datapath");
        dp.latency.clear();
        dp.latency.enable_raw();
    }
    let mut sent = 0usize;
    while sent < n_pkts {
        let n = burst.min(n_pkts - sent);
        let mut chunk: Vec<DpPacket> = Vec::with_capacity(n);
        for _ in 0..n {
            let mut p = DpPacket::from_data(&frame(flow_of(sent)));
            p.in_port = vif;
            chunk.push(p);
            sent += 1;
        }
        let dp = h.dp.as_mut().expect("userspace datapath");
        dp.process_burst(&mut h.kernel, chunk, core);
        let _ = h.wire_take();
    }
    let dp = h.dp.as_mut().expect("userspace datapath");
    let raw = dp.latency.drain_raw();
    let samples: Vec<f64> = raw.iter().map(|&ns| ns as f64).collect();
    LatencyPoint {
        burst,
        n_flows,
        rules,
        offered: n_pkts,
        samples: raw.len(),
        lat_ns: Percentiles::from_samples(&samples).expect("delivered packets produce samples"),
    }
}

/// Walk the full `{burst} x {flows} x {rules}` grid.
pub fn run_latency_sweep(n_pkts: usize) -> Vec<LatencyPoint> {
    let mut out = Vec::new();
    for &rules in &SWEEP_RULES {
        for &flows in &SWEEP_FLOWS {
            for &burst in &SWEEP_BURSTS {
                out.push(run_latency_point(burst, flows, rules, n_pkts));
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// The empirical delay model
// ----------------------------------------------------------------------

/// A linear empirical delay model over engineered features, in the
/// style of Sattar & Matrawy's measurement-driven OVS delay models:
/// `delay = c0 + c1*burst + c2*log2(flows) + c3*log2(rules)`.
///
/// The burst size stands in for offered rate (it *is* the queue
/// occupancy the PMD finds at poll time); flow count drives the cache
/// hierarchy's hit mix; rule count drives pipeline depth and the dpcls
/// subtable population.
#[derive(Debug, Clone, Copy)]
pub struct DelayModel {
    /// `[intercept, burst, log2(flows), log2(rules)]` coefficients, ns.
    pub coef: [f64; 4],
}

impl DelayModel {
    /// The feature vector for one operating point.
    pub fn features(burst: usize, n_flows: usize, rules: usize) -> [f64; 4] {
        [
            1.0,
            burst as f64,
            (n_flows.max(1) as f64).log2(),
            (rules.max(1) as f64).log2(),
        ]
    }

    /// Ordinary least squares via the 4x4 normal equations (Gaussian
    /// elimination with partial pivoting — no external solver).
    /// `None` when the system is singular (degenerate design matrix).
    pub fn fit(rows: &[([f64; 4], f64)]) -> Option<Self> {
        const D: usize = 4;
        let mut ata = [[0.0f64; D]; D];
        let mut aty = [0.0f64; D];
        for (x, y) in rows {
            for i in 0..D {
                for j in 0..D {
                    ata[i][j] += x[i] * x[j];
                }
                aty[i] += x[i] * y;
            }
        }
        // Augment and eliminate.
        let mut m = [[0.0f64; D + 1]; D];
        for i in 0..D {
            m[i][..D].copy_from_slice(&ata[i]);
            m[i][D] = aty[i];
        }
        for col in 0..D {
            let pivot = (col..D).max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))?;
            if m[pivot][col].abs() < 1e-12 {
                return None;
            }
            m.swap(col, pivot);
            let pivot_row = m[col];
            for (row, r) in m.iter_mut().enumerate() {
                if row == col {
                    continue;
                }
                let f = r[col] / pivot_row[col];
                for (k, cell) in r.iter_mut().enumerate().skip(col) {
                    *cell -= f * pivot_row[k];
                }
            }
        }
        let mut coef = [0.0f64; D];
        for i in 0..D {
            coef[i] = m[i][D] / m[i][i];
        }
        Some(DelayModel { coef })
    }

    /// Predicted delay at an operating point, ns.
    pub fn predict(&self, burst: usize, n_flows: usize, rules: usize) -> f64 {
        Self::features(burst, n_flows, rules)
            .iter()
            .zip(&self.coef)
            .map(|(x, c)| x * c)
            .sum()
    }
}

/// One predicted-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct ModelError {
    pub burst: usize,
    pub n_flows: usize,
    pub rules: usize,
    pub measured_ns: f64,
    pub predicted_ns: f64,
    /// `|predicted - measured| / measured`.
    pub rel_err: f64,
}

/// The fitted p50 and p99 models plus their per-point validation.
#[derive(Debug, Clone)]
pub struct FittedModels {
    pub p50: DelayModel,
    pub p99: DelayModel,
    pub p50_errors: Vec<ModelError>,
    pub p99_errors: Vec<ModelError>,
    pub p50_max_rel_err: f64,
    pub p99_max_rel_err: f64,
}

fn validate(
    model: &DelayModel,
    points: &[LatencyPoint],
    pick: fn(&Percentiles) -> f64,
) -> Vec<ModelError> {
    points
        .iter()
        .map(|p| {
            let measured = pick(&p.lat_ns);
            let predicted = model.predict(p.burst, p.n_flows, p.rules);
            ModelError {
                burst: p.burst,
                n_flows: p.n_flows,
                rules: p.rules,
                measured_ns: measured,
                predicted_ns: predicted,
                rel_err: (predicted - measured).abs() / measured.max(1.0),
            }
        })
        .collect()
}

/// Fit separate p50 and p99 models against measured sweep points and
/// report predicted-vs-measured error per point.
pub fn fit_delay_models(points: &[LatencyPoint]) -> FittedModels {
    let rows = |pick: fn(&Percentiles) -> f64| -> Vec<([f64; 4], f64)> {
        points
            .iter()
            .map(|p| {
                (
                    DelayModel::features(p.burst, p.n_flows, p.rules),
                    pick(&p.lat_ns),
                )
            })
            .collect()
    };
    let p50 = DelayModel::fit(&rows(|l| l.p50)).expect("sweep grid is non-degenerate");
    let p99 = DelayModel::fit(&rows(|l| l.p99)).expect("sweep grid is non-degenerate");
    let p50_errors = validate(&p50, points, |l| l.p50);
    let p99_errors = validate(&p99, points, |l| l.p99);
    let max_err = |errs: &[ModelError]| errs.iter().map(|e| e.rel_err).fold(0.0f64, f64::max);
    FittedModels {
        p50_max_rel_err: max_err(&p50_errors),
        p99_max_rel_err: max_err(&p99_errors),
        p50,
        p99,
        p50_errors,
        p99_errors,
    }
}

// ----------------------------------------------------------------------
// Jitter transients: auto-lb rebalance and crash-restart
// ----------------------------------------------------------------------

/// Latency percentiles over one observation window of a transient run.
#[derive(Debug, Clone)]
pub struct LatencyWindow {
    pub label: String,
    /// Cumulative disruptive events at window end (auto-lb rebalances
    /// applied, or supervisor restarts).
    pub events: u64,
    pub samples: usize,
    pub lat_ns: Percentiles,
}

fn window_percentiles(raw: Vec<u64>) -> Percentiles {
    let samples: Vec<f64> = raw.iter().map(|&ns| ns as f64).collect();
    Percentiles::from_samples(&samples).expect("window delivered packets")
}

/// p99.9 jitter across a `pmd-auto-lb` rebalance.
///
/// Two PMDs share four rxqs under the `cycles` policy. The workload
/// starts with queue 0 carrying 8x the load of the others; after the
/// placement settles, the skew flips to queues 1 and 2. The auto load
/// balancer (checking every 16 rounds) measures the new imbalance and
/// applies a rebalance — and the moved rxqs land on a PMD whose
/// *private* EMC has never seen their flows: a one-window latency spike
/// from cold-cache misses, visible at p99/p99.9 and gone once the EMC
/// re-warms. Returns one pre-flip window plus six post-flip windows.
pub fn run_latency_autolb() -> Vec<LatencyWindow> {
    const QUEUES: usize = 4;
    const ROUNDS_PER_WINDOW: usize = 16;
    let mut k = Kernel::new(16);
    k.config.rss_cores = (0..8).collect();
    let nic0 = k.add_device(NetDevice::new(
        "eth0",
        MacAddr::new(2, 0, 0, 0, 0, 1),
        DeviceKind::Phys { link_gbps: 25.0 },
        QUEUES,
    ));
    let nic1 = k.add_device(NetDevice::new(
        "eth1",
        MacAddr::new(2, 0, 0, 0, 0, 2),
        DeviceKind::Phys { link_gbps: 25.0 },
        QUEUES,
    ));
    let mut dp = DpifNetdev::new();
    let a0 = AfxdpPort::open(&mut k, nic0, 4096, OptLevel::O5).expect("afxdp nic0");
    let a1 = AfxdpPort::open(&mut k, nic1, 4096, OptLevel::O5).expect("afxdp nic1");
    let p0 = dp.add_port("eth0", PortType::Afxdp(a0));
    let p1 = dp.add_port("eth1", PortType::Afxdp(a1));
    dp.add_flows(&format!(
        "table=0, priority=10, in_port={p0}, actions=output:{p1}"
    ))
    .unwrap();
    // Deterministic cache behaviour: every EMC miss inserts.
    dp.set_emc_insert_inv_prob(1);
    dp.latency.enable_raw();

    let mut pmds = PmdSet::new(&[8, 9], AssignmentPolicy::Cycles);
    pmds.add_port_rxqs(p0, QUEUES);
    pmds.auto_lb.enabled = true;
    pmds.auto_lb.interval_rounds = ROUNDS_PER_WINDOW as u64;
    pmds.rebalance();

    // Eight representative flows per queue, found by walking RSS.
    let candidates = make_flows(512, 64, 7);
    let mut per_queue: Vec<Vec<&Vec<u8>>> = vec![Vec::new(); QUEUES];
    for f in &candidates {
        let q = rss_queue(f, QUEUES);
        if per_queue[q].len() < 8 {
            per_queue[q].push(f);
        }
    }
    assert!(per_queue.iter().all(|v| v.len() == 8), "rss covers queues");

    let inject_round = |k: &mut Kernel, weights: &[usize; QUEUES], seq: usize| {
        for (q, flows) in per_queue.iter().enumerate() {
            for i in 0..4 * weights[q] {
                k.receive(nic0, q, flows[(seq + i) % flows.len()].clone());
            }
        }
    };
    let run_window = |label: &str,
                      weights: &[usize; QUEUES],
                      pmds: &mut PmdSet,
                      dp: &mut DpifNetdev,
                      k: &mut Kernel|
     -> LatencyWindow {
        let _ = dp.latency.drain_raw();
        for seq in 0..ROUNDS_PER_WINDOW {
            inject_round(k, weights, seq);
            pmds.run_round(dp, k);
            k.dev_mut(nic1).tx_wire.clear();
        }
        let raw = dp.latency.drain_raw();
        LatencyWindow {
            label: label.to_string(),
            events: pmds.auto_lb.rebalances,
            samples: raw.len(),
            lat_ns: window_percentiles(raw),
        }
    };

    let skew_a: [usize; QUEUES] = [8, 1, 1, 1];
    let skew_b: [usize; QUEUES] = [1, 8, 8, 1];
    // Settle on the initial skew and let the policy place for it.
    for seq in 0..32 {
        inject_round(&mut k, &skew_a, seq);
        pmds.run_round(&mut dp, &mut k);
        k.dev_mut(nic1).tx_wire.clear();
    }
    pmds.rebalance();
    let mut windows = vec![run_window("balanced", &skew_a, &mut pmds, &mut dp, &mut k)];
    // Flip the skew; stale measurements would keep steering, so forget
    // them and let auto-lb re-measure and react.
    pmds.clear_cycles();
    for w in 0..6 {
        windows.push(run_window(
            &format!("post-flip w{w}"),
            &skew_b,
            &mut pmds,
            &mut dp,
            &mut k,
        ));
    }
    windows
}

/// p99.9 jitter across a HealthMonitor crash-restart.
///
/// A supervised AF_XDP forward rig runs steady traffic; a latent
/// datapath bug fires mid-run (`FaultKind::DatapathPanic`), the
/// supervisor tears the datapath down, and past the backoff rebuilds it
/// from the blueprint — megaflow table, EMC, and SMC all cold, so the
/// first post-restart window pays the full upcall path and spikes at
/// every percentile before settling. Returns two steady windows, the
/// crash window, and three recovery windows.
pub fn run_latency_crash() -> Vec<LatencyWindow> {
    const ROUNDS_PER_WINDOW: usize = 8;
    let mut k = Kernel::new(16);
    k.config.rss_cores = (0..8).collect();
    let mut nics = Vec::new();
    for i in 0..2u8 {
        nics.push(k.add_device(NetDevice::new(
            &format!("eth{i}"),
            MacAddr::new(2, 0, 0, 0, 0, i + 1),
            DeviceKind::Phys { link_gbps: 10.0 },
            2,
        )));
    }
    let (nic0, nic1) = (nics[0], nics[1]);
    let mut health = HealthMonitor::with_policy(
        move |k: &mut Kernel| {
            let mut dp = DpifNetdev::new();
            let p0 = dp.add_port(
                "eth0",
                PortType::Afxdp(AfxdpPort::open(k, nic0, 1024, OptLevel::O5).unwrap()),
            );
            let p1 = dp.add_port(
                "eth1",
                PortType::Afxdp(AfxdpPort::open(k, nic1, 1024, OptLevel::O5).unwrap()),
            );
            dp.add_flows(&format!(
                "table=0, priority=10, in_port={p0}, actions=output:{p1}"
            ))
            .unwrap();
            dp.set_emc_insert_inv_prob(1);
            // Raw latency capture is part of the blueprint: it survives
            // the restart exactly like the rest of the configuration.
            dp.latency.enable_raw();
            dp
        },
        2_000_000,
        4,
    );
    let mut dp = Some(health.start(&mut k));
    let mut pmds = PmdSet::new(&[8, 9], AssignmentPolicy::RoundRobin);
    pmds.add_port_rxqs(0, 2);
    pmds.rebalance();

    let inject = |k: &mut Kernel, q: usize, flow: u16| {
        let f = builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 9, 9),
            MacAddr::new(2, 0, 0, 0, 0, 1),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1000 + flow,
            6000,
            96,
        );
        k.receive(nic0, q, f);
    };

    // Warm both PMDs' private caches before the first window.
    for round in 0..16u16 {
        for q in 0..2 {
            for i in 0..4u16 {
                inject(&mut k, q, (round * 4 + i) % 8);
            }
        }
        pmds.run_round_supervised(&mut health, &mut dp, &mut k);
    }

    let mut windows = Vec::new();
    let mut seq = 0u16;
    for w in 0..6 {
        if let Some(d) = dp.as_mut() {
            let _ = d.latency.drain_raw();
        }
        if w == 2 {
            // The latent bug fires on the next supervised poll; past
            // the 2 ms backoff the supervisor rebuilds the datapath.
            k.inject_fault(ovs_sim::FaultKind::DatapathPanic, 0, 0, 0);
            pmds.run_round_supervised(&mut health, &mut dp, &mut k);
            k.sim.clock.advance(3_000_000);
        }
        for _ in 0..ROUNDS_PER_WINDOW {
            for q in 0..2 {
                for i in 0..4u16 {
                    inject(&mut k, q, (seq * 4 + i) % 8);
                }
            }
            seq += 1;
            pmds.run_round_supervised(&mut health, &mut dp, &mut k);
            k.dev_mut(nic1).tx_wire.clear();
        }
        let raw = dp
            .as_mut()
            .map(|d| d.latency.drain_raw())
            .unwrap_or_default();
        let label = match w {
            0 | 1 => format!("steady w{w}"),
            2 => "crash+restart".to_string(),
            _ => format!("recovery w{}", w - 3),
        };
        windows.push(LatencyWindow {
            label,
            events: health.restarts,
            samples: raw.len(),
            lat_ns: window_percentiles(raw),
        });
    }
    windows
}

// ----------------------------------------------------------------------
// Interrupt vs busy-poll ablation
// ----------------------------------------------------------------------

/// Measure rx→tx latency on an AF_XDP forward rig in busy-poll and
/// interrupt-mode rx. Interrupt mode charges the IRQ-moderation wakeup
/// inside the rx path — after the rx stamp, before the flush — so the
/// gap lands where it belongs: in the measured latency, mostly in the
/// median (every packet waits), not just the tail.
/// Returns `(busy_poll, interrupt)` percentile sets over raw samples.
pub fn run_latency_interrupt_ablation(n_pkts: usize) -> (Percentiles, Percentiles) {
    let run = |interrupt: bool| -> Percentiles {
        let mut k = Kernel::new(16);
        k.config.rss_cores = (0..8).collect();
        let nic0 = k.add_device(NetDevice::new(
            "eth0",
            MacAddr::new(2, 0, 0, 0, 0, 1),
            DeviceKind::Phys { link_gbps: 25.0 },
            1,
        ));
        let nic1 = k.add_device(NetDevice::new(
            "eth1",
            MacAddr::new(2, 0, 0, 0, 0, 2),
            DeviceKind::Phys { link_gbps: 25.0 },
            1,
        ));
        let mut dp = DpifNetdev::new();
        let mut a0 = AfxdpPort::open(&mut k, nic0, 4096, OptLevel::O5).expect("afxdp nic0");
        if interrupt {
            for s in &mut a0.sockets {
                s.interrupt_mode = true;
            }
        }
        let a1 = AfxdpPort::open(&mut k, nic1, 4096, OptLevel::O5).expect("afxdp nic1");
        let p0 = dp.add_port("eth0", PortType::Afxdp(a0));
        let p1 = dp.add_port("eth1", PortType::Afxdp(a1));
        dp.add_flows(&format!(
            "table=0, priority=10, in_port={p0}, actions=output:{p1}"
        ))
        .unwrap();
        dp.set_emc_insert_inv_prob(1);

        let frame = |flow: u16| {
            builder::udp_ipv4_frame(
                MacAddr::new(2, 0, 0, 0, 9, 9),
                MacAddr::new(2, 0, 0, 0, 0, 1),
                [10, 0, 0, 1],
                [10, 0, 0, 2],
                1000 + flow,
                6000,
                64,
            )
        };
        // Warm the caches, then measure with raw capture.
        for i in 0..8 {
            k.receive(nic0, 0, frame(i % 8));
            dp.pmd_poll(&mut k, p0, 0, 8);
        }
        k.dev_mut(nic1).tx_wire.clear();
        dp.latency.clear();
        dp.latency.enable_raw();
        let mut sent = 0usize;
        while sent < n_pkts {
            for _ in 0..8.min(n_pkts - sent) {
                k.receive(nic0, 0, frame((sent % 8) as u16));
                sent += 1;
            }
            dp.pmd_poll(&mut k, p0, 0, 8);
            k.dev_mut(nic1).tx_wire.clear();
        }
        window_percentiles(dp.latency.drain_raw())
    };
    (run(false), run(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_fit_recovers_a_linear_law() {
        // Synthetic exactly-linear data must be recovered exactly.
        let truth = DelayModel {
            coef: [1000.0, 50.0, 200.0, 30.0],
        };
        let mut rows = Vec::new();
        for &b in &SWEEP_BURSTS {
            for &f in &SWEEP_FLOWS {
                for &r in &SWEEP_RULES {
                    rows.push((DelayModel::features(b, f, r), truth.predict(b, f, r)));
                }
            }
        }
        let fit = DelayModel::fit(&rows).unwrap();
        for (c, t) in fit.coef.iter().zip(&truth.coef) {
            assert!(
                (c - t).abs() < 1e-6,
                "fit {:?} vs truth {:?}",
                fit.coef,
                truth.coef
            );
        }
    }

    #[test]
    fn degenerate_design_is_rejected() {
        // Every row identical: the normal equations are singular.
        let rows = vec![(DelayModel::features(8, 8, 200), 5.0); 8];
        assert!(DelayModel::fit(&rows).is_none());
    }

    #[test]
    fn sweep_point_measures_real_latency() {
        let p = run_latency_point(8, 8, 200, 256);
        assert_eq!(p.offered, 256);
        assert!(p.samples > 0, "delivered packets captured");
        assert!(p.lat_ns.p50 > 0.0);
        assert!(p.lat_ns.p999 >= p.lat_ns.p50);
    }

    #[test]
    fn larger_bursts_raise_latency() {
        // A packet's rx->tx window spans its burst's processing, so
        // bigger bursts mean higher per-packet latency.
        let small = run_latency_point(4, 8, 200, 512);
        let large = run_latency_point(32, 8, 200, 512);
        assert!(
            large.lat_ns.p50 > small.lat_ns.p50,
            "burst 32 p50 {} <= burst 4 p50 {}",
            large.lat_ns.p50,
            small.lat_ns.p50
        );
    }

    #[test]
    fn interrupt_mode_costs_latency() {
        let (busy, irq) = run_latency_interrupt_ablation(512);
        assert!(
            irq.p50 > busy.p50,
            "interrupt p50 {} <= busy-poll p50 {}",
            irq.p50,
            busy.p50
        );
    }

    #[test]
    fn autolb_transient_spikes_then_settles() {
        let windows = run_latency_autolb();
        assert_eq!(windows.len(), 7);
        assert_eq!(windows[0].events, 0, "no rebalance before the flip");
        let last = windows.last().unwrap();
        assert!(
            last.events >= 1,
            "auto-lb reacted to the flipped skew: {windows:?}"
        );
        assert!(windows.iter().all(|w| w.samples > 0));
    }
}
