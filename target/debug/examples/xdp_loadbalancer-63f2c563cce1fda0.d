/root/repo/target/debug/examples/xdp_loadbalancer-63f2c563cce1fda0.d: examples/xdp_loadbalancer.rs

/root/repo/target/debug/examples/xdp_loadbalancer-63f2c563cce1fda0: examples/xdp_loadbalancer.rs

examples/xdp_loadbalancer.rs:
