//! The §6 "Reduced risk" lesson, demonstrated: a datapath bug in the
//! userspace architecture crashes *only the OVS process*, which the health
//! monitor restarts — VMs, the kernel, and the NIC keep running, and the
//! caches simply re-warm. The same bug in a kernel module would have
//! panicked the host ("a past bug in the Geneve protocol parser ... might
//! have triggered a null-pointer dereference that would crash the entire
//! system").
//!
//! Run with: `cargo run --example crash_recovery`

use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_core::dpif::{DpifNetdev, PortType};
use ovs_core::ofproto::{OfAction, OfRule};
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_packet::flow::{fields, FlowKey, FlowMask};
use ovs_packet::{builder, DpPacket, MacAddr};

/// Stand-in for a datapath bug: a "parser" that panics on one specific
/// malformed input, the way the real Geneve parser bug [38] did.
fn buggy_parser(pkt: &DpPacket) {
    if pkt.data().windows(4).any(|w| w == b"\xde\xad\xbe\xef") {
        panic!("null pointer dereference in geneve_parse()");
    }
}

/// Build (or rebuild) the OVS process state: datapath, ports, rules.
/// The kernel (devices, guests, XDP infrastructure) is NOT part of this —
/// that's the point.
fn start_ovs(kernel: &mut Kernel, eth0: u32, eth1: u32) -> DpifNetdev {
    let mut dp = DpifNetdev::new();
    let p0 = dp.add_port(
        "eth0",
        PortType::Afxdp(AfxdpPort::open(kernel, eth0, 256, OptLevel::O5).unwrap()),
    );
    let p1 = dp.add_port(
        "eth1",
        PortType::Afxdp(AfxdpPort::open(kernel, eth1, 256, OptLevel::O5).unwrap()),
    );
    let mut key = FlowKey::default();
    key.set_in_port(p0);
    dp.ofproto.add_rule(OfRule {
        table: 0,
        priority: 1,
        key,
        mask: FlowMask::of_fields(&[&fields::IN_PORT]),
        actions: vec![OfAction::Output(p1)],
        cookie: 0,
    });
    dp
}

fn main() {
    let mut kernel = Kernel::new(4);
    let eth0 = kernel.add_device(NetDevice::new(
        "eth0",
        MacAddr::new(2, 0, 0, 0, 0, 1),
        DeviceKind::Phys { link_gbps: 10.0 },
        1,
    ));
    let eth1 = kernel.add_device(NetDevice::new(
        "eth1",
        MacAddr::new(2, 0, 0, 0, 0, 2),
        DeviceKind::Phys { link_gbps: 10.0 },
        1,
    ));
    let mut ovs = start_ovs(&mut kernel, eth0, eth1);
    let mut restarts = 0;

    let good = builder::udp_ipv4(
        MacAddr::new(2, 0, 0, 0, 9, 9),
        MacAddr::new(2, 0, 0, 0, 0, 1),
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        1,
        2,
        b"fine",
    );
    let poison = builder::udp_ipv4(
        MacAddr::new(2, 0, 0, 0, 9, 9),
        MacAddr::new(2, 0, 0, 0, 0, 1),
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        1,
        2,
        b"\xde\xad\xbe\xef",
    );

    let mut delivered = 0;
    for i in 0..100 {
        let frame = if i == 50 {
            poison.clone()
        } else {
            good.clone()
        };
        kernel.receive(eth0, 0, frame);

        // The health monitor supervises the OVS "process": a panic is
        // caught, a core dump would be written, and OVS restarts.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ovs.pmd_poll_collect(&mut kernel, 0, 0, 1, &mut buggy_parser)
        }));
        match result {
            Ok(n) => delivered += n,
            Err(_) => {
                restarts += 1;
                eprintln!(
                    "[health-monitor] ovs-vswitchd crashed (packet {i}); core dumped; restarting"
                );
                // Detach the old hook and bring OVS back up. Kernel state
                // (devices, neighbours, guests) is untouched.
                ovs.del_port(&mut kernel, 0);
                ovs.del_port(&mut kernel, 1);
                ovs = start_ovs(&mut kernel, eth0, eth1);
            }
        }
    }

    println!("packets delivered:   {delivered}");
    println!("ovs restarts:        {restarts}");
    println!("host uptime:         uninterrupted (kernel state survived)");
    println!(
        "devices still up:    {}",
        kernel.kernel_devices().filter(|d| d.up).count()
    );
    assert_eq!(restarts, 1, "exactly the poisoned packet crashed OVS");
    assert!(delivered >= 98, "everything else flowed: {delivered}");
    println!("ok");
}

/// Small extension trait hook for this example: poll + run a caller
/// "parser" over each packet before normal processing.
trait PmdPollCollect {
    fn pmd_poll_collect(
        &mut self,
        kernel: &mut Kernel,
        port: u32,
        queue: usize,
        core: usize,
        extra: &mut dyn FnMut(&DpPacket),
    ) -> usize;
}

impl PmdPollCollect for DpifNetdev {
    fn pmd_poll_collect(
        &mut self,
        kernel: &mut Kernel,
        port: u32,
        queue: usize,
        core: usize,
        extra: &mut dyn FnMut(&DpPacket),
    ) -> usize {
        let pkts = self.port_rx_public(kernel, port, queue, core);
        let n = pkts.len();
        for mut pkt in pkts {
            extra(&pkt);
            pkt.in_port = port;
            self.process_packet(kernel, pkt, core);
        }
        n
    }
}
