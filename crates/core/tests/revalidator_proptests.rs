//! Property test for the revalidator sweep: against a random schedule of
//! traffic, clock advances, and sweeps, the datapath's megaflow table
//! must track a simple reference model exactly — a sweep never deletes a
//! flow used within its idle timeout, never keeps one idle past it, and
//! the packet accounting stays coherent throughout.

use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_core::dpif::{DpifNetdev, PortType};
use ovs_core::ofproto::{OfAction, OfRule};
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_packet::ethernet::EtherType;
use ovs_packet::flow::{fields, FlowKey, FlowMask};
use ovs_packet::{builder, MacAddr};
use proptest::prelude::*;
use std::collections::HashMap;

/// One step of a generated schedule.
#[derive(Debug, Clone)]
enum Event {
    /// Send a UDP packet with the i-th source port.
    Packet(u16),
    /// Advance the virtual clock by this many milliseconds.
    Advance(u64),
    /// Run one revalidator sweep.
    Sweep,
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0u8..8, any::<u16>(), any::<u8>()).prop_map(|(choice, tp, gap)| match choice {
        0..=4 => Event::Packet(tp % 12),
        5 | 6 => Event::Advance(u64::from(gap % 40) * 500),
        _ => Event::Sweep,
    })
}

fn tp_src_rule(tp: u16) -> OfRule {
    let mut key = FlowKey::default();
    key.set_eth_type(EtherType::Ipv4);
    key.set_nw_proto(17);
    key.set_tp_src(tp);
    OfRule {
        table: 0,
        priority: 10,
        key,
        mask: FlowMask::of_fields(&[&fields::ETH_TYPE, &fields::NW_PROTO, &fields::TP_SRC]),
        actions: vec![OfAction::Output(1)],
        cookie: 0,
    }
}

fn frame(tp_src: u16) -> Vec<u8> {
    builder::udp_ipv4_frame(
        MacAddr::new(2, 0, 0, 0, 9, 9),
        MacAddr::new(2, 0, 0, 0, 0, 1),
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        tp_src,
        6000,
        96,
    )
}

fn setup() -> (Kernel, DpifNetdev, Vec<u32>) {
    let mut k = Kernel::new(4);
    let mut dp = DpifNetdev::new();
    let mut nics = Vec::new();
    for i in 0..2u8 {
        let nic = k.add_device(NetDevice::new(
            &format!("eth{i}"),
            MacAddr::new(2, 0, 0, 0, 0, i + 1),
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        dp.add_port(
            &format!("eth{i}"),
            PortType::Afxdp(AfxdpPort::open(&mut k, nic, 256, OptLevel::O5).unwrap()),
        );
        nics.push(nic);
    }
    // One matching rule per flow so each source port gets its own
    // megaflow (tp_src is in every translated mask).
    for tp in 0..12u16 {
        dp.ofproto.add_rule(tp_src_rule(1000 + tp));
    }
    (k, dp, nics)
}

proptest! {
    /// Reference model: a map `tp -> (created_ns, last_used_ns)`. A
    /// packet inserts or touches its flow; a sweep removes exactly the
    /// flows idle strictly longer than `max_idle` (the table never
    /// reaches the flow limit, and rules never change, so idle expiry is
    /// the only legal delete reason).
    #[test]
    fn sweep_expires_exactly_the_idle_flows(
        events in proptest::collection::vec(arb_event(), 1..120),
    ) {
        let (mut k, mut dp, nics) = setup();
        let idle_ns = dp.revalidator.cfg.max_idle_ms * 1_000_000;
        let mut model: HashMap<u16, (u64, u64)> = HashMap::new();
        let mut pkts_sent: u64 = 0;

        for ev in &events {
            match ev {
                Event::Packet(i) => {
                    let tp = 1000 + i;
                    let now = k.sim.clock.now_ns();
                    k.receive(nics[0], 0, frame(tp));
                    dp.pmd_poll(&mut k, 0, 0, 1);
                    pkts_sent += 1;
                    model
                        .entry(tp)
                        .and_modify(|(_, used)| *used = now)
                        .or_insert((now, now));
                }
                Event::Advance(ms) => k.sim.clock.advance(ms * 1_000_000),
                Event::Sweep => {
                    let now = k.sim.clock.now_ns();
                    let before = model.len() as u64;
                    model.retain(|_, (_, used)| now - *used <= idle_ns);
                    let expect_deleted = before - model.len() as u64;

                    let s = dp.revalidate(&mut k, 0);
                    prop_assert_eq!(s.deleted_idle, expect_deleted,
                        "sweep at {}ms deleted the wrong flows", now / 1_000_000);
                    prop_assert_eq!(s.deleted_hard, 0);
                    prop_assert_eq!(s.deleted_changed, 0, "rules never changed");
                    prop_assert_eq!(s.evicted, 0, "never near the flow limit");
                }
            }
            // The table and the ukey set track the model at every step.
            prop_assert_eq!(dp.megaflow_count(), model.len());
            prop_assert_eq!(dp.revalidator.ukey_count(), model.len());
            prop_assert!(dp.stats.coherent(), "{:?}", dp.stats);
        }

        // Every packet was forwarded (misses and hits alike) and the
        // final sweep's pushback accounts for all of them: each packet
        // matched exactly one tp_src rule.
        prop_assert_eq!(k.device(nics[1]).tx_wire.len() as u64, pkts_sent);
        dp.revalidate(&mut k, 0);
        let credited: u64 = dp
            .ofproto
            .iter_rules()
            .map(|r| r.n_packets.get())
            .sum();
        prop_assert_eq!(credited, pkts_sent, "stats pushback is exact");
    }
}
