/root/repo/target/release/deps/revalidator_lifecycle-8339260771d1c65e.d: crates/core/tests/revalidator_lifecycle.rs

/root/repo/target/release/deps/revalidator_lifecycle-8339260771d1c65e: crates/core/tests/revalidator_lifecycle.rs

crates/core/tests/revalidator_lifecycle.rs:
