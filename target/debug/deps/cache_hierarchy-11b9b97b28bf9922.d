/root/repo/target/debug/deps/cache_hierarchy-11b9b97b28bf9922.d: crates/bench/benches/cache_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libcache_hierarchy-11b9b97b28bf9922.rmeta: crates/bench/benches/cache_hierarchy.rs Cargo.toml

crates/bench/benches/cache_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
