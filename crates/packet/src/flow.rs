//! Flow keys and masks — the maskable header fingerprint every OVS cache
//! level keys on.
//!
//! A [`FlowKey`] packs the parsed header fields into twelve 64-bit words
//! with a fixed layout, so that a [`FlowMask`] (one bitmask per word) can
//! express wildcarding at bit granularity. This is the same representation
//! trick as OVS's miniflow: the exact-match cache hashes all words, a
//! megaflow hashes `key & mask`, and the tuple-space-search classifier
//! groups rules by identical masks.
//!
//! Word layout (all fields big-endian within their word):
//!
//! | word | contents |
//! |------|----------|
//! | 0  | `in_port` (high 32) \| `recirc_id` (low 32) |
//! | 1  | `dl_src` (6 bytes) \| `eth_type` (2 bytes) |
//! | 2  | `dl_dst` (6 bytes) \| `vlan_tci` (2 bytes) |
//! | 3,4| `nw_src`: IPv6 bytes 0–7, 8–15; IPv4 in the low 32 bits of word 4 |
//! | 5,6| `nw_dst`: likewise |
//! | 7  | `nw_proto` \| `nw_tos` \| `nw_ttl` \| `nw_frag` \| `tp_src` \| `tp_dst` |
//! | 8  | `tun_id` |
//! | 9  | `tun_src` (high 32) \| `tun_dst` (low 32) |
//! | 10 | `ct_state` \| pad \| `ct_zone` \| `ct_mark` (low 32) |
//! | 11 | `metadata` (scratch register for pipeline state) |
//!
//! ARP reuses the IP fields the way OVS does: `nw_proto` holds the opcode,
//! `nw_src`/`nw_dst` hold SPA/TPA.

use crate::dp_packet::DpPacket;
use crate::ethernet::{self, EtherType, EthernetFrame};
use crate::mac::MacAddr;
use crate::{arp, icmp, ipv4, ipv6, tcp, udp, vlan};

/// Number of 64-bit words in a flow key.
pub const WORDS: usize = 12;

/// Fragment state encoded in the `nw_frag` byte.
pub mod nw_frag {
    /// Any fragment (first or later).
    pub const ANY: u8 = 0x1;
    /// A later fragment (offset != 0): L4 ports are unavailable.
    pub const LATER: u8 = 0x2;
}

/// A parsed, fixed-width flow key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FlowKey {
    words: [u64; WORDS],
}

macro_rules! word_field {
    ($get:ident, $set:ident, $word:expr, $shift:expr, $ty:ty, $mask:expr, $doc:expr) => {
        #[doc = $doc]
        pub fn $get(&self) -> $ty {
            ((self.words[$word] >> $shift) & $mask) as $ty
        }

        #[doc = concat!("Set ", $doc)]
        pub fn $set(&mut self, v: $ty) {
            self.words[$word] =
                (self.words[$word] & !($mask << $shift)) | (((v as u64) & $mask) << $shift);
        }
    };
}

impl FlowKey {
    /// The raw words.
    pub fn words(&self) -> &[u64; WORDS] {
        &self.words
    }

    /// Construct directly from words (tests, proptest generators).
    pub fn from_words(words: [u64; WORDS]) -> Self {
        Self { words }
    }

    word_field!(
        in_port,
        set_in_port,
        0,
        32,
        u32,
        0xffff_ffff,
        "Datapath input port."
    );
    word_field!(
        recirc_id,
        set_recirc_id,
        0,
        0,
        u32,
        0xffff_ffff,
        "Recirculation id."
    );
    word_field!(
        eth_type_raw,
        set_eth_type_raw,
        1,
        0,
        u16,
        0xffff,
        "Raw EtherType."
    );
    word_field!(
        vlan_tci,
        set_vlan_tci,
        2,
        0,
        u16,
        0xffff,
        "VLAN TCI (0 = untagged)."
    );
    word_field!(
        nw_proto,
        set_nw_proto,
        7,
        56,
        u8,
        0xff,
        "IP protocol / ARP opcode."
    );
    word_field!(nw_tos, set_nw_tos, 7, 48, u8, 0xff, "IP TOS byte.");
    word_field!(nw_ttl, set_nw_ttl, 7, 40, u8, 0xff, "IP TTL / hop limit.");
    word_field!(
        nw_frag,
        set_nw_frag,
        7,
        32,
        u8,
        0xff,
        "Fragment state bits."
    );
    word_field!(tp_src, set_tp_src, 7, 16, u16, 0xffff, "L4 source port.");
    word_field!(
        tp_dst,
        set_tp_dst,
        7,
        0,
        u16,
        0xffff,
        "L4 destination port."
    );
    word_field!(
        tun_src,
        set_tun_src_raw,
        9,
        32,
        u32,
        0xffff_ffff,
        "Outer tunnel source IPv4 (as u32)."
    );
    word_field!(
        tun_dst,
        set_tun_dst_raw,
        9,
        0,
        u32,
        0xffff_ffff,
        "Outer tunnel destination IPv4 (as u32)."
    );
    word_field!(
        ct_state,
        set_ct_state,
        10,
        56,
        u8,
        0xff,
        "Conntrack state bits."
    );
    word_field!(ct_zone, set_ct_zone, 10, 32, u16, 0xffff, "Conntrack zone.");
    word_field!(
        ct_mark,
        set_ct_mark,
        10,
        0,
        u32,
        0xffff_ffff,
        "Conntrack mark."
    );

    /// EtherType as an enum.
    pub fn eth_type(&self) -> EtherType {
        EtherType::from_u16(self.eth_type_raw())
    }

    /// Set the EtherType.
    pub fn set_eth_type(&mut self, t: EtherType) {
        self.set_eth_type_raw(t.to_u16());
    }

    /// Source MAC.
    pub fn dl_src(&self) -> MacAddr {
        MacAddr::from_u64(self.words[1] >> 16)
    }

    /// Set the source MAC.
    pub fn set_dl_src(&mut self, m: MacAddr) {
        self.words[1] = (self.words[1] & 0xffff) | (m.to_u64() << 16);
    }

    /// Destination MAC.
    pub fn dl_dst(&self) -> MacAddr {
        MacAddr::from_u64(self.words[2] >> 16)
    }

    /// Set the destination MAC.
    pub fn set_dl_dst(&mut self, m: MacAddr) {
        self.words[2] = (self.words[2] & 0xffff) | (m.to_u64() << 16);
    }

    /// IPv4 source address (stored in the low 32 bits of word 4).
    pub fn nw_src_v4(&self) -> [u8; 4] {
        (self.words[4] as u32).to_be_bytes()
    }

    /// Set the IPv4 source address.
    pub fn set_nw_src_v4(&mut self, a: [u8; 4]) {
        self.words[3] = 0;
        self.words[4] = u64::from(u32::from_be_bytes(a));
    }

    /// IPv4 destination address.
    pub fn nw_dst_v4(&self) -> [u8; 4] {
        (self.words[6] as u32).to_be_bytes()
    }

    /// Set the IPv4 destination address.
    pub fn set_nw_dst_v4(&mut self, a: [u8; 4]) {
        self.words[5] = 0;
        self.words[6] = u64::from(u32::from_be_bytes(a));
    }

    /// IPv6 source address.
    pub fn nw_src_v6(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.words[3].to_be_bytes());
        out[8..].copy_from_slice(&self.words[4].to_be_bytes());
        out
    }

    /// Set the IPv6 source address.
    pub fn set_nw_src_v6(&mut self, a: [u8; 16]) {
        self.words[3] = u64::from_be_bytes(a[..8].try_into().unwrap());
        self.words[4] = u64::from_be_bytes(a[8..].try_into().unwrap());
    }

    /// IPv6 destination address.
    pub fn nw_dst_v6(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.words[5].to_be_bytes());
        out[8..].copy_from_slice(&self.words[6].to_be_bytes());
        out
    }

    /// Set the IPv6 destination address.
    pub fn set_nw_dst_v6(&mut self, a: [u8; 16]) {
        self.words[5] = u64::from_be_bytes(a[..8].try_into().unwrap());
        self.words[6] = u64::from_be_bytes(a[8..].try_into().unwrap());
    }

    /// Tunnel id (VNI / GRE key).
    pub fn tun_id(&self) -> u64 {
        self.words[8]
    }

    /// Set the tunnel id.
    pub fn set_tun_id(&mut self, id: u64) {
        self.words[8] = id;
    }

    /// Set the outer tunnel source address.
    pub fn set_tun_src(&mut self, a: [u8; 4]) {
        self.set_tun_src_raw(u32::from_be_bytes(a));
    }

    /// Set the outer tunnel destination address.
    pub fn set_tun_dst(&mut self, a: [u8; 4]) {
        self.set_tun_dst_raw(u32::from_be_bytes(a));
    }

    /// Pipeline metadata register.
    pub fn metadata(&self) -> u64 {
        self.words[11]
    }

    /// Set the pipeline metadata register.
    pub fn set_metadata(&mut self, v: u64) {
        self.words[11] = v;
    }

    /// The key with `mask` applied (wildcarded bits zeroed).
    pub fn masked(&self, mask: &FlowMask) -> FlowKey {
        let mut out = [0u64; WORDS];
        for (o, (k, m)) in out.iter_mut().zip(self.words.iter().zip(mask.words.iter())) {
            *o = k & m;
        }
        FlowKey { words: out }
    }

    /// True if this key matches `rule_key` under `mask`.
    pub fn matches(&self, rule_key: &FlowKey, mask: &FlowMask) -> bool {
        self.words
            .iter()
            .zip(rule_key.words.iter())
            .zip(mask.words.iter())
            .all(|((k, r), m)| (k ^ r) & m == 0)
    }

    /// A fast 64-bit hash of the key under `mask` (FNV-1a over the masked
    /// words, with an avalanche finalizer). Deterministic across runs.
    ///
    /// The finalizer matters: FNV's multiply only propagates entropy
    /// *upward*, so without it two keys differing in a high-order field
    /// (a port, a recirc id) share their low hash bits — and the EMC and
    /// SMC index their buckets with exactly those bits.
    pub fn hash_masked(&self, mask: &FlowMask) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (k, m) in self.words.iter().zip(mask.words.iter()) {
            h ^= k & m;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    /// A fast hash of the full key (all bits significant).
    pub fn hash(&self) -> u64 {
        self.hash_masked(&FlowMask::EXACT)
    }

    /// The 5-tuple RSS hash (src/dst IP, proto, src/dst port), the value
    /// AF_XDP must compute in software per §5.5.
    pub fn rss_hash(&self) -> u32 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in [
            self.words[3],
            self.words[4],
            self.words[5],
            self.words[6],
            self.words[7] & 0xff00_0000_ffff_ffff, // proto + ports
        ] {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h >> 32) as u32 ^ h as u32
    }
}

/// A per-bit wildcard mask over a [`FlowKey`]: 1-bits are significant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowMask {
    words: [u64; WORDS],
}

impl FlowMask {
    /// Match nothing (all bits wildcarded).
    pub const EMPTY: FlowMask = FlowMask { words: [0; WORDS] };

    /// Match every bit (exact match).
    pub const EXACT: FlowMask = FlowMask {
        words: [u64::MAX; WORDS],
    };

    /// The raw words.
    pub fn words(&self) -> &[u64; WORDS] {
        &self.words
    }

    /// Construct from raw words.
    pub fn from_words(words: [u64; WORDS]) -> Self {
        Self { words }
    }

    /// OR another mask into this one (union of significant bits). This is
    /// how megaflow wildcards accumulate during a pipeline traversal.
    pub fn unite(&mut self, other: &FlowMask) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Set the bits for one named field.
    pub fn set_field(&mut self, field: &Field) {
        self.words[field.word] |= field.mask;
    }

    /// A mask covering exactly the given fields.
    pub fn of_fields(fields: &[&Field]) -> Self {
        let mut m = Self::EMPTY;
        for f in fields {
            m.set_field(f);
        }
        m
    }

    /// True if every significant bit of `self` is also significant in
    /// `other` (i.e. `other` is at least as specific).
    pub fn subset_of(&self, other: &FlowMask) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of significant bits.
    pub fn bit_count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Add an IPv4 source prefix of `len` bits to the mask.
    pub fn set_nw_src_v4_prefix(&mut self, len: u8) {
        debug_assert!(len <= 32);
        let m = prefix32(len);
        self.words[4] |= u64::from(m);
    }

    /// Add an IPv4 destination prefix of `len` bits to the mask.
    pub fn set_nw_dst_v4_prefix(&mut self, len: u8) {
        debug_assert!(len <= 32);
        let m = prefix32(len);
        self.words[6] |= u64::from(m);
    }
}

fn prefix32(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

impl Default for FlowMask {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// A named match field: its word index and bit mask within that word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Field {
    /// Canonical OVS-style name.
    pub name: &'static str,
    /// Word index within the key.
    pub word: usize,
    /// Bits of that word the field occupies.
    pub mask: u64,
}

/// The named fields, used by rule builders and for Table 3's "matching
/// fields among all rules" statistic.
pub mod fields {
    use super::Field;

    pub const IN_PORT: Field = Field {
        name: "in_port",
        word: 0,
        mask: 0xffff_ffff_0000_0000,
    };
    pub const RECIRC_ID: Field = Field {
        name: "recirc_id",
        word: 0,
        mask: 0x0000_0000_ffff_ffff,
    };
    pub const DL_SRC: Field = Field {
        name: "dl_src",
        word: 1,
        mask: 0xffff_ffff_ffff_0000,
    };
    pub const ETH_TYPE: Field = Field {
        name: "eth_type",
        word: 1,
        mask: 0x0000_0000_0000_ffff,
    };
    pub const DL_DST: Field = Field {
        name: "dl_dst",
        word: 2,
        mask: 0xffff_ffff_ffff_0000,
    };
    pub const VLAN_TCI: Field = Field {
        name: "vlan_tci",
        word: 2,
        mask: 0x0000_0000_0000_ffff,
    };
    pub const VLAN_VID: Field = Field {
        name: "vlan_vid",
        word: 2,
        mask: 0x0000_0000_0000_0fff,
    };
    pub const VLAN_PCP: Field = Field {
        name: "vlan_pcp",
        word: 2,
        mask: 0x0000_0000_0000_e000,
    };
    pub const NW_SRC_HI: Field = Field {
        name: "ipv6_src_hi",
        word: 3,
        mask: u64::MAX,
    };
    pub const NW_SRC: Field = Field {
        name: "nw_src",
        word: 4,
        mask: 0x0000_0000_ffff_ffff,
    };
    pub const NW_SRC_LO64: Field = Field {
        name: "ipv6_src_lo",
        word: 4,
        mask: u64::MAX,
    };
    pub const NW_DST_HI: Field = Field {
        name: "ipv6_dst_hi",
        word: 5,
        mask: u64::MAX,
    };
    pub const NW_DST: Field = Field {
        name: "nw_dst",
        word: 6,
        mask: 0x0000_0000_ffff_ffff,
    };
    pub const NW_DST_LO64: Field = Field {
        name: "ipv6_dst_lo",
        word: 6,
        mask: u64::MAX,
    };
    pub const NW_PROTO: Field = Field {
        name: "nw_proto",
        word: 7,
        mask: 0xff00_0000_0000_0000,
    };
    pub const NW_TOS: Field = Field {
        name: "nw_tos",
        word: 7,
        mask: 0x00ff_0000_0000_0000,
    };
    pub const NW_TTL: Field = Field {
        name: "nw_ttl",
        word: 7,
        mask: 0x0000_ff00_0000_0000,
    };
    pub const NW_FRAG: Field = Field {
        name: "nw_frag",
        word: 7,
        mask: 0x0000_00ff_0000_0000,
    };
    pub const TP_SRC: Field = Field {
        name: "tp_src",
        word: 7,
        mask: 0x0000_0000_ffff_0000,
    };
    pub const TP_DST: Field = Field {
        name: "tp_dst",
        word: 7,
        mask: 0x0000_0000_0000_ffff,
    };
    pub const TUN_ID: Field = Field {
        name: "tun_id",
        word: 8,
        mask: u64::MAX,
    };
    pub const TUN_SRC: Field = Field {
        name: "tun_src",
        word: 9,
        mask: 0xffff_ffff_0000_0000,
    };
    pub const TUN_DST: Field = Field {
        name: "tun_dst",
        word: 9,
        mask: 0x0000_0000_ffff_ffff,
    };
    pub const CT_STATE: Field = Field {
        name: "ct_state",
        word: 10,
        mask: 0xff00_0000_0000_0000,
    };
    pub const CT_ZONE: Field = Field {
        name: "ct_zone",
        word: 10,
        mask: 0x0000_ffff_0000_0000,
    };
    pub const CT_MARK: Field = Field {
        name: "ct_mark",
        word: 10,
        mask: 0x0000_0000_ffff_ffff,
    };
    pub const METADATA: Field = Field {
        name: "metadata",
        word: 11,
        mask: u64::MAX,
    };
    /// ARP aliases, matching OVS naming (same storage as the IP fields).
    pub const ARP_OP: Field = Field {
        name: "arp_op",
        word: 7,
        mask: 0xff00_0000_0000_0000,
    };
    pub const ARP_SPA: Field = Field {
        name: "arp_spa",
        word: 4,
        mask: 0x0000_0000_ffff_ffff,
    };
    pub const ARP_TPA: Field = Field {
        name: "arp_tpa",
        word: 6,
        mask: 0x0000_0000_ffff_ffff,
    };
    pub const ICMP_TYPE: Field = Field {
        name: "icmp_type",
        word: 7,
        mask: 0x0000_0000_ffff_0000,
    };
    pub const ICMP_CODE: Field = Field {
        name: "icmp_code",
        word: 7,
        mask: 0x0000_0000_0000_ffff,
    };

    /// Every distinct named field above.
    pub const ALL: &[Field] = &[
        IN_PORT,
        RECIRC_ID,
        DL_SRC,
        ETH_TYPE,
        DL_DST,
        VLAN_TCI,
        VLAN_VID,
        VLAN_PCP,
        NW_SRC_HI,
        NW_SRC,
        NW_SRC_LO64,
        NW_DST_HI,
        NW_DST,
        NW_DST_LO64,
        NW_PROTO,
        NW_TOS,
        NW_TTL,
        NW_FRAG,
        TP_SRC,
        TP_DST,
        TUN_ID,
        TUN_SRC,
        TUN_DST,
        CT_STATE,
        CT_ZONE,
        CT_MARK,
        METADATA,
        ARP_OP,
        ARP_SPA,
        ARP_TPA,
        ICMP_TYPE,
        ICMP_CODE,
    ];
}

// ----------------------------------------------------------------------
// Miniflow: the sparse key representation the fast path runs on
// ----------------------------------------------------------------------

/// A sparse [`FlowKey`]: a presence bitmap over the [`WORDS`] fixed
/// 8-byte slots plus a packed array of the non-zero slot values — OVS's
/// `struct miniflow`. A slot's bit is set iff its value is non-zero, so
/// `Miniflow` ↔ `FlowKey` is a bijection and equality/hashing touch only
/// the populated slots instead of all twelve words.
///
/// The packed invariant: `vals[..map.count_ones()]` hold the populated
/// slot values in ascending slot order; everything after is zero (so the
/// derived `PartialEq` is exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Miniflow {
    map: u16,
    vals: [u64; WORDS],
}

impl Default for Miniflow {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl Miniflow {
    /// The all-wildcard (all-zero) key.
    pub const EMPTY: Miniflow = Miniflow {
        map: 0,
        vals: [0; WORDS],
    };

    /// The presence bitmap (bit `i` = slot `i` is non-zero).
    pub fn map(&self) -> u16 {
        self.map
    }

    /// Number of populated slots.
    pub fn n_slots(&self) -> usize {
        self.map.count_ones() as usize
    }

    /// The packed non-zero slot values, in ascending slot order.
    pub fn values(&self) -> &[u64] {
        &self.vals[..self.n_slots()]
    }

    /// Packed index of slot `w` (valid only when the slot is present).
    #[inline]
    fn rank(&self, w: usize) -> usize {
        (self.map & ((1u16 << w) - 1)).count_ones() as usize
    }

    /// Value of slot `w` (0 when absent) — one popcount, no expansion.
    #[inline]
    pub fn get(&self, w: usize) -> u64 {
        if self.map & (1 << w) != 0 {
            self.vals[self.rank(w)]
        } else {
            0
        }
    }

    /// Append slot `w` (which must be greater than every populated slot).
    /// Zero values are skipped to keep the representation canonical.
    #[inline]
    fn push(&mut self, w: usize, v: u64) {
        debug_assert!(
            self.map >> w == 0,
            "slots must be pushed in ascending order"
        );
        if v != 0 {
            self.vals[self.n_slots()] = v;
            self.map |= 1 << w;
        }
    }

    /// Compress a full key (slow path; the fast path extracts directly).
    pub fn from_key(key: &FlowKey) -> Miniflow {
        let mut mf = Miniflow::EMPTY;
        for (w, &v) in key.words().iter().enumerate() {
            mf.push(w, v);
        }
        mf
    }

    /// Expand to a full [`FlowKey`] — the **only** full-key
    /// materialization; the datapath calls this on the upcall/miss path
    /// and counts it under the `miniflow_expand` coverage counter.
    pub fn expand(&self) -> FlowKey {
        let mut words = [0u64; WORDS];
        let mut i = 0;
        for (w, word) in words.iter_mut().enumerate() {
            if self.map & (1 << w) != 0 {
                *word = self.vals[i];
                i += 1;
            }
        }
        FlowKey::from_words(words)
    }

    /// A fast full-key hash: FNV-1a over the bitmap and the populated
    /// slots only, with the same avalanche finalizer as
    /// [`FlowKey::hash_masked`] (low-bit entropy matters — the EMC and
    /// SMC index their buckets with the low bits). Computed once per
    /// packet and cached in `DpPacket::flow_hash`.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h ^= u64::from(self.map);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        for &v in self.values() {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    /// The 5-tuple RSS hash — bit-identical to
    /// [`FlowKey::rss_hash`] of the expansion, without expanding.
    pub fn rss_hash(&self) -> u32 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in [
            self.get(3),
            self.get(4),
            self.get(5),
            self.get(6),
            self.get(7) & 0xff00_0000_ffff_ffff, // proto + ports
        ] {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h >> 32) as u32 ^ h as u32
    }

    /// Datapath input port.
    pub fn in_port(&self) -> u32 {
        (self.get(0) >> 32) as u32
    }

    /// Recirculation id.
    pub fn recirc_id(&self) -> u32 {
        self.get(0) as u32
    }

    /// Raw EtherType.
    pub fn eth_type_raw(&self) -> u16 {
        self.get(1) as u16
    }

    /// IPv4 source address.
    pub fn nw_src_v4(&self) -> [u8; 4] {
        (self.get(4) as u32).to_be_bytes()
    }

    /// IPv4 destination address.
    pub fn nw_dst_v4(&self) -> [u8; 4] {
        (self.get(6) as u32).to_be_bytes()
    }

    /// IP protocol / ARP opcode.
    pub fn nw_proto(&self) -> u8 {
        (self.get(7) >> 56) as u8
    }

    /// L4 source port.
    pub fn tp_src(&self) -> u16 {
        (self.get(7) >> 16) as u16
    }

    /// L4 destination port.
    pub fn tp_dst(&self) -> u16 {
        self.get(7) as u16
    }

    /// Conntrack state bits.
    pub fn ct_state(&self) -> u8 {
        (self.get(10) >> 56) as u8
    }

    /// Tunnel id.
    pub fn tun_id(&self) -> u64 {
        self.get(8)
    }
}

/// `HashMap` keying must agree with `PartialEq` while touching only the
/// populated slots — this is what makes a dpcls subtable probe cheap for
/// sparse keys.
impl std::hash::Hash for Miniflow {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.map.hash(state);
        for v in self.values() {
            v.hash(state);
        }
    }
}

/// A sparse [`FlowMask`]: the subset bitmap of slots with any significant
/// bits plus the packed per-slot masks. Masked hashing and matching walk
/// only the mask's populated slots — `hash_masked` over a typical
/// megaflow mask touches 4–6 slots instead of all twelve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiniMask {
    map: u16,
    masks: [u64; WORDS],
}

impl MiniMask {
    /// The match-nothing mask.
    pub const EMPTY: MiniMask = MiniMask {
        map: 0,
        masks: [0; WORDS],
    };

    /// Compress a full mask (done once per megaflow install / subtable).
    pub fn from_mask(mask: &FlowMask) -> MiniMask {
        let mut map = 0u16;
        let mut masks = [0u64; WORDS];
        let mut i = 0;
        for (w, &m) in mask.words().iter().enumerate() {
            if m != 0 {
                map |= 1 << w;
                masks[i] = m;
                i += 1;
            }
        }
        MiniMask { map, masks }
    }

    /// Expand to a full [`FlowMask`].
    pub fn expand(&self) -> FlowMask {
        let mut words = [0u64; WORDS];
        let mut i = 0;
        for (w, word) in words.iter_mut().enumerate() {
            if self.map & (1 << w) != 0 {
                *word = self.masks[i];
                i += 1;
            }
        }
        FlowMask::from_words(words)
    }

    /// The slots this mask touches.
    pub fn map(&self) -> u16 {
        self.map
    }

    /// Number of significant bits.
    pub fn bit_count(&self) -> u32 {
        self.masks.iter().map(|m| m.count_ones()).sum()
    }

    /// Iterate `(slot, mask_word)` over the populated slots.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        let map = self.map;
        (0..WORDS)
            .filter(move |w| map & (1 << w) != 0)
            .zip(self.masks.iter().copied())
    }

    /// `flow & mask` as a canonical [`Miniflow`] (slots masked to zero are
    /// dropped). This is the sparse `FlowKey::masked`.
    pub fn apply(&self, flow: &Miniflow) -> Miniflow {
        let mut out = Miniflow::EMPTY;
        for (w, m) in self.iter() {
            out.push(w, flow.get(w) & m);
        }
        out
    }

    /// True if `flow` matches `rule` (stored pre-masked) under this mask —
    /// the sparse `FlowKey::matches`, touching only the mask's slots.
    pub fn matches(&self, flow: &Miniflow, rule: &Miniflow) -> bool {
        self.iter().all(|(w, m)| flow.get(w) & m == rule.get(w))
    }

    /// Hash of `flow & mask` touching only the mask's populated slots —
    /// the sparse `FlowKey::hash_masked`, with the same avalanche
    /// finalizer.
    pub fn hash_flow(&self, flow: &Miniflow) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h ^= u64::from(self.map);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        for (w, m) in self.iter() {
            h ^= flow.get(w) & m;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

// ----------------------------------------------------------------------
// Extraction
// ----------------------------------------------------------------------

// Field packing within scratch words (matching the FlowKey word layout).
const W7_PROTO_SHIFT: u32 = 56;
const W7_TOS_SHIFT: u32 = 48;
const W7_TTL_SHIFT: u32 = 40;
const W7_FRAG_SHIFT: u32 = 32;
const W7_TP_SRC_SHIFT: u32 = 16;

/// Extract a [`Miniflow`] from a packet, recording L3/L4 offsets in the
/// packet's metadata — OVS's `miniflow_extract`. The parse stages values
/// into a scratch word array (upstream's staging buffer) and packs the
/// non-zero slots in ascending order; no full [`FlowKey`] is built, and
/// nothing downstream needs one until an upcall expands it.
///
/// Unparseable or unsupported layers simply stop extraction — the key
/// holds whatever was valid, which matches OVS semantics (a garbage L4
/// just means no L4 fields).
pub fn extract_miniflow(pkt: &mut DpPacket) -> Miniflow {
    let mut ws = [0u64; WORDS];
    ws[0] = (u64::from(pkt.in_port) << 32) | u64::from(pkt.recirc_id);
    ws[10] =
        (u64::from(pkt.ct_state) << 56) | (u64::from(pkt.ct_zone) << 32) | u64::from(pkt.ct_mark);
    if let Some(t) = &pkt.tunnel {
        ws[8] = t.tun_id;
        ws[9] = (u64::from(u32::from_be_bytes(t.src)) << 32) | u64::from(u32::from_be_bytes(t.dst));
    }

    let (l3_ofs, l4_ofs) = parse_frame(pkt.data(), &mut ws);
    if let Some(o) = l3_ofs {
        pkt.l3_ofs = o;
    }
    if let Some(o) = l4_ofs {
        pkt.l4_ofs = o;
    }

    let mut mf = Miniflow::EMPTY;
    for (w, &v) in ws.iter().enumerate() {
        mf.push(w, v);
    }
    mf
}

/// Extract a full [`FlowKey`] — the expansion of the miniflow, kept for
/// the slow path and the kernel datapath (which key on full keys).
pub fn extract_flow_key(pkt: &mut DpPacket) -> FlowKey {
    extract_miniflow(pkt).expand()
}

/// Parse L2–L4 into the scratch words; returns the L3/L4 offsets found.
fn parse_frame(data: &[u8], ws: &mut [u64; WORDS]) -> (Option<u16>, Option<u16>) {
    let Ok(eth) = EthernetFrame::new_checked(data) else {
        return (None, None);
    };
    ws[1] = eth.src().to_u64() << 16;
    ws[2] = eth.dst().to_u64() << 16;

    let mut ethertype = eth.ethertype();
    let mut l3_start = ethernet::HEADER_LEN;
    if ethertype == EtherType::Vlan {
        let Ok(tag) = vlan::VlanTag::new_checked(&data[l3_start..]) else {
            return (None, None);
        };
        // Set CFI-equivalent present bit the way OVS does (TCI | 0x1000 not
        // modelled; we store the raw TCI and rely on != 0 for presence).
        ws[2] |= u64::from(tag.tci() | 0x1000);
        ethertype = tag.inner_ethertype();
        l3_start += vlan::TAG_LEN;
    }
    ws[1] |= u64::from(ethertype.to_u16());

    let l4_ofs = match ethertype {
        EtherType::Ipv4 => extract_ipv4(&data[l3_start..], l3_start, ws),
        EtherType::Ipv6 => extract_ipv6(&data[l3_start..], l3_start, ws),
        EtherType::Arp => {
            extract_arp(&data[l3_start..], ws);
            None
        }
        _ => None,
    };
    (Some(l3_start as u16), l4_ofs)
}

fn extract_ipv4(l3: &[u8], l3_start: usize, ws: &mut [u64; WORDS]) -> Option<u16> {
    let Ok(ip) = ipv4::Ipv4Packet::new_checked(l3) else {
        return None;
    };
    ws[4] = u64::from(u32::from_be_bytes(ip.src()));
    ws[6] = u64::from(u32::from_be_bytes(ip.dst()));
    ws[7] = (u64::from(ip.protocol()) << W7_PROTO_SHIFT)
        | (u64::from(ip.tos()) << W7_TOS_SHIFT)
        | (u64::from(ip.ttl()) << W7_TTL_SHIFT);
    let l4_start = l3_start + ip.header_len();
    if ip.is_fragment() {
        let mut frag = nw_frag::ANY;
        if ip.frag_offset() != 0 {
            frag |= nw_frag::LATER;
            ws[7] |= u64::from(frag) << W7_FRAG_SHIFT;
            return Some(l4_start as u16); // No L4 header in later fragments.
        }
        ws[7] |= u64::from(frag) << W7_FRAG_SHIFT;
    }
    extract_l4(ip.protocol(), ip.payload(), ws);
    Some(l4_start as u16)
}

fn extract_ipv6(l3: &[u8], l3_start: usize, ws: &mut [u64; WORDS]) -> Option<u16> {
    let Ok(ip) = ipv6::Ipv6Packet::new_checked(l3) else {
        return None;
    };
    let src = ip.src();
    let dst = ip.dst();
    ws[3] = u64::from_be_bytes(src[..8].try_into().unwrap());
    ws[4] = u64::from_be_bytes(src[8..].try_into().unwrap());
    ws[5] = u64::from_be_bytes(dst[..8].try_into().unwrap());
    ws[6] = u64::from_be_bytes(dst[8..].try_into().unwrap());
    ws[7] = (u64::from(ip.next_header()) << W7_PROTO_SHIFT)
        | (u64::from(ip.traffic_class()) << W7_TOS_SHIFT)
        | (u64::from(ip.hop_limit()) << W7_TTL_SHIFT);
    extract_l4(ip.next_header(), ip.payload(), ws);
    Some((l3_start + ipv6::HEADER_LEN) as u16)
}

fn extract_arp(l3: &[u8], ws: &mut [u64; WORDS]) {
    let Ok(a) = arp::ArpPacket::new_checked(l3) else {
        return;
    };
    ws[4] = u64::from(u32::from_be_bytes(a.sender_ip()));
    ws[6] = u64::from(u32::from_be_bytes(a.target_ip()));
    ws[7] = u64::from(a.oper() as u8) << W7_PROTO_SHIFT;
}

fn extract_l4(proto: u8, l4: &[u8], ws: &mut [u64; WORDS]) {
    match proto {
        ipv4::protocol::TCP => {
            if let Ok(t) = tcp::TcpSegment::new_checked(l4) {
                ws[7] |= (u64::from(t.src_port()) << W7_TP_SRC_SHIFT) | u64::from(t.dst_port());
            }
        }
        ipv4::protocol::UDP => {
            if let Ok(u) = udp::UdpDatagram::new_checked(l4) {
                ws[7] |= (u64::from(u.src_port()) << W7_TP_SRC_SHIFT) | u64::from(u.dst_port());
            }
        }
        ipv4::protocol::ICMP => {
            if let Ok(i) = icmp::IcmpPacket::new_checked(l4) {
                ws[7] |= (u64::from(i.msg_type()) << W7_TP_SRC_SHIFT) | u64::from(i.code());
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;

    #[test]
    fn field_accessors_roundtrip() {
        let mut k = FlowKey::default();
        k.set_in_port(42);
        k.set_recirc_id(7);
        k.set_dl_src(MacAddr::new(1, 2, 3, 4, 5, 6));
        k.set_dl_dst(MacAddr::new(9, 8, 7, 6, 5, 4));
        k.set_eth_type(EtherType::Ipv4);
        k.set_vlan_tci(0x3064);
        k.set_nw_src_v4([10, 0, 0, 1]);
        k.set_nw_dst_v4([10, 0, 0, 2]);
        k.set_nw_proto(6);
        k.set_nw_tos(0x2e);
        k.set_nw_ttl(63);
        k.set_tp_src(4444);
        k.set_tp_dst(80);
        k.set_tun_id(5001);
        k.set_tun_src([192, 168, 0, 1]);
        k.set_tun_dst([192, 168, 0, 2]);
        k.set_ct_state(0x05);
        k.set_ct_zone(12);
        k.set_ct_mark(0xdeadbeef);
        k.set_metadata(99);

        assert_eq!(k.in_port(), 42);
        assert_eq!(k.recirc_id(), 7);
        assert_eq!(k.dl_src(), MacAddr::new(1, 2, 3, 4, 5, 6));
        assert_eq!(k.dl_dst(), MacAddr::new(9, 8, 7, 6, 5, 4));
        assert_eq!(k.eth_type(), EtherType::Ipv4);
        assert_eq!(k.vlan_tci(), 0x3064);
        assert_eq!(k.nw_src_v4(), [10, 0, 0, 1]);
        assert_eq!(k.nw_dst_v4(), [10, 0, 0, 2]);
        assert_eq!(k.nw_proto(), 6);
        assert_eq!(k.nw_tos(), 0x2e);
        assert_eq!(k.nw_ttl(), 63);
        assert_eq!(k.tp_src(), 4444);
        assert_eq!(k.tp_dst(), 80);
        assert_eq!(k.tun_id(), 5001);
        assert_eq!(k.ct_state(), 0x05);
        assert_eq!(k.ct_zone(), 12);
        assert_eq!(k.ct_mark(), 0xdeadbeef);
        assert_eq!(k.metadata(), 99);
    }

    #[test]
    fn ipv6_addresses_roundtrip() {
        let mut k = FlowKey::default();
        let src: [u8; 16] = core::array::from_fn(|i| i as u8);
        let dst: [u8; 16] = core::array::from_fn(|i| 0xf0 | i as u8);
        k.set_nw_src_v6(src);
        k.set_nw_dst_v6(dst);
        assert_eq!(k.nw_src_v6(), src);
        assert_eq!(k.nw_dst_v6(), dst);
    }

    #[test]
    fn mask_matching() {
        let mut rule = FlowKey::default();
        rule.set_nw_dst_v4([10, 1, 0, 0]);
        let mut mask = FlowMask::EMPTY;
        mask.set_nw_dst_v4_prefix(16);

        let mut pkt_key = FlowKey::default();
        pkt_key.set_nw_dst_v4([10, 1, 42, 42]);
        pkt_key.set_nw_src_v4([1, 2, 3, 4]); // irrelevant under mask
        assert!(pkt_key.matches(&rule, &mask));

        pkt_key.set_nw_dst_v4([10, 2, 0, 0]);
        assert!(!pkt_key.matches(&rule, &mask));
    }

    #[test]
    fn masked_hash_consistency() {
        let mut mask = FlowMask::EMPTY;
        mask.set_field(&fields::NW_DST);
        let mut a = FlowKey::default();
        a.set_nw_dst_v4([9, 9, 9, 9]);
        a.set_tp_src(1); // wildcarded, must not affect the hash
        let mut b = FlowKey::default();
        b.set_nw_dst_v4([9, 9, 9, 9]);
        b.set_tp_src(2);
        assert_eq!(a.hash_masked(&mask), b.hash_masked(&mask));
        assert_eq!(a.masked(&mask), b.masked(&mask));
    }

    #[test]
    fn mask_subset_and_unite() {
        let narrow = FlowMask::of_fields(&[&fields::NW_DST]);
        let mut wide = FlowMask::of_fields(&[&fields::NW_DST, &fields::TP_DST]);
        assert!(narrow.subset_of(&wide));
        assert!(!wide.subset_of(&narrow));
        let mut m = narrow;
        m.unite(&FlowMask::of_fields(&[&fields::TP_DST]));
        assert_eq!(m, wide);
        wide.unite(&narrow);
        assert_eq!(m, wide);
    }

    #[test]
    fn extract_udp_packet() {
        let frame = builder::udp_ipv4(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            5000,
            6000,
            &[0xab; 10],
        );
        let mut pkt = DpPacket::from_data(&frame);
        pkt.in_port = 3;
        let key = extract_flow_key(&mut pkt);
        assert_eq!(key.in_port(), 3);
        assert_eq!(key.eth_type(), EtherType::Ipv4);
        assert_eq!(key.nw_src_v4(), [10, 0, 0, 1]);
        assert_eq!(key.nw_dst_v4(), [10, 0, 0, 2]);
        assert_eq!(key.nw_proto(), ipv4::protocol::UDP);
        assert_eq!(key.tp_src(), 5000);
        assert_eq!(key.tp_dst(), 6000);
        assert_eq!(pkt.l3_ofs, 14);
        assert_eq!(pkt.l4_ofs, 34);
    }

    #[test]
    fn extract_garbage_does_not_panic() {
        let mut pkt = DpPacket::from_data(&[0xff; 7]);
        let key = extract_flow_key(&mut pkt);
        assert_eq!(key.eth_type_raw(), 0);
    }

    #[test]
    fn extract_later_fragment_has_no_ports() {
        let mut frame = builder::udp_ipv4(
            MacAddr::ZERO,
            MacAddr::ZERO,
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            7,
            8,
            &[0; 8],
        );
        {
            let mut ip = ipv4::Ipv4Packet::new_unchecked(&mut frame[14..]);
            ip.set_frag(false, false, 100);
            ip.fill_checksum();
        }
        let mut pkt = DpPacket::from_data(&frame);
        let key = extract_flow_key(&mut pkt);
        assert_eq!(key.nw_frag(), nw_frag::ANY | nw_frag::LATER);
        assert_eq!(key.tp_src(), 0);
        assert_eq!(key.tp_dst(), 0);
    }

    #[test]
    fn rss_hash_depends_on_5tuple_only() {
        let mut a = FlowKey::default();
        a.set_nw_src_v4([1, 2, 3, 4]);
        a.set_tp_src(100);
        let mut b = a;
        b.set_dl_src(MacAddr::new(5, 5, 5, 5, 5, 5)); // not in the 5-tuple
        assert_eq!(a.rss_hash(), b.rss_hash());
        b.set_tp_src(101);
        assert_ne!(a.rss_hash(), b.rss_hash());
    }

    #[test]
    fn all_fields_distinct_names() {
        let mut names: Vec<_> = fields::ALL.iter().map(|f| f.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), fields::ALL.len());
    }

    fn sample_key() -> FlowKey {
        let mut k = FlowKey::default();
        k.set_in_port(3);
        k.set_dl_src(MacAddr::new(1, 2, 3, 4, 5, 6));
        k.set_dl_dst(MacAddr::new(9, 8, 7, 6, 5, 4));
        k.set_eth_type(EtherType::Ipv4);
        k.set_nw_src_v4([10, 0, 0, 1]);
        k.set_nw_dst_v4([10, 0, 0, 2]);
        k.set_nw_proto(ipv4::protocol::UDP);
        k.set_nw_ttl(64);
        k.set_tp_src(4000);
        k.set_tp_dst(53);
        k
    }

    #[test]
    fn miniflow_roundtrip_identity() {
        let key = sample_key();
        let mf = Miniflow::from_key(&key);
        assert_eq!(mf.expand(), key);
        // Only the populated slots are stored.
        assert_eq!(
            mf.n_slots(),
            key.words().iter().filter(|&&w| w != 0).count()
        );
        // Canonical form: equal keys give equal miniflows bit-for-bit.
        assert_eq!(Miniflow::from_key(&key), mf);
    }

    #[test]
    fn miniflow_get_matches_words() {
        let key = sample_key();
        let mf = Miniflow::from_key(&key);
        for (w, &v) in key.words().iter().enumerate() {
            assert_eq!(mf.get(w), v, "slot {w}");
        }
        assert_eq!(mf.in_port(), key.in_port());
        assert_eq!(mf.recirc_id(), key.recirc_id());
        assert_eq!(mf.eth_type_raw(), key.eth_type_raw());
        assert_eq!(mf.nw_src_v4(), key.nw_src_v4());
        assert_eq!(mf.nw_dst_v4(), key.nw_dst_v4());
        assert_eq!(mf.nw_proto(), key.nw_proto());
        assert_eq!(mf.tp_src(), key.tp_src());
        assert_eq!(mf.tp_dst(), key.tp_dst());
    }

    #[test]
    fn miniflow_rss_hash_matches_full_key() {
        let key = sample_key();
        let mf = Miniflow::from_key(&key);
        assert_eq!(mf.rss_hash(), key.rss_hash());
        // And an empty key agrees too.
        assert_eq!(Miniflow::EMPTY.rss_hash(), FlowKey::default().rss_hash());
    }

    #[test]
    fn minimask_apply_matches_full_masked() {
        let key = sample_key();
        let mask = FlowMask::of_fields(&[&fields::NW_DST, &fields::TP_DST, &fields::ETH_TYPE]);
        let mf = Miniflow::from_key(&key);
        let mm = MiniMask::from_mask(&mask);
        assert_eq!(mm.expand(), mask);
        assert_eq!(mm.apply(&mf).expand(), key.masked(&mask));
        assert_eq!(mm.bit_count(), mask.bit_count());
        // Sparse masked hash equals hashing under the packed slots only and
        // is stable across flows equal under the mask.
        let mut other = key;
        other.set_tp_src(9999); // not covered by the mask
        assert_eq!(mm.hash_flow(&mf), mm.hash_flow(&Miniflow::from_key(&other)));
    }

    #[test]
    fn minimask_matches_agrees_with_full_matches() {
        let key = sample_key();
        let mask = FlowMask::of_fields(&[&fields::NW_SRC, &fields::NW_DST, &fields::NW_PROTO]);
        let mm = MiniMask::from_mask(&mask);
        let rule_masked = mm.apply(&Miniflow::from_key(&key));

        let mut hit = key;
        hit.set_tp_dst(1); // outside the mask: still matches
        assert!(mm.matches(&Miniflow::from_key(&hit), &rule_masked));
        assert!(hit.masked(&mask).matches(&key.masked(&mask), &mask));

        let mut miss = key;
        miss.set_nw_dst_v4([192, 168, 0, 1]);
        assert!(!mm.matches(&Miniflow::from_key(&miss), &rule_masked));
    }

    #[test]
    fn extract_miniflow_equals_flow_key_compression() {
        let frame = builder::udp_ipv4(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1234,
            80,
            b"hello",
        );
        let mut p1 = DpPacket::from_data(&frame);
        let mut p2 = DpPacket::from_data(&frame);
        let mf = extract_miniflow(&mut p1);
        let key = extract_flow_key(&mut p2);
        assert_eq!(mf, Miniflow::from_key(&key));
        assert_eq!(mf.expand(), key);
        assert_eq!((p1.l3_ofs, p1.l4_ofs), (p2.l3_ofs, p2.l4_ofs));
    }

    #[test]
    fn miniflow_hash_distinguishes_presence_from_zero() {
        // {slot absent} and {slot present but zero} cannot both exist in
        // canonical form, but hashing must still mix the map so two keys
        // with identical packed values in different slots differ.
        let mut a = FlowKey::default();
        a.set_tun_id(77);
        let mut b = FlowKey::default();
        b.set_metadata(77);
        assert_ne!(Miniflow::from_key(&a).hash(), Miniflow::from_key(&b).hash());
    }
}
