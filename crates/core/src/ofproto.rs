//! The OpenFlow-style pipeline and slow-path translation.
//!
//! `ofproto` holds the multi-table rule set the controller (NSX)
//! installs. The datapath never consults it per packet; instead, a cache
//! miss **upcalls** here, the pipeline is traversed once
//! ([`Ofproto::translate`]), and the traversal is folded into a single
//! megaflow: the final action list plus the union of every mask the
//! traversal examined. Connection tracking is a freeze point: `ct()`
//! recirculates, so a packet that hits the firewall passes through the
//! datapath multiple times (§5.1 describes three passes in the NSX
//! pipeline).

use crate::classifier::{Classifier, Rule};
use crate::dpif::{DpAction, PortNo};
use ovs_packet::flow::fields;
use ovs_packet::{FlowKey, FlowMask, MacAddr};
use std::collections::HashMap;
use std::rc::Rc;

/// Maximum tables traversed in one translation (loop guard).
const MAX_TABLE_HOPS: usize = 64;

/// An OpenFlow action.
#[derive(Debug, Clone, PartialEq)]
pub enum OfAction {
    /// Output to a datapath port.
    Output(PortNo),
    /// Continue matching at another table.
    Goto(u8),
    /// Set tunnel id and remote endpoint for a later tunnel-port output.
    SetTunnel { id: u64, dst: [u8; 4] },
    /// Write the pipeline metadata register.
    SetMetadata(u64),
    /// Rewrite the Ethernet source address.
    SetEthSrc(MacAddr),
    /// Rewrite the Ethernet destination address.
    SetEthDst(MacAddr),
    /// Push an 802.1Q tag.
    PushVlan(u16),
    /// Pop the 802.1Q tag.
    PopVlan,
    /// Send through conntrack in `zone` (optionally committing with a NAT
    /// mapping), then resume the pipeline at `resume_table` (via
    /// recirculation).
    Ct {
        zone: u16,
        commit: bool,
        resume_table: u8,
        nat: Option<ovs_kernel::conntrack::NatSpec>,
    },
    /// Rate-limit through a meter.
    Meter(u32),
    /// Hand the packet to NF service chain `chain_id` (ovs-nfv).
    /// Terminal: the chain's verdicts take over packet fate.
    NfChain(u32),
    /// Drop explicitly.
    Drop,
}

/// An OpenFlow rule.
#[derive(Debug, Clone, PartialEq)]
pub struct OfRule {
    pub table: u8,
    pub priority: i32,
    pub key: FlowKey,
    pub mask: FlowMask,
    pub actions: Vec<OfAction>,
    /// Controller bookkeeping id.
    pub cookie: u64,
}

/// An installed rule plus the stats the revalidator pushes back into it
/// (`n_packets`/`n_bytes`, what `ovs-ofctl dump-flows` reports). OVS
/// calls this `rule_dpif`; stats flow up from the caches via
/// `xlate_push_stats`, never down.
#[derive(Debug, PartialEq)]
pub struct RuleEntry {
    pub rule: OfRule,
    /// Packets attributed to this rule (upcalled + cache-pushed).
    pub n_packets: std::cell::Cell<u64>,
    /// Bytes attributed to this rule.
    pub n_bytes: std::cell::Cell<u64>,
}

impl RuleEntry {
    /// Credit `packets`/`bytes` to this rule's OpenFlow stats.
    pub fn credit(&self, packets: u64, bytes: u64) {
        self.n_packets.set(self.n_packets.get() + packets);
        self.n_bytes.set(self.n_bytes.get() + bytes);
    }
}

/// The outcome of a slow-path traversal: the megaflow to install.
#[derive(Debug, Clone, PartialEq)]
pub struct Translation {
    /// Datapath actions (empty = drop).
    pub actions: Vec<DpAction>,
    /// Accumulated wildcards: every field the traversal looked at.
    pub mask: FlowMask,
    /// Tables visited.
    pub tables_visited: u32,
    /// Every rule the traversal matched, in match order — the xlate
    /// cache that stats pushback credits (each rule on the path sees
    /// every packet the megaflow forwards).
    pub rules: Vec<Rc<RuleEntry>>,
}

/// Continuation state for a recirculation id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ResumeCtx {
    table: u8,
    metadata: u64,
}

/// Translation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfprotoStats {
    pub translations: u64,
    pub table_lookups: u64,
}

/// The OpenFlow switch model.
pub struct Ofproto {
    tables: HashMap<u8, Classifier<Rc<RuleEntry>>>,
    recirc: HashMap<u32, ResumeCtx>,
    next_recirc_id: u32,
    /// Counters.
    pub stats: OfprotoStats,
}

impl Default for Ofproto {
    fn default() -> Self {
        Self::new()
    }
}

impl Ofproto {
    /// An empty pipeline (all misses drop, as OpenFlow 1.3+ default).
    pub fn new() -> Self {
        Self {
            tables: HashMap::new(),
            recirc: HashMap::new(),
            next_recirc_id: 1,
            stats: OfprotoStats::default(),
        }
    }

    /// Install a rule (`ovs-ofctl add-flow`).
    pub fn add_rule(&mut self, rule: OfRule) {
        let table = self.tables.entry(rule.table).or_default();
        table.insert(Rule {
            key: rule.key,
            mask: rule.mask,
            priority: rule.priority,
            value: Rc::new(RuleEntry {
                rule,
                n_packets: std::cell::Cell::new(0),
                n_bytes: std::cell::Cell::new(0),
            }),
        });
    }

    /// Iterate every installed rule (for `ovs-ofctl dump-flows`).
    pub fn iter_rules(&self) -> impl Iterator<Item = &Rc<RuleEntry>> + '_ {
        let mut tables: Vec<_> = self.tables.iter().collect();
        tables.sort_by_key(|(t, _)| **t);
        tables
            .into_iter()
            .flat_map(|(_, cls)| cls.iter().map(|r| &r.value))
    }

    /// Total rules across tables.
    pub fn rule_count(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Number of populated tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Count the distinct named match fields used across all rules —
    /// Table 3's "matching fields among all rules".
    pub fn distinct_match_fields(&self) -> usize {
        let mut total = FlowMask::EMPTY;
        for t in self.tables.values() {
            for r in t.iter() {
                total.unite(&r.mask);
            }
        }
        fields::ALL
            .iter()
            .filter(|f| {
                let fm = FlowMask::of_fields(&[f]);
                // The field counts if any of its bits are significant
                // somewhere and it is not wholly shadowed: we count a
                // field when ALL its bits appear (the generator matches
                // whole fields).
                fm.subset_of(&total)
            })
            .count()
    }

    /// Translate one flow through the pipeline from table 0 (or the
    /// recirculation continuation if `key.recirc_id() != 0`).
    pub fn translate(&mut self, key: &FlowKey) -> Translation {
        self.translate_traced(key, None)
    }

    /// [`translate`](Self::translate), recording each table decision into
    /// an `ofproto/trace` context when one is attached.
    pub fn translate_traced(
        &mut self,
        key: &FlowKey,
        mut trace: Option<&mut ovs_obs::TraceCtx>,
    ) -> Translation {
        self.stats.translations += 1;
        let mut wc = FlowMask::of_fields(&[&fields::IN_PORT, &fields::RECIRC_ID]);
        let mut actions = Vec::new();
        let mut matched: Vec<Rc<RuleEntry>> = Vec::new();
        let mut work_key = *key;

        let mut table = if key.recirc_id() != 0 {
            match self.recirc.get(&key.recirc_id()) {
                Some(ctx) => {
                    work_key.set_metadata(ctx.metadata);
                    if let Some(t) = trace.as_deref_mut() {
                        t.note(format!(
                            "resuming at table {} (recirc_id 0x{:x}, metadata 0x{:x})",
                            ctx.table,
                            key.recirc_id(),
                            ctx.metadata
                        ));
                    }
                    ctx.table
                }
                None => {
                    // Stale recirc id: drop.
                    if let Some(t) = trace.as_deref_mut() {
                        t.note(format!("stale recirc_id 0x{:x}: drop", key.recirc_id()));
                    }
                    return Translation {
                        actions,
                        mask: wc,
                        tables_visited: 0,
                        rules: matched,
                    };
                }
            }
        } else {
            0
        };

        let mut visited = 0u32;
        for _hop in 0..MAX_TABLE_HOPS {
            visited += 1;
            self.stats.table_lookups += 1;
            let Some(cls) = self.tables.get_mut(&table) else {
                // Empty table: miss -> drop. Nothing here could have
                // matched anything, so no extra wildcards.
                if let Some(t) = trace.as_deref_mut() {
                    t.note(format!("table {table}: empty, miss -> drop"));
                }
                break;
            };
            let (entry, rule_mask) = match cls.lookup_wc(&work_key, &mut wc) {
                Some(r) => (Rc::clone(&r.value), r.mask),
                None => {
                    // A miss must be as specific as anything that could
                    // have matched in this table.
                    let tm = cls.total_mask();
                    wc.unite(&tm);
                    if let Some(t) = trace.as_deref_mut() {
                        t.note(format!("table {table}: no match -> drop"));
                    }
                    break;
                }
            };
            wc.unite(&rule_mask);
            matched.push(Rc::clone(&entry));
            let rule = &entry.rule;
            if let Some(t) = trace.as_deref_mut() {
                t.note(format!(
                    "table {table}: matched priority {} cookie 0x{:x}, actions {:?}",
                    rule.priority, rule.cookie, rule.actions
                ));
            }

            let mut next_table: Option<u8> = None;
            for act in &rule.actions {
                match act {
                    OfAction::Output(p) => actions.push(DpAction::Output(*p)),
                    OfAction::Goto(t) => next_table = Some(*t),
                    OfAction::SetTunnel { id, dst } => {
                        actions.push(DpAction::SetTunnel { id: *id, dst: *dst })
                    }
                    OfAction::SetMetadata(v) => {
                        work_key.set_metadata(*v);
                        wc.set_field(&fields::METADATA);
                    }
                    OfAction::SetEthSrc(m) => actions.push(DpAction::SetEthSrc(*m)),
                    OfAction::SetEthDst(m) => actions.push(DpAction::SetEthDst(*m)),
                    OfAction::PushVlan(tci) => actions.push(DpAction::PushVlan(*tci)),
                    OfAction::PopVlan => actions.push(DpAction::PopVlan),
                    OfAction::Meter(id) => actions.push(DpAction::Meter(*id)),
                    OfAction::Ct {
                        zone,
                        commit,
                        resume_table,
                        nat,
                    } => {
                        // Freeze: conntrack + recirculate; translation of
                        // the rest happens on the next upcall.
                        let rid = self.alloc_recirc(*resume_table, work_key.metadata());
                        if let Some(t) = trace.as_deref_mut() {
                            t.note(format!(
                                "ct(zone={zone}): freeze, resume at table {resume_table} \
                                 via recirc(0x{rid:x})"
                            ));
                        }
                        actions.push(DpAction::Ct {
                            zone: *zone,
                            commit: *commit,
                            nat: *nat,
                        });
                        actions.push(DpAction::Recirc(rid));
                        return Translation {
                            actions,
                            mask: wc,
                            tables_visited: visited,
                            rules: matched,
                        };
                    }
                    OfAction::NfChain(id) => {
                        // Terminal like Drop: once a packet enters a
                        // service chain, the chain's verdicts (forward /
                        // drop / steer) decide what happens next.
                        if let Some(t) = trace.as_deref_mut() {
                            t.note(format!("table {table}: enter nf chain {id}"));
                        }
                        actions.push(DpAction::NfChain(*id));
                        return Translation {
                            actions,
                            mask: wc,
                            tables_visited: visited,
                            rules: matched,
                        };
                    }
                    OfAction::Drop => {
                        if let Some(t) = trace.as_deref_mut() {
                            t.note(format!("table {table}: explicit drop"));
                        }
                        return Translation {
                            actions: Vec::new(),
                            mask: wc,
                            tables_visited: visited,
                            rules: matched,
                        };
                    }
                }
            }
            match next_table {
                Some(t) => table = t,
                None => break,
            }
        }
        Translation {
            actions,
            mask: wc,
            tables_visited: visited,
            rules: matched,
        }
    }

    fn alloc_recirc(&mut self, table: u8, metadata: u64) -> u32 {
        // Reuse an existing id for the same continuation so megaflows
        // stay shared.
        if let Some((id, _)) = self
            .recirc
            .iter()
            .find(|(_, c)| c.table == table && c.metadata == metadata)
        {
            return *id;
        }
        let id = self.next_recirc_id;
        self.next_recirc_id += 1;
        self.recirc.insert(id, ResumeCtx { table, metadata });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovs_packet::flow::fields::{IN_PORT, NW_DST, TP_DST};

    fn key_on_port(p: u32) -> FlowKey {
        let mut k = FlowKey::default();
        k.set_in_port(p);
        k.set_eth_type(ovs_packet::EtherType::Ipv4);
        k.set_nw_dst_v4([10, 0, 0, 2]);
        k.set_tp_dst(80);
        k
    }

    fn simple_rule(table: u8, prio: i32, port: u32, actions: Vec<OfAction>) -> OfRule {
        let mut key = FlowKey::default();
        key.set_in_port(port);
        OfRule {
            table,
            priority: prio,
            key,
            mask: FlowMask::of_fields(&[&IN_PORT]),
            actions,
            cookie: 0,
        }
    }

    #[test]
    fn single_table_output() {
        let mut of = Ofproto::new();
        of.add_rule(simple_rule(0, 10, 1, vec![OfAction::Output(2)]));
        let t = of.translate(&key_on_port(1));
        assert_eq!(t.actions, vec![DpAction::Output(2)]);
        assert_eq!(t.tables_visited, 1);
        // in_port examined -> wildcards include it.
        assert!(FlowMask::of_fields(&[&IN_PORT]).subset_of(&t.mask));
    }

    #[test]
    fn miss_drops_with_conservative_mask() {
        let mut of = Ofproto::new();
        // A rule matching tp_dst in table 0; our packet misses it.
        let mut key = FlowKey::default();
        key.set_tp_dst(443);
        of.add_rule(OfRule {
            table: 0,
            priority: 5,
            key,
            mask: FlowMask::of_fields(&[&TP_DST]),
            actions: vec![OfAction::Output(9)],
            cookie: 0,
        });
        let t = of.translate(&key_on_port(1));
        assert!(t.actions.is_empty(), "miss drops");
        // The megaflow must match on tp_dst so port-443 traffic doesn't
        // share the drop flow.
        assert!(FlowMask::of_fields(&[&TP_DST]).subset_of(&t.mask));
    }

    #[test]
    fn goto_chains_tables_and_unions_masks() {
        let mut of = Ofproto::new();
        of.add_rule(simple_rule(0, 10, 1, vec![OfAction::Goto(5)]));
        let mut k5 = FlowKey::default();
        k5.set_nw_dst_v4([10, 0, 0, 2]);
        of.add_rule(OfRule {
            table: 5,
            priority: 1,
            key: k5,
            mask: FlowMask::of_fields(&[&NW_DST]),
            actions: vec![OfAction::Output(3)],
            cookie: 0,
        });
        let t = of.translate(&key_on_port(1));
        assert_eq!(t.actions, vec![DpAction::Output(3)]);
        assert_eq!(t.tables_visited, 2);
        assert!(FlowMask::of_fields(&[&IN_PORT, &NW_DST]).subset_of(&t.mask));
    }

    #[test]
    fn ct_freezes_translation_and_resume_continues() {
        let mut of = Ofproto::new();
        of.add_rule(simple_rule(
            0,
            10,
            1,
            vec![OfAction::Ct {
                zone: 7,
                commit: true,
                resume_table: 20,
                nat: None,
            }],
        ));
        of.add_rule(OfRule {
            table: 20,
            priority: 0,
            key: FlowKey::default(),
            mask: FlowMask::EMPTY,
            actions: vec![OfAction::Output(4)],
            cookie: 0,
        });
        let t1 = of.translate(&key_on_port(1));
        let [DpAction::Ct {
            zone: 7,
            commit: true,
            nat: None,
        }, DpAction::Recirc(rid)] = t1.actions[..]
        else {
            panic!("expected ct+recirc, got {:?}", t1.actions);
        };
        // Second pass: recirculated key resumes at table 20.
        let mut k2 = key_on_port(1);
        k2.set_recirc_id(rid);
        let t2 = of.translate(&k2);
        assert_eq!(t2.actions, vec![DpAction::Output(4)]);
    }

    #[test]
    fn recirc_ids_are_shared_for_same_continuation() {
        let mut of = Ofproto::new();
        of.add_rule(simple_rule(
            0,
            10,
            1,
            vec![OfAction::Ct {
                zone: 1,
                commit: false,
                resume_table: 9,
                nat: None,
            }],
        ));
        let t1 = of.translate(&key_on_port(1));
        let t2 = of.translate(&key_on_port(1));
        assert_eq!(t1.actions, t2.actions, "same continuation, same recirc id");
    }

    #[test]
    fn metadata_steers_later_tables() {
        let mut of = Ofproto::new();
        of.add_rule(simple_rule(
            0,
            10,
            1,
            vec![OfAction::SetMetadata(0xab), OfAction::Goto(1)],
        ));
        let mut kmeta = FlowKey::default();
        kmeta.set_metadata(0xab);
        of.add_rule(OfRule {
            table: 1,
            priority: 1,
            key: kmeta,
            mask: FlowMask::of_fields(&[&fields::METADATA]),
            actions: vec![OfAction::Output(8)],
            cookie: 0,
        });
        let t = of.translate(&key_on_port(1));
        assert_eq!(t.actions, vec![DpAction::Output(8)]);
    }

    #[test]
    fn explicit_drop_clears_actions() {
        let mut of = Ofproto::new();
        of.add_rule(simple_rule(
            0,
            10,
            1,
            vec![OfAction::Output(2), OfAction::Drop],
        ));
        let t = of.translate(&key_on_port(1));
        assert!(t.actions.is_empty());
    }

    #[test]
    fn stale_recirc_id_drops() {
        let mut of = Ofproto::new();
        let mut k = key_on_port(1);
        k.set_recirc_id(999);
        let t = of.translate(&k);
        assert!(t.actions.is_empty());
    }

    #[test]
    fn stats_and_counts() {
        let mut of = Ofproto::new();
        of.add_rule(simple_rule(0, 1, 1, vec![OfAction::Output(1)]));
        of.add_rule(simple_rule(3, 1, 2, vec![OfAction::Output(1)]));
        assert_eq!(of.rule_count(), 2);
        assert_eq!(of.table_count(), 2);
        of.translate(&key_on_port(1));
        assert_eq!(of.stats.translations, 1);
        assert!(of.distinct_match_fields() >= 1);
    }

    #[test]
    fn translation_records_matched_rules_for_stats_pushback() {
        let mut of = Ofproto::new();
        of.add_rule(simple_rule(0, 10, 1, vec![OfAction::Goto(5)]));
        let mut k5 = FlowKey::default();
        k5.set_nw_dst_v4([10, 0, 0, 2]);
        of.add_rule(OfRule {
            table: 5,
            priority: 1,
            key: k5,
            mask: FlowMask::of_fields(&[&NW_DST]),
            actions: vec![OfAction::Output(3)],
            cookie: 0,
        });
        let t = of.translate(&key_on_port(1));
        assert_eq!(t.rules.len(), 2, "every rule on the path is recorded");
        for r in &t.rules {
            r.credit(7, 700);
        }
        let pkts: Vec<u64> = of.iter_rules().map(|r| r.n_packets.get()).collect();
        assert_eq!(pkts, vec![7, 7], "both rules credited");
        let bytes: u64 = of.iter_rules().map(|r| r.n_bytes.get()).sum();
        assert_eq!(bytes, 1400);
    }

    #[test]
    fn table_loop_is_bounded() {
        let mut of = Ofproto::new();
        // Table 0 -> table 1 -> table 0 forever.
        of.add_rule(simple_rule(0, 1, 1, vec![OfAction::Goto(1)]));
        of.add_rule(OfRule {
            table: 1,
            priority: 0,
            key: FlowKey::default(),
            mask: FlowMask::EMPTY,
            actions: vec![OfAction::Goto(0)],
            cookie: 0,
        });
        let t = of.translate(&key_on_port(1));
        assert!(t.tables_visited as usize <= MAX_TABLE_HOPS);
    }
}
