//! XSK descriptor-ring batching: per-packet cost of ring transfer at
//! different batch sizes (the amortization O3 leans on), measured on the
//! real lock-free rings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovs_ring::{Desc, SpscRing};
use std::hint::black_box;

fn bench_batch_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("xsk_ring/batch_transfer");
    for batch in [1usize, 4, 16, 32, 64] {
        let ring = SpscRing::new(1024);
        let descs: Vec<Desc> = (0..batch as u32)
            .map(|i| Desc { frame: i, len: 64 })
            .collect();
        let mut out = vec![Desc { frame: 0, len: 0 }; batch];
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                let pushed = ring.push_batch(black_box(&descs));
                let popped = ring.pop_batch(black_box(&mut out));
                black_box(pushed + popped)
            })
        });
    }
    g.finish();
}

fn bench_single_vs_batched_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("xsk_ring/32_descriptors");
    let ring = SpscRing::new(1024);
    let descs: Vec<Desc> = (0..32u32).map(|i| Desc { frame: i, len: 64 }).collect();
    let mut out = vec![Desc { frame: 0, len: 0 }; 32];

    g.bench_function("one_push_batch_call", |b| {
        b.iter(|| {
            ring.push_batch(black_box(&descs));
            ring.pop_batch(black_box(&mut out))
        })
    });

    g.bench_function("32_individual_pushes", |b| {
        b.iter(|| {
            for d in &descs {
                let _ = ring.push(black_box(*d));
            }
            ring.pop_batch(black_box(&mut out))
        })
    });

    g.finish();
}

/// Short measurement windows keep the full `cargo bench --workspace`
/// run to a few minutes; pass `--measurement-time` to override.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_batch_sizes, bench_single_vs_batched_push
}
criterion_main!(benches);
