//! DPDK vhostuser: shared-memory virtio rings to a guest.

use ovs_kernel::Kernel;

/// A vhostuser port bound to one guest.
#[derive(Debug)]
pub struct VhostUserDev {
    /// Guest index in the kernel's guest table.
    pub guest: usize,
    /// Packets enqueued toward the guest.
    pub tx_packets: u64,
    /// Packets dequeued from the guest.
    pub rx_packets: u64,
}

impl VhostUserDev {
    /// Bind to a guest's virtio rings.
    pub fn new(guest: usize) -> Self {
        Self {
            guest,
            tx_packets: 0,
            rx_packets: 0,
        }
    }

    /// Enqueue a burst toward the guest.
    pub fn enqueue_burst(&mut self, kernel: &mut Kernel, frames: Vec<Vec<u8>>, core: usize) {
        for f in frames {
            kernel.vhostuser_push(self.guest, f, core);
            self.tx_packets += 1;
        }
    }

    /// Dequeue a burst from the guest, up to `max` frames.
    pub fn dequeue_burst(&mut self, kernel: &mut Kernel, max: usize, core: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for _ in 0..max {
            match kernel.vhostuser_pop(self.guest, core) {
                Some(f) => {
                    out.push(f);
                    self.rx_packets += 1;
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovs_kernel::guest::{Guest, GuestRole, VirtioBackend};
    use ovs_packet::{builder, MacAddr};
    use ovs_sim::Context;

    #[test]
    fn pvp_through_guest_pmd() {
        let mut k = Kernel::new(4);
        let g = k.add_guest(Guest::new(
            "vm0",
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 2],
            GuestRole::PmdForwarder,
            VirtioBackend::VhostUser,
            2,
        ));
        let mut vh = VhostUserDev::new(g);
        let f = builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1,
            2,
            64,
        );
        vh.enqueue_burst(&mut k, vec![f.clone()], 0);
        assert_eq!(k.run_guest(g), 1);
        let out = vh.dequeue_burst(&mut k, 32, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0][0..6], &f[6..12], "guest l2fwd swapped MACs");
        // Guest time charged on the guest's core.
        assert!(k.sim.cpus.core(2).ns(Context::Guest) > 0.0);
        // Kick charged as system time on the switch core.
        assert!(k.sim.cpus.core(0).ns(Context::System) > 0.0);
    }
}
