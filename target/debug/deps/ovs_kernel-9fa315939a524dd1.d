/root/repo/target/debug/deps/ovs_kernel-9fa315939a524dd1.d: crates/kernel/src/lib.rs crates/kernel/src/conntrack.rs crates/kernel/src/dev.rs crates/kernel/src/guest.rs crates/kernel/src/kernel.rs crates/kernel/src/namespace.rs crates/kernel/src/neigh.rs crates/kernel/src/ovs_module.rs crates/kernel/src/route.rs crates/kernel/src/rtnetlink.rs crates/kernel/src/tools.rs crates/kernel/src/xsk.rs Cargo.toml

/root/repo/target/debug/deps/libovs_kernel-9fa315939a524dd1.rmeta: crates/kernel/src/lib.rs crates/kernel/src/conntrack.rs crates/kernel/src/dev.rs crates/kernel/src/guest.rs crates/kernel/src/kernel.rs crates/kernel/src/namespace.rs crates/kernel/src/neigh.rs crates/kernel/src/ovs_module.rs crates/kernel/src/route.rs crates/kernel/src/rtnetlink.rs crates/kernel/src/tools.rs crates/kernel/src/xsk.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/conntrack.rs:
crates/kernel/src/dev.rs:
crates/kernel/src/guest.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/namespace.rs:
crates/kernel/src/neigh.rs:
crates/kernel/src/ovs_module.rs:
crates/kernel/src/route.rs:
crates/kernel/src/rtnetlink.rs:
crates/kernel/src/tools.rs:
crates/kernel/src/xsk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
