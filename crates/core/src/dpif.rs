//! The datapath interface layer.
//!
//! [`DpifNetdev`] is the paper's userspace datapath: PMD-style polling
//! over AF_XDP / DPDK / tap / vhostuser ports, the EMC → SMC → megaflow
//! → upcall cache hierarchy, userspace conntrack, tunnelling via the
//! Netlink replica, meters, and software TSO fallback.
//!
//! The receive path is OVS's two-phase burst pipeline: `dfc_processing`
//! runs the datapath flow cache (EMC, then the optional signature match
//! cache) over the whole rx burst and sorts hits into per-megaflow
//! batches; `fast_path_processing` resolves the misses through the
//! megaflow classifier and the upcall slow path; then each batch's
//! actions execute once per batch and transmitted packets leave as real
//! per-port bursts — the per-batch amortization the paper's Fig 6/7
//! throughput depends on.
//!
//! [`DpifNetlink`] drives the in-kernel datapath module instead — the
//! baseline architecture: it consumes kernel upcalls, translates through
//! the same `ofproto`, and installs megaflows into the kernel.

use crate::cache::{Emc, MegaflowCache, MegaflowEntry, Smc};
use crate::meter::MeterSet;
use crate::mirror::MirrorSession;
use crate::ofproto::Ofproto;
use crate::revalidator::{DeleteReason, Revalidator, SweepSummary, Ukey};
use crate::snapshot::{DpSnapshot, FlowRecord, RestoreState, SNAPSHOT_VERSION};
use crate::tso;
use crate::tunnel::{self, TunnelConfig};
use ovs_afxdp::AfxdpPort;
use ovs_dpdk::{AfPacketDev, EthDev, VhostUserDev};
use ovs_kernel::conntrack::{ConnKey, CtAction, CtTable};
use ovs_kernel::rtnetlink::RtnlCache;
use ovs_kernel::Kernel;
use ovs_obs::latency::LatencySummary;
use ovs_obs::perf::STAGES;
use ovs_obs::{coverage, LatencyTracker, PmdPerf, Stage, StageTimer, TraceCtx};
use ovs_packet::flow::{extract_miniflow, FlowKey, Miniflow, WORDS};
use ovs_packet::{builder, DpPacket, MacAddr};
use ovs_sim::Context;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Core busy time as an integer nanosecond snapshot for stage
/// attribution. Rounding is monotone, and integer deltas telescope, so
/// per-stage times sum *exactly* to the poll total.
fn core_ns(kernel: &Kernel, core: usize) -> u64 {
    kernel.sim.cpus.core(core).total_ns().round() as u64
}

/// The PMD's virtual time: the global sim clock plus the polling core's
/// accumulated busy time. The clock only moves between rounds and the
/// core meter only moves within them, so the sum is monotone along one
/// packet's rx→tx life (which never leaves its burst's poll call) —
/// the timestamp domain for per-packet latency.
fn pmd_now_ns(kernel: &Kernel, core: usize) -> u64 {
    kernel
        .sim
        .clock
        .now_ns()
        .saturating_add(core_ns(kernel, core))
}

/// One line of `ofproto/trace` flow description, straight off the
/// sparse key — tracing does not expand a full `FlowKey` either.
fn describe_key(key: &Miniflow) -> String {
    let s = key.nw_src_v4();
    let d = key.nw_dst_v4();
    let mut out = format!(
        "in_port={},eth_type=0x{:04x}",
        key.in_port(),
        key.eth_type_raw()
    );
    if s != [0, 0, 0, 0] || d != [0, 0, 0, 0] {
        out.push_str(&format!(
            ",nw_src={}.{}.{}.{},nw_dst={}.{}.{}.{},nw_proto={},tp_src={},tp_dst={}",
            s[0],
            s[1],
            s[2],
            s[3],
            d[0],
            d[1],
            d[2],
            d[3],
            key.nw_proto(),
            key.tp_src(),
            key.tp_dst()
        ));
    }
    if key.tun_id() != 0 {
        out.push_str(&format!(",tun_id={}", key.tun_id()));
    }
    if key.recirc_id() != 0 {
        out.push_str(&format!(",recirc_id=0x{:x}", key.recirc_id()));
    }
    if key.ct_state() != 0 {
        out.push_str(&format!(",ct_state=0x{:02x}", key.ct_state()));
    }
    out
}

/// The `used:` column of a `dpctl/dump-flows` line: `never` for a flow
/// that has not forwarded a packet, otherwise the age of the last use in
/// seconds — OVS's format.
fn format_used(now_ns: u64, used_ns: u64, hits: u64) -> String {
    if hits == 0 {
        "never".to_string()
    } else {
        format!("{:.3}s", now_ns.saturating_sub(used_ns) as f64 / 1e9)
    }
}

/// Aggregate shape statistics over the sparse keys the fast path
/// extracts, surfaced by `dpif-netdev/miniflow-stats`: how many of the
/// [`WORDS`] slots a typical key populates (what the packed
/// representation saves), and how often the slow path had to expand a
/// full `FlowKey` (zero in a pure-hit run).
#[derive(Debug, Default, Clone)]
pub struct MiniflowStats {
    /// Sparse keys extracted by `dfc_processing`.
    pub extracts: u64,
    /// Sum of populated-slot counts across all extracts.
    pub slots_sum: u64,
    /// Histogram of populated-slot counts (index = popcount, 0..=WORDS).
    pub hist: [u64; WORDS + 1],
    /// Full-key expansions on the upcall path (`miniflow_expand`).
    pub expands: u64,
}

impl MiniflowStats {
    fn record(&mut self, mf: &Miniflow) {
        let n = mf.n_slots();
        self.extracts += 1;
        self.slots_sum += n as u64;
        self.hist[n] += 1;
    }
}

/// A datapath port number.
pub type PortNo = u32;

/// Sentinel "port" under which NF instances are scheduled on the PMD
/// scheduler: `RxqId::new(NF_WORK_PORT, nf_id)` makes each NF an
/// assignable, cycle-measured unit exactly like an rx queue, so
/// pmd-auto-lb rebalances hot NFs across cores with no scheduler
/// changes. `pmd_poll` dispatches it to [`DpifNetdev::nf_poll`].
pub const NF_WORK_PORT: PortNo = PortNo::MAX;

/// Maximum recirculations per packet.
const MAX_RECIRC: usize = 8;

/// A packet mid-pipeline: the frame plus how many recirculation passes
/// it has already made.
struct BurstPkt {
    pkt: DpPacket,
    pass: usize,
}

/// One per-megaflow packet batch accumulated by `dfc_processing` /
/// `fast_path_processing` and executed in one go — OVS's
/// `packet_batch_per_flow`. Packets of the same megaflow pay the batch
/// fixed cost once instead of once per packet.
struct FlowBatch {
    /// The megaflow the packets hit, when they hit one (upcalls at the
    /// flow limit execute one-off actions with no backing flow).
    entry: Option<Rc<MegaflowEntry<Vec<DpAction>>>>,
    actions: Rc<Vec<DpAction>>,
    pkts: Vec<BurstPkt>,
}

/// Per-egress-port accumulated output. Packets queue here during action
/// execution and leave as one real burst per port at the end of the
/// rx burst — the batched-tx half of the fast path (replacing the old
/// one-packet `tx_burst` calls).
#[derive(Default)]
struct TxAccum {
    ports: Vec<(PortNo, Vec<DpPacket>)>,
}

impl TxAccum {
    fn push(&mut self, port: PortNo, pkt: DpPacket) {
        match self.ports.iter_mut().find(|(p, _)| *p == port) {
            Some((_, v)) => v.push(pkt),
            None => self.ports.push((port, vec![pkt])),
        }
    }
}

/// Datapath actions — the output language of translation and the payload
/// of megaflow entries.
#[derive(Debug, Clone, PartialEq)]
pub enum DpAction {
    Output(PortNo),
    SetTunnel {
        id: u64,
        dst: [u8; 4],
    },
    SetEthSrc(MacAddr),
    SetEthDst(MacAddr),
    PushVlan(u16),
    PopVlan,
    Ct {
        zone: u16,
        commit: bool,
        nat: Option<ovs_kernel::conntrack::NatSpec>,
    },
    Recirc(u32),
    Meter(u32),
    /// Hand the packet to the NF service chain `chain_id` (ovs-nfv).
    /// Terminal: the chain's verdicts decide where the packet goes next.
    NfChain(u32),
}

/// The I/O backend behind a datapath port.
pub enum PortType {
    /// AF_XDP sockets on a kernel-managed NIC (the paper's design).
    Afxdp(AfxdpPort),
    /// A DPDK-owned NIC (the comparator).
    Dpdk(EthDev),
    /// A tap device (VM via vhost-net, or the control path).
    Tap { ifindex: u32 },
    /// vhostuser shared-memory rings to a guest.
    VhostUser(VhostUserDev),
    /// DPDK's af_packet vdev on a container veth.
    AfPacket(AfPacketDev),
    /// A userspace tunnel endpoint (Geneve/VXLAN).
    Tunnel(TunnelConfig),
    /// The bridge-internal port (host stack via a tap).
    Internal { tap_ifindex: u32 },
}

impl std::fmt::Debug for PortType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortType::Afxdp(p) => write!(f, "afxdp(if{})", p.ifindex),
            PortType::Dpdk(d) => write!(f, "dpdk(if{})", d.ifindex),
            PortType::Tap { ifindex } => write!(f, "tap(if{ifindex})"),
            PortType::VhostUser(v) => write!(f, "vhostuser(guest{})", v.guest),
            PortType::AfPacket(a) => write!(f, "af_packet(if{})", a.ifindex),
            PortType::Tunnel(t) => write!(f, "tunnel({:?})", t.kind),
            PortType::Internal { tap_ifindex } => write!(f, "internal(if{tap_ifindex})"),
        }
    }
}

/// A datapath port.
#[derive(Debug)]
pub struct Port {
    pub name: String,
    pub ty: PortType,
}

impl Port {
    /// The kernel ifindex underlying this port, if it has one.
    pub fn ifindex(&self) -> Option<u32> {
        match &self.ty {
            PortType::Afxdp(p) => Some(p.ifindex),
            PortType::Dpdk(d) => Some(d.ifindex),
            PortType::Tap { ifindex } => Some(*ifindex),
            PortType::AfPacket(a) => Some(a.ifindex),
            PortType::Internal { tap_ifindex } => Some(*tap_ifindex),
            PortType::VhostUser(_) | PortType::Tunnel(_) => None,
        }
    }
}

/// Datapath counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpifStats {
    pub rx_packets: u64,
    pub tx_packets: u64,
    /// Packets entering the pipeline (`process_packet` calls). Unlike
    /// `rx_packets` this also counts directly injected packets.
    pub packets_processed: u64,
    pub emc_hits: u64,
    /// Signature match cache hits (the tier between the EMC and dpcls).
    pub smc_hits: u64,
    pub megaflow_hits: u64,
    pub upcalls: u64,
    pub recirculations: u64,
    pub dropped: u64,
    pub tunnel_encaps: u64,
    pub tunnel_decaps: u64,
    pub tso_segments: u64,
    pub meter_drops: u64,
    /// Megaflows installed into the datapath over its lifetime.
    pub flows_installed: u64,
    /// Megaflows removed (expired, changed, evicted, or flushed).
    pub flows_deleted: u64,
    /// Upcalls that skipped installation because the datapath was at the
    /// dynamic flow limit (the packet is still forwarded).
    pub flow_limit_hits: u64,
    /// TX packets dropped because a vhostuser guest was disconnected.
    pub vhost_tx_drops: u64,
    /// TX packets dropped because an AF_XDP tx ring (or frame pool) was
    /// full at flush time.
    pub tx_full_drops: u64,
    /// Packets dropped because a ct() commit was refused by a per-zone
    /// connection limit.
    pub ct_limit_drops: u64,
    /// Packets dropped because the connection table was full and the
    /// eviction policy found no victim.
    pub ct_full_drops: u64,
    /// Packets dropped because conntrack judged them invalid (committing
    /// RST, or mid-stream TCP under strict tracking).
    pub ct_invalid_drops: u64,
    /// Megaflow misses dropped because upcalls were gated by
    /// `flow-restore-wait`: the rule table was still being repopulated
    /// after a restart, so translation would be wrong. Named, never
    /// silent — the restart-window ledger counts these.
    pub upcalls_gated: u64,
    /// Megaflow misses dropped by the `secure` fail mode during a
    /// controller outage: existing megaflows keep forwarding, new flows
    /// get the named `fail_secure_drop` verdict.
    pub fail_secure_drop: u64,
    /// Restored megaflows re-adopted by the reconciliation sweep (rule
    /// refs re-resolved, stats pushback resumed exactly).
    pub restore_adopted: u64,
    /// Restored megaflows whose re-translation no longer matches the
    /// repopulated rule table — deleted as orphans.
    pub restore_orphaned: u64,
    /// Packets dropped because an NF's SPSC ring was full at enqueue
    /// time (explicit backpressure, never silent).
    pub nf_ring_full: u64,
    /// Packets dropped by an NF's verdict (firewall deny, DPI match).
    pub nf_verdict_drops: u64,
    /// Packets lost in-flight when an NF invocation panicked.
    pub nf_crash_drops: u64,
    /// Packets refused by a dead NF under a fail-closed chain policy
    /// (also counts packets steered at a nonexistent chain id).
    pub nf_fail_closed_drops: u64,
}

impl DpifStats {
    /// Lookup accounting invariant: every pipeline pass consults exactly
    /// one cache tier, and passes are packets plus the recirculations
    /// that re-entered the pipeline. Flow lifecycle accounting must also
    /// balance — a flow cannot be deleted more than once, so deletions
    /// (expiry, eviction, flushes) never outrun installs — and every
    /// received packet enters the pipeline, so `rx_packets` never
    /// outruns `packets_processed` (direct injection only adds to the
    /// latter). The same identity must hold for per-PMD counter deltas,
    /// which is what [`crate::pmd::PmdSet::coherent_with`] checks over
    /// the scheduler's per-thread sums.
    pub fn coherent(&self) -> bool {
        // Gated and fail-secure misses consumed a pipeline pass without
        // reaching a cache tier or the upcall path — they sit on the
        // lookup side of the identity as named outcomes of a pass.
        self.emc_hits
            + self.smc_hits
            + self.megaflow_hits
            + self.upcalls
            + self.upcalls_gated
            + self.fail_secure_drop
            == self.packets_processed + self.recirculations
            && self.flows_deleted <= self.flows_installed
            && self.rx_packets <= self.packets_processed
            && self.restore_adopted + self.restore_orphaned <= self.flows_installed
    }
}

macro_rules! dpif_stats_fields {
    ($m:ident) => {
        $m!(
            rx_packets,
            tx_packets,
            packets_processed,
            emc_hits,
            smc_hits,
            megaflow_hits,
            upcalls,
            recirculations,
            dropped,
            tunnel_encaps,
            tunnel_decaps,
            tso_segments,
            meter_drops,
            flows_installed,
            flows_deleted,
            flow_limit_hits,
            vhost_tx_drops,
            tx_full_drops,
            ct_limit_drops,
            ct_full_drops,
            ct_invalid_drops,
            upcalls_gated,
            fail_secure_drop,
            restore_adopted,
            restore_orphaned,
            nf_ring_full,
            nf_verdict_drops,
            nf_crash_drops,
            nf_fail_closed_drops
        )
    };
}

impl DpifStats {
    /// Field-wise `self - before` (counters are monotonic, so this is
    /// the work done between two snapshots — the PMD scheduler uses it
    /// to attribute counter deltas to the polling thread).
    pub fn delta(&self, before: &DpifStats) -> DpifStats {
        macro_rules! sub {
            ($($f:ident),*) => {
                DpifStats { $($f: self.$f.saturating_sub(before.$f)),* }
            };
        }
        dpif_stats_fields!(sub)
    }

    /// Field-wise `self += other`.
    pub fn accumulate(&mut self, other: &DpifStats) {
        macro_rules! add {
            ($($f:ident),*) => {{
                $(self.$f += other.$f;)*
            }};
        }
        dpif_stats_fields!(add);
    }
}

/// The userspace datapath (`dpif-netdev`).
pub struct DpifNetdev {
    ports: Vec<Option<Port>>,
    emc: Emc<Vec<DpAction>>,
    smc: Smc<Vec<DpAction>>,
    /// Whether the signature match cache tier is consulted
    /// (`other_config:smc-enable` — off by default, as in OVS).
    pub smc_enable: bool,
    megaflow: MegaflowCache<Vec<DpAction>>,
    /// The OpenFlow pipeline above the caches.
    pub ofproto: Ofproto,
    /// Userspace conntrack — one of the kernel services OVS had to
    /// reimplement in userspace (§6 "Some features must be reimplemented").
    pub ct: CtTable,
    /// Meters (rate limiting).
    pub meters: MeterSet,
    /// Netlink replica of kernel route/ARP tables for tunnelling (§4).
    pub rtnl: RtnlCache,
    /// ERSPAN mirroring sessions.
    pub mirrors: Vec<MirrorSession>,
    /// Counters.
    pub stats: DpifStats,
    /// Sparse-key shape statistics (`dpif-netdev/miniflow-stats`).
    pub miniflow_stats: MiniflowStats,
    /// Per-PMD (per-core) stage cycle attribution.
    pub perf: BTreeMap<usize, PmdPerf>,
    /// Per-packet rx→tx latency accounting (per port / per PMD
    /// histograms plus the per-stage latency decomposition).
    pub latency: LatencyTracker,
    /// Active `ofproto/trace` context, attached to the packet currently
    /// in flight. `None` on the fast path — tracing costs nothing then.
    pub trace: Option<TraceCtx>,
    /// udpif revalidator state: ukeys (one per installed megaflow, with
    /// the rule refs stats push back to), the dynamic flow limit, and
    /// sweep accounting.
    pub revalidator: Revalidator<Vec<DpAction>>,
    /// `flow-restore-wait` state: while `restore.wait` is set, megaflow
    /// misses are gated instead of upcalled and restored flows keep
    /// forwarding until the rule table is repopulated.
    pub restore: RestoreState,
    /// `secure` fail mode: during a controller outage, megaflow misses
    /// drop with the named `fail_secure_drop` verdict instead of being
    /// translated against a table the controller no longer owns.
    pub fail_secure: bool,
    /// The NF manager (ovs-nfv): per-tenant service chains reached via
    /// `DpAction::NfChain`. Empty by default — costs nothing until a
    /// chain is added.
    pub nfv: ovs_nfv::NfManager,
}

impl Default for DpifNetdev {
    fn default() -> Self {
        Self::new()
    }
}

impl DpifNetdev {
    /// An empty datapath.
    pub fn new() -> Self {
        Self {
            ports: Vec::new(),
            emc: Emc::new(),
            smc: Smc::new(),
            smc_enable: false,
            megaflow: MegaflowCache::new(),
            ofproto: Ofproto::new(),
            ct: CtTable::new(),
            meters: MeterSet::new(),
            rtnl: RtnlCache::new(),
            mirrors: Vec::new(),
            stats: DpifStats::default(),
            miniflow_stats: MiniflowStats::default(),
            perf: BTreeMap::new(),
            latency: LatencyTracker::new(),
            trace: None,
            revalidator: Revalidator::new(),
            restore: RestoreState::default(),
            fail_secure: false,
            nfv: ovs_nfv::NfManager::new(),
        }
    }

    /// Add a port, returning its port number.
    pub fn add_port(&mut self, name: &str, ty: PortType) -> PortNo {
        self.ports.push(Some(Port {
            name: name.to_string(),
            ty,
        }));
        (self.ports.len() - 1) as PortNo
    }

    /// Remove a port (detaching its XDP program if AF_XDP).
    pub fn del_port(&mut self, kernel: &mut Kernel, port: PortNo) {
        if let Some(Some(p)) = self.ports.get_mut(port as usize) {
            if let PortType::Afxdp(a) = &mut p.ty {
                a.close(kernel);
            }
        }
        if let Some(slot) = self.ports.get_mut(port as usize) {
            *slot = None;
        }
    }

    /// Borrow a port.
    pub fn port(&self, port: PortNo) -> Option<&Port> {
        self.ports.get(port as usize).and_then(|p| p.as_ref())
    }

    /// Mutably borrow a port.
    pub fn port_mut(&mut self, port: PortNo) -> Option<&mut Port> {
        self.ports.get_mut(port as usize).and_then(|p| p.as_mut())
    }

    /// Number of live ports.
    pub fn port_count(&self) -> usize {
        self.ports.iter().filter(|p| p.is_some()).count()
    }

    /// Port numbers of all live ports (teardown and supervision walk
    /// these; the slot indices stay stable across deletions).
    pub fn port_nos(&self) -> Vec<PortNo> {
        self.ports
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| i as PortNo))
            .collect()
    }

    /// Add an AF_XDP port, walking the full degradation ladder: the port
    /// itself tries zero-copy then copy mode; if even generic attach is
    /// rejected, the final rung is a tap port on the same device — slow,
    /// but forwarding (§3.5's "always have a fallback").
    pub fn add_port_afxdp(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        ifindex: u32,
        nframes_per_queue: usize,
        opt: ovs_afxdp::OptLevel,
    ) -> PortNo {
        match AfxdpPort::open(kernel, ifindex, nframes_per_queue, opt) {
            Ok(a) => self.add_port(name, PortType::Afxdp(a)),
            Err(_) => {
                coverage!("xsk_degraded_mode");
                coverage!("xsk_port_tap_fallback");
                self.add_port(name, PortType::Tap { ifindex })
            }
        }
    }

    /// `ovs-appctl dpif-netdev/port-status`: per-port backend, AF_XDP
    /// ladder rung, carrier/flap state, and vhost connection state.
    pub fn port_status(&self, kernel: &Kernel) -> String {
        let mut out = String::from("port status:\n");
        for (i, slot) in self.ports.iter().enumerate() {
            let Some(p) = slot else { continue };
            match &p.ty {
                PortType::Afxdp(a) => {
                    let d = kernel.device(a.ifindex);
                    out.push_str(&format!(
                        "  port {i}: {} (afxdp if{}) mode {}{}, carrier {}, {} flaps\n",
                        p.name,
                        a.ifindex,
                        a.mode.label(),
                        if a.degraded { " [degraded]" } else { "" },
                        if d.up { "up" } else { "down" },
                        d.stats.carrier_transitions,
                    ));
                }
                PortType::VhostUser(v) => {
                    let g = &kernel.guests[v.guest];
                    out.push_str(&format!(
                        "  port {i}: {} (vhostuser guest {}) {}, ring generation {}, tx drops {}\n",
                        p.name,
                        v.guest,
                        if g.connected {
                            "connected"
                        } else {
                            "disconnected"
                        },
                        g.ring_generation,
                        v.tx_drops,
                    ));
                }
                other => {
                    out.push_str(&format!("  port {i}: {} ({:?})\n", p.name, other));
                }
            }
        }
        out
    }

    /// Megaflows installed.
    pub fn megaflow_count(&self) -> usize {
        self.megaflow.len()
    }

    /// dpcls subtables probed since start (classifier work metric).
    pub fn subtables_probed(&self) -> u64 {
        self.megaflow.subtables_probed()
    }

    /// Wide-lane bulk dpcls steps issued since start — each step is one
    /// lane-wide signature compare against one subtable.
    pub fn lane_steps(&self) -> u64 {
        self.megaflow.lane_steps()
    }

    /// Keys carried by those lane steps (occupancy numerator).
    pub fn lane_keys(&self) -> u64 {
        self.megaflow.lane_keys()
    }

    /// Configured bulk-probe lane width.
    pub fn lane_width(&self) -> usize {
        self.megaflow.lane_width()
    }

    /// Flush both cache levels. Residual per-flow stats are pushed up to
    /// the OpenFlow rules first so no `n_packets` are lost, then every
    /// ukey is dropped with its flow.
    pub fn flush_caches(&mut self) {
        for e in self.megaflow.iter() {
            self.revalidator
                .push_stats(&e.key, e.hits.get(), e.bytes.get());
        }
        self.stats.flows_deleted += self.megaflow.len() as u64;
        self.revalidator.clear_ukeys();
        self.emc.flush();
        self.smc.flush();
        self.megaflow.flush();
    }

    /// Exchange the datapath's active EMC/SMC pair with a PMD thread's
    /// private pair — the scheduler wraps every poll in a swap-in /
    /// swap-out so cache locality is genuinely per PMD while the dpcls
    /// and megaflow table stay shared. The configured EMC insertion
    /// probability is authoritative on the datapath and is carried onto
    /// whichever cache is swapped in.
    pub fn swap_caches(&mut self, emc: &mut Emc<Vec<DpAction>>, smc: &mut Smc<Vec<DpAction>>) {
        let knob = self.emc.insert_inv_prob;
        std::mem::swap(&mut self.emc, emc);
        self.emc.insert_inv_prob = knob;
        std::mem::swap(&mut self.smc, smc);
    }

    /// Set the probabilistic EMC insertion knob
    /// (`other_config:emc-insert-inv-prob`): insert roughly 1 in `p`
    /// misses; 0 disables EMC insertion entirely.
    pub fn set_emc_insert_inv_prob(&mut self, p: u64) {
        self.emc.insert_inv_prob = p;
    }

    /// Current EMC insertion inverse probability.
    pub fn emc_insert_inv_prob(&self) -> u64 {
        self.emc.insert_inv_prob
    }

    /// Entries currently live in the signature match cache.
    pub fn smc_count(&self) -> usize {
        self.smc.len()
    }

    /// `dpif-netdev/subtable-ranking` render: the dpcls subtable probe
    /// order (hit-count sorted within each priority band), with per-
    /// subtable hit counts — shows why `subtables_probed` stays low on
    /// skewed traffic.
    pub fn subtable_ranking_show(&self) -> String {
        use std::fmt::Write as _;
        let info = self.megaflow.subtable_info();
        let mut out = format!(
            "megaflow classifier: {} subtables, {} probed since start\n",
            info.len(),
            self.megaflow.subtables_probed()
        );
        for (rank, s) in info.iter().enumerate() {
            let _ = writeln!(
                out,
                "  rank {rank}: mask_bits={} max_priority={} hits={} rules={}",
                s.mask.bit_count(),
                s.max_priority,
                s.hits,
                s.rules
            );
        }
        out
    }

    /// `dpif-netdev/miniflow-stats` — the shape of the sparse keys the
    /// fast path ran on: average populated slots (of [`WORDS`]), the
    /// populated-slot histogram, slow-path full-key expansions, and the
    /// wide-lane bulk dpcls occupancy.
    pub fn miniflow_stats_show(&self) -> String {
        use std::fmt::Write as _;
        let ms = &self.miniflow_stats;
        let avg = if ms.extracts > 0 {
            ms.slots_sum as f64 / ms.extracts as f64
        } else {
            0.0
        };
        let mut out = String::from("miniflow stats:\n");
        let _ = writeln!(out, "  extracts: {}", ms.extracts);
        let _ = writeln!(out, "  avg populated slots: {:.2} / {}", avg, WORDS);
        let _ = writeln!(out, "  full-key expansions (upcall path): {}", ms.expands);
        let _ = writeln!(out, "  populated-slot histogram:");
        for (n, &count) in ms.hist.iter().enumerate() {
            if count > 0 {
                let _ = writeln!(out, "    {n:>2} slots: {count}");
            }
        }
        let steps = self.megaflow.lane_steps();
        let keys = self.megaflow.lane_keys();
        let width = self.megaflow.lane_width();
        let _ = writeln!(out, "bulk dpcls:");
        let _ = writeln!(out, "  lane width: {width}");
        let _ = writeln!(out, "  lane steps: {steps}");
        let _ = writeln!(out, "  lane keys: {keys}");
        if steps > 0 {
            let occ = 100.0 * keys as f64 / (steps as f64 * width as f64);
            let _ = writeln!(out, "  lane occupancy: {occ:.1}%");
        }
        out
    }

    /// Sync the Netlink replica from the kernel's event stream.
    pub fn sync_rtnl(&mut self, kernel: &Kernel) {
        self.rtnl.sync(&kernel.events);
    }

    /// Install a batch of flows from `ovs-ofctl` text (one per line) and
    /// selectively revalidate the caches. Returns the number of rules
    /// installed.
    pub fn add_flows(&mut self, text: &str) -> Result<usize, crate::ofctl::ParseError> {
        let rules = crate::ofctl::parse_flows(text)?;
        let n = rules.len();
        for r in rules {
            self.ofproto.add_rule(r);
        }
        self.revalidate_changed();
        Ok(n)
    }

    /// Install or modify an OpenFlow rule at runtime and **selectively
    /// revalidate**: every cached megaflow is re-translated against the
    /// updated tables and only the flows whose translation actually
    /// changed are deleted — OVS revalidator semantics, replacing the
    /// old flush-the-world behaviour. Unaffected flows keep their cache
    /// entries (and their hit streaks).
    pub fn flow_mod(&mut self, rule: crate::ofproto::OfRule) {
        self.ofproto.add_rule(rule);
        self.revalidate_changed();
    }

    /// Re-translate every installed megaflow against the current tables
    /// and delete the ones whose datapath actions or wildcard mask
    /// changed. Returns the number deleted. Re-translating the *masked*
    /// key is sound because a megaflow's mask covers every field its
    /// translation consulted, so the masked key takes the same pipeline
    /// path as any packet the megaflow matches. Pure control-plane
    /// bookkeeping — the periodic, cost-charged pass is
    /// [`revalidate`](Self::revalidate).
    pub fn revalidate_changed(&mut self) -> usize {
        let keys: Vec<FlowKey> = self.megaflow.iter().map(|e| e.key).collect();
        let mut deleted = 0;
        for k in keys {
            coverage!("revalidate_flow");
            self.revalidator.stats.flows_dumped += 1;
            let t = self.ofproto.translate(&k);
            let stale = match self.megaflow.get(&k) {
                Some(e) => t.actions != e.actions || t.mask != e.mask,
                None => continue,
            };
            if stale {
                coverage!("revalidate_changed");
                self.revalidator.note_delete(DeleteReason::Changed);
                self.delete_megaflow(&k);
                deleted += 1;
            } else {
                // The flow survives, but the rules backing it may have
                // changed; push pending stats to the old rules, then
                // swap in the fresh xlate cache.
                if let Some(e) = self.megaflow.get(&k) {
                    self.revalidator.push_stats(&k, e.hits.get(), e.bytes.get());
                }
                self.revalidator.refresh_rules(&k, t.rules);
            }
        }
        self.emc.purge_dead();
        self.smc.purge_dead();
        deleted
    }

    /// Capture the full datapath state — every installed megaflow (with
    /// counters and ukey pushback marks) and every tracked connection —
    /// into a versioned, byte-deterministic [`DpSnapshot`]. Outstanding
    /// flow stats are pushed to the current rules first, so after a
    /// restore the re-adopted flows credit the *new* rules exactly the
    /// packets forwarded since this instant.
    pub fn snapshot(&mut self, now_ns: u64) -> DpSnapshot {
        let mut flows: Vec<FlowRecord> = self
            .megaflow
            .iter()
            .map(|e| FlowRecord {
                key: e.key,
                mask: e.mask,
                actions: e.actions.clone(),
                hits: e.hits.get(),
                bytes: e.bytes.get(),
                used_ns: e.used_ns.get(),
                created_ns: e.created_ns.get(),
                pushed_packets: 0,
                pushed_bytes: 0,
            })
            .collect();
        // Classifier iteration order is not deterministic; the snapshot
        // must be (byte-identical runs, resumable goldens).
        flows.sort_by_key(|f| f.key.hash());
        for f in &mut flows {
            self.revalidator.push_stats(&f.key, f.hits, f.bytes);
            // After the flush pushed == hits, except for flows that were
            // themselves restored-and-unreconciled (a restart during a
            // restore window): their marks carry over untouched.
            let (pp, pb) = self
                .revalidator
                .ukey(&f.key)
                .map(|u| (u.pushed_packets, u.pushed_bytes))
                .unwrap_or((f.hits, f.bytes));
            f.pushed_packets = pp;
            f.pushed_bytes = pb;
        }
        coverage!("dp_snapshot");
        DpSnapshot {
            version: SNAPSHOT_VERSION,
            taken_at_ns: now_ns,
            flows,
            conns: self.ct.snapshot_conns(),
        }
    }

    /// Rebuild datapath state from a snapshot and raise the
    /// `flow-restore-wait` gate for `gate_ns`: restored megaflows (and
    /// conntrack entries) forward immediately, while megaflow misses are
    /// gated until the rule table is repopulated and the gate lifts
    /// (deadline, or [`flow_restore_complete`](Self::flow_restore_complete)).
    /// Restored ukeys carry no rule refs; the bounded reconciliation
    /// sweep in [`revalidate`](Self::revalidate) adopts or orphans them.
    pub fn restore_from(&mut self, snap: &DpSnapshot, now_ns: u64, gate_ns: u64) {
        assert_eq!(
            snap.version, SNAPSHOT_VERSION,
            "refusing snapshot from a different layout generation"
        );
        let mut st = RestoreState::begin(now_ns, gate_ns);
        for f in &snap.flows {
            let entry = self
                .megaflow
                .install_at(f.key, f.mask, f.actions.clone(), now_ns);
            // install_at zeroes the counters; the restored flow resumes
            // its old life, including its hard-timeout base.
            entry.hits.set(f.hits);
            entry.bytes.set(f.bytes);
            entry.used_ns.set(f.used_ns);
            entry.created_ns.set(f.created_ns);
            self.stats.flows_installed += 1;
            self.revalidator.register(Ukey::restored(
                f.key,
                f.mask,
                f.actions.clone(),
                f.created_ns,
                f.pushed_packets,
                f.pushed_bytes,
            ));
            coverage!("flow_restored");
        }
        st.restored_flows = snap.flows.len() as u64;
        st.restored_conns = self.ct.restore_conns(&snap.conns) as u64;
        st.hits_at_restore = self.stats.emc_hits + self.stats.smc_hits + self.stats.megaflow_hits;
        self.restore = st;
        coverage!("dp_restore");
    }

    /// Lift the `flow-restore-wait` gate: upcalls resume and the
    /// gate-window forwarding count is finalized. Idempotent.
    pub fn flow_restore_complete(&mut self, now_ns: u64) {
        if !self.restore.wait {
            return;
        }
        self.restore.wait = false;
        self.restore.completed_at_ns = Some(now_ns);
        self.restore.gated_forwarded = self.gate_window_hits();
        coverage!("flow_restore_complete");
    }

    /// Cache-tier hits since the restore — during the gate window every
    /// hit is a packet forwarded from a restored megaflow (no new flow
    /// can install while upcalls are gated).
    fn gate_window_hits(&self) -> u64 {
        (self.stats.emc_hits + self.stats.smc_hits + self.stats.megaflow_hits)
            .saturating_sub(self.restore.hits_at_restore)
    }

    /// Auto-lift the gate once its deadline passes — a wedged or crashed
    /// restorer must not gate the slow path forever.
    fn maybe_complete_restore(&mut self, now_ns: u64) {
        if self.restore.wait && now_ns >= self.restore.gate_until_ns {
            self.flow_restore_complete(now_ns);
        }
    }

    /// `ovs-appctl flow-restore/show`: gate state, restored counts, the
    /// gate-window forwarding proof, and reconciliation progress.
    pub fn flow_restore_show(&self) -> String {
        let secs = |ns: u64| format!("{:.3}s", ns as f64 / 1e9);
        let r = &self.restore;
        if !r.active_or_done() {
            return "flow-restore: idle (no snapshot restored)\n".to_string();
        }
        let state = if r.wait {
            format!("waiting (gate lifts at {})", secs(r.gate_until_ns))
        } else {
            match r.completed_at_ns {
                Some(t) => format!("complete (gate lifted at {})", secs(t)),
                None => "complete".to_string(),
            }
        };
        let forwarded = if r.wait {
            self.gate_window_hits()
        } else {
            r.gated_forwarded
        };
        format!(
            "flow-restore: {state}\n\
             \x20 restored      : {} flows, {} conns (at {})\n\
             \x20 gated upcalls : {}\n\
             \x20 forwarded     : {forwarded} packets from restored flows during gate\n\
             \x20 reconciled    : {} adopted, {} orphaned, {} pending\n",
            r.restored_flows,
            r.restored_conns,
            secs(r.restored_at_ns),
            self.stats.upcalls_gated,
            self.stats.restore_adopted,
            self.stats.restore_orphaned,
            self.revalidator.restored_count(),
        )
    }

    /// Delete one megaflow (by masked key), pushing its outstanding
    /// stats up to the OpenFlow rules first. Returns whether it existed.
    fn delete_megaflow(&mut self, masked: &FlowKey) -> bool {
        if let Some(e) = self.megaflow.get(masked) {
            self.revalidator
                .push_stats(masked, e.hits.get(), e.bytes.get());
        }
        self.revalidator.forget(masked);
        if self.megaflow.remove(masked) {
            self.stats.flows_deleted += 1;
            true
        } else {
            false
        }
    }

    /// One full revalidator round over the userspace datapath: dump
    /// every megaflow, push its stats up to the OpenFlow rules, delete
    /// flows that are idle past the (effective) idle timeout, older than
    /// the hard timeout, or whose re-translation changed, then evict
    /// LRU-first down to the dynamic flow limit. The simulated dump
    /// duration feeds [`Revalidator::note_dump`], which adjusts the
    /// limit for the next round — OVS's `udpif_revalidator` loop.
    pub fn revalidate(&mut self, kernel: &mut Kernel, core: usize) -> SweepSummary {
        let t0 = core_ns(kernel, core);
        let mut timer = StageTimer::new(t0);
        let now = kernel.sim.clock.now_ns();
        self.maybe_complete_restore(now);
        let mut reconciled = 0usize;
        let n_flows = self.megaflow.len();
        let max_idle = self.revalidator.effective_max_idle_ns(n_flows);
        let hard = self.revalidator.hard_timeout_ns();
        let kill_all = n_flows > 2 * self.revalidator.flow_limit;
        let mut summary = SweepSummary::default();

        let keys: Vec<FlowKey> = self.megaflow.iter().map(|e| e.key).collect();
        for k in keys {
            coverage!("revalidate_flow");
            self.revalidator.stats.flows_dumped += 1;
            summary.dumped += 1;
            let c = kernel.sim.costs.revalidate_flow_ns;
            kernel.sim.charge(core, Context::User, c);
            let (hits, bytes, used, created) = match self.megaflow.get(&k) {
                Some(e) => (
                    e.hits.get(),
                    e.bytes.get(),
                    e.used_ns.get(),
                    e.created_ns.get(),
                ),
                None => continue,
            };
            // Orphan reconciliation: a restored flow has no live rule
            // refs yet, so it is exempt from lifecycle decisions until
            // reconciled — and reconciliation itself waits for the gate
            // and is budgeted per sweep so reconvergence never starves
            // the fast path. Re-translating the masked key against the
            // repopulated table either re-adopts the flow (rules
            // re-resolved, stats pushback resumes exactly where the
            // snapshot left off) or deletes it as an orphan.
            if self.revalidator.is_restored(&k) {
                if self.restore.wait || reconciled >= self.restore.reconcile_budget {
                    continue;
                }
                reconciled += 1;
                let t = self.ofproto.translate(&k);
                let c = t.tables_visited as f64 * kernel.sim.costs.upcall_per_table_ns;
                kernel.sim.charge(core, Context::User, c);
                let matches = self
                    .megaflow
                    .get(&k)
                    .map(|e| t.actions == e.actions && t.mask == e.mask)
                    .unwrap_or(false);
                if matches {
                    self.revalidator.adopt(&k, t.rules);
                    self.revalidator.push_stats(&k, hits, bytes);
                    self.stats.restore_adopted += 1;
                    coverage!("restore_adopted");
                    summary.adopted += 1;
                } else {
                    self.stats.restore_orphaned += 1;
                    coverage!("restore_orphaned");
                    summary.orphaned += 1;
                    self.delete_megaflow(&k);
                }
                continue;
            }
            // Push stats before any delete decision so counters survive
            // the flow.
            self.revalidator.push_stats(&k, hits, bytes);
            let reason = if kill_all {
                Some(DeleteReason::Evicted)
            } else if now.saturating_sub(used) > max_idle {
                Some(DeleteReason::Idle)
            } else if hard > 0 && now.saturating_sub(created) > hard {
                Some(DeleteReason::Hard)
            } else {
                let t = self.ofproto.translate(&k);
                let stale = self
                    .megaflow
                    .get(&k)
                    .map(|e| t.actions != e.actions || t.mask != e.mask)
                    .unwrap_or(false);
                if stale {
                    Some(DeleteReason::Changed)
                } else {
                    self.revalidator.refresh_rules(&k, t.rules);
                    None
                }
            };
            if let Some(reason) = reason {
                match reason {
                    DeleteReason::Idle => {
                        coverage!("revalidate_idle");
                        summary.deleted_idle += 1;
                    }
                    DeleteReason::Hard => {
                        coverage!("revalidate_hard");
                        summary.deleted_hard += 1;
                    }
                    DeleteReason::Changed => {
                        coverage!("revalidate_changed");
                        summary.deleted_changed += 1;
                    }
                    DeleteReason::Evicted => {
                        coverage!("flow_evicted");
                        summary.evicted += 1;
                    }
                }
                self.revalidator.note_delete(reason);
                self.delete_megaflow(&k);
            }
        }

        // Still over the limit: evict least-recently-used flows. Sorted
        // by (used, key hash) so eviction order never depends on
        // HashMap iteration order.
        if self.megaflow.len() > self.revalidator.flow_limit {
            let mut lru: Vec<(u64, u64, FlowKey)> = self
                .megaflow
                .iter()
                .map(|e| (e.used_ns.get(), e.key.hash(), e.key))
                // While the gate is up the restored flows are the only
                // forwarding state there is — never evict them.
                .filter(|(_, _, k)| !(self.restore.wait && self.revalidator.is_restored(k)))
                .collect();
            lru.sort_unstable_by_key(|(used, h, _)| (*used, *h));
            let excess = self.megaflow.len() - self.revalidator.flow_limit;
            for (_, _, k) in lru.into_iter().take(excess) {
                coverage!("flow_evicted");
                self.revalidator.note_delete(DeleteReason::Evicted);
                summary.evicted += 1;
                self.delete_megaflow(&k);
            }
        }
        self.emc.purge_dead();
        self.smc.purge_dead();

        // Conntrack expiry rides the revalidator cadence: each round
        // sweeps a rotating slice of shards (an eighth of the table),
        // so idle connections are reclaimed within 8 rounds without a
        // full-table scan ever happening at once.
        let ct_slice = (self.ct.n_shards() / 8).max(1);
        let ct_expired = self.ct.sweep_slice(now, ct_slice);
        if ct_expired > 0 {
            let c = kernel.sim.costs.userspace_ct_ns * ct_expired as f64;
            kernel.sim.charge(core, Context::User, c);
        }

        // The simulated dump duration drives the dynamic flow limit.
        let dump_ms = (core_ns(kernel, core) - t0) / 1_000_000;
        self.revalidator.note_dump(n_flows, dump_ms);
        summary.flow_limit = self.revalidator.flow_limit;
        summary.dump_duration_ms = self.revalidator.dump_duration_ms;

        timer.mark(Stage::Revalidate, core_ns(kernel, core));
        self.perf.entry(core).or_default().commit(&timer, 0);
        debug_assert!(
            self.stats.coherent(),
            "dpif stats drifted: {:?}",
            self.stats
        );
        debug_assert_eq!(
            self.megaflow.len() as u64,
            self.stats.flows_installed - self.stats.flows_deleted,
            "flow lifecycle accounting drifted"
        );
        summary
    }

    /// `ovs-appctl upcall/show` equivalent: flow counts against the
    /// dynamic flow limit, last dump duration, and sweep totals.
    pub fn upcall_show(&self) -> String {
        let mut out = self.revalidator.show(
            "netdev@ovs-netdev",
            self.megaflow.len(),
            self.stats.flow_limit_hits,
        );
        // The backpressure counter: misses shed because the upcall queue
        // was full (bounded memory, never unbounded buffering).
        out.push_str(&format!(
            "  queue full    : {}\n",
            ovs_obs::coverage::total("upcall_queue_full")
        ));
        out.push_str(&format!(
            "  restore       : {} pending, {} adopted, {} orphaned, {} gated\n",
            self.revalidator.restored_count(),
            self.stats.restore_adopted,
            self.stats.restore_orphaned,
            self.stats.upcalls_gated,
        ));
        out
    }

    /// `ovs-appctl dpif-netdev/pmd-stats-show` equivalent.
    pub fn pmd_stats(&self) -> String {
        let s = &self.stats;
        let lookups = s.emc_hits + s.smc_hits + s.megaflow_hits + s.upcalls;
        let pct = |n: u64| {
            if lookups == 0 {
                0.0
            } else {
                100.0 * n as f64 / lookups as f64
            }
        };
        let mut out = format!(
            "packets received: {}
packets transmitted: {}
             emc hits: {} ({:.1}%)
smc hits: {} ({:.1}%)
megaflow hits: {} ({:.1}%)
             upcalls (miss): {} ({:.1}%)
recirculations: {}
             tunnel encap/decap: {}/{}
tso segments: {}
             meter drops: {}
dropped: {}
             vhost tx disconnected: {}
xsk tx ring full: {}
             upcall queue full: {}
xsk degraded mode: {}
megaflows installed: {}
",
            s.rx_packets,
            s.tx_packets,
            s.emc_hits,
            pct(s.emc_hits),
            s.smc_hits,
            pct(s.smc_hits),
            s.megaflow_hits,
            pct(s.megaflow_hits),
            s.upcalls,
            pct(s.upcalls),
            s.recirculations,
            s.tunnel_encaps,
            s.tunnel_decaps,
            s.tso_segments,
            s.meter_drops,
            s.dropped,
            s.vhost_tx_drops,
            s.tx_full_drops,
            ovs_obs::coverage::total("upcall_queue_full"),
            ovs_obs::coverage::total("xsk_degraded_mode"),
            self.megaflow_count(),
        );
        out.push_str(&format!(
            "             rx-to-tx latency: {}\n",
            LatencySummary::of(&self.latency.all).render_line()
        ));
        out
    }

    /// `ovs-appctl dpif-netdev/pmd-perf-show` equivalent: per-PMD stage
    /// cycle attribution plus a merged all-PMD summary.
    pub fn pmd_perf_show(&self, cpu_hz: u64) -> String {
        self.pmd_perf_show_detail(cpu_hz, false)
    }

    /// `pmd-perf-show`, optionally extended (`-hist`) with the per-stage
    /// *latency* contribution — where delivered packets spent their
    /// rx→tx time, alongside where the PMD spent its cycles.
    pub fn pmd_perf_show_detail(&self, cpu_hz: u64, hist: bool) -> String {
        let mut out = String::new();
        let mut merged = PmdPerf::new();
        for (core, perf) in &self.perf {
            out.push_str(&perf.render(&format!("pmd thread core {core}"), cpu_hz));
            merged.merge(perf);
        }
        if self.perf.is_empty() {
            out.push_str("(no pmd activity)\n");
        } else {
            // Always render the merged block, even for a single PMD —
            // matches OVS, whose `pmd-perf-show` ends with the summary
            // unconditionally.
            out.push_str(&merged.render("all pmd threads", cpu_hz));
        }
        if hist {
            out.push_str(&self.render_stage_latency());
        }
        out
    }

    /// The per-stage latency decomposition block shared by
    /// `pmd-perf-show -hist` and `latency-show`: each stage's
    /// delivered-weighted contribution, the invariant totals, and the
    /// batch-amortization gap.
    fn render_stage_latency(&self) -> String {
        let mut out = String::from("per-stage latency (delivered-weighted):\n");
        let total = self.latency.stage_latency_total();
        for (stage, ns) in STAGES.iter().zip(self.latency.stage_latency_ns()) {
            if *ns == 0 {
                continue;
            }
            let pct = if total == 0 {
                0.0
            } else {
                100.0 * *ns as f64 / total as f64
            };
            out.push_str(&format!(
                "  {:<18} {:>14} ns ({:>5.1}%)\n",
                stage.label(),
                ns,
                pct
            ));
        }
        out.push_str(&format!(
            "  stage-weighted total: {} ns (== delivered-weighted poll {} ns)\n",
            total,
            self.latency.weighted_poll_ns()
        ));
        out.push_str(&format!(
            "  end-to-end total    : {} ns (amortization gap {:.1}%)\n",
            self.latency.end_to_end_ns(),
            100.0 * self.latency.amortization_gap()
        ));
        out
    }

    /// `ovs-appctl dpif-netdev/latency-show` equivalent: rx→tx latency
    /// percentile summaries — merged, per egress port, per PMD core —
    /// plus the per-stage decomposition.
    pub fn latency_show(&self) -> String {
        let mut out = String::from("rx-to-tx latency (ns):\n");
        out.push_str(&format!(
            "  all ports: {}\n",
            LatencySummary::of(&self.latency.all).render_line()
        ));
        for (no, h) in &self.latency.per_port {
            let name = self
                .port(*no)
                .map(|p| p.name.as_str())
                .unwrap_or("<removed>");
            out.push_str(&format!(
                "  port {no} ({name}): {}\n",
                LatencySummary::of(h).render_line()
            ));
        }
        for (core, h) in &self.latency.per_pmd {
            out.push_str(&format!(
                "  pmd core {core}: {}\n",
                LatencySummary::of(h).render_line()
            ));
        }
        out.push_str(&self.render_stage_latency());
        out
    }

    /// `ovs-appctl dpif-netdev/latency-hist` equivalent: the summary
    /// line plus the full log2 bucket dump, merged and per PMD.
    pub fn latency_hist(&self) -> String {
        let mut out = String::from("rx-to-tx latency histogram (ns):\n");
        out.push_str(&format!(
            "  all ports: {}\n",
            LatencySummary::of(&self.latency.all).render_line()
        ));
        out.push_str(&self.latency.all.render("  "));
        for (core, h) in &self.latency.per_pmd {
            out.push_str(&format!(
                "  pmd core {core}: {}\n",
                LatencySummary::of(h).render_line()
            ));
            out.push_str(&h.render("  "));
        }
        out
    }

    /// `ovs-appctl dpif-netdev/pmd-stats-clear` equivalent: zero the
    /// datapath counters, the per-PMD perf accumulation, and the
    /// latency histograms.
    pub fn pmd_stats_clear(&mut self) {
        self.stats = DpifStats::default();
        self.perf.clear();
        self.latency.clear();
    }

    /// `ovs-appctl ofproto/trace` equivalent: run `frame` through the
    /// full pipeline as if received on `in_port`, recording every
    /// decision, and render the trace. The packet is really forwarded
    /// (caches warm, counters move) — same as tracing with a live
    /// datapath in OVS.
    pub fn ofproto_trace(
        &mut self,
        kernel: &mut Kernel,
        frame: &[u8],
        in_port: PortNo,
        core: usize,
    ) -> String {
        let mut t = TraceCtx::new();
        t.note(format!(
            "Trace: {} byte frame on in_port={in_port}",
            frame.len()
        ));
        self.trace = Some(t);
        let mut pkt = DpPacket::from_data(frame);
        pkt.in_port = in_port;
        self.process_packet(kernel, pkt, core);
        let t = self.trace.take().expect("trace ctx survives the pipeline");
        t.render()
    }

    /// `ovs-appctl dpctl/dump-flows` equivalent: one line per installed
    /// megaflow with its significant fields, packet/byte counters, time
    /// since last use (`used:`), and actions, sorted so the output is
    /// deterministic. The userspace datapath makes this kind of
    /// introspection trivial — one of the paper's "easier
    /// troubleshooting" lessons (§6). `now_ns` is the current sim-time
    /// the `used:` ages are computed against.
    pub fn dump_flows(&self, now_ns: u64) -> String {
        use std::fmt::Write as _;
        let mut lines: Vec<String> = Vec::new();
        for e in self.megaflow.iter() {
            let k = e.key;
            let mut out = String::new();
            let _ = write!(
                out,
                "in_port({}),recirc({}),eth_type(0x{:04x})",
                k.in_port(),
                k.recirc_id(),
                k.eth_type_raw()
            );
            if k.nw_dst_v4() != [0, 0, 0, 0] || k.nw_src_v4() != [0, 0, 0, 0] {
                let s = k.nw_src_v4();
                let d = k.nw_dst_v4();
                let _ = write!(
                    out,
                    ",ipv4(src={}.{}.{}.{},dst={}.{}.{}.{})",
                    s[0], s[1], s[2], s[3], d[0], d[1], d[2], d[3]
                );
            }
            if k.ct_state() != 0 {
                let _ = write!(out, ",ct_state(0x{:02x})", k.ct_state());
            }
            if k.tun_id() != 0 {
                let _ = write!(out, ",tun_id({})", k.tun_id());
            }
            let _ = write!(
                out,
                " packets:{} bytes:{} used:{} mask_bits:{}",
                e.hits.get(),
                e.bytes.get(),
                format_used(now_ns, e.used_ns.get(), e.hits.get()),
                e.mask.bit_count()
            );
            let _ = write!(out, " actions:{:?}", e.actions);
            lines.push(out);
        }
        lines.sort_unstable();
        let mut out = String::new();
        for l in lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }

    /// One PMD iteration over one port queue: receive a burst and run
    /// it through the two-phase batched pipeline. Returns packets
    /// processed.
    pub fn pmd_poll(
        &mut self,
        kernel: &mut Kernel,
        port: PortNo,
        queue: usize,
        core: usize,
    ) -> usize {
        if port == NF_WORK_PORT {
            return self.nf_poll(kernel, queue as u32, core);
        }
        // Stamp rx at poll entry so the rx burst cost itself counts
        // toward every received packet's latency.
        self.maybe_complete_restore(kernel.sim.clock.now_ns());
        let rx_stamp = pmd_now_ns(kernel, core);
        let mut timer = StageTimer::new(core_ns(kernel, core));
        let mut pkts = self.port_rx(kernel, port, queue, core);
        timer.mark(Stage::Rx, core_ns(kernel, core));
        let n = pkts.len();
        for pkt in &mut pkts {
            pkt.in_port = port;
            pkt.rx_ts = Some(rx_stamp);
        }
        self.process_burst_timed(kernel, pkts, core, &mut timer);
        self.latency.commit_burst(&timer);
        self.perf.entry(core).or_default().commit(&timer, n as u64);
        debug_assert!(
            self.stats.coherent(),
            "dpif stats drifted: {:?}",
            self.stats
        );
        n
    }

    /// One PMD iteration over one NF instance (scheduled under
    /// [`NF_WORK_PORT`]): pop a batch off the NF's ring, run it under the
    /// manager's panic boundary, route the verdicts, and flush chain
    /// exits as a real tx burst. Returns packets processed, so the
    /// scheduler's cycle accounting sees NF work exactly like rxq work.
    pub fn nf_poll(&mut self, kernel: &mut Kernel, nf_id: u32, core: usize) -> usize {
        use ovs_sim::faults::FaultKind;
        if self.nfv.nf(nf_id).is_none() {
            return 0;
        }
        let mut timer = StageTimer::new(core_ns(kernel, core));
        let now_ns = kernel.sim.clock.now_ns();
        // A fault armed against this NF makes this invocation panic
        // inside the manager's catch_unwind; consuming it here keeps the
        // crash attributable to exactly the targeted NF.
        let force_panic = kernel.sim.faults.take_for(FaultKind::NfPanic, nf_id);
        let out = self
            .nfv
            .poll_nf(nf_id, ovs_ring::BATCH_SIZE, now_ns, force_panic);
        if out.restarted {
            coverage!("nf_restart");
        }
        if out.crashed {
            coverage!("nf_crash");
        }
        let n = out.processed;
        if n > 0 {
            // Ring dequeue crossing plus the invocation itself; exits pay
            // their copy back out of the mempool below.
            let c = (kernel.sim.costs.nf_ring_ns + kernel.sim.costs.nf_exec_ns) * n as f64;
            kernel.sim.charge(core, Context::User, c);
        }
        self.stats.nf_verdict_drops += out.verdict_drops;
        self.stats.nf_ring_full += out.ring_full;
        self.stats.nf_fail_closed_drops += out.fail_closed;
        self.stats.nf_crash_drops += out.crash_drops;
        self.stats.dropped += out.verdict_drops + out.ring_full + out.fail_closed + out.crash_drops;
        if out.verdict_drops > 0 {
            coverage!("nf_verdict_drop", out.verdict_drops);
        }
        if out.ring_full > 0 {
            coverage!("nf_ring_full", out.ring_full);
        }
        if out.fail_closed > 0 {
            coverage!("nf_fail_closed", out.fail_closed);
        }
        if out.crash_drops > 0 {
            coverage!("nf_crash_drop", out.crash_drops);
        }
        timer.mark(Stage::NfExec, core_ns(kernel, core));
        if !out.exits.is_empty() {
            let mut tx = TxAccum::default();
            let now = pmd_now_ns(kernel, core);
            for (mut pkt, port) in out.exits {
                // Cross-core handoff: the rx stamp lives in the rx
                // core's virtual-time domain, which is not ordered
                // against this core's. Clamp it so the recorded latency
                // stays non-negative in the consumer's domain.
                if let Some(ts) = pkt.rx_ts {
                    pkt.rx_ts = Some(ts.min(now));
                }
                let c = kernel.sim.costs.copy_ns(pkt.len());
                kernel.sim.charge(core, Context::User, c);
                self.port_send(kernel, port, pkt, core, &mut tx);
            }
            timer.mark(Stage::NfExec, core_ns(kernel, core));
            self.flush_tx(kernel, tx, core, &mut timer);
        }
        self.perf.entry(core).or_default().commit(&timer, n as u64);
        debug_assert!(
            self.stats.coherent(),
            "dpif stats drifted: {:?}",
            self.stats
        );
        n
    }

    /// Receive a burst from a port's backend without processing it —
    /// public so supervisors/diagnostics (e.g. the crash-recovery example)
    /// can interpose between I/O and the pipeline.
    pub fn port_rx_public(
        &mut self,
        kernel: &mut Kernel,
        port: PortNo,
        queue: usize,
        core: usize,
    ) -> Vec<DpPacket> {
        self.port_rx(kernel, port, queue, core)
    }

    /// Receive a burst from a port's backend.
    fn port_rx(
        &mut self,
        kernel: &mut Kernel,
        port: PortNo,
        queue: usize,
        core: usize,
    ) -> Vec<DpPacket> {
        let Some(Some(p)) = self.ports.get_mut(port as usize) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        match &mut p.ty {
            PortType::Afxdp(a) => {
                for pkt in a.rx_burst(kernel, queue, core) {
                    out.push(pkt);
                }
            }
            PortType::Dpdk(d) => {
                for m in d.rx_burst(kernel, queue, core) {
                    let mut pkt = DpPacket::from_data(m.data());
                    pkt.rxhash = Some(m.rss_hash);
                    d.pool.free(m);
                    out.push(pkt);
                }
            }
            PortType::Tap { ifindex }
            | PortType::Internal {
                tap_ifindex: ifindex,
            } => {
                // OVS reaches the tap's *kernel* side over a raw socket
                // (the fd side belongs to the VM's vhost backend).
                let ifx = *ifindex;
                while let Some(f) = kernel.raw_socket_recv(ifx, core) {
                    out.push(DpPacket::from_data(&f));
                    if out.len() >= 32 {
                        break;
                    }
                }
            }
            PortType::VhostUser(v) => {
                for f in v.dequeue_burst(kernel, 32, core) {
                    out.push(DpPacket::from_data(&f));
                }
            }
            PortType::AfPacket(a) => {
                while let Some(f) = a.recv(kernel, core) {
                    out.push(DpPacket::from_data(&f));
                    if out.len() >= 32 {
                        break;
                    }
                }
            }
            PortType::Tunnel(_) => {}
        }
        self.stats.rx_packets += out.len() as u64;
        coverage!("dpif_rx", out.len());
        out
    }

    /// Run one packet through decap, the cache hierarchy, and actions —
    /// a burst of one through the batched pipeline.
    pub fn process_packet(&mut self, kernel: &mut Kernel, pkt: DpPacket, core: usize) {
        self.process_burst(kernel, vec![pkt], core);
    }

    /// Run an injected burst through the full two-phase pipeline,
    /// committing perf attribution. `pmd_poll` is this plus the rx.
    pub fn process_burst(&mut self, kernel: &mut Kernel, pkts: Vec<DpPacket>, core: usize) {
        self.maybe_complete_restore(kernel.sim.clock.now_ns());
        let mut timer = StageTimer::new(core_ns(kernel, core));
        let n = pkts.len();
        self.process_burst_timed(kernel, pkts, core, &mut timer);
        self.latency.commit_burst(&timer);
        self.perf.entry(core).or_default().commit(&timer, n as u64);
        debug_assert!(
            self.stats.coherent(),
            "dpif stats drifted: {:?}",
            self.stats
        );
    }

    /// The pipeline proper, attributing spans of core time to `timer`:
    /// classify the whole burst into per-megaflow batches
    /// (`dfc_processing` + `fast_path_processing`), execute each batch's
    /// actions once, loop recirculated packets back as a sub-burst, and
    /// finally flush the accumulated output as real per-port tx bursts.
    fn process_burst_timed(
        &mut self,
        kernel: &mut Kernel,
        pkts: Vec<DpPacket>,
        core: usize,
        timer: &mut StageTimer,
    ) {
        let mut burst: Vec<BurstPkt> = Vec::with_capacity(pkts.len());
        for mut pkt in pkts {
            // Injected packets arrive unstamped; received ones carry the
            // poll-entry stamp from `pmd_poll` already.
            let stamp = pmd_now_ns(kernel, core);
            pkt.rx_ts.get_or_insert(stamp);
            self.stats.packets_processed += 1;
            coverage!("dpif_packet");
            // Tunnel reception: if the frame targets one of our tunnel
            // endpoints, decapsulate and re-address it to the tunnel
            // port.
            self.try_tunnel_rx(kernel, &mut pkt, core);
            burst.push(BurstPkt { pkt, pass: 0 });
        }
        timer.mark(Stage::Parse, core_ns(kernel, core));

        let mut tx = TxAccum::default();
        while !burst.is_empty() {
            let mut batches: Vec<FlowBatch> = Vec::new();
            let mut misses: Vec<(BurstPkt, Miniflow)> = Vec::new();
            self.dfc_processing(kernel, burst, &mut batches, &mut misses, core, timer);
            self.fast_path_processing(kernel, misses, &mut batches, core, timer);
            burst = self.execute_batches(kernel, batches, &mut tx, core, timer);
        }
        self.flush_tx(kernel, tx, core, timer);
    }

    /// Phase one: probe the datapath flow caches (EMC, then SMC) for
    /// every packet of the burst, in order, sorting hits into
    /// per-megaflow batches and collecting misses for the fast path.
    ///
    /// Everything here runs on the sparse [`Miniflow`] straight out of
    /// extraction — no full `FlowKey` is materialized on the hit path —
    /// and the slot hash is computed once and cached in
    /// `DpPacket::flow_hash` for every probe tier to reuse.
    fn dfc_processing(
        &mut self,
        kernel: &mut Kernel,
        burst: Vec<BurstPkt>,
        batches: &mut Vec<FlowBatch>,
        misses: &mut Vec<(BurstPkt, Miniflow)>,
        core: usize,
        timer: &mut StageTimer,
    ) {
        for mut bp in burst {
            if bp.pass == MAX_RECIRC {
                // Recirculation limit exceeded.
                self.stats.dropped += 1;
                coverage!("dpif_recirc_limit");
                if let Some(t) = self.trace.as_mut() {
                    t.note(format!("recirculation limit ({MAX_RECIRC}) exceeded: drop"));
                }
                continue;
            }
            if bp.pass > 0 {
                self.stats.recirculations += 1;
                coverage!("dpif_recirc");
            }
            let mf = extract_miniflow(&mut bp.pkt);
            let hash = mf.hash();
            bp.pkt.flow_hash = Some(hash);
            self.miniflow_stats.record(&mf);
            let c = kernel.sim.costs.miniflow_extract_ns + kernel.sim.costs.flow_hash_ns;
            kernel.sim.charge(core, Context::User, c);
            timer.mark(Stage::Parse, core_ns(kernel, core));
            if let Some(t) = self.trace.as_mut() {
                t.enter(format!("pass {}: flow {}", bp.pass + 1, describe_key(&mf)));
            }

            // Level 1: EMC. Hit or miss, the probe is paid here.
            if let Some(e) = self.emc.lookup(&mf, hash) {
                self.stats.emc_hits += 1;
                coverage!("dpif_emc_hit");
                let mut c = kernel.sim.costs.emc_mini_hit_ns;
                if self.emc.len() > kernel.sim.costs.emc_pressure_threshold {
                    c += kernel.sim.costs.emc_pressure_ns;
                }
                kernel.sim.charge(core, Context::User, c);
                timer.mark(Stage::EmcLookup, core_ns(kernel, core));
                if let Some(t) = self.trace.as_mut() {
                    t.note("cache: EMC hit (exact match)");
                }
                e.note_use(bp.pkt.len(), kernel.sim.clock.now_ns());
                let actions = Rc::new(e.actions.clone());
                self.enqueue_classified(batches, Some(&e), actions, bp);
                continue;
            }
            let c = kernel.sim.costs.emc_mini_hit_ns;
            kernel.sim.charge(core, Context::User, c);
            timer.mark(Stage::EmcLookup, core_ns(kernel, core));

            // Level 2: signature match cache, when enabled.
            if self.smc_enable {
                let c = kernel.sim.costs.smc_mini_hit_ns;
                kernel.sim.charge(core, Context::User, c);
                let hit = self.smc.lookup(&mf, hash);
                timer.mark(Stage::SmcLookup, core_ns(kernel, core));
                if let Some(e) = hit {
                    self.stats.smc_hits += 1;
                    coverage!("smc_hit");
                    if let Some(t) = self.trace.as_mut() {
                        t.note(format!("cache: SMC hit (mask {} bits)", e.mask.bit_count()));
                    }
                    e.note_use(bp.pkt.len(), kernel.sim.clock.now_ns());
                    // SMC hits feed the EMC, like dpcls hits.
                    self.emc.maybe_insert(mf, hash, Rc::clone(&e));
                    let actions = Rc::new(e.actions.clone());
                    self.enqueue_classified(batches, Some(&e), actions, bp);
                    continue;
                }
                coverage!("smc_miss");
            }
            misses.push((bp, mf));
        }
    }

    /// Phase two: resolve the dfc misses through the megaflow classifier
    /// and the upcall slow path. The flow caches are re-probed first
    /// (uncharged — the probes were paid in phase one) because an
    /// earlier miss in the same burst may have installed or promoted the
    /// flow; the survivors then go through the dpcls **together** as one
    /// wide-lane bulk probe (the AVX-512 signature-compare model), and
    /// only bulk misses fall back to scalar probing and upcalls, in
    /// original packet order.
    fn fast_path_processing(
        &mut self,
        kernel: &mut Kernel,
        misses: Vec<(BurstPkt, Miniflow)>,
        batches: &mut Vec<FlowBatch>,
        core: usize,
        timer: &mut StageTimer,
    ) {
        let mut pending: Vec<(BurstPkt, Miniflow)> = Vec::with_capacity(misses.len());
        for (bp, mf) in misses {
            let hash = bp
                .pkt
                .flow_hash
                .expect("flow_hash cached by dfc_processing");
            if let Some(e) = self.emc.lookup(&mf, hash) {
                self.stats.emc_hits += 1;
                coverage!("dpif_emc_hit");
                if let Some(t) = self.trace.as_mut() {
                    t.note("cache: EMC hit (exact match)");
                }
                e.note_use(bp.pkt.len(), kernel.sim.clock.now_ns());
                let actions = Rc::new(e.actions.clone());
                self.enqueue_classified(batches, Some(&e), actions, bp);
                continue;
            }
            if self.smc_enable {
                if let Some(e) = self.smc.lookup(&mf, hash) {
                    self.stats.smc_hits += 1;
                    coverage!("smc_hit");
                    if let Some(t) = self.trace.as_mut() {
                        t.note(format!("cache: SMC hit (mask {} bits)", e.mask.bit_count()));
                    }
                    e.note_use(bp.pkt.len(), kernel.sim.clock.now_ns());
                    self.emc.maybe_insert(mf, hash, Rc::clone(&e));
                    let actions = Rc::new(e.actions.clone());
                    self.enqueue_classified(batches, Some(&e), actions, bp);
                    continue;
                }
            }
            pending.push((bp, mf));
        }
        if pending.is_empty() {
            return;
        }

        // Level 3: megaflow classifier, probed for the whole remainder
        // of the burst at once in `lane_width`-wide steps. The cost
        // model charges per lane step (one wide signature compare +
        // gather) plus per key carried (mask application) — batching
        // amortizes the subtable walk the way the vectorized dpcls
        // amortizes loads.
        let keys: Vec<Miniflow> = pending.iter().map(|(_, mf)| *mf).collect();
        let steps_before = self.megaflow.lane_steps();
        let keys_before = self.megaflow.lane_keys();
        let gen_at_bulk = self.megaflow.generation();
        let results = self.megaflow.lookup_bulk(&keys);
        let steps = self.megaflow.lane_steps() - steps_before;
        let lane_keys = self.megaflow.lane_keys() - keys_before;
        let c = kernel.sim.costs.dpcls_bulk_step_ns * steps as f64
            + kernel.sim.costs.dpcls_bulk_key_ns * lane_keys as f64;
        kernel.sim.charge(core, Context::User, c);
        timer.mark(Stage::MegaflowLookup, core_ns(kernel, core));

        for ((bp, mf), bulk_hit) in pending.into_iter().zip(results) {
            let hash = bp
                .pkt
                .flow_hash
                .expect("flow_hash cached by dfc_processing");
            let hit = match bulk_hit {
                Some(e) => Some(e),
                None if self.megaflow.generation() != gen_at_bulk => {
                    // The table changed since the bulk probe — an
                    // earlier miss in this burst installed a flow — so
                    // the miss verdict is stale: scalar re-probe
                    // (charged), the same re-lookup OVS does in
                    // handle_packet_upcall().
                    let probed_before = self.megaflow.subtables_probed();
                    let hit = self.megaflow.lookup_mini(&mf);
                    let probed = self.megaflow.subtables_probed() - probed_before;
                    let c = kernel.sim.costs.dpcls_lookup_ns
                        + kernel.sim.costs.dpcls_subtable_extra_ns
                            * probed.saturating_sub(1) as f64;
                    kernel.sim.charge(core, Context::User, c);
                    timer.mark(Stage::MegaflowLookup, core_ns(kernel, core));
                    hit
                }
                None => {
                    // Table unchanged: the bulk miss is definitive.
                    self.megaflow.count_miss();
                    None
                }
            };
            if let Some(e) = hit {
                self.stats.megaflow_hits += 1;
                coverage!("dpif_megaflow_hit");
                if let Some(t) = self.trace.as_mut() {
                    t.note(format!(
                        "cache: megaflow hit (mask {} bits)",
                        e.mask.bit_count()
                    ));
                }
                e.note_use(bp.pkt.len(), kernel.sim.clock.now_ns());
                if self.smc_enable {
                    self.smc.insert(hash, Rc::clone(&e));
                }
                self.emc.maybe_insert(mf, hash, Rc::clone(&e));
                let actions = Rc::new(e.actions.clone());
                self.enqueue_classified(batches, Some(&e), actions, bp);
                continue;
            }

            // Level 4 gate: while `flow-restore-wait` is up the rule
            // table is still being repopulated, so a translation would
            // be wrong — the miss drops with a named counter and the
            // restored megaflows keep forwarding. Checked before any
            // slow-path work so the gate costs nothing.
            if self.restore.wait {
                self.stats.upcalls_gated += 1;
                coverage!("upcalls_gated");
                if let Some(t) = self.trace.as_mut() {
                    t.note("upcall gated: flow-restore-wait, drop");
                }
                continue;
            }
            // Secure fail mode: the controller is gone, so no new flows
            // — existing megaflows already hit above; the miss drops
            // into the named fail_secure_drop verdict.
            if self.fail_secure {
                self.stats.fail_secure_drop += 1;
                coverage!("fail_secure_drop");
                if let Some(t) = self.trace.as_mut() {
                    t.note("fail mode secure: controller disconnected, drop");
                }
                continue;
            }

            // Level 4: upcall into ofproto — the only point where the
            // sparse key inflates back to a full FlowKey.
            coverage!("miniflow_expand");
            self.miniflow_stats.expands += 1;
            let key = mf.expand();
            self.stats.upcalls += 1;
            coverage!("dpif_upcall");
            if let Some(t) = self.trace.as_mut() {
                t.enter("cache: miss, upcall to ofproto");
            }
            let t = self.ofproto.translate_traced(&key, self.trace.as_mut());
            if let Some(tr) = self.trace.as_mut() {
                tr.exit();
                tr.note(format!(
                    "megaflow installed: {} tables visited, mask {} bits",
                    t.tables_visited,
                    t.mask.bit_count()
                ));
            }
            let c = t.tables_visited as f64 * kernel.sim.costs.upcall_per_table_ns;
            kernel.sim.charge(core, Context::User, c);
            timer.mark(Stage::Upcall, core_ns(kernel, core));
            // The upcalled packet is credited at translation time;
            // everything after it is credited by stats pushback.
            for r in &t.rules {
                r.credit(1, bp.pkt.len() as u64);
            }
            let now = kernel.sim.clock.now_ns();
            let masked = key.masked(&t.mask);
            if self.megaflow.contains(&masked) {
                // Masked-key collision under a different mask: replace
                // the stale flow.
                self.delete_megaflow(&masked);
            }
            if self.revalidator.should_install(self.megaflow.len()) {
                let entry = self
                    .megaflow
                    .install_at(key, t.mask, t.actions.clone(), now);
                self.stats.flows_installed += 1;
                self.revalidator.register(Ukey::new(
                    masked,
                    t.mask,
                    t.actions.clone(),
                    t.rules,
                    now,
                ));
                if self.smc_enable {
                    self.smc.insert(hash, Rc::clone(&entry));
                }
                self.emc.maybe_insert(mf, hash, Rc::clone(&entry));
                let actions = Rc::new(t.actions);
                self.enqueue_classified(batches, Some(&entry), actions, bp);
            } else {
                // At the dynamic flow limit: forward without installing
                // (OVS upcall handlers do the same).
                self.stats.flow_limit_hits += 1;
                coverage!("flow_limit_hit");
                if let Some(tr) = self.trace.as_mut() {
                    tr.note(format!(
                        "flow limit reached ({}): megaflow not installed",
                        self.revalidator.flow_limit
                    ));
                }
                let actions = Rc::new(t.actions);
                self.enqueue_classified(batches, None, actions, bp);
            }
        }
    }

    /// Sort one classified packet into its per-megaflow batch, creating
    /// the batch on first use. Empty action lists drop here.
    fn enqueue_classified(
        &mut self,
        batches: &mut Vec<FlowBatch>,
        entry: Option<&Rc<MegaflowEntry<Vec<DpAction>>>>,
        actions: Rc<Vec<DpAction>>,
        bp: BurstPkt,
    ) {
        if actions.is_empty() {
            self.stats.dropped += 1;
            coverage!("dpif_drop");
            if let Some(t) = self.trace.as_mut() {
                t.note("Datapath actions: drop");
                t.exit();
            }
            return;
        }
        if let Some(e) = entry {
            if let Some(b) = batches
                .iter_mut()
                .find(|b| b.entry.as_ref().is_some_and(|be| Rc::ptr_eq(be, e)))
            {
                b.pkts.push(bp);
                return;
            }
        }
        batches.push(FlowBatch {
            entry: entry.cloned(),
            actions,
            pkts: vec![bp],
        });
    }

    /// Phase three: execute each batch's actions — the per-batch fixed
    /// cost is paid once per megaflow, not once per packet. Returns the
    /// recirculated packets (the next sub-burst).
    fn execute_batches(
        &mut self,
        kernel: &mut Kernel,
        batches: Vec<FlowBatch>,
        tx: &mut TxAccum,
        core: usize,
        timer: &mut StageTimer,
    ) -> Vec<BurstPkt> {
        let mut next = Vec::new();
        for b in batches {
            let c = kernel.sim.costs.dp_batch_fixed_ns
                + kernel.sim.costs.dp_batch_pkt_ns * b.pkts.len() as f64;
            kernel.sim.charge(core, Context::User, c);
            timer.mark(Stage::Batch, core_ns(kernel, core));
            coverage!("batch_flush");
            let actions = b.actions;
            for bp in b.pkts {
                if let Some(t) = self.trace.as_mut() {
                    t.note(format!("Datapath actions: {actions:?}"));
                }
                let pass = bp.pass;
                if let Some(p) = self.execute_actions(kernel, bp.pkt, &actions, core, timer, tx) {
                    next.push(BurstPkt {
                        pkt: p,
                        pass: pass + 1,
                    });
                }
                if let Some(t) = self.trace.as_mut() {
                    t.exit();
                }
            }
        }
        next
    }

    /// Flush the accumulated output as one real tx burst per port —
    /// the batched replacement for the old per-packet backend calls.
    ///
    /// This is where a packet's life ends, one way or the other: every
    /// frame the backend really accepted records its rx→tx latency
    /// sample; every frame it refused is a counted drop with *no*
    /// sample — the lossless-accounting contract extended to
    /// timestamps.
    fn flush_tx(&mut self, kernel: &mut Kernel, tx: TxAccum, core: usize, timer: &mut StageTimer) {
        for (port, pkts) in tx.ports {
            let mut dropped = 0u64;
            let mut tx_full = 0u64;
            let mut vhost_down = 0u64;
            // rx stamps of the frames the backend accepted, in order.
            let mut delivered_ts: Vec<Option<u64>> = Vec::new();
            let Some(Some(p)) = self.ports.get_mut(port as usize) else {
                // The port vanished after accumulation (cannot happen
                // within one burst, but stay defensive).
                self.stats.dropped += pkts.len() as u64;
                continue;
            };
            match &mut p.ty {
                PortType::Afxdp(a) => {
                    // TX on queue 0 of the egress port (single-queue TX
                    // model), in chunks of the ring burst size. A burst's
                    // shortfall (tx ring full) is a counted drop — the
                    // PMD never blocks on a full ring. The ring accepts
                    // each chunk's prefix, so the first `sent` stamps of
                    // a chunk are the delivered ones.
                    let mut attempted = 0usize;
                    let mut sent = 0usize;
                    let mut batch = ovs_ring::PacketBatch::new();
                    let mut batch_ts: Vec<Option<u64>> = Vec::new();
                    for pkt in pkts {
                        let ts = pkt.rx_ts;
                        match batch.push(pkt) {
                            Ok(()) => batch_ts.push(ts),
                            Err(pkt) => {
                                attempted += batch.len();
                                let n_sent = a.tx_burst(kernel, 0, core, batch);
                                sent += n_sent;
                                delivered_ts.extend(batch_ts.drain(..).take(n_sent));
                                batch = ovs_ring::PacketBatch::new();
                                let _ = batch.push(pkt);
                                batch_ts.push(ts);
                            }
                        }
                    }
                    if !batch.is_empty() {
                        attempted += batch.len();
                        let n_sent = a.tx_burst(kernel, 0, core, batch);
                        sent += n_sent;
                        delivered_ts.extend(batch_ts.drain(..).take(n_sent));
                    }
                    let shortfall = (attempted - sent) as u64;
                    dropped += shortfall;
                    tx_full += shortfall;
                }
                PortType::Dpdk(d) => {
                    // Per-packet mbuf allocation: an exhausted pool drops
                    // exactly the frames that failed to allocate.
                    let mut mbufs = Vec::with_capacity(pkts.len());
                    for pkt in &pkts {
                        match d.pool.alloc() {
                            Some(mut m) => {
                                m.set_data(pkt.data());
                                mbufs.push(m);
                                delivered_ts.push(pkt.rx_ts);
                            }
                            None => dropped += 1,
                        }
                    }
                    if !mbufs.is_empty() {
                        d.tx_burst(kernel, mbufs, core);
                    }
                }
                PortType::Tap { ifindex }
                | PortType::Internal {
                    tap_ifindex: ifindex,
                } => {
                    let ifx = *ifindex;
                    for pkt in pkts {
                        delivered_ts.push(pkt.rx_ts);
                        kernel.raw_socket_send(ifx, pkt.data().to_vec(), core);
                    }
                }
                PortType::VhostUser(v) => {
                    // The vring accepts a prefix of the burst; the rest
                    // is a counted drop (guest disconnected or ring
                    // full).
                    let frames: Vec<Vec<u8>> = pkts.iter().map(|p| p.data().to_vec()).collect();
                    let n = frames.len();
                    let accepted = v.enqueue_burst(kernel, frames, core);
                    delivered_ts.extend(pkts.iter().take(accepted).map(|p| p.rx_ts));
                    let lost = (n - accepted) as u64;
                    dropped += lost;
                    vhost_down += lost;
                }
                PortType::AfPacket(a) => {
                    for pkt in pkts {
                        delivered_ts.push(pkt.rx_ts);
                        a.send(kernel, pkt.data().to_vec(), core);
                    }
                }
                PortType::Tunnel(_) => unreachable!("tunnel handled in port_send"),
            }
            self.stats.dropped += dropped;
            self.stats.tx_full_drops += tx_full;
            self.stats.vhost_tx_drops += vhost_down;
            timer.mark(Stage::Tx, core_ns(kernel, core));
            // Sample after the tx mark so the backend handoff cost is
            // part of the measured latency.
            let now = pmd_now_ns(kernel, core);
            for ts in delivered_ts.into_iter().flatten() {
                debug_assert!(now >= ts, "tx time precedes the rx stamp");
                self.latency.record(port, core, now.saturating_sub(ts));
            }
        }
    }

    /// Execute actions; returns `Some(pkt)` if the packet recirculates.
    /// Output actions queue frames on `tx` (tunnel encap and software
    /// TSO still run here); the real burst leaves in `flush_tx`.
    fn execute_actions(
        &mut self,
        kernel: &mut Kernel,
        mut pkt: DpPacket,
        actions: &[DpAction],
        core: usize,
        timer: &mut StageTimer,
        tx: &mut TxAccum,
    ) -> Option<DpPacket> {
        for (i, act) in actions.iter().enumerate() {
            match act {
                DpAction::Output(p) => {
                    timer.mark(Stage::Actions, core_ns(kernel, core));
                    let last = i + 1 == actions.len();
                    if last {
                        self.port_send(kernel, *p, pkt, core, tx);
                        timer.mark(Stage::Tx, core_ns(kernel, core));
                        return None;
                    }
                    let clone = DpPacket::from_data(pkt.data());
                    let mut clone = clone;
                    clone.tunnel = pkt.tunnel;
                    clone.offloads = pkt.offloads;
                    clone.rx_ts = pkt.rx_ts;
                    self.port_send(kernel, *p, clone, core, tx);
                    timer.mark(Stage::Tx, core_ns(kernel, core));
                }
                DpAction::SetTunnel { id, dst } => {
                    pkt.tunnel = Some(ovs_packet::dp_packet::TunnelMetadata {
                        tun_id: *id,
                        src: [0, 0, 0, 0], // filled from the tunnel port's local_ip
                        dst: *dst,
                        tos: 0,
                        ttl: 64,
                    });
                }
                DpAction::SetEthSrc(m) => {
                    if pkt.len() >= 14 {
                        let mut f = ovs_packet::EthernetFrame::new_unchecked(pkt.data_mut());
                        f.set_src(*m);
                    }
                }
                DpAction::SetEthDst(m) => {
                    if pkt.len() >= 14 {
                        let mut f = ovs_packet::EthernetFrame::new_unchecked(pkt.data_mut());
                        f.set_dst(*m);
                    }
                }
                DpAction::PushVlan(tci) => {
                    let tagged = builder::push_vlan(pkt.data(), tci & 0x0fff, (tci >> 13) as u8);
                    pkt.set_data(&tagged);
                }
                DpAction::PopVlan => {
                    let data = pkt.data().to_vec();
                    if data.len() >= 18 && data[12] == 0x81 && data[13] == 0x00 {
                        let mut untagged = Vec::with_capacity(data.len() - 4);
                        untagged.extend_from_slice(&data[..12]);
                        untagged.extend_from_slice(&data[16..]);
                        pkt.set_data(&untagged);
                    }
                }
                DpAction::Ct { zone, commit, nat } => {
                    // Everything up to here was generic action work;
                    // the conntrack pass gets its own stage.
                    timer.mark(Stage::Actions, core_ns(kernel, core));
                    let mut tmp = DpPacket::from_data(pkt.data());
                    let key = extract_miniflow(&mut tmp);
                    let ck = ConnKey {
                        zone: *zone,
                        src_ip: key.nw_src_v4(),
                        dst_ip: key.nw_dst_v4(),
                        src_port: key.tp_src(),
                        dst_port: key.tp_dst(),
                        proto: key.nw_proto(),
                    };
                    let tcp_flags = ovs_ct::tcp_flags_of(pkt.data());
                    let v = self.ct.process_full(
                        ck,
                        CtAction {
                            zone: *zone,
                            commit: *commit,
                            mark: None,
                            nat: *nat,
                        },
                        tcp_flags,
                        Some(core),
                        kernel.sim.clock.now_ns(),
                    );
                    coverage!("dpif_ct_lookup");
                    pkt.ct_state = v.state;
                    pkt.ct_zone = *zone;
                    pkt.ct_mark = v.mark;
                    let c = kernel.sim.costs.userspace_ct_ns;
                    kernel.sim.charge(core, Context::User, c);
                    if let Some(reason) = v.drop {
                        match reason {
                            ovs_ct::CtDrop::ZoneLimit => self.stats.ct_limit_drops += 1,
                            ovs_ct::CtDrop::TableFull => self.stats.ct_full_drops += 1,
                            ovs_ct::CtDrop::InvalidState => self.stats.ct_invalid_drops += 1,
                        }
                        self.stats.dropped += 1;
                        coverage!("dpif_ct_drop");
                        timer.mark(Stage::CtLookup, core_ns(kernel, core));
                        if let Some(t) = self.trace.as_mut() {
                            t.note(format!(
                                "ct(zone={zone}): refused ({}), drop",
                                reason.label()
                            ));
                        }
                        return None;
                    }
                    if let Some(t) = self.trace.as_mut() {
                        t.note(format!(
                            "ct(zone={zone},commit={commit}): verdict ct_state=0x{:02x}{}",
                            v.state,
                            if v.nat.is_some() {
                                ", nat rewrite applied"
                            } else {
                                ""
                            }
                        ));
                    }
                    if let Some(rw) = v.nat {
                        coverage!("dpif_ct_nat");
                        ovs_kernel::conntrack::apply_rewrite(pkt.data_mut(), &rw);
                        let c = kernel.sim.costs.csum_ns(pkt.len());
                        kernel.sim.charge(core, Context::User, c);
                    }
                    timer.mark(Stage::CtLookup, core_ns(kernel, core));
                }
                DpAction::Recirc(rid) => {
                    pkt.recirc_id = *rid;
                    timer.mark(Stage::Actions, core_ns(kernel, core));
                    let c = kernel.sim.costs.recirc_ns;
                    kernel.sim.charge(core, Context::User, c);
                    timer.mark(Stage::Recirc, core_ns(kernel, core));
                    if let Some(t) = self.trace.as_mut() {
                        t.note(format!("recirc(0x{rid:x})"));
                    }
                    return Some(pkt);
                }
                DpAction::Meter(id) => {
                    let now = kernel.sim.clock.now_ns();
                    if !self.meters.offer(*id, now, pkt.len()) {
                        self.stats.meter_drops += 1;
                        self.stats.dropped += 1;
                        coverage!("dpif_meter_drop");
                        timer.mark(Stage::Actions, core_ns(kernel, core));
                        if let Some(t) = self.trace.as_mut() {
                            t.note(format!("meter({id}): rate exceeded, drop"));
                        }
                        return None;
                    }
                }
                DpAction::NfChain(chain_id) => {
                    // Terminal: the packet leaves the classification
                    // pipeline and enters the NF subsystem. One ring
                    // enqueue plus the copy into the manager's mempool.
                    timer.mark(Stage::Actions, core_ns(kernel, core));
                    let c = kernel.sim.costs.nf_ring_ns + kernel.sim.costs.copy_ns(pkt.len());
                    kernel.sim.charge(core, Context::User, c);
                    match self.nfv.ingress(*chain_id, &pkt) {
                        ovs_nfv::Ingress::Queued { nf } => {
                            coverage!("nf_chain_enqueue");
                            if let Some(t) = self.trace.as_mut() {
                                t.note(format!("nf_chain({chain_id}): queued on nf {nf}"));
                            }
                        }
                        ovs_nfv::Ingress::Exit { pkt: out, port } => {
                            // Every NF bypassed (or empty chain): the
                            // chain degenerates to an output.
                            timer.mark(Stage::NfExec, core_ns(kernel, core));
                            if let Some(t) = self.trace.as_mut() {
                                t.note(format!(
                                    "nf_chain({chain_id}): all NFs bypassed, output:{port}"
                                ));
                            }
                            self.port_send(kernel, port, out, core, tx);
                            timer.mark(Stage::Tx, core_ns(kernel, core));
                            return None;
                        }
                        ovs_nfv::Ingress::RingFull { nf } => {
                            self.stats.nf_ring_full += 1;
                            self.stats.dropped += 1;
                            coverage!("nf_ring_full");
                            if let Some(t) = self.trace.as_mut() {
                                t.note(format!("nf_chain({chain_id}): nf {nf} ring full, drop"));
                            }
                        }
                        ovs_nfv::Ingress::FailClosed { nf } => {
                            self.stats.nf_fail_closed_drops += 1;
                            self.stats.dropped += 1;
                            coverage!("nf_fail_closed");
                            if let Some(t) = self.trace.as_mut() {
                                t.note(format!(
                                    "nf_chain({chain_id}): nf {nf} dead (fail-closed), drop"
                                ));
                            }
                        }
                        ovs_nfv::Ingress::NoChain => {
                            // Misconfiguration fails closed, never open.
                            self.stats.nf_fail_closed_drops += 1;
                            self.stats.dropped += 1;
                            coverage!("nf_fail_closed");
                            if let Some(t) = self.trace.as_mut() {
                                t.note(format!("nf_chain({chain_id}): no such chain, drop"));
                            }
                        }
                    }
                    timer.mark(Stage::NfExec, core_ns(kernel, core));
                    return None;
                }
            }
        }
        timer.mark(Stage::Actions, core_ns(kernel, core));
        None
    }

    /// Attempt tunnel decapsulation on a received frame.
    fn try_tunnel_rx(&mut self, kernel: &mut Kernel, pkt: &mut DpPacket, core: usize) {
        let configs: Vec<(PortNo, TunnelConfig)> = self
            .ports
            .iter()
            .enumerate()
            .filter_map(|(no, p)| match p {
                Some(Port {
                    ty: PortType::Tunnel(cfg),
                    ..
                }) => Some((no as PortNo, *cfg)),
                _ => None,
            })
            .collect();
        for (no, cfg) in configs {
            if let Some((inner, meta)) = tunnel::try_decap(&cfg, pkt.data()) {
                self.stats.tunnel_decaps += 1;
                coverage!("dpif_tunnel_decap");
                let c = kernel.sim.costs.userspace_tunnel_ns;
                kernel.sim.charge(core, Context::User, c);
                if let Some(t) = self.trace.as_mut() {
                    t.note(format!(
                        "tunnel decap ({:?}): tun_id={}, inner {} bytes, in_port={no}",
                        cfg.kind,
                        meta.tun_id,
                        inner.len()
                    ));
                }
                pkt.set_data(&inner);
                pkt.tunnel = Some(meta);
                pkt.in_port = no;
                return;
            }
        }
    }

    /// Send a packet out a port, segmenting for TSO-less egress. The
    /// frame(s) land on `tx` for the end-of-burst flush.
    fn port_send(
        &mut self,
        kernel: &mut Kernel,
        port: PortNo,
        pkt: DpPacket,
        core: usize,
        tx: &mut TxAccum,
    ) {
        // Tunnel output: encapsulate, then re-send on the egress port.
        let tunnel_cfg = match self.ports.get(port as usize) {
            Some(Some(Port {
                ty: PortType::Tunnel(cfg),
                ..
            })) => Some(*cfg),
            _ => None,
        };
        if let Some(cfg) = tunnel_cfg {
            // A TSO super-frame must be segmented before encapsulation:
            // neither our uplinks nor the paper's support tunnel TSO.
            if pkt.len() > 1514 {
                let segs = tso::segment(pkt.data(), 1460);
                if segs.len() > 1 {
                    self.stats.tso_segments += segs.len() as u64;
                    for seg in segs {
                        let mut p = DpPacket::from_data(&seg);
                        p.tunnel = pkt.tunnel;
                        p.offloads = pkt.offloads;
                        p.rx_ts = pkt.rx_ts;
                        self.port_send(kernel, port, p, core, tx);
                    }
                    return;
                }
            }
            let Some(mut meta) = pkt.tunnel else {
                self.stats.dropped += 1;
                return;
            };
            meta.src = cfg.local_ip;
            let mut tmp = DpPacket::from_data(pkt.data());
            let entropy = extract_miniflow(&mut tmp).rss_hash() as u16;
            let c = kernel.sim.costs.userspace_tunnel_ns;
            kernel.sim.charge(core, Context::User, c);
            let dev_macs: Vec<(u32, MacAddr)> = self
                .ports
                .iter()
                .flatten()
                .filter_map(|p| p.ifindex())
                .map(|i| (i, kernel.device(i).mac))
                .collect();
            match tunnel::encap(&cfg, &self.rtnl, &dev_macs, &meta, pkt.data(), entropy) {
                Ok(enc) => {
                    self.stats.tunnel_encaps += 1;
                    coverage!("dpif_tunnel_encap");
                    if let Some(t) = self.trace.as_mut() {
                        t.note(format!(
                            "tunnel encap ({:?}): tun_id={}, dst={}.{}.{}.{}, outer {} bytes",
                            cfg.kind,
                            meta.tun_id,
                            meta.dst[0],
                            meta.dst[1],
                            meta.dst[2],
                            meta.dst[3],
                            enc.frame.len()
                        ));
                    }
                    let egress = self
                        .ports
                        .iter()
                        .position(|p| {
                            p.as_ref().and_then(|p| p.ifindex()) == Some(enc.egress_ifindex)
                        })
                        .map(|i| i as PortNo);
                    match egress {
                        Some(e) => {
                            let mut out = DpPacket::from_data(&enc.frame);
                            out.rx_ts = pkt.rx_ts;
                            self.port_send(kernel, e, out, core, tx);
                        }
                        None => self.stats.dropped += 1,
                    }
                }
                Err(_) => self.stats.dropped += 1,
            }
            return;
        }

        // Software TSO when the egress cannot segment.
        let needs_segmentation = match self.ports.get(port as usize).and_then(|p| p.as_ref()) {
            Some(p) => match &p.ty {
                // XDP/AF_XDP has no TSO yet (§6) — segment in software.
                PortType::Afxdp(_) | PortType::AfPacket(_) => pkt.len() > 1514,
                PortType::Dpdk(d) => pkt.len() > 1514 && !kernel.device(d.ifindex).caps.tso,
                // virtio (vhostuser, tap with vnet headers) passes
                // super-frames through.
                PortType::VhostUser(_) | PortType::Tap { .. } | PortType::Internal { .. } => false,
                PortType::Tunnel(_) => false,
            },
            None => false,
        };
        if needs_segmentation {
            let segs = tso::segment(pkt.data(), 1460);
            self.stats.tso_segments += segs.len() as u64;
            coverage!("dpif_tso_segment", segs.len());
            if let Some(t) = self.trace.as_mut() {
                t.note(format!(
                    "software TSO: segmented into {} frames",
                    segs.len()
                ));
            }
            for seg in segs {
                let mut p = DpPacket::from_data(&seg);
                p.offloads = pkt.offloads;
                p.rx_ts = pkt.rx_ts;
                self.port_tx_raw(kernel, port, p, core, tx);
            }
            return;
        }
        self.port_tx_raw(kernel, port, pkt, core, tx);
    }

    /// Account and queue one outgoing frame. The backend I/O happens in
    /// `flush_tx`, once per port per burst.
    fn port_tx_raw(
        &mut self,
        kernel: &mut Kernel,
        port: PortNo,
        pkt: DpPacket,
        core: usize,
        tx: &mut TxAccum,
    ) {
        // ERSPAN mirroring: copy watched traffic toward its collector
        // before normal transmission.
        let mirror_jobs: Vec<(usize, PortNo)> = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.watch_port == port && m.out_port != port)
            .map(|(i, m)| (i, m.out_port))
            .collect();
        for (i, out) in mirror_jobs {
            let wrapped = self.mirrors[i].encapsulate(pkt.data());
            let c = kernel.sim.costs.userspace_tunnel_ns + kernel.sim.costs.copy_ns(pkt.len());
            kernel.sim.charge(core, Context::User, c);
            let mut mirror_pkt = DpPacket::from_data(&wrapped);
            mirror_pkt.rx_ts = pkt.rx_ts;
            self.port_tx_raw(kernel, out, mirror_pkt, core, tx);
        }
        let Some(Some(p)) = self.ports.get_mut(port as usize) else {
            self.stats.dropped += 1;
            coverage!("dpif_tx_no_port");
            return;
        };
        self.stats.tx_packets += 1;
        coverage!("dpif_tx");
        if let Some(t) = self.trace.as_mut() {
            t.note(format!("output: port {port} ({}, {:?})", p.name, p.ty));
            // Let packet-level tools correlate the transmitted frame with
            // this trace (`tcpdump` prints a "[traced]" tag).
            kernel.mark_traced(pkt.data());
        }
        tx.push(port, pkt);
    }
}

/// Driver for the in-kernel datapath (`dpif-netlink`): handles kernel
/// upcalls by translating through `ofproto` and installing kernel
/// megaflows.
pub struct DpifNetlink {
    /// The OpenFlow pipeline.
    pub ofproto: Ofproto,
    /// Local endpoint of the kernel Geneve vport, for SetTunnel mapping.
    pub tunnel_local_ip: [u8; 4],
    /// Upcalls handled.
    pub upcalls_handled: u64,
    /// Upcalls that skipped installation at the dynamic flow limit.
    pub flow_limit_hits: u64,
    /// udpif revalidator state over the kernel flow table.
    pub revalidator: Revalidator<Vec<ovs_kernel::KAction>>,
}

impl DpifNetlink {
    /// A handler for a kernel datapath whose Geneve vport (if any) uses
    /// `tunnel_local_ip` as its endpoint.
    pub fn new(tunnel_local_ip: [u8; 4]) -> Self {
        Self {
            ofproto: Ofproto::new(),
            tunnel_local_ip,
            upcalls_handled: 0,
            flow_limit_hits: 0,
            revalidator: Revalidator::new(),
        }
    }

    /// Drain and handle all pending kernel upcalls: translate, install the
    /// megaflow, and re-execute the packet. `core` is the handler thread's
    /// core (charged as user time for translation).
    pub fn handle_upcalls(&mut self, kernel: &mut Kernel, core: usize) -> usize {
        let mut handled = 0;
        while let Some(u) = kernel.upcalls.pop_front() {
            handled += 1;
            self.upcalls_handled += 1;
            let t = self.ofproto.translate(&u.key);
            let c = t.tables_visited as f64 * kernel.sim.costs.upcall_per_table_ns;
            kernel.sim.charge(core, Context::User, c);
            // Credit the upcalled packet itself; the installed flow's
            // later hits arrive via revalidator stats pushback.
            for r in &t.rules {
                r.credit(1, u.frame.len() as u64);
            }
            let kactions = self.map_actions(&t.actions);
            if self.revalidator.should_install(kernel.ovs.flow_count()) {
                let now = kernel.sim.clock.now_ns();
                kernel
                    .ovs
                    .install_flow_at(&u.key, &t.mask, kactions.clone(), now);
                self.revalidator.register(Ukey::new(
                    u.key.masked(&t.mask),
                    t.mask,
                    kactions.clone(),
                    t.rules,
                    now,
                ));
            } else {
                self.flow_limit_hits += 1;
                coverage!("flow_limit_hit");
            }
            let mut pkt = DpPacket::from_data(&u.frame);
            pkt.in_port = u.in_port;
            pkt.tunnel = u.tunnel;
            pkt.recirc_id = u.key.recirc_id();
            kernel.ovs_execute(pkt, &kactions, core);
        }
        handled
    }

    /// One full revalidator round over the **kernel** flow table, via the
    /// ukeys recorded at upcall time — the same dump/revalidate/sweep
    /// loop as [`DpifNetdev::revalidate`], driven over Netlink in real
    /// OVS. Flows installed behind the dpif's back (e.g. pre-warmed
    /// scenario flows) have no ukey and are left alone.
    pub fn revalidate(&mut self, kernel: &mut Kernel, core: usize) -> SweepSummary {
        let t0 = core_ns(kernel, core);
        let now = kernel.sim.clock.now_ns();
        let n_flows = kernel.ovs.flow_count();
        let max_idle = self.revalidator.effective_max_idle_ns(n_flows);
        let hard = self.revalidator.hard_timeout_ns();
        let kill_all = n_flows > 2 * self.revalidator.flow_limit;
        let mut summary = SweepSummary::default();

        for k in self.revalidator.keys() {
            coverage!("revalidate_flow");
            self.revalidator.stats.flows_dumped += 1;
            summary.dumped += 1;
            let c = kernel.sim.costs.revalidate_flow_ns;
            kernel.sim.charge(core, Context::User, c);
            let mask = match self.revalidator.ukey(&k) {
                Some(uk) => uk.mask,
                None => continue,
            };
            let Some((hits, bytes, used, created)) = kernel.ovs.flow_stats(&k, &mask) else {
                // The kernel flow is gone (flushed); drop the ukey.
                self.revalidator.forget(&k);
                continue;
            };
            self.revalidator.push_stats(&k, hits, bytes);
            let reason = if kill_all {
                Some(DeleteReason::Evicted)
            } else if now.saturating_sub(used) > max_idle {
                Some(DeleteReason::Idle)
            } else if hard > 0 && now.saturating_sub(created) > hard {
                Some(DeleteReason::Hard)
            } else {
                let t = self.ofproto.translate(&k);
                let kactions = self.map_actions(&t.actions);
                let stale = self
                    .revalidator
                    .ukey(&k)
                    .map(|uk| kactions != uk.actions || t.mask != uk.mask)
                    .unwrap_or(false);
                if stale {
                    Some(DeleteReason::Changed)
                } else {
                    self.revalidator.refresh_rules(&k, t.rules);
                    None
                }
            };
            if let Some(reason) = reason {
                match reason {
                    DeleteReason::Idle => {
                        coverage!("revalidate_idle");
                        summary.deleted_idle += 1;
                    }
                    DeleteReason::Hard => {
                        coverage!("revalidate_hard");
                        summary.deleted_hard += 1;
                    }
                    DeleteReason::Changed => {
                        coverage!("revalidate_changed");
                        summary.deleted_changed += 1;
                    }
                    DeleteReason::Evicted => {
                        coverage!("flow_evicted");
                        summary.evicted += 1;
                    }
                }
                self.revalidator.note_delete(reason);
                kernel.ovs.remove_flow(&k, &mask);
                self.revalidator.forget(&k);
            }
        }

        // Evict LRU-first down to the limit (only dpif-installed flows —
        // the ones with ukeys — are candidates).
        if kernel.ovs.flow_count() > self.revalidator.flow_limit {
            let mut lru: Vec<(u64, u64, FlowKey)> = self
                .revalidator
                .keys()
                .into_iter()
                .filter_map(|k| {
                    let mask = self.revalidator.ukey(&k)?.mask;
                    let (_, _, used, _) = kernel.ovs.flow_stats(&k, &mask)?;
                    Some((used, k.hash(), k))
                })
                .collect();
            lru.sort_unstable_by_key(|(used, h, _)| (*used, *h));
            let excess = kernel.ovs.flow_count() - self.revalidator.flow_limit;
            for (_, _, k) in lru.into_iter().take(excess) {
                coverage!("flow_evicted");
                self.revalidator.note_delete(DeleteReason::Evicted);
                summary.evicted += 1;
                if let Some(uk) = self.revalidator.forget(&k) {
                    kernel.ovs.remove_flow(&k, &uk.mask);
                }
            }
        }

        let dump_ms = (core_ns(kernel, core) - t0) / 1_000_000;
        self.revalidator.note_dump(n_flows, dump_ms);
        summary.flow_limit = self.revalidator.flow_limit;
        summary.dump_duration_ms = self.revalidator.dump_duration_ms;
        summary
    }

    /// `ovs-appctl upcall/show` equivalent for the kernel datapath.
    pub fn upcall_show(&self, kernel: &Kernel) -> String {
        let mut out = self.revalidator.show(
            "system@ovs-system",
            kernel.ovs.flow_count(),
            self.flow_limit_hits,
        );
        out.push_str(&format!("  queue full    : {}\n", kernel.upcall_drops));
        out
    }

    fn map_actions(&self, actions: &[DpAction]) -> Vec<ovs_kernel::KAction> {
        use ovs_kernel::KAction;
        if actions.is_empty() {
            return vec![KAction::Drop];
        }
        actions
            .iter()
            .map(|a| match a {
                DpAction::Output(p) => KAction::Output(*p),
                DpAction::SetTunnel { id, dst } => KAction::SetTunnel(ovs_kernel::TunnelSpec {
                    id: *id,
                    src: self.tunnel_local_ip,
                    dst: *dst,
                    tos: 0,
                    ttl: 64,
                }),
                DpAction::SetEthSrc(m) => KAction::SetEthSrc(*m),
                DpAction::SetEthDst(m) => KAction::SetEthDst(*m),
                DpAction::PushVlan(t) => KAction::PushVlan(*t),
                DpAction::PopVlan => KAction::PopVlan,
                DpAction::Ct { zone, commit, nat } => KAction::Ct {
                    zone: *zone,
                    commit: *commit,
                    mark: None,
                    nat: *nat,
                },
                DpAction::Recirc(r) => KAction::Recirc(*r),
                // The kernel module has no meters here; policing is a
                // userspace feature in this reproduction (§6).
                DpAction::Meter(_) => KAction::Recirc(0),
                // NF chains are likewise userspace-only: the kernel
                // datapath cannot reach the NF manager's rings.
                DpAction::NfChain(_) => KAction::Recirc(0),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofproto::{OfAction, OfRule};
    use ovs_afxdp::OptLevel;
    use ovs_kernel::dev::{DeviceKind, NetDevice};
    use ovs_kernel::guest::{Guest, GuestRole, VirtioBackend};
    use ovs_packet::flow::{fields, FlowKey, FlowMask};

    const M1: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const M2: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);

    fn frame64() -> Vec<u8> {
        builder::udp_ipv4_frame(M1, M2, [10, 0, 0, 1], [10, 0, 0, 2], 100, 200, 64)
    }

    fn port_forward_rule(in_port: PortNo, out_port: PortNo) -> OfRule {
        let mut key = FlowKey::default();
        key.set_in_port(in_port);
        OfRule {
            table: 0,
            priority: 10,
            key,
            mask: FlowMask::of_fields(&[&fields::IN_PORT]),
            actions: vec![OfAction::Output(out_port)],
            cookie: 0,
        }
    }

    /// Two AF_XDP physical ports, forwarding p0 -> p1 (the P2P shape).
    fn p2p_setup() -> (Kernel, DpifNetdev, u32, u32) {
        let mut k = Kernel::new(8);
        let eth0 = k.add_device(NetDevice::new(
            "eth0",
            M1,
            DeviceKind::Phys { link_gbps: 25.0 },
            1,
        ));
        let eth1 = k.add_device(NetDevice::new(
            "eth1",
            M2,
            DeviceKind::Phys { link_gbps: 25.0 },
            1,
        ));
        let mut dp = DpifNetdev::new();
        let a0 = AfxdpPort::open(&mut k, eth0, 256, OptLevel::O5).unwrap();
        let a1 = AfxdpPort::open(&mut k, eth1, 256, OptLevel::O5).unwrap();
        let p0 = dp.add_port("eth0", PortType::Afxdp(a0));
        let p1 = dp.add_port("eth1", PortType::Afxdp(a1));
        dp.ofproto.add_rule(port_forward_rule(p0, p1));
        (k, dp, eth0, eth1)
    }

    #[test]
    fn p2p_forwarding_through_cache_hierarchy() {
        let (mut k, mut dp, eth0, eth1) = p2p_setup();
        // First packet: upcall. Later packets: megaflow/EMC hits.
        for _ in 0..10 {
            k.receive(eth0, 0, frame64());
            dp.pmd_poll(&mut k, 0, 0, 1);
        }
        assert_eq!(k.device(eth1).tx_wire.len(), 10);
        assert_eq!(dp.stats.upcalls, 1, "only the first packet upcalls");
        assert_eq!(dp.stats.megaflow_hits + dp.stats.emc_hits, 9);
        assert_eq!(dp.megaflow_count(), 1);
    }

    #[test]
    fn emc_promotion_after_repeated_hits() {
        let (mut k, mut dp, eth0, _eth1) = p2p_setup();
        dp.emc.insert_inv_prob = 1; // promote on first megaflow hit
        for _ in 0..3 {
            k.receive(eth0, 0, frame64());
            dp.pmd_poll(&mut k, 0, 0, 1);
        }
        assert_eq!(dp.stats.upcalls, 1);
        // With insertion probability 1, the upcall itself populates the
        // EMC, so the second and third packets both hit it.
        assert_eq!(dp.stats.megaflow_hits, 0);
        assert_eq!(dp.stats.emc_hits, 2);
    }

    #[test]
    fn thousand_flows_spread_across_megaflow() {
        let (mut k, mut dp, eth0, eth1) = p2p_setup();
        // The in_port-only rule wildcards addresses, so all 1000 flows
        // share ONE megaflow — the point of megaflows.
        for i in 0..1000u16 {
            let f = builder::udp_ipv4_frame(
                M1,
                M2,
                [10, 0, (i >> 8) as u8, i as u8],
                [10, 1, (i >> 8) as u8, i as u8],
                1000 + i,
                2000,
                64,
            );
            k.receive(eth0, 0, f);
            dp.pmd_poll(&mut k, 0, 0, 1);
        }
        assert_eq!(dp.stats.upcalls, 1, "one megaflow covers all flows");
        assert_eq!(dp.megaflow_count(), 1);
        assert_eq!(k.device(eth1).tx_wire.len(), 1000);
    }

    #[test]
    fn specific_rules_make_per_flow_megaflows() {
        let (mut k, mut dp, eth0, _) = p2p_setup();
        // Replace pipeline: match on nw_dst -> per-/32 megaflows.
        dp.ofproto = Ofproto::new();
        let mut mask = FlowMask::of_fields(&[&fields::IN_PORT]);
        mask.set_nw_dst_v4_prefix(32);
        for i in 0..16u8 {
            let mut key = FlowKey::default();
            key.set_in_port(0);
            key.set_nw_dst_v4([10, 1, 0, i]);
            dp.ofproto.add_rule(OfRule {
                table: 0,
                priority: 1,
                key,
                mask,
                actions: vec![OfAction::Output(1)],
                cookie: 0,
            });
        }
        for i in 0..16u8 {
            let f = builder::udp_ipv4_frame(M1, M2, [10, 0, 0, 1], [10, 1, 0, i], 5, 6, 64);
            k.receive(eth0, 0, f);
            dp.pmd_poll(&mut k, 0, 0, 1);
        }
        assert_eq!(dp.stats.upcalls, 16, "per-destination megaflows");
        assert_eq!(dp.megaflow_count(), 16);
    }

    #[test]
    fn ct_pipeline_recirculates_and_tracks() {
        let (mut k, mut dp, eth0, eth1) = p2p_setup();
        dp.ofproto = Ofproto::new();
        // Table 0: ct(zone 5, commit) -> resume at table 1.
        let mut key = FlowKey::default();
        key.set_in_port(0);
        dp.ofproto.add_rule(OfRule {
            table: 0,
            priority: 10,
            key,
            mask: FlowMask::of_fields(&[&fields::IN_PORT]),
            actions: vec![OfAction::Ct {
                zone: 5,
                commit: true,
                resume_table: 1,
                nat: None,
            }],
            cookie: 0,
        });
        // Table 1: tracked packets out port 1.
        dp.ofproto.add_rule(OfRule {
            table: 1,
            priority: 0,
            key: FlowKey::default(),
            mask: FlowMask::EMPTY,
            actions: vec![OfAction::Output(1)],
            cookie: 0,
        });
        k.receive(eth0, 0, frame64());
        dp.pmd_poll(&mut k, 0, 0, 1);
        assert_eq!(k.device(eth1).tx_wire.len(), 1);
        assert_eq!(dp.stats.recirculations, 1);
        assert_eq!(dp.ct.len(), 1, "connection committed in userspace CT");
        assert_eq!(dp.stats.upcalls, 2, "one per pipeline pass");
    }

    #[test]
    fn vhostuser_pvp_roundtrip() {
        // phys -> vm (vhostuser, PMD forwarder) -> phys: the PVP loop.
        let mut k = Kernel::new(8);
        let eth0 = k.add_device(NetDevice::new(
            "eth0",
            M1,
            DeviceKind::Phys { link_gbps: 25.0 },
            1,
        ));
        let g = k.add_guest(Guest::new(
            "vm0",
            M2,
            [10, 0, 0, 2],
            GuestRole::PmdForwarder,
            VirtioBackend::VhostUser,
            4,
        ));
        let mut dp = DpifNetdev::new();
        let a0 = AfxdpPort::open(&mut k, eth0, 256, OptLevel::O5).unwrap();
        let p0 = dp.add_port("eth0", PortType::Afxdp(a0));
        let pv = dp.add_port("vhost0", PortType::VhostUser(VhostUserDev::new(g)));
        dp.ofproto.add_rule(port_forward_rule(p0, pv));
        dp.ofproto.add_rule(port_forward_rule(pv, p0));

        k.receive(eth0, 0, frame64());
        dp.pmd_poll(&mut k, p0, 0, 1); // NIC -> datapath -> vhost
        assert_eq!(k.guests[g].rx_ring.len(), 1);
        k.run_guest(g); // guest forwards
        dp.pmd_poll(&mut k, pv, 0, 1); // vhost -> datapath -> NIC
        assert_eq!(k.device(eth0).tx_wire.len(), 1);
        let out = &k.device(eth0).tx_wire[0];
        assert_eq!(&out[0..6], M1.as_bytes(), "guest swapped MACs");
    }

    #[test]
    fn geneve_tunnel_tx_and_rx() {
        // Overlay: port 0 (afxdp "vm-facing") -> geneve tunnel -> uplink.
        let mut k = Kernel::new(4);
        let eth0 = k.add_device(NetDevice::new(
            "eth0",
            M1,
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        let uplink = k.add_device(NetDevice::new(
            "uplink",
            M2,
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        k.add_addr(uplink, [172, 16, 0, 1], 24);
        ovs_kernel::tools::ip_neigh_add(
            &mut k,
            [172, 16, 0, 2],
            MacAddr::new(4, 0, 0, 0, 0, 2),
            "uplink",
        )
        .unwrap();

        let mut dp = DpifNetdev::new();
        let a0 = AfxdpPort::open(&mut k, eth0, 128, OptLevel::O5).unwrap();
        let au = AfxdpPort::open(&mut k, uplink, 128, OptLevel::O5).unwrap();
        let p0 = dp.add_port("eth0", PortType::Afxdp(a0));
        let _pu = dp.add_port("uplink", PortType::Afxdp(au));
        let pt = dp.add_port(
            "gnv0",
            PortType::Tunnel(TunnelConfig {
                kind: tunnel::TunnelKind::Geneve,
                local_ip: [172, 16, 0, 1],
            }),
        );
        dp.sync_rtnl(&k);

        let mut key = FlowKey::default();
        key.set_in_port(p0);
        dp.ofproto.add_rule(OfRule {
            table: 0,
            priority: 10,
            key,
            mask: FlowMask::of_fields(&[&fields::IN_PORT]),
            actions: vec![
                OfAction::SetTunnel {
                    id: 5001,
                    dst: [172, 16, 0, 2],
                },
                OfAction::Output(pt),
            ],
            cookie: 0,
        });

        k.receive(eth0, 0, frame64());
        dp.pmd_poll(&mut k, p0, 0, 1);
        assert_eq!(dp.stats.tunnel_encaps, 1);
        let outer = k
            .dev_mut(uplink)
            .tx_wire
            .pop_front()
            .expect("encapsulated frame on uplink");
        // Decap side: a second datapath with the remote endpoint.
        let mut dp2 = DpifNetdev::new();
        let pt2 = dp2.add_port(
            "gnv0",
            PortType::Tunnel(TunnelConfig {
                kind: tunnel::TunnelKind::Geneve,
                local_ip: [172, 16, 0, 2],
            }),
        );
        let mut key2 = FlowKey::default();
        key2.set_in_port(pt2);
        key2.set_tun_id(5001);
        dp2.ofproto.add_rule(OfRule {
            table: 0,
            priority: 10,
            key: key2,
            mask: FlowMask::of_fields(&[&fields::IN_PORT, &fields::TUN_ID]),
            actions: vec![],
            cookie: 0,
        });
        let pkt = DpPacket::from_data(&outer);
        dp2.process_packet(&mut k, pkt, 1);
        assert_eq!(dp2.stats.tunnel_decaps, 1, "remote side decapsulated");
    }

    #[test]
    fn tso_segmentation_on_afxdp_egress() {
        let (mut k, mut dp, _eth0, eth1) = p2p_setup();
        // A 4380-byte TCP super-frame injected directly.
        let payload = vec![0u8; 4380];
        let f = builder::tcp_ipv4(
            M1,
            M2,
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1,
            2,
            100,
            0,
            ovs_packet::tcp::flags::ACK,
            &payload,
        );
        let mut pkt = DpPacket::from_data(&f);
        pkt.in_port = 0;
        dp.process_packet(&mut k, pkt, 1);
        assert_eq!(
            dp.stats.tso_segments, 3,
            "segmented to MSS on AF_XDP egress"
        );
        assert_eq!(k.device(eth1).tx_wire.len(), 3);
    }

    #[test]
    fn meter_limits_rate() {
        let (mut k, mut dp, eth0, eth1) = p2p_setup();
        dp.ofproto = Ofproto::new();
        let mut key = FlowKey::default();
        key.set_in_port(0);
        dp.ofproto.add_rule(OfRule {
            table: 0,
            priority: 1,
            key,
            mask: FlowMask::of_fields(&[&fields::IN_PORT]),
            actions: vec![OfAction::Meter(1), OfAction::Output(1)],
            cookie: 0,
        });
        // A meter passing only ~one 64-byte packet.
        dp.meters.set(1, crate::meter::Meter::new(1_000, 512));
        for _ in 0..5 {
            k.receive(eth0, 0, frame64());
            dp.pmd_poll(&mut k, 0, 0, 1);
        }
        assert_eq!(k.device(eth1).tx_wire.len(), 1);
        assert_eq!(dp.stats.meter_drops, 4);
    }

    #[test]
    fn stats_invariant_coherent_across_paths() {
        // Exercise every accounting path: upcalls, cache hits, ct
        // recirculation, and meter drops — the invariant must hold after
        // each poll (it is also debug_asserted inside the datapath).
        let (mut k, mut dp, eth0, _eth1) = p2p_setup();
        dp.ofproto = Ofproto::new();
        let mut key = FlowKey::default();
        key.set_in_port(0);
        dp.ofproto.add_rule(OfRule {
            table: 0,
            priority: 10,
            key,
            mask: FlowMask::of_fields(&[&fields::IN_PORT]),
            actions: vec![
                OfAction::Meter(1),
                OfAction::Ct {
                    zone: 5,
                    commit: true,
                    resume_table: 1,
                    nat: None,
                },
            ],
            cookie: 0,
        });
        dp.ofproto.add_rule(OfRule {
            table: 1,
            priority: 0,
            key: FlowKey::default(),
            mask: FlowMask::EMPTY,
            actions: vec![OfAction::Output(1)],
            cookie: 0,
        });
        dp.meters.set(1, crate::meter::Meter::new(1_000, 512));
        for _ in 0..6 {
            k.receive(eth0, 0, frame64());
            dp.pmd_poll(&mut k, 0, 0, 1);
            assert!(dp.stats.coherent(), "{:?}", dp.stats);
        }
        assert!(dp.stats.meter_drops > 0, "meter engaged");
        assert!(dp.stats.recirculations > 0, "ct recirculated");
        let s = dp.stats;
        assert_eq!(
            s.emc_hits + s.megaflow_hits + s.upcalls,
            s.packets_processed + s.recirculations
        );
    }

    #[test]
    fn trace_renders_pipeline_decisions() {
        let (mut k, mut dp, _eth0, eth1) = p2p_setup();
        // Cold caches: the trace shows the upcall and the translation.
        let cold = dp.ofproto_trace(&mut k, &frame64(), 0, 0);
        assert!(cold.contains("Trace: "), "{cold}");
        assert!(cold.contains("upcall to ofproto"), "{cold}");
        assert!(cold.contains("table 0: matched priority 10"), "{cold}");
        assert!(cold.contains("megaflow installed"), "{cold}");
        assert!(cold.contains("output: port 1"), "{cold}");
        // The traced packet was really forwarded.
        assert_eq!(k.device(eth1).tx_wire.len(), 1);
        assert!(dp.trace.is_none(), "trace detached after rendering");
        // Warm caches: the same packet now shows a cache hit, no upcall.
        let warm = dp.ofproto_trace(&mut k, &frame64(), 0, 0);
        assert!(
            warm.contains("EMC hit") || warm.contains("megaflow hit"),
            "{warm}"
        );
        assert!(!warm.contains("upcall"), "{warm}");
    }

    #[test]
    fn perf_stage_cycles_sum_exactly_to_poll_total() {
        let (mut k, mut dp, eth0, _eth1) = p2p_setup();
        for _ in 0..20 {
            k.receive(eth0, 0, frame64());
            dp.pmd_poll(&mut k, 0, 0, 1);
        }
        let perf = dp.perf.get(&1).expect("core 1 polled");
        assert!(perf.poll_ns_total() > 0, "sim time advanced");
        assert_eq!(
            perf.stage_ns_total(),
            perf.poll_ns_total(),
            "exact attribution"
        );
        let show = dp.pmd_perf_show(k.sim.cpus.hz);
        assert!(show.contains("pmd thread core 1"), "{show}");
        assert!(show.contains("emc lookup"), "{show}");
        // Clearing zeroes both counters and perf.
        dp.pmd_stats_clear();
        assert!(dp.perf.is_empty());
        assert_eq!(dp.stats.rx_packets, 0);
    }

    #[test]
    fn netlink_dpif_installs_kernel_flows() {
        // Kernel datapath baseline: miss -> upcall -> install -> fast path.
        let mut k = Kernel::new(4);
        let eth0 = k.add_device(NetDevice::new(
            "eth0",
            M1,
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        let eth1 = k.add_device(NetDevice::new(
            "eth1",
            M2,
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        let p0 = k
            .ovs
            .add_vport(ovs_kernel::ovs_module::Vport::Netdev { ifindex: eth0 });
        let p1 = k
            .ovs
            .add_vport(ovs_kernel::ovs_module::Vport::Netdev { ifindex: eth1 });
        k.dev_mut(eth0).attachment = ovs_kernel::Attachment::OvsBridge { port: p0 };
        k.dev_mut(eth1).attachment = ovs_kernel::Attachment::OvsBridge { port: p1 };

        let mut dpif = DpifNetlink::new([0, 0, 0, 0]);
        dpif.ofproto.add_rule(port_forward_rule(p0, p1));

        // First packet misses in the kernel and upcalls.
        k.receive(eth0, 0, frame64());
        assert_eq!(k.upcalls.len(), 1);
        assert_eq!(dpif.handle_upcalls(&mut k, 2), 1);
        // The re-executed packet went out eth1, and the flow is installed.
        assert_eq!(k.device(eth1).tx_wire.len(), 1);
        assert_eq!(k.ovs.flow_count(), 1);
        // Subsequent packets take the kernel fast path: no upcalls.
        k.receive(eth0, 0, frame64());
        assert!(k.upcalls.is_empty());
        assert_eq!(k.device(eth1).tx_wire.len(), 2);
    }
}
