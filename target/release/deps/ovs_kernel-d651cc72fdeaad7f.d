/root/repo/target/release/deps/ovs_kernel-d651cc72fdeaad7f.d: crates/kernel/src/lib.rs crates/kernel/src/conntrack.rs crates/kernel/src/dev.rs crates/kernel/src/guest.rs crates/kernel/src/kernel.rs crates/kernel/src/namespace.rs crates/kernel/src/neigh.rs crates/kernel/src/ovs_module.rs crates/kernel/src/route.rs crates/kernel/src/rtnetlink.rs crates/kernel/src/tools.rs crates/kernel/src/xsk.rs

/root/repo/target/release/deps/libovs_kernel-d651cc72fdeaad7f.rlib: crates/kernel/src/lib.rs crates/kernel/src/conntrack.rs crates/kernel/src/dev.rs crates/kernel/src/guest.rs crates/kernel/src/kernel.rs crates/kernel/src/namespace.rs crates/kernel/src/neigh.rs crates/kernel/src/ovs_module.rs crates/kernel/src/route.rs crates/kernel/src/rtnetlink.rs crates/kernel/src/tools.rs crates/kernel/src/xsk.rs

/root/repo/target/release/deps/libovs_kernel-d651cc72fdeaad7f.rmeta: crates/kernel/src/lib.rs crates/kernel/src/conntrack.rs crates/kernel/src/dev.rs crates/kernel/src/guest.rs crates/kernel/src/kernel.rs crates/kernel/src/namespace.rs crates/kernel/src/neigh.rs crates/kernel/src/ovs_module.rs crates/kernel/src/route.rs crates/kernel/src/rtnetlink.rs crates/kernel/src/tools.rs crates/kernel/src/xsk.rs

crates/kernel/src/lib.rs:
crates/kernel/src/conntrack.rs:
crates/kernel/src/dev.rs:
crates/kernel/src/guest.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/namespace.rs:
crates/kernel/src/neigh.rs:
crates/kernel/src/ovs_module.rs:
crates/kernel/src/route.rs:
crates/kernel/src/rtnetlink.rs:
crates/kernel/src/tools.rs:
crates/kernel/src/xsk.rs:
