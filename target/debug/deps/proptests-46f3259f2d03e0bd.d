/root/repo/target/debug/deps/proptests-46f3259f2d03e0bd.d: crates/ring/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-46f3259f2d03e0bd.rmeta: crates/ring/tests/proptests.rs Cargo.toml

crates/ring/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
