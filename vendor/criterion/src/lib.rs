//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! API this workspace's benches use. No registry access is available in
//! the container or CI, so the real criterion cannot be resolved; this
//! keeps `cargo bench` compiling and producing useful (if simpler)
//! wall-clock numbers: a fixed warm-up, then a timed measurement window,
//! reporting mean ns/iter and throughput when configured.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(700),
            filter: None,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Honors a single positional substring filter and ignores the
    /// harness flags cargo passes (`--bench`, etc.).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.measurement = Duration::from_secs_f64(secs);
                    }
                }
                "--warm-up-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.warm_up = Duration::from_secs_f64(secs);
                    }
                }
                f if !f.starts_with('-') => self.filter = Some(f.to_string()),
                _ => {}
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let group = name.to_string();
        run_one(self, &group, None, None, f);
        self
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        f: F,
    ) -> &mut Self {
        let (name, throughput) = (self.name.clone(), self.throughput);
        run_one(
            self.criterion,
            &name,
            Some(&id.into_bench_id()),
            throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Accept both `&str` and `BenchmarkId` where criterion does.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

/// Passed to the closure; `iter` runs the routine under timing.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// (iterations, elapsed) recorded by the last `iter` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target =
            ((self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, u64::MAX);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.result = Some((target, start.elapsed()));
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some((iters.max(1), total));
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: &str,
    id: Option<&str>,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = match id {
        Some(id) => format!("{group}/{id}"),
        None => group.to_string(),
    };
    if let Some(filter) = &criterion.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        warm_up: criterion.warm_up,
        measurement: criterion.measurement,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((iters, elapsed)) => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            let rate = throughput.map(|t| match t {
                Throughput::Bytes(n) => {
                    format!("  {:.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
                }
                Throughput::Elements(n) => format!("  {:.1} Melem/s", n as f64 / ns * 1e9 / 1e6),
            });
            println!("{full:<50} {ns:>12.1} ns/iter{}", rate.unwrap_or_default());
        }
        None => println!("{full:<50} (no measurement)"),
    }
}

/// Both the `name/config/targets` form and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
