//! Ethernet II frames.

use crate::{MacAddr, ParseError, Result};

/// Well-known EtherType values used by the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    Arp,
    Vlan,
    Ipv6,
    /// Any other value, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// Decode from the 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }

    /// Encode to the 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => v,
        }
    }
}

/// Byte offsets within an Ethernet header.
mod field {
    pub const DST: core::ops::Range<usize> = 0..6;
    pub const SRC: core::ops::Range<usize> = 6..12;
    pub const ETHERTYPE: core::ops::Range<usize> = 12..14;
    pub const PAYLOAD: usize = 14;
}

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = field::PAYLOAD;

/// A typed view over an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap a buffer, validating the minimum length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Wrap a buffer without validation. Accessors may panic if it is too
    /// short; use only on buffers this crate produced.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        MacAddr::from_slice(&self.buffer.as_ref()[field::DST]).unwrap()
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        MacAddr::from_slice(&self.buffer.as_ref()[field::SRC]).unwrap()
    }

    /// EtherType of the payload.
    pub fn ethertype(&self) -> EtherType {
        let raw = &self.buffer.as_ref()[field::ETHERTYPE];
        EtherType::from_u16(u16::from_be_bytes([raw[0], raw[1]]))
    }

    /// Payload bytes following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination MAC address.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(mac.as_bytes());
    }

    /// Set the source MAC address.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(mac.as_bytes());
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[field::ETHERTYPE].copy_from_slice(&ty.to_u16().to_be_bytes());
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 4];
        let mut f = EthernetFrame::new_unchecked(&mut buf[..]);
        f.set_dst(MacAddr::new(1, 2, 3, 4, 5, 6));
        f.set_src(MacAddr::new(7, 8, 9, 10, 11, 12));
        f.set_ethertype(EtherType::Ipv4);
        f.payload_mut().copy_from_slice(&[0xaa; 4]);
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = sample();
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.dst(), MacAddr::new(1, 2, 3, 4, 5, 6));
        assert_eq!(f.src(), MacAddr::new(7, 8, 9, 10, 11, 12));
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload(), &[0xaa; 4]);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err(),
            ParseError::Truncated
        );
    }

    #[test]
    fn ethertype_codes() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Ipv6);
        assert_eq!(EtherType::from_u16(0x1234), EtherType::Other(0x1234));
        assert_eq!(EtherType::Vlan.to_u16(), 0x8100);
    }
}
