/root/repo/target/release/deps/ovs_dpdk-4d78ba1307e56952.d: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

/root/repo/target/release/deps/libovs_dpdk-4d78ba1307e56952.rlib: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

/root/repo/target/release/deps/libovs_dpdk-4d78ba1307e56952.rmeta: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

crates/dpdk/src/lib.rs:
crates/dpdk/src/af_packet.rs:
crates/dpdk/src/ethdev.rs:
crates/dpdk/src/mbuf.rs:
crates/dpdk/src/testpmd.rs:
crates/dpdk/src/vhost.rs:
