//! Golden observability test: a deterministic two-host NSX scenario
//! exercises the full datapath, then asserts the rendered `coverage/show`
//! and `dpif-netdev/pmd-perf-show` text, the exact per-stage cycle
//! attribution, and the `ofproto/trace` of a Geneve-tunnelled VM frame
//! through the NSX pipeline.
//!
//! Coverage counters are thread-local and the sim clock is virtual, so
//! every number below is exactly reproducible; if a datapath change
//! legitimately shifts one, update the golden alongside it.

use ovs_afxdp::OptLevel;
use ovs_afxdp_repro::kernel::tools;
use ovs_afxdp_repro::nsx::ruleset::{self, NsxConfig};
use ovs_afxdp_repro::nsx::topology::{DatapathKind, Host, HostConfig, VmAttachment};
use ovs_afxdp_repro::obs::coverage;
use ovs_afxdp_repro::ovs::appctl;
use ovs_afxdp_repro::packet::builder;

/// The deterministic 2-VM NSX host pair on the userspace AF_XDP datapath.
fn build_host(id: u8) -> Host {
    let dpk = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O5,
        interrupt_mode: false,
    };
    let mut cfg = HostConfig::nsx_default(id, dpk, VmAttachment::VhostUser);
    cfg.nsx = NsxConfig {
        vms: 2,
        tunnels: 4,
        target_rules: 800,
        local_vtep: [172, 16, 0, id],
        remote_vtep: [172, 16, 0, 3 - id],
        ..NsxConfig::default()
    };
    Host::build(&cfg)
}

fn vm_frame(src_host: u8, dst_host: u8) -> Vec<u8> {
    builder::udp_ipv4_frame(
        ruleset::vm_mac(src_host, 0, 0),
        ruleset::vm_mac(dst_host, 0, 0),
        ruleset::vm_ip(src_host, 0, 0),
        ruleset::vm_ip(dst_host, 0, 0),
        3333,
        4444,
        200,
    )
}

/// Shuttle frames between the two hosts until quiescent.
fn run_pair(a: &mut Host, b: &mut Host) {
    for _ in 0..32 {
        let mut moved = a.pump() + b.pump();
        for f in a.wire_take() {
            b.wire_inject(f);
            moved += 1;
        }
        for f in b.wire_take() {
            a.wire_inject(f);
            moved += 1;
        }
        if moved == 0 {
            break;
        }
    }
}

const GOLDEN_COVERAGE: &str = "\
counter                             total        epoch    avg/epoch
batch_flush                           159          159        159.0
bpf_helper_call                        32           32         32.0
bpf_insn_executed                     192          192        192.0
bpf_prog_run                           32           32         32.0
dpif_ct_lookup                         96           96         96.0
dpif_megaflow_hit                     147          147        147.0
dpif_packet                            63           63         63.0
dpif_recirc                            96           96         96.0
dpif_rx                                63           63         63.0
dpif_tunnel_decap                      31           31         31.0
dpif_tunnel_encap                      32           32         32.0
dpif_tx                                63           63         63.0
dpif_upcall                            12           12         12.0
xsk_rx_batch                           31           31         31.0
xsk_rx_packet                          31           31         31.0
xsk_tx_kick                            32           32         32.0
xsk_tx_packet                          32           32         32.0
";

const GOLDEN_PERF: &str = "\
pmd thread core 1:
  iterations: 378  packets: 31  busy: 52406 ns (125774 cycles)
  avg cycles/pkt: 4057.2
  rx                           2447 ns           5872 cycles    4.7%
  parse                        4650 ns          11160 cycles    8.9%
  emc lookup                   2340 ns           5616 cycles    4.5%
  smc lookup                      0 ns              0 cycles    0.0%
  megaflow lookup              9220 ns          22128 cycles   17.6%
  upcall/translate            13600 ns          32640 cycles   26.0%
  batch setup/flush            8112 ns          19468 cycles   15.5%
  actions                      5640 ns          13536 cycles   10.8%
  recirc                       1645 ns           3948 cycles    3.1%
  tx                           4752 ns          11404 cycles    9.1%
  revalidate                      0 ns              0 cycles    0.0%
  per-packet ns: p50 2047 p90 2047 p99 10895 p99.9 10895 max 10895
all pmd threads:
  iterations: 378  packets: 31  busy: 52406 ns (125774 cycles)
  avg cycles/pkt: 4057.2
  rx                           2447 ns           5872 cycles    4.7%
  parse                        4650 ns          11160 cycles    8.9%
  emc lookup                   2340 ns           5616 cycles    4.5%
  smc lookup                      0 ns              0 cycles    0.0%
  megaflow lookup              9220 ns          22128 cycles   17.6%
  upcall/translate            13600 ns          32640 cycles   26.0%
  batch setup/flush            8112 ns          19468 cycles   15.5%
  actions                      5640 ns          13536 cycles   10.8%
  recirc                       1645 ns           3948 cycles    3.1%
  tx                           4752 ns          11404 cycles    9.1%
  revalidate                      0 ns              0 cycles    0.0%
  per-packet ns: p50 2047 p90 2047 p99 10895 p99.9 10895 max 10895
";

const GOLDEN_RXQ: &str = "\
pmd thread core 1:
  isolated : false
  port: eth0             queue-id:  0  pmd usage:  40 %
  port: gnv0             queue-id:  0  pmd usage:   0 %
  port: vhost0           queue-id:  0  pmd usage:  59 %
  port: vhost1           queue-id:  0  pmd usage:   0 %
  port: vhost2           queue-id:  0  pmd usage:   0 %
  port: vhost3           queue-id:  0  pmd usage:   0 %
";

const GOLDEN_AUTO_LB: &str = "\
pmd-auto-lb: disabled
  assignment policy     : roundrobin
  improvement threshold : 25 %
  checks (dry runs)     : 0
  rebalances applied    : 0
  last improvement      : n/a
";

const GOLDEN_TRACE: &str = "\
Trace: 200 byte frame on in_port=2
pass 1: flow in_port=2,eth_type=0x0800,nw_src=10.101.0.2,nw_dst=10.102.0.2,nw_proto=17,tp_src=3333,tp_dst=4444
    cache: megaflow hit (mask 128 bits)
    Datapath actions: [Ct { zone: 1, commit: false, nat: None }, Recirc(1)]
    ct(zone=1,commit=false): verdict ct_state=0x03
    recirc(0x1)
pass 2: flow in_port=2,eth_type=0x0800,nw_src=10.101.0.2,nw_dst=10.102.0.2,nw_proto=17,tp_src=3333,tp_dst=4444,recirc_id=0x1,ct_state=0x03
    cache: megaflow hit (mask 81 bits)
    Datapath actions: [Ct { zone: 100, commit: true, nat: None }, Recirc(2)]
    ct(zone=100,commit=true): verdict ct_state=0x05
    recirc(0x2)
pass 3: flow in_port=2,eth_type=0x0800,nw_src=10.101.0.2,nw_dst=10.102.0.2,nw_proto=17,tp_src=3333,tp_dst=4444,recirc_id=0x2,ct_state=0x05
    cache: megaflow hit (mask 112 bits)
    Datapath actions: [SetTunnel { id: 5000, dst: [172, 16, 0, 2] }, Output(1)]
    tunnel encap (Geneve): tun_id=5000, dst=172.16.0.2, outer 250 bytes
    output: port 0 (eth0, afxdp(if1))
";

#[test]
fn golden_observability_two_host_nsx() {
    coverage::reset();
    let mut h1 = build_host(1);
    let mut h2 = build_host(2);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());

    // VM0 on host 1 sends one UDP datagram to VM0 on host 2; the echo
    // guest answers, so the flow crosses the overlay in both directions.
    let g = h1.guest_of_vif[0];
    h1.kernel.guests[g].tx_ring.push_back(vm_frame(1, 2));
    run_pair(&mut h1, &mut h2);

    // --- pmd-perf-show: exact stage attribution --------------------
    let dp1 = h1.dp.as_ref().unwrap();
    let perf = dp1.perf.get(&h1.switch_core).expect("switch core polled");
    assert!(perf.poll_ns_total() > 0, "sim time advanced");
    assert_eq!(
        perf.stage_ns_total(),
        perf.poll_ns_total(),
        "per-stage cycles sum exactly to total pmd_poll cycles"
    );

    let dp1 = h1.dp.as_mut().unwrap();
    let show = appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/pmd-perf-show", &[]).unwrap();
    assert_eq!(show, GOLDEN_PERF, "pmd-perf-show golden drifted:\n{show}");

    // --- coverage/show --------------------------------------------
    let dp1 = h1.dp.as_mut().unwrap();
    let cov = appctl::dispatch(dp1, &mut h1.kernel, "coverage/show", &[]).unwrap();
    assert_eq!(cov, GOLDEN_COVERAGE, "coverage/show golden drifted:\n{cov}");

    // --- ofproto/trace of the Geneve path -------------------------
    // The flow is warm, so each pass hits the megaflow cache; the trace
    // shows the two firewall ct/recirc passes and the Geneve encap —
    // the NSX two-bridge pipeline end to end.
    h1.kernel.capture_start(h1.uplink_if);
    let dp1 = h1.dp.as_mut().unwrap();
    let vif0 = h1.ports.vifs[0];
    let trace = dp1.ofproto_trace(&mut h1.kernel, &vm_frame(1, 2), vif0, h1.switch_core);
    assert_eq!(
        trace, GOLDEN_TRACE,
        "ofproto/trace golden drifted:\n{trace}"
    );

    // Attribution stays exact with the traced packet folded in.
    let dp1 = h1.dp.as_ref().unwrap();
    let perf = dp1.perf.get(&h1.switch_core).unwrap();
    assert_eq!(perf.stage_ns_total(), perf.poll_ns_total());

    // --- tcpdump correlates the traced frame ----------------------
    // The encapsulated outer frame left on the uplink while the trace
    // was attached, so the capture tags it.
    let lines = tools::tcpdump(&mut h1.kernel, "eth0", 64).unwrap();
    let tagged: Vec<_> = lines.iter().filter(|l| l.contains("[traced]")).collect();
    assert_eq!(
        tagged.len(),
        1,
        "exactly the traced egress is tagged: {lines:?}"
    );
    assert!(
        tagged[0].contains("172.16.0.1 > 172.16.0.2"),
        "outer Geneve header: {}",
        tagged[0]
    );

    // --- nstat carries the coverage counters ----------------------
    let ns = tools::nstat(&h1.kernel);
    assert!(ns.contains("dpif_tunnel_encap"), "{ns}");
    assert!(ns.contains("xsk_tx_packet"), "{ns}");

    // --- ethtool -S shows driver-boundary coverage ----------------
    let es = tools::ethtool_stats(&h1.kernel, "eth0").unwrap();
    assert!(es.contains("xsk_rx_batch"), "{es}");

    // --- pmd-rxq-show / pmd-auto-lb-show --------------------------
    let rxq = h1.appctl("dpif-netdev/pmd-rxq-show", &[]).unwrap();
    assert_eq!(rxq, GOLDEN_RXQ, "pmd-rxq-show golden drifted:\n{rxq}");
    let lb = h1.appctl("dpif-netdev/pmd-auto-lb-show", &[]).unwrap();
    assert_eq!(lb, GOLDEN_AUTO_LB, "pmd-auto-lb-show golden drifted:\n{lb}");

    // --- pmd-stats-clear resets both stats and perf ---------------
    let dp1 = h1.dp.as_mut().unwrap();
    let out = appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/pmd-stats-clear", &[]).unwrap();
    assert!(out.contains("cleared"));
    assert!(dp1.perf.is_empty());
    assert_eq!(dp1.stats.rx_packets, 0);
}
