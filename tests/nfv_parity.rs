//! NF-chain parity proptests (tier-1): the nfv subsystem must be
//! observationally equivalent to simple single-threaded reference
//! models, and its accounting must stay exact under crash schedules.
//!
//! Three contracts:
//! * a chain of pass-throughs is byte-for-byte equal to no chain at all
//!   (same wire output, nothing dropped);
//! * the built-in firewall and load balancer agree packet-by-packet with
//!   independent re-implementations of their specs (first-match-wins
//!   rules; FNV-1a 5-tuple hash mod backends);
//! * under a random NfPanic schedule, every offered frame is delivered
//!   or claimed by exactly one drop counter.

use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_core::dpif::PortType;
use ovs_core::{AssignmentPolicy, DpifNetdev, PmdSet};
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_nfv::{ChainPolicy, FwRule, Ingress, NfManager, NfSpec};
use ovs_packet::{builder, DpPacket, MacAddr};
use ovs_tgen::scenarios::DROP_COUNTERS;

use proptest::prelude::*;

/// Keep the injected NF panic's backtrace out of the test output; any
/// other panic still reports normally.
fn quiet_simulated_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let simulated = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("simulated datapath bug"))
                .unwrap_or(false);
            if !simulated {
                default_hook(info);
            }
        }));
    });
}

fn udp_frame(sport: u16, dport: u16, payload: &[u8]) -> Vec<u8> {
    builder::udp_ipv4(
        MacAddr::new(2, 0, 0, 0, 9, 9),
        MacAddr::new(2, 0, 0, 0, 0, 1),
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        sport,
        dport,
        payload,
    )
}

// ----------------------------------------------------------------------
// (a) Pass-through chains are observationally invisible
// ----------------------------------------------------------------------

/// Forward `frames` through a two-port datapath, either directly
/// (`chain_len == 0`) or through a chain of that many pass-through NFs,
/// and return the wire output plus the datapath drop counter.
fn forward_rig(chain_len: usize, frames: &[Vec<u8>]) -> (Vec<Vec<u8>>, u64) {
    let mut k = Kernel::new(8);
    let nic0 = k.add_device(NetDevice::new(
        "eth0",
        MacAddr::new(2, 0, 0, 0, 0, 1),
        DeviceKind::Phys { link_gbps: 10.0 },
        1,
    ));
    let nic1 = k.add_device(NetDevice::new(
        "eth1",
        MacAddr::new(2, 0, 0, 0, 0, 2),
        DeviceKind::Phys { link_gbps: 10.0 },
        1,
    ));
    let mut dp = DpifNetdev::new();
    let p0 = dp.add_port(
        "eth0",
        PortType::Afxdp(AfxdpPort::open(&mut k, nic0, 1024, OptLevel::O5).unwrap()),
    );
    let p1 = dp.add_port(
        "eth1",
        PortType::Afxdp(AfxdpPort::open(&mut k, nic1, 1024, OptLevel::O5).unwrap()),
    );
    dp.set_emc_insert_inv_prob(1);
    if chain_len > 0 {
        let specs = (0..chain_len)
            .map(|i| (format!("pt{i}"), NfSpec::PassThrough))
            .collect();
        let cid = dp.nfv.add_chain(0, specs, 64, p1, ChainPolicy::Bypass);
        dp.add_flows(&format!(
            "table=0, priority=10, udp, actions=nf_chain:{cid}"
        ))
        .unwrap();
    } else {
        dp.add_flows(&format!("table=0, priority=10, udp, actions=output:{p1}"))
            .unwrap();
    }
    let mut pmds = PmdSet::new(&[4, 5], AssignmentPolicy::RoundRobin);
    pmds.add_port_rxqs(p0, 1);
    if chain_len > 0 {
        pmds.add_nf_units(chain_len);
    }
    pmds.rebalance();

    for f in frames {
        k.receive(nic0, 0, f.clone());
    }
    for _ in 0..256 {
        let moved = pmds.run_round(&mut dp, &mut k);
        k.sim.clock.advance(100_000);
        let parked: usize = dp
            .nfv
            .chains()
            .iter()
            .map(|c| dp.nfv.chain_occupancy(c))
            .sum();
        if moved == 0 && parked == 0 {
            break;
        }
    }
    let wire: Vec<Vec<u8>> = k.device(nic1).tx_wire.iter().cloned().collect();
    (wire, dp.stats.dropped)
}

proptest! {
    /// A chain of 1..=5 pass-through NFs forwards exactly the frames a
    /// plain `output` action forwards, in the same order, dropping none.
    #[test]
    fn passthrough_chain_equals_no_chain(
        chain_len in 1usize..=5,
        specs in prop::collection::vec((1u16..60_000, 1u16..60_000, 0usize..64), 1..32),
    ) {
        let frames: Vec<Vec<u8>> = specs
            .iter()
            .map(|&(sp, dp_, n)| udp_frame(sp, dp_, &vec![0x5au8; n]))
            .collect();
        let (direct, direct_dropped) = forward_rig(0, &frames);
        let (chained, chained_dropped) = forward_rig(chain_len, &frames);
        prop_assert_eq!(direct_dropped, 0);
        prop_assert_eq!(chained_dropped, 0);
        prop_assert_eq!(&direct, &frames, "direct path must forward everything");
        prop_assert_eq!(&chained, &direct, "pass-through chain must be invisible");
    }
}

// ----------------------------------------------------------------------
// (b) Firewall ≡ first-match-wins reference
// ----------------------------------------------------------------------

/// Independent re-implementation of the firewall spec: parse the frame,
/// find the first rule matching (proto, dport), fall back to the
/// default.
fn ref_firewall_allows(rules: &[FwRule], default_allow: bool, frame: &[u8]) -> bool {
    let Some((proto, dport)) = ref_parse(frame) else {
        return default_allow;
    };
    rules
        .iter()
        .find(|r| r.proto.is_none_or(|p| p == proto) && dport >= r.dport_lo && dport <= r.dport_hi)
        .map_or(default_allow, |r| r.allow)
}

/// Minimal independent header parse: (proto, dport) for IPv4 frames.
fn ref_parse(f: &[u8]) -> Option<(u8, u16)> {
    if f.len() < 34 || f[12] != 0x08 || f[13] != 0x00 {
        return None;
    }
    let ihl = (f[14] & 0x0f) as usize * 4;
    let proto = f[23];
    let l4 = 14 + ihl;
    let dport = if (proto == 6 || proto == 17) && f.len() >= l4 + 4 {
        u16::from_be_bytes([f[l4 + 2], f[l4 + 3]])
    } else {
        0
    };
    Some((proto, dport))
}

/// Independent FNV-1a over the canonical 13-byte 5-tuple encoding.
fn ref_lb_backend(backends: &[u32], frame: &[u8]) -> Option<u32> {
    if frame.len() < 34 || frame[12] != 0x08 || frame[13] != 0x00 || backends.is_empty() {
        return None;
    }
    let ihl = (frame[14] & 0x0f) as usize * 4;
    let proto = frame[23];
    let l4 = 14 + ihl;
    let (sport, dport) = if (proto == 6 || proto == 17) && frame.len() >= l4 + 4 {
        (
            u16::from_be_bytes([frame[l4], frame[l4 + 1]]),
            u16::from_be_bytes([frame[l4 + 2], frame[l4 + 3]]),
        )
    } else {
        (0, 0)
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in frame[26..34].iter().chain(&[
        (sport >> 8) as u8,
        sport as u8,
        (dport >> 8) as u8,
        dport as u8,
        proto,
    ]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Some(backends[(h % backends.len() as u64) as usize])
}

/// Push `frames` through a single-NF chain at the manager level and
/// return (exited frame bytes with exit port, verdict drops).
fn single_nf_run(spec: NfSpec, frames: &[Vec<u8>]) -> (Vec<(Vec<u8>, u32)>, u64) {
    let mut mgr = NfManager::new();
    let cid = mgr.add_chain(
        0,
        vec![("nf".to_string(), spec)],
        128,
        7,
        ChainPolicy::Bypass,
    );
    let nf0 = mgr.chain_of_tenant(0).unwrap().nfs[0];
    let mut exits = Vec::new();
    for f in frames {
        let pkt = DpPacket::from_data(f);
        match mgr.ingress(cid, &pkt) {
            Ingress::Queued { .. } => {}
            Ingress::Exit { pkt, port } => exits.push((pkt.data().to_vec(), port)),
            Ingress::RingFull { .. } => panic!("128-slot ring must not fill under eager drain"),
            Ingress::FailClosed { .. } | Ingress::NoChain => {
                panic!("healthy single-NF chain refused a packet")
            }
        }
        // Drain eagerly so the 128-slot ring never backpressures.
        let out = mgr.poll_nf(nf0, 32, 0, false);
        exits.extend(out.exits.iter().map(|(p, port)| (p.data().to_vec(), *port)));
    }
    loop {
        let out = mgr.poll_nf(nf0, 32, 0, false);
        if out.processed == 0 {
            break;
        }
        exits.extend(out.exits.iter().map(|(p, port)| (p.data().to_vec(), *port)));
    }
    (exits, mgr.totals().verdict_drops)
}

fn arb_fw_rule() -> impl Strategy<Value = FwRule> {
    (
        prop_oneof![
            Just(None),
            Just(Some(6u8)),
            Just(Some(17u8)),
            (0u8..=255).prop_map(Some),
        ],
        0u16..2000,
        0u16..2000,
        any::<bool>(),
    )
        .prop_map(|(proto, a, b, allow)| FwRule {
            proto,
            dport_lo: a.min(b),
            dport_hi: a.max(b),
            allow,
        })
}

proptest! {
    /// The built-in firewall's forward/drop decisions match the
    /// reference model packet-by-packet, in order.
    #[test]
    fn firewall_matches_reference(
        rules in prop::collection::vec(arb_fw_rule(), 0..6),
        default_allow in any::<bool>(),
        specs in prop::collection::vec((1u16..60_000, 0u16..2500, 0usize..32), 1..48),
    ) {
        let frames: Vec<Vec<u8>> = specs
            .iter()
            .map(|&(sp, dp_, n)| udp_frame(sp, dp_, &vec![0u8; n]))
            .collect();
        let spec = NfSpec::Firewall { rules: rules.clone(), default_allow };
        let (exits, drops) = single_nf_run(spec, &frames);
        let expected: Vec<&Vec<u8>> = frames
            .iter()
            .filter(|f| ref_firewall_allows(&rules, default_allow, f))
            .collect();
        prop_assert_eq!(drops, (frames.len() - expected.len()) as u64);
        prop_assert_eq!(exits.len(), expected.len());
        for ((got, port), want) in exits.iter().zip(expected) {
            prop_assert_eq!(got, want, "forwarded frames must come out unmodified, in order");
            prop_assert_eq!(*port, 7, "firewall exits on the chain default output");
        }
    }

    /// The built-in L4 load balancer steers every packet to the backend
    /// the independent FNV-1a reference predicts.
    #[test]
    fn load_balancer_matches_fnv_reference(
        backends in prop::collection::vec(1u32..6, 1..4),
        specs in prop::collection::vec((1u16..60_000, 1u16..60_000, 0usize..32), 1..48),
    ) {
        let frames: Vec<Vec<u8>> = specs
            .iter()
            .map(|&(sp, dp_, n)| udp_frame(sp, dp_, &vec![0u8; n]))
            .collect();
        let spec = NfSpec::LoadBalancer { backends: backends.clone() };
        let (exits, drops) = single_nf_run(spec, &frames);
        prop_assert_eq!(drops, 0);
        prop_assert_eq!(exits.len(), frames.len());
        for (f, (got, port)) in frames.iter().zip(&exits) {
            let want = ref_lb_backend(&backends, f).expect("IPv4 frames always hash");
            prop_assert_eq!(got, f);
            prop_assert_eq!(*port, want, "steer target must match the FNV-1a reference");
        }
    }
}

// ----------------------------------------------------------------------
// (c) Exact accounting under random NfPanic schedules
// ----------------------------------------------------------------------

proptest! {
    /// Four tenants with chains of length 1..=4 (alternating bypass /
    /// fail-closed dead-NF policy) under a random panic schedule: every
    /// offered frame is delivered to a wire or claimed by a named drop
    /// counter — crashes lose batches, never accounting.
    #[test]
    fn ledger_is_exact_under_random_nf_panics(
        seed in 0u64..1_000_000,
        panics in prop::collection::vec((0usize..40, 0u32..4, 0usize..4), 0..10),
    ) {
        quiet_simulated_panics();
        ovs_obs::coverage::reset();

        let mut k = Kernel::new(8);
        let nic0 = k.add_device(NetDevice::new(
            "eth0", MacAddr::new(2, 0, 0, 0, 0, 1), DeviceKind::Phys { link_gbps: 10.0 }, 1,
        ));
        let nic1 = k.add_device(NetDevice::new(
            "eth1", MacAddr::new(2, 0, 0, 0, 0, 2), DeviceKind::Phys { link_gbps: 10.0 }, 1,
        ));
        let nic2 = k.add_device(NetDevice::new(
            "eth2", MacAddr::new(2, 0, 0, 0, 0, 3), DeviceKind::Phys { link_gbps: 10.0 }, 1,
        ));
        let mut dp = DpifNetdev::new();
        let p0 = dp.add_port(
            "eth0",
            PortType::Afxdp(AfxdpPort::open(&mut k, nic0, 1024, OptLevel::O5).unwrap()),
        );
        let p1 = dp.add_port(
            "eth1",
            PortType::Afxdp(AfxdpPort::open(&mut k, nic1, 1024, OptLevel::O5).unwrap()),
        );
        let p2 = dp.add_port(
            "eth2",
            PortType::Afxdp(AfxdpPort::open(&mut k, nic2, 1024, OptLevel::O5).unwrap()),
        );
        dp.set_emc_insert_inv_prob(1);
        let mut total_nfs = 0;
        for t in 0..4u32 {
            let len = 1 + t as usize;
            let templates = [
                ("fw", NfSpec::Firewall { rules: vec![], default_allow: true }),
                ("mon", NfSpec::Monitor),
                ("dpi", NfSpec::Dpi { patterns: vec![b"EVIL".to_vec()] }),
                ("lb", NfSpec::LoadBalancer { backends: vec![p1, p2] }),
            ];
            let specs = templates
                .into_iter()
                .take(len)
                .map(|(n, s)| (format!("t{t}-{n}"), s))
                .collect();
            let policy = if t % 2 == 1 { ChainPolicy::FailClosed } else { ChainPolicy::Bypass };
            let cid = dp.nfv.add_chain(t, specs, 16, p1, policy);
            dp.add_flows(&format!(
                "table=0, priority=10, udp, tp_dst={}, actions=nf_chain:{cid}",
                4000 + t as u16
            ))
            .unwrap();
            total_nfs += len;
        }
        let mut pmds = PmdSet::new(&[4, 5], AssignmentPolicy::RoundRobin);
        pmds.add_port_rxqs(p0, 1);
        pmds.add_nf_units(total_nfs);
        pmds.rebalance();

        let mut rng = ovs_sim::SimRng::new(seed);
        let mut offered = 0u64;
        for round in 0..40usize {
            for (pr, tenant, pos) in &panics {
                if *pr == round {
                    let chain = dp.nfv.chain_of_tenant(*tenant).unwrap();
                    let nf = chain.nfs[*pos % chain.nfs.len()];
                    k.inject_fault(ovs_sim::FaultKind::NfPanic, nf, 0, 5_000_000);
                }
            }
            for _ in 0..4 {
                let t = rng.below(4) as u16;
                let f = udp_frame(1024 + rng.below(50_000) as u16, 4000 + t, &[0x5a; 32]);
                k.receive(nic0, 0, f);
                offered += 1;
            }
            pmds.run_round(&mut dp, &mut k);
            k.sim.clock.advance(100_000);
        }
        for _ in 0..1024 {
            let moved = pmds.run_round(&mut dp, &mut k);
            k.sim.clock.advance(100_000);
            let parked: usize = dp
                .nfv
                .chains()
                .iter()
                .map(|c| dp.nfv.chain_occupancy(c))
                .sum();
            if moved == 0 && parked == 0 && k.sim.faults.all_clear() {
                break;
            }
        }
        let delivered = (k.device(nic1).tx_wire.len() + k.device(nic2).tx_wire.len()) as u64;
        let counted: u64 = DROP_COUNTERS
            .iter()
            .map(|&n| ovs_obs::coverage::total(n))
            .sum();
        prop_assert_eq!(
            offered,
            delivered + counted,
            "offered {} != delivered {} + counted {}",
            offered,
            delivered,
            counted
        );
        assert!(dp.stats.coherent(), "dpif stats incoherent after NF crashes");
    }
}
