//! TCP_RR latency and transaction rate — the Fig 10/11 engine.
//!
//! `netperf TCP_RR` ping-pongs one byte between a client and a server and
//! reports the latency distribution. The round-trip time is the sum of
//! per-hop costs along the configuration's path (taken from the cost
//! model) plus right-skewed jitter: interrupt-driven paths wait on IRQ
//! moderation and scheduler wakeups whose variance dominates the P99,
//! while polling paths are tight. Each percentile set comes from 20,000
//! sampled transactions.

use ovs_sim::costs::CostModel;
use ovs_sim::{Percentiles, SimRng};

/// Which switch configuration carries the RR traffic (§5.3's three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrConfig {
    /// Kernel OVS; VMs on tap, containers on veth.
    Kernel,
    /// OVS-DPDK; VMs on vhostuser, containers via the af_packet vdev.
    Dpdk,
    /// OVS AF_XDP; VMs on vhostuser, containers via XDP programs.
    Afxdp,
}

/// The measured distribution plus netperf's transaction rate.
#[derive(Debug, Clone, Copy)]
pub struct RrResult {
    /// Round-trip latency percentiles, microseconds.
    pub latency_us: Percentiles,
    /// Transactions per second (closed loop: 1e6 / mean RTT).
    pub tps: f64,
}

impl RrResult {
    /// One-line netperf-style report: P50/P90/P99/P99.9 latency and TPS.
    pub fn summary(&self) -> String {
        let l = &self.latency_us;
        format!(
            "p50 {:.0} us  p90 {:.0} us  p99 {:.0} us  p99.9 {:.0} us  {:.0} tps",
            l.p50, l.p90, l.p99, l.p999, self.tps
        )
    }
}

/// Per-transaction client-side overhead outside the switch: netperf's
/// send/recv syscalls, two process wakeups, and the guest's TCP stack.
/// **[calibrated]** to Fig 10's DPDK floor (36 µs P50).
const RR_GUEST_OVERHEAD_NS: f64 = 19_700.0;

/// Extra one-way cost of the AF_XDP VM path over DPDK's (XSK poll
/// latency and software checksums — "mainly because AF_XDP lacks
/// hardware checksum support", §5.3). **[calibrated]** to Fig 10.
const AFXDP_RR_EXTRA_NS: f64 = 1_900.0;

/// One-way host-side processing time for the inter-host VM scenario, ns.
fn vm_one_way_ns(cfg: RrConfig, c: &CostModel) -> f64 {
    // Guest side: netperf syscall + guest stack + vCPU wakeup.
    let guest = 2.0 * c.guest_tcp_segment_ns + RR_GUEST_OVERHEAD_NS;
    match cfg {
        RrConfig::Kernel => {
            // NIC interrupt (moderated) -> softirq -> kernel OVS ->
            // tap -> vhost-net -> guest.
            guest
                + c.irq_moderation_ns
                + c.driver_rx_ns
                + c.skb_alloc_ns
                + c.kernel_ovs_flow_ns
                + c.tap_kernel_ns
                + c.vhost_net_ns
                + c.context_switch_ns
        }
        RrConfig::Dpdk => {
            // Busy-polled end to end: PMD picks the packet up immediately.
            guest + c.dpdk_io_ns + c.emc_hit_ns + c.vhostuser_ring_ns + c.vhost_kick_ns
        }
        RrConfig::Afxdp => {
            // Busy-polled too, plus the XDP hook, XSK hop and software
            // rxhash that trail DPDK slightly (§5.3: no hardware checksum
            // support is most of the gap).
            guest
                + c.driver_rx_ns
                + c.xdp_dispatch_ns
                + c.xsk_deliver_ns
                + c.xsk_ring_ns
                + c.sw_rxhash_ns
                + c.csum_ns(64)
                + c.emc_hit_ns
                + c.vhostuser_ring_ns
                + c.vhost_kick_ns
                + AFXDP_RR_EXTRA_NS
        }
    }
}

/// Per-transaction overhead of a containerized netperf: socket syscalls,
/// scheduler wakeups, host stack. **[calibrated]** to Fig 11's 15 µs floor.
const RR_CONTAINER_OVERHEAD_NS: f64 = 6_400.0;

/// Extra round-trip stall when DPDK reaches containers through af_packet:
/// each transaction waits on the PMD/socket handoff and scheduler.
/// **[calibrated]** to Fig 11's 81 µs DPDK P50.
const DPDK_CONTAINER_RR_EXTRA_NS: f64 = 22_000.0;

/// One-way host-side processing for the intra-host container scenario, ns.
fn container_one_way_ns(cfg: RrConfig, c: &CostModel) -> f64 {
    // Container app: socket syscalls + host-kernel stack.
    let app = 2.0 * c.kernel_tcp_segment_ns + RR_CONTAINER_OVERHEAD_NS;
    match cfg {
        // Kernel and AF_XDP both keep container traffic inside the
        // kernel (veth / XDP redirect): cheap and equal, per Fig 11.
        RrConfig::Kernel => app + c.veth_xmit_ns + c.kernel_ovs_flow_ns,
        RrConfig::Afxdp => app + c.veth_xmit_ns + c.xdp_dispatch_ns + c.xdp_redirect_ns,
        // DPDK must cross user/kernel twice per direction through the
        // af_packet socket, with copies — the Fig 11 disaster.
        RrConfig::Dpdk => {
            app + 2.0 * c.dpdk_af_packet_ns + 2.0 * c.context_switch_ns + DPDK_CONTAINER_RR_EXTRA_NS
        }
    }
}

/// Log-normal sigma of the jitter for a configuration: interrupt paths
/// spread far more than polled ones. **[calibrated]** to the paper's
/// P99/P50 ratios (Fig 10: kernel 1.6×, AF_XDP 1.35×, DPDK 1.25×;
/// Fig 11: DPDK's af_packet path 3×).
fn sigma(cfg: RrConfig, containers: bool) -> f64 {
    match (cfg, containers) {
        (RrConfig::Kernel, false) => 0.21,
        (RrConfig::Afxdp, false) => 0.13,
        (RrConfig::Dpdk, false) => 0.095,
        (RrConfig::Kernel, true) | (RrConfig::Afxdp, true) => 0.12,
        (RrConfig::Dpdk, true) => 0.47,
    }
}

const TRANSACTIONS: usize = 20_000;

fn sample(base_rtt_ns: f64, sigma: f64, seed: u64) -> RrResult {
    let mut rng = SimRng::new(seed);
    let samples: Vec<f64> = (0..TRANSACTIONS)
        .map(|_| {
            // Median-preserving log-normal jitter.
            let jitter = rng.log_normal(0.0, sigma);
            base_rtt_ns * jitter / 1_000.0 // -> us
        })
        .collect();
    let latency_us = Percentiles::from_samples(&samples).expect("nonempty");
    RrResult {
        tps: latency_us.transactions_per_sec_us(),
        latency_us,
    }
}

/// Fig 10: TCP_RR between a host and a VM on another host.
pub fn vm_rr(cfg: RrConfig) -> RrResult {
    let c = CostModel::paper_testbed();
    // RTT: both directions of wire + both hosts' one-way costs. The
    // server side is a plain host netperf (no VM), modelled as half the
    // guest-side cost.
    let one_way = vm_one_way_ns(cfg, &c);
    let server_side = one_way * 0.55;
    let rtt = 2.0 * c.wire_latency_ns + one_way + server_side;
    sample(rtt, sigma(cfg, false), 0x0f16_0010)
}

/// TCP_RR with a background flood loading the switch at `load` (0–0.95
/// of PMD capacity): each RR transaction's request and reply wait
/// behind flood packets already queued at the PMD, a head-of-line term
/// that grows like `load/(1-load)` (the M/D/1 mean wait) times half a
/// burst's service time, and the jitter spreads as queue-depth variance
/// grows. The polled paths lose their latency edge under load exactly
/// this way — the burst they share the PMD with is the new floor.
pub fn vm_rr_under_flood(cfg: RrConfig, load: f64) -> RrResult {
    let load = load.clamp(0.0, 0.95);
    let c = CostModel::paper_testbed();
    // Per-flood-packet service time on this configuration's fast path.
    let svc = match cfg {
        RrConfig::Kernel => c.skb_alloc_ns + c.kernel_ovs_flow_ns,
        RrConfig::Dpdk => c.dpdk_io_ns + c.emc_hit_ns,
        RrConfig::Afxdp => c.xsk_deliver_ns + c.sw_rxhash_ns + c.emc_hit_ns,
    };
    // Head-of-line wait per direction: on average half a 32-packet
    // burst in progress, scaled by the M/D/1 occupancy factor.
    let hol = load / (1.0 - load) * svc * 16.0;
    let one_way = vm_one_way_ns(cfg, &c);
    let server_side = one_way * 0.55;
    let rtt = 2.0 * c.wire_latency_ns + one_way + server_side + 2.0 * hol;
    sample(rtt, sigma(cfg, false) * (1.0 + 1.5 * load), 0x0f16_0012)
}

/// Fig 11: TCP_RR between two containers on one host.
pub fn container_rr(cfg: RrConfig) -> RrResult {
    let c = CostModel::paper_testbed();
    let rtt = 2.0 * container_one_way_ns(cfg, &c);
    sample(rtt, sigma(cfg, true), 0x0f16_0011)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_orderings() {
        let k = vm_rr(RrConfig::Kernel);
        let d = vm_rr(RrConfig::Dpdk);
        let a = vm_rr(RrConfig::Afxdp);
        // Paper: kernel 58/68/94, DPDK 36/38/45, AF_XDP 39/41/53 us.
        assert!(d.latency_us.p50 < a.latency_us.p50, "DPDK fastest");
        assert!(
            a.latency_us.p50 < k.latency_us.p50,
            "AF_XDP barely trails DPDK, kernel slowest"
        );
        assert!(
            a.latency_us.p50 < d.latency_us.p50 * 1.25,
            "AF_XDP within ~15% of DPDK: {} vs {}",
            a.latency_us.p50,
            d.latency_us.p50
        );
        // Tails: kernel spreads most.
        assert!(k.latency_us.p99 / k.latency_us.p50 > a.latency_us.p99 / a.latency_us.p50);
        // Transaction rates invert the latency order.
        assert!(d.tps > a.tps && a.tps > k.tps);
    }

    #[test]
    fn fig11_dpdk_is_the_outlier() {
        let k = container_rr(RrConfig::Kernel);
        let a = container_rr(RrConfig::Afxdp);
        let d = container_rr(RrConfig::Dpdk);
        // Paper: kernel ~= AF_XDP at 15/16/20 us; DPDK at 81/136/241 us.
        let ratio = (k.latency_us.p50 - a.latency_us.p50).abs() / k.latency_us.p50;
        assert!(
            ratio < 0.25,
            "kernel and AF_XDP comparable: {} vs {}",
            k.latency_us.p50,
            a.latency_us.p50
        );
        assert!(
            d.latency_us.p50 > 4.0 * k.latency_us.p50,
            "DPDK much slower: {}",
            d.latency_us.p50
        );
        assert!(d.latency_us.p99 > 2.0 * d.latency_us.p50, "DPDK long tail");
    }

    #[test]
    fn flood_load_degrades_rr_latency() {
        let idle = vm_rr_under_flood(RrConfig::Afxdp, 0.0);
        let half = vm_rr_under_flood(RrConfig::Afxdp, 0.5);
        let heavy = vm_rr_under_flood(RrConfig::Afxdp, 0.9);
        assert!(
            idle.latency_us.p50 < half.latency_us.p50 && half.latency_us.p50 < heavy.latency_us.p50,
            "latency grows with background load: {} / {} / {}",
            idle.latency_us.p50,
            half.latency_us.p50,
            heavy.latency_us.p50
        );
        // The tail spreads faster than the median under load.
        assert!(
            heavy.latency_us.p999 / heavy.latency_us.p50
                > idle.latency_us.p999 / idle.latency_us.p50,
            "flood widens the tail"
        );
        // Zero background load reduces to the plain Fig 10 scenario
        // (same path costs; only the jitter seed differs).
        let base = vm_rr(RrConfig::Afxdp);
        assert!((idle.latency_us.mean - base.latency_us.mean).abs() < 0.05 * base.latency_us.mean);
    }

    #[test]
    fn results_are_deterministic() {
        let a = vm_rr(RrConfig::Afxdp);
        let b = vm_rr(RrConfig::Afxdp);
        assert_eq!(a.latency_us.p99, b.latency_us.p99);
        assert_eq!(a.latency_us.p999, b.latency_us.p999);
    }

    #[test]
    fn summary_reports_the_tail() {
        let r = vm_rr(RrConfig::Kernel);
        assert!(r.latency_us.p999 >= r.latency_us.p99, "tail is ordered");
        let s = r.summary();
        assert!(s.contains("p99.9"), "{s}");
        assert!(s.contains("tps"), "{s}");
    }
}
