//! Preallocated packet-metadata pool — optimization **O4**.
//!
//! §3.2: "the mmap system call used to allocate dp_packet structures
//! entailed significant overhead. To avoid it, we pre-allocated packet
//! metadata in a contiguous array and pre-initialized their
//! packet-independent fields." [`DpPacketPool`] provides both paths —
//! pooled reuse and fresh allocation — so the O3→O4 delta is a real code
//! difference, observable in the `dp_packet_alloc` ablation bench.

use ovs_packet::DpPacket;

/// A reusable pool of [`DpPacket`] descriptors.
#[derive(Debug)]
pub struct DpPacketPool {
    free: Vec<DpPacket>,
    capacity_hint: usize,
    /// How many packets were handed out from the pool.
    pub reuses: u64,
    /// How many packets had to be freshly allocated (pool empty, or pooling
    /// disabled).
    pub fresh_allocs: u64,
}

impl DpPacketPool {
    /// Preallocate `n` descriptors, each with `data_capacity` bytes of
    /// packet room, with packet-independent fields already initialized.
    pub fn with_preallocated(n: usize, data_capacity: usize) -> Self {
        Self {
            free: (0..n)
                .map(|_| DpPacket::with_capacity(data_capacity))
                .collect(),
            capacity_hint: data_capacity,
            reuses: 0,
            fresh_allocs: 0,
        }
    }

    /// An empty pool: every take is a fresh allocation. This reproduces
    /// the pre-O4 behaviour.
    pub fn without_preallocation(data_capacity: usize) -> Self {
        Self {
            free: Vec::new(),
            capacity_hint: data_capacity,
            reuses: 0,
            fresh_allocs: 0,
        }
    }

    /// Number of descriptors currently pooled.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Take a descriptor: pooled if available, freshly allocated otherwise.
    pub fn take(&mut self) -> DpPacket {
        match self.free.pop() {
            Some(p) => {
                self.reuses += 1;
                p
            }
            None => {
                self.fresh_allocs += 1;
                DpPacket::with_capacity(self.capacity_hint)
            }
        }
    }

    /// Return a descriptor to the pool, resetting its metadata.
    pub fn put(&mut self, mut pkt: DpPacket) {
        pkt.reset();
        self.free.push(pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preallocated_pool_reuses() {
        let mut pool = DpPacketPool::with_preallocated(2, 256);
        let a = pool.take();
        let _b = pool.take();
        assert_eq!(pool.reuses, 2);
        assert_eq!(pool.fresh_allocs, 0);
        // Pool empty: next take allocates fresh.
        let _c = pool.take();
        assert_eq!(pool.fresh_allocs, 1);
        pool.put(a);
        assert_eq!(pool.available(), 1);
        let _a2 = pool.take();
        assert_eq!(pool.reuses, 3);
    }

    #[test]
    fn unpooled_always_allocates() {
        let mut pool = DpPacketPool::without_preallocation(64);
        for _ in 0..5 {
            let p = pool.take();
            // Deliberately NOT returned: pre-O4, descriptors are dropped.
            drop(p);
        }
        assert_eq!(pool.fresh_allocs, 5);
        assert_eq!(pool.reuses, 0);
    }

    #[test]
    fn put_resets_metadata() {
        let mut pool = DpPacketPool::with_preallocated(1, 64);
        let mut p = pool.take();
        p.set_data(&[1, 2, 3]);
        p.in_port = 9;
        p.recirc_id = 4;
        pool.put(p);
        let p = pool.take();
        assert_eq!(p.len(), 0);
        assert_eq!(p.in_port, 0);
        assert_eq!(p.recirc_id, 0);
    }
}
