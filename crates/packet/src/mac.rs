//! Ethernet MAC addresses.

use std::fmt;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from the six octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        MacAddr([a, b, c, d, e, f])
    }

    /// Parse from a slice of at least 6 bytes.
    pub fn from_slice(s: &[u8]) -> Option<Self> {
        let bytes: [u8; 6] = s.get(..6)?.try_into().ok()?;
        Some(MacAddr(bytes))
    }

    /// The raw octets.
    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }

    /// True for group (multicast/broadcast) addresses: I/G bit set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True for a unicast (non-group) address.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }

    /// True for locally administered addresses: U/L bit set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// The address as a u64 (high 16 bits zero), useful for table keys.
    pub fn to_u64(&self) -> u64 {
        let mut v = [0u8; 8];
        v[2..8].copy_from_slice(&self.0);
        u64::from_be_bytes(v)
    }

    /// Inverse of [`MacAddr::to_u64`]; the top 16 bits are ignored.
    pub fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(b: [u8; 6]) -> Self {
        MacAddr(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let m = MacAddr::new(0xde, 0xad, 0xbe, 0xef, 0x00, 0x01);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn broadcast_and_multicast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::new(0x01, 0, 0x5e, 0, 0, 1).is_multicast());
        assert!(MacAddr::new(0x02, 0, 0, 0, 0, 1).is_unicast());
        assert!(MacAddr::new(0x02, 0, 0, 0, 0, 1).is_local());
    }

    #[test]
    fn u64_roundtrip() {
        let m = MacAddr::new(1, 2, 3, 4, 5, 6);
        assert_eq!(MacAddr::from_u64(m.to_u64()), m);
        assert_eq!(m.to_u64(), 0x0102_0304_0506);
    }

    #[test]
    fn from_slice_checks_len() {
        assert!(MacAddr::from_slice(&[1, 2, 3]).is_none());
        assert_eq!(
            MacAddr::from_slice(&[1, 2, 3, 4, 5, 6, 7]),
            Some(MacAddr::new(1, 2, 3, 4, 5, 6))
        );
    }
}
