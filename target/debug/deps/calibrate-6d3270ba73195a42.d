/root/repo/target/debug/deps/calibrate-6d3270ba73195a42.d: crates/tgen/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-6d3270ba73195a42.rmeta: crates/tgen/src/bin/calibrate.rs Cargo.toml

crates/tgen/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
