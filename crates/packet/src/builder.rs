//! Convenience builders producing complete, checksummed frames.
//!
//! These are used by tests, examples, and the traffic generators: every
//! packet the workloads inject is a real, parseable frame.

use crate::ethernet::{self, EtherType, EthernetFrame};
use crate::geneve;
use crate::icmp;
use crate::ipv4::{self, Ipv4Packet};
use crate::mac::MacAddr;
use crate::tcp::{self, TcpSegment};
use crate::udp::{self, UdpDatagram};
use crate::{arp, vlan};

/// Minimum Ethernet frame length (without FCS).
pub const MIN_FRAME_LEN: usize = 60;

/// Build a UDP-in-IPv4-in-Ethernet frame with valid checksums.
pub fn udp_ipv4(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let udp_len = udp::HEADER_LEN + payload.len();
    let ip_len = ipv4::HEADER_LEN + udp_len;
    let mut buf = vec![0u8; ethernet::HEADER_LEN + ip_len];

    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_src(src_mac);
    eth.set_dst(dst_mac);
    eth.set_ethertype(EtherType::Ipv4);

    let mut ip = Ipv4Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
    ip.set_ver_ihl(ipv4::HEADER_LEN);
    ip.set_tos(0);
    ip.set_total_len(ip_len as u16);
    ip.set_ident(0);
    ip.set_frag(true, false, 0);
    ip.set_ttl(64);
    ip.set_protocol(ipv4::protocol::UDP);
    ip.set_src(src_ip);
    ip.set_dst(dst_ip);
    ip.fill_checksum();

    let l4_off = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
    let mut u = UdpDatagram::new_unchecked(&mut buf[l4_off..]);
    u.set_src_port(src_port);
    u.set_dst_port(dst_port);
    u.set_length(udp_len as u16);
    u.payload_mut().copy_from_slice(payload);
    u.fill_checksum_ipv4(src_ip, dst_ip);

    buf
}

/// Build a UDP frame padded or payload-sized to an exact total frame
/// length (e.g. 64 or 1518 bytes, the paper's workload sizes).
///
/// `frame_len` must be at least 46 bytes (Ethernet + IPv4 + UDP headers +
/// 4 bytes of payload).
pub fn udp_ipv4_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    frame_len: usize,
) -> Vec<u8> {
    let min = ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN;
    assert!(
        frame_len >= min,
        "frame_len {frame_len} below minimum {min}"
    );
    let payload = vec![0x5au8; frame_len - min];
    udp_ipv4(
        src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, &payload,
    )
}

/// Build a TCP-in-IPv4-in-Ethernet frame with valid checksums.
#[allow(clippy::too_many_arguments)]
pub fn tcp_ipv4(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: u8,
    payload: &[u8],
) -> Vec<u8> {
    let tcp_len = tcp::HEADER_LEN + payload.len();
    let ip_len = ipv4::HEADER_LEN + tcp_len;
    let mut buf = vec![0u8; ethernet::HEADER_LEN + ip_len];

    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_src(src_mac);
    eth.set_dst(dst_mac);
    eth.set_ethertype(EtherType::Ipv4);

    let mut ip = Ipv4Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
    ip.set_ver_ihl(ipv4::HEADER_LEN);
    ip.set_total_len(ip_len as u16);
    ip.set_frag(true, false, 0);
    ip.set_ttl(64);
    ip.set_protocol(ipv4::protocol::TCP);
    ip.set_src(src_ip);
    ip.set_dst(dst_ip);
    ip.fill_checksum();

    let l4_off = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
    let mut t = TcpSegment::new_unchecked(&mut buf[l4_off..]);
    t.set_src_port(src_port);
    t.set_dst_port(dst_port);
    t.set_seq(seq);
    t.set_ack(ack);
    t.set_header_len(tcp::HEADER_LEN);
    t.set_flags(flags);
    t.set_window(0xffff);
    t.payload_mut().copy_from_slice(payload);
    t.fill_checksum_ipv4(src_ip, dst_ip);

    buf
}

/// Build an ICMP echo request/reply frame.
pub fn icmp_echo(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    is_reply: bool,
    ident: u16,
    seq: u16,
) -> Vec<u8> {
    let icmp_len = icmp::HEADER_LEN + 8;
    let ip_len = ipv4::HEADER_LEN + icmp_len;
    let mut buf = vec![0u8; ethernet::HEADER_LEN + ip_len];

    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_src(src_mac);
    eth.set_dst(dst_mac);
    eth.set_ethertype(EtherType::Ipv4);

    let mut ip = Ipv4Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
    ip.set_ver_ihl(ipv4::HEADER_LEN);
    ip.set_total_len(ip_len as u16);
    ip.set_frag(false, false, 0);
    ip.set_ttl(64);
    ip.set_protocol(ipv4::protocol::ICMP);
    ip.set_src(src_ip);
    ip.set_dst(dst_ip);
    ip.fill_checksum();

    let l4_off = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
    let mut ic = icmp::IcmpPacket::new_unchecked(&mut buf[l4_off..]);
    ic.set_msg_type(if is_reply {
        icmp::msg_type::ECHO_REPLY
    } else {
        icmp::msg_type::ECHO_REQUEST
    });
    ic.set_code(0);
    ic.set_ident(ident);
    ic.set_seq(seq);
    ic.fill_checksum();

    buf
}

/// Build an ARP request or reply frame.
pub fn arp_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    oper: u16,
    sender_mac: MacAddr,
    sender_ip: [u8; 4],
    target_mac: MacAddr,
    target_ip: [u8; 4],
) -> Vec<u8> {
    let mut buf = vec![0u8; ethernet::HEADER_LEN + arp::PACKET_LEN];
    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_src(src_mac);
    eth.set_dst(dst_mac);
    eth.set_ethertype(EtherType::Arp);
    let mut a = arp::ArpPacket::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
    a.init_ethernet_ipv4();
    a.set_oper(oper);
    a.set_sender_mac(sender_mac);
    a.set_sender_ip(sender_ip);
    a.set_target_mac(target_mac);
    a.set_target_ip(target_ip);
    buf
}

/// Push a VLAN tag into an existing Ethernet frame, returning the new frame.
pub fn push_vlan(frame: &[u8], vid: u16, pcp: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame.len() + vlan::TAG_LEN);
    out.extend_from_slice(&frame[..12]);
    out.extend_from_slice(&EtherType::Vlan.to_u16().to_be_bytes());
    let tci = (u16::from(pcp & 0x7) << 13) | (vid & 0x0fff);
    out.extend_from_slice(&tci.to_be_bytes());
    out.extend_from_slice(&frame[12..]);
    out
}

/// Encapsulate an inner Ethernet frame in Geneve/UDP/IPv4/Ethernet.
#[allow(clippy::too_many_arguments)]
pub fn geneve_encap(
    outer_src_mac: MacAddr,
    outer_dst_mac: MacAddr,
    outer_src_ip: [u8; 4],
    outer_dst_ip: [u8; 4],
    src_port: u16,
    vni: u32,
    inner_frame: &[u8],
) -> Vec<u8> {
    let geneve_len = geneve::HEADER_LEN + inner_frame.len();
    let udp_len = udp::HEADER_LEN + geneve_len;
    let ip_len = ipv4::HEADER_LEN + udp_len;
    let mut buf = vec![0u8; ethernet::HEADER_LEN + ip_len];

    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_src(outer_src_mac);
    eth.set_dst(outer_dst_mac);
    eth.set_ethertype(EtherType::Ipv4);

    let mut ip = Ipv4Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
    ip.set_ver_ihl(ipv4::HEADER_LEN);
    ip.set_total_len(ip_len as u16);
    ip.set_frag(true, false, 0);
    ip.set_ttl(64);
    ip.set_protocol(ipv4::protocol::UDP);
    ip.set_src(outer_src_ip);
    ip.set_dst(outer_dst_ip);
    ip.fill_checksum();

    let l4_off = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
    {
        let mut u = UdpDatagram::new_unchecked(&mut buf[l4_off..]);
        u.set_src_port(src_port);
        u.set_dst_port(geneve::UDP_PORT);
        u.set_length(udp_len as u16);
    }
    let gnv_off = l4_off + udp::HEADER_LEN;
    let mut g = geneve::GenevePacket::new_unchecked(&mut buf[gnv_off..]);
    g.init(0);
    g.set_protocol(geneve::PROTO_ETHERNET);
    g.set_vni(vni);
    g.payload_mut().copy_from_slice(inner_frame);

    let mut u = UdpDatagram::new_unchecked(&mut buf[l4_off..]);
    u.fill_checksum_ipv4(outer_src_ip, outer_dst_ip);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::extract_flow_key;
    use crate::DpPacket;

    const SRC: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const DST: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);

    #[test]
    fn udp_frame_is_valid() {
        let f = udp_ipv4(SRC, DST, [1, 1, 1, 1], [2, 2, 2, 2], 10, 20, b"hello");
        let eth = EthernetFrame::new_checked(&f[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Ipv4);
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let u = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(u.verify_checksum_ipv4(ip.src(), ip.dst()));
        assert_eq!(u.payload(), b"hello");
    }

    #[test]
    fn udp_frame_exact_size() {
        for len in [64usize, 128, 512, 1518] {
            let f = udp_ipv4_frame(SRC, DST, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, len);
            assert_eq!(f.len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn udp_frame_too_small_panics() {
        udp_ipv4_frame(SRC, DST, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 20);
    }

    #[test]
    fn tcp_frame_is_valid() {
        let f = tcp_ipv4(
            SRC,
            DST,
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            10,
            20,
            1000,
            2000,
            tcp::flags::ACK | tcp::flags::PSH,
            b"x",
        );
        let ip = Ipv4Packet::new_checked(&f[ethernet::HEADER_LEN..]).unwrap();
        let t = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(t.verify_checksum_ipv4(ip.src(), ip.dst()));
        assert!(t.has_flag(tcp::flags::PSH));
        assert_eq!(t.payload(), b"x");
    }

    #[test]
    fn icmp_frame_is_valid() {
        let f = icmp_echo(SRC, DST, [1, 1, 1, 1], [2, 2, 2, 2], false, 7, 3);
        let ip = Ipv4Packet::new_checked(&f[ethernet::HEADER_LEN..]).unwrap();
        let ic = icmp::IcmpPacket::new_checked(ip.payload()).unwrap();
        assert!(ic.verify_checksum());
        assert_eq!(ic.seq(), 3);
    }

    #[test]
    fn arp_frame_parses() {
        let f = arp_frame(
            SRC,
            MacAddr::BROADCAST,
            arp::op::REQUEST,
            SRC,
            [1, 1, 1, 1],
            MacAddr::ZERO,
            [2, 2, 2, 2],
        );
        let a = arp::ArpPacket::new_checked(&f[ethernet::HEADER_LEN..]).unwrap();
        assert_eq!(a.oper(), arp::op::REQUEST);
        assert_eq!(a.target_ip(), [2, 2, 2, 2]);
    }

    #[test]
    fn vlan_push_and_extract() {
        let inner = udp_ipv4(SRC, DST, [1, 1, 1, 1], [2, 2, 2, 2], 5, 6, b"p");
        let tagged = push_vlan(&inner, 100, 3);
        assert_eq!(tagged.len(), inner.len() + vlan::TAG_LEN);
        let mut pkt = DpPacket::from_data(&tagged);
        let key = extract_flow_key(&mut pkt);
        assert_eq!(key.vlan_tci() & 0x0fff, 100);
        assert_eq!(key.eth_type(), EtherType::Ipv4);
        assert_eq!(key.tp_dst(), 6);
    }

    #[test]
    fn geneve_encap_decap() {
        let inner = udp_ipv4(SRC, DST, [10, 0, 0, 1], [10, 0, 0, 2], 1, 2, b"inner");
        let outer = geneve_encap(
            MacAddr::new(4, 0, 0, 0, 0, 1),
            MacAddr::new(4, 0, 0, 0, 0, 2),
            [172, 16, 0, 1],
            [172, 16, 0, 2],
            33333,
            5001,
            &inner,
        );
        let ip = Ipv4Packet::new_checked(&outer[ethernet::HEADER_LEN..]).unwrap();
        assert!(ip.verify_checksum());
        let u = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert_eq!(u.dst_port(), geneve::UDP_PORT);
        assert!(u.verify_checksum_ipv4(ip.src(), ip.dst()));
        let g = geneve::GenevePacket::new_checked(u.payload()).unwrap();
        assert_eq!(g.vni(), 5001);
        assert_eq!(g.payload(), &inner[..]);
    }
}
