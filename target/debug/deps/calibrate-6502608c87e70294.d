/root/repo/target/debug/deps/calibrate-6502608c87e70294.d: crates/tgen/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-6502608c87e70294: crates/tgen/src/bin/calibrate.rs

crates/tgen/src/bin/calibrate.rs:
