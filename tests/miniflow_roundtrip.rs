//! The miniflow representation is a faithful sparse view of the full
//! `FlowKey`: extraction → expansion round-trips bit-for-bit over every
//! frame family the parser understands (IPv4 UDP/TCP/ICMP, ARP, IPv6,
//! VLAN-tagged and Geneve-encapsulated variants, with random packet
//! metadata), and the sparse mask algebra (`MiniMask`) agrees with the
//! full-width `FlowMask` algebra on masking, matching, and hashing —
//! which is exactly what makes the miniflow-native EMC/SMC/dpcls hit
//! path equivalent to the old full-key one.

use ovs_afxdp_repro::ovs::cache::{Emc, MegaflowEntry, Smc};
use ovs_afxdp_repro::packet::dp_packet::TunnelMetadata;
use ovs_afxdp_repro::packet::flow::WORDS;
use ovs_afxdp_repro::packet::{
    builder, extract_flow_key, extract_miniflow, DpPacket, FlowMask, MacAddr, MiniMask, Miniflow,
};
use proptest::prelude::*;
use std::rc::Rc;

// ----------------------------------------------------------------------
// Random frame + metadata generation
// ----------------------------------------------------------------------

/// A hand-built UDP-in-IPv6 frame (the builders only cover IPv4).
fn udp_ipv6(src: [u8; 16], dst: [u8; 16], sport: u16, dport: u16) -> Vec<u8> {
    let mut buf = vec![0u8; 14 + 40 + 8 + 4];
    buf[0..6].copy_from_slice(&[2, 0, 0, 0, 0, 2]);
    buf[6..12].copy_from_slice(&[2, 0, 0, 0, 0, 1]);
    buf[12..14].copy_from_slice(&0x86ddu16.to_be_bytes());
    let ip = &mut buf[14..];
    ip[0] = 0x60;
    ip[4..6].copy_from_slice(&12u16.to_be_bytes());
    ip[6] = 17; // next header: UDP
    ip[7] = 64;
    ip[8..24].copy_from_slice(&src);
    ip[24..40].copy_from_slice(&dst);
    let udp = &mut buf[14 + 40..];
    udp[0..2].copy_from_slice(&sport.to_be_bytes());
    udp[2..4].copy_from_slice(&dport.to_be_bytes());
    udp[4..6].copy_from_slice(&12u16.to_be_bytes());
    buf
}

/// Deterministically expand a seed into one frame of the chosen family.
/// `kind` picks the L3/L4 shape, `wrap` optionally VLAN-tags or
/// Geneve-encapsulates it.
fn frame(kind: u8, wrap: u8, a: u8, b: u8, sport: u16) -> Vec<u8> {
    let src_mac = MacAddr::new(2, 0, 0, 0, a, 1);
    let dst_mac = MacAddr::new(2, 0, 0, 0, b, 2);
    let inner = match kind % 5 {
        0 => builder::udp_ipv4(
            src_mac,
            dst_mac,
            [10, a, b, 1],
            [10, b, a, 2],
            sport,
            53,
            &[0xab; 8],
        ),
        1 => builder::tcp_ipv4(
            src_mac,
            dst_mac,
            [192, 168, a, 1],
            [192, 168, b, 2],
            sport,
            443,
            7,
            9,
            0x18,
            &[0x5a; 4],
        ),
        2 => builder::arp_frame(
            src_mac,
            dst_mac,
            1,
            src_mac,
            [172, 16, a, 1],
            dst_mac,
            [172, 16, b, 2],
        ),
        3 => {
            let mut s6 = [0u8; 16];
            let mut d6 = [0u8; 16];
            s6[0] = 0xfd;
            s6[15] = a;
            d6[0] = 0xfd;
            d6[15] = b;
            udp_ipv6(s6, d6, sport, 4789)
        }
        _ => builder::icmp_echo(
            src_mac,
            dst_mac,
            [10, 0, a, 1],
            [10, 0, b, 2],
            false,
            u16::from(a),
            u16::from(b),
        ),
    };
    match wrap % 3 {
        1 => builder::push_vlan(&inner, 100 + u16::from(a % 8), a % 8),
        2 => builder::geneve_encap(
            src_mac,
            dst_mac,
            [172, 16, 0, 1],
            [172, 16, 0, 2],
            sport | 0xc000,
            u32::from(a) << 8 | u32::from(b),
            &inner,
        ),
        _ => inner,
    }
}

/// A packet with random datapath metadata attached — the words the
/// miniflow carries beyond what the frame bytes encode.
fn packet(bytes: &[u8], meta: u64) -> DpPacket {
    let mut pkt = DpPacket::from_data(bytes);
    pkt.in_port = (meta & 0xffff) as u32;
    pkt.recirc_id = ((meta >> 16) & 0xff) as u32;
    pkt.ct_state = ((meta >> 24) & 0x3f) as u8;
    pkt.ct_zone = ((meta >> 30) & 0xfff) as u16;
    pkt.ct_mark = ((meta >> 42) & 0xffff) as u32;
    if meta & (1 << 63) != 0 {
        pkt.tunnel = Some(TunnelMetadata {
            tun_id: (meta >> 32) & 0xff_ffff,
            src: [172, 16, 0, (meta >> 8) as u8],
            dst: [172, 16, 0, (meta >> 12) as u8],
            tos: 0,
            ttl: 64,
        });
    }
    pkt
}

/// Expand a `(wordmap, seed)` pair into a `FlowMask`: each selected word
/// gets a splitmix-derived mask word, so masks range from empty to
/// nearly exact with arbitrary bit patterns.
fn random_mask(wordmap: u16, seed: u64) -> FlowMask {
    let mut words = [0u64; WORDS];
    let mut s = seed;
    for (w, word) in words.iter_mut().enumerate() {
        s = s
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let m = s ^ (s >> 31);
        if wordmap & (1 << w) != 0 {
            *word = m;
        }
    }
    FlowMask::from_words(words)
}

// ----------------------------------------------------------------------
// Properties
// ----------------------------------------------------------------------

proptest! {
    /// FlowKey → Miniflow → FlowKey is the identity, extraction produces
    /// the same sparse key the full extractor's expansion implies, and
    /// the canonical invariant (bit set ⟺ word non-zero) holds — which
    /// is what makes derived `PartialEq`/`Hash` on `Miniflow` exact.
    #[test]
    fn extraction_round_trips(
        picks in proptest::collection::vec(
            (0u8..5, 0u8..3, 0u8..=255, 0u8..=255, 1024u16..60000, proptest::any::<u64>()),
            1..24,
        ),
    ) {
        for (kind, wrap, a, b, sport, meta) in picks {
            let bytes = frame(kind, wrap, a, b, sport);
            let mut pkt = packet(&bytes, meta);
            let mf = extract_miniflow(&mut pkt);
            let key = mf.expand();

            // The legacy full extractor agrees with expand().
            let mut pkt2 = packet(&bytes, meta);
            prop_assert_eq!(extract_flow_key(&mut pkt2), key, "extractors diverged");

            // Compression of the expansion is the original sparse key.
            prop_assert_eq!(Miniflow::from_key(&key), mf, "round trip broke");

            // Canonical form: a slot is present iff its word is non-zero.
            for w in 0..WORDS {
                prop_assert_eq!(
                    mf.map() & (1 << w) != 0,
                    key.words()[w] != 0,
                    "canonical invariant violated at word {}", w
                );
            }
            prop_assert_eq!(mf.n_slots(), mf.map().count_ones() as usize);

            // Sparse hashing is deterministic and representation-stable.
            prop_assert_eq!(mf.hash(), Miniflow::from_key(&key).hash());
            prop_assert_eq!(mf.rss_hash(), key.rss_hash(), "rss hash diverged");
        }
    }

    /// The sparse mask algebra agrees with the full-width one: MiniMask
    /// round-trips through FlowMask, `apply` is `FlowKey::masked`,
    /// `matches` is `FlowKey::matches`, and masked-equal flows hash
    /// equal — the properties the SMC and dpcls subtables stand on.
    #[test]
    fn mini_mask_matches_full_mask_semantics(
        cases in proptest::collection::vec(
            (
                (0u8..5, 0u8..3, 0u8..=255, 0u8..=255, 1024u16..60000, proptest::any::<u64>()),
                (0u8..5, 0u8..3, 0u8..=255, 0u8..=255, 1024u16..60000, proptest::any::<u64>()),
                proptest::any::<u16>(),
                proptest::any::<u64>(),
            ),
            1..16,
        ),
    ) {
        for ((k1, w1, a1, b1, s1, m1), (k2, w2, a2, b2, s2, m2), wordmap, seed) in cases {
            let mut p1 = packet(&frame(k1, w1, a1, b1, s1), m1);
            let mut p2 = packet(&frame(k2, w2, a2, b2, s2), m2);
            let mf1 = extract_miniflow(&mut p1);
            let mf2 = extract_miniflow(&mut p2);
            let (key1, key2) = (mf1.expand(), mf2.expand());

            let mask = random_mask(wordmap, seed);
            let mm = MiniMask::from_mask(&mask);
            prop_assert_eq!(mm.expand(), mask, "mask round trip broke");

            // Sparse masking ≡ full-width masking.
            prop_assert_eq!(mm.apply(&mf1).expand(), key1.masked(&mask));
            prop_assert_eq!(mm.apply(&mf2).expand(), key2.masked(&mask));

            // Sparse matching ≡ full-width matching against the
            // pre-masked rule key, both ways around.
            let rule = mm.apply(&mf1);
            prop_assert_eq!(
                mm.matches(&mf2, &rule),
                key2.matches(&key1.masked(&mask), &mask),
                "match semantics diverged"
            );

            // Masked-equal flows are indistinguishable to the sparse
            // hash (the dpcls bucket key).
            if mm.apply(&mf1) == mm.apply(&mf2) {
                prop_assert_eq!(mm.hash_flow(&mf1), mm.hash_flow(&mf2));
            }
        }
    }

    /// Miniflow-native EMC and SMC give the same verdicts full keys
    /// would: the EMC hits exactly on full-key equality, and every SMC
    /// hit is a genuine megaflow match under the entry's mask.
    #[test]
    fn cache_hits_match_full_key_semantics(
        cases in proptest::collection::vec(
            (
                (0u8..5, 0u8..3, 0u8..=255, 0u8..=255, 1024u16..60000, proptest::any::<u64>()),
                (0u8..5, 0u8..3, 0u8..=255, 0u8..=255, 1024u16..60000, proptest::any::<u64>()),
                proptest::any::<u16>(),
                proptest::any::<u64>(),
            ),
            1..12,
        ),
    ) {
        for ((k1, w1, a1, b1, s1, m1), (k2, w2, a2, b2, s2, m2), wordmap, seed) in cases {
            let mut p1 = packet(&frame(k1, w1, a1, b1, s1), m1);
            let mut p2 = packet(&frame(k2, w2, a2, b2, s2), m2);
            let mf1 = extract_miniflow(&mut p1);
            let mf2 = extract_miniflow(&mut p2);
            let (key1, key2) = (mf1.expand(), mf2.expand());

            let mask = random_mask(wordmap, seed);
            let entry = Rc::new(MegaflowEntry::new(
                key1.masked(&mask),
                mask,
                Vec::<u32>::new(),
                0,
            ));

            // EMC: exact-match semantics on the sparse key.
            let mut emc = Emc::new();
            emc.insert(mf1, mf1.hash(), Rc::clone(&entry));
            assert!(emc.lookup(&mf1, mf1.hash()).is_some(), "EMC self-hit");
            prop_assert_eq!(
                emc.lookup(&mf2, mf2.hash()).is_some(),
                key1 == key2,
                "EMC hit must be exactly full-key equality"
            );

            // SMC: the flow that installed the entry always hits, and
            // any hit implies a full-key megaflow match under the mask.
            let mut smc = Smc::new();
            smc.insert(mf1.hash(), Rc::clone(&entry));
            assert!(smc.lookup(&mf1, mf1.hash()).is_some(), "SMC self-hit");
            if smc.lookup(&mf2, mf2.hash()).is_some() {
                prop_assert!(
                    key2.matches(&key1.masked(&mask), &mask),
                    "SMC served an entry the full key does not match"
                );
            }
        }
    }
}
