//! Figure 1's dataset: lines changed per year in the OVS repository's
//! out-of-tree kernel datapath.
//!
//! This figure is mined from the OVS git history (2015–2019), not
//! measured on a testbed, so the reproduction embeds the series as read
//! off the published figure: "Backports" is compatibility churn just to
//! keep the module building against new kernels; "New Features" is
//! feature code copied down from upstream. The argument the figure makes
//! — that backport churn rivals or exceeds feature work every single
//! year (Takeaway #2) — is checked by a unit test.

/// One year of out-of-tree module churn (lines of code changed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YearChurn {
    pub year: u16,
    /// Lines changed for new features brought down from upstream.
    pub new_features: u32,
    /// Lines changed only to stay compatible with newer kernels.
    pub backports: u32,
}

/// The 2015–2019 series, as read off Figure 1.
pub const CHURN: [YearChurn; 5] = [
    YearChurn {
        year: 2015,
        new_features: 5_000,
        backports: 6_000,
    },
    YearChurn {
        year: 2016,
        new_features: 18_000,
        backports: 9_000,
    },
    YearChurn {
        year: 2017,
        new_features: 9_000,
        backports: 5_500,
    },
    YearChurn {
        year: 2018,
        new_features: 13_000,
        backports: 11_000,
    },
    YearChurn {
        year: 2019,
        new_features: 5_500,
        backports: 9_000,
    },
];

/// Render the figure as an ASCII bar chart.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("Lines of code changed in the OVS out-of-tree kernel datapath\n");
    for c in CHURN {
        let f = c.new_features / 500;
        let b = c.backports / 500;
        out.push_str(&format!(
            "  {}  features {:>6} |{}\n        backports {:>5} |{}\n",
            c.year,
            c.new_features,
            "#".repeat(f as usize),
            c.backports,
            "=".repeat(b as usize),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backports_are_a_standing_tax() {
        // Takeaway #2: every year needs thousands of backport lines just
        // to stand still.
        for c in CHURN {
            assert!(c.backports >= 5_000, "{}: {}", c.year, c.backports);
        }
        // And in some years the tax exceeds the feature work itself.
        assert!(CHURN.iter().any(|c| c.backports > c.new_features));
    }

    #[test]
    fn render_mentions_every_year() {
        let r = render();
        for c in CHURN {
            assert!(r.contains(&c.year.to_string()));
        }
    }
}
