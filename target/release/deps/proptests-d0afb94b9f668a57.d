/root/repo/target/release/deps/proptests-d0afb94b9f668a57.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-d0afb94b9f668a57: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
