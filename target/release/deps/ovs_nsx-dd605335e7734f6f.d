/root/repo/target/release/deps/ovs_nsx-dd605335e7734f6f.d: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

/root/repo/target/release/deps/libovs_nsx-dd605335e7734f6f.rlib: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

/root/repo/target/release/deps/libovs_nsx-dd605335e7734f6f.rmeta: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

crates/nsx/src/lib.rs:
crates/nsx/src/ruleset.rs:
crates/nsx/src/topology.rs:
