//! Ethernet line-rate arithmetic.
//!
//! Converts between link speed, frame size, and packet rate, accounting for
//! the 20 bytes of per-frame wire overhead (7-byte preamble, 1-byte SFD,
//! 12-byte inter-frame gap) that sit outside the frame itself. With this
//! math a 10 GbE link carries 14.88 Mpps of 64-byte frames and a 25 GbE
//! link carries 2.03 Mpps of 1518-byte frames — the ceilings visible in
//! Table 5 ("14 Mpps line rate for a 10 Gbps link") and Fig 12.

/// Preamble + SFD + inter-frame gap, bytes per frame on the wire.
pub const WIRE_OVERHEAD_BYTES: usize = 20;

/// A link's nominal bit rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineRate {
    bits_per_sec: f64,
}

impl LineRate {
    /// A link of `gbps` gigabits per second.
    pub fn gbps(gbps: f64) -> Self {
        Self {
            bits_per_sec: gbps * 1e9,
        }
    }

    /// The paper's NSX testbed: Intel X540 10 GbE.
    pub fn ten_gbe() -> Self {
        Self::gbps(10.0)
    }

    /// The paper's microbenchmark testbed: Mellanox ConnectX-6 Dx 25 GbE.
    pub fn twenty_five_gbe() -> Self {
        Self::gbps(25.0)
    }

    /// Nominal bit rate in Gbps.
    pub fn as_gbps(&self) -> f64 {
        self.bits_per_sec / 1e9
    }

    /// Maximum frames per second for `frame_len`-byte frames (including FCS).
    pub fn max_pps(&self, frame_len: usize) -> f64 {
        self.bits_per_sec / (((frame_len + WIRE_OVERHEAD_BYTES) * 8) as f64)
    }

    /// Maximum frame rate in Mpps.
    pub fn max_mpps(&self, frame_len: usize) -> f64 {
        self.max_pps(frame_len) / 1e6
    }

    /// Goodput (frame bits only, no wire overhead) at a given packet rate,
    /// in Gbps. Saturates at what the line can carry.
    pub fn goodput_gbps(&self, frame_len: usize, mpps: f64) -> f64 {
        let capped = mpps.min(self.max_mpps(frame_len));
        capped * 1e6 * (frame_len * 8) as f64 / 1e9
    }

    /// Serialization time of one frame, nanoseconds.
    pub fn serialization_ns(&self, frame_len: usize) -> f64 {
        ((frame_len + WIRE_OVERHEAD_BYTES) * 8) as f64 * 1e9 / self.bits_per_sec
    }
}

/// Line-rate packet rate in Mpps for a link speed and frame size.
pub fn line_rate_mpps(gbps: f64, frame_len: usize) -> f64 {
    LineRate::gbps(gbps).max_mpps(frame_len)
}

/// Convert a packet rate (Mpps) to frame-payload throughput (Gbps).
pub fn mpps_to_gbps(mpps: f64, frame_len: usize) -> f64 {
    mpps * 1e6 * (frame_len * 8) as f64 / 1e9
}

/// Convert throughput (Gbps of frame bits) to a packet rate (Mpps).
pub fn gbps_to_mpps(gbps: f64, frame_len: usize) -> f64 {
    gbps * 1e9 / ((frame_len * 8) as f64) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gbe_64b_is_14_88_mpps() {
        let r = LineRate::ten_gbe().max_mpps(64);
        assert!((r - 14.8809).abs() < 0.001, "got {r}");
    }

    #[test]
    fn twenty_five_gbe_1518b_is_2_03_mpps() {
        let r = LineRate::twenty_five_gbe().max_mpps(1518);
        assert!((r - 2.0319).abs() < 0.001, "got {r}");
    }

    #[test]
    fn goodput_caps_at_line_rate() {
        let line = LineRate::ten_gbe();
        // Offered 100 Mpps of 64B is capped to line rate.
        let g = line.goodput_gbps(64, 100.0);
        let max = line.max_mpps(64) * 1e6 * 512.0 / 1e9;
        assert!((g - max).abs() < 1e-9);
    }

    #[test]
    fn mpps_gbps_roundtrip() {
        let g = mpps_to_gbps(2.0, 1518);
        assert!((gbps_to_mpps(g, 1518) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn serialization_time_64b_10g() {
        // 84 bytes * 8 / 10 Gbps = 67.2 ns
        let ns = LineRate::ten_gbe().serialization_ns(64);
        assert!((ns - 67.2).abs() < 0.01);
    }
}
