/root/repo/target/debug/deps/revalidator-e46197f7a72212b8.d: tests/revalidator.rs Cargo.toml

/root/repo/target/debug/deps/librevalidator-e46197f7a72212b8.rmeta: tests/revalidator.rs Cargo.toml

tests/revalidator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
