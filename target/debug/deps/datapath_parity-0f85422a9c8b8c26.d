/root/repo/target/debug/deps/datapath_parity-0f85422a9c8b8c26.d: tests/datapath_parity.rs

/root/repo/target/debug/deps/datapath_parity-0f85422a9c8b8c26: tests/datapath_parity.rs

tests/datapath_parity.rs:
