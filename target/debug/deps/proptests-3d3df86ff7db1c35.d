/root/repo/target/debug/deps/proptests-3d3df86ff7db1c35.d: crates/kernel/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3d3df86ff7db1c35.rmeta: crates/kernel/tests/proptests.rs Cargo.toml

crates/kernel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
