/root/repo/target/release/deps/ovs_afxdp-8a69e98ec7e73d9f.d: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/release/deps/libovs_afxdp-8a69e98ec7e73d9f.rlib: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/release/deps/libovs_afxdp-8a69e98ec7e73d9f.rmeta: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

crates/afxdp/src/lib.rs:
crates/afxdp/src/port.rs:
crates/afxdp/src/socket.rs:
