//! The canned XDP programs the experiments use.
//!
//! Each is hand-assembled bytecode (the shape a C source compiled through
//! LLVM/Clang would produce, per Figure 4's workflow) and passes the
//! verifier. Instruction counts grow A → B → C → D exactly as Table 5's
//! task ladder does, so the measured per-task cost differences come from
//! real work: more interpreted instructions, a hash-map probe, a packet
//! rewrite.

use crate::insn::reg::*;
use crate::insn::Operand::{Imm, Reg};
use crate::insn::{AluOp::*, CmpOp::*, Helper, Insn::*, Size::*};
use crate::xdp::XdpProgram;

/// EtherType IPv4 as loaded little-endian from the wire (`htons(0x0800)`).
const ETH_P_IP_LE: i64 = 0x0008;

/// Table 5 task A: drop every packet without examining it.
pub fn task_a_drop() -> XdpProgram {
    XdpProgram::load("task_a_drop", vec![Alu64(Mov, R0, Imm(1)), Exit]).unwrap()
}

/// Table 5 task B: bounds-check, parse Ethernet + IPv4 headers, then drop.
pub fn task_b_parse_drop() -> XdpProgram {
    XdpProgram::load(
        "task_b_parse_drop",
        vec![
            /* 0 */ Load(DW, R2, R1, 0), // data
            /* 1 */ Load(DW, R3, R1, 8), // data_end
            /* 2 */ Alu64(Mov, R4, Reg(R2)),
            /* 3 */ Alu64(Add, R4, Imm(34)),
            /* 4 */ JmpIf(Gt, R4, Reg(R3), 8), // short -> drop
            /* 5 */ Load(H, R5, R2, 12), // ethertype
            /* 6 */ JmpIf(Ne, R5, Imm(ETH_P_IP_LE), 6),
            /* 7 */ Load(B, R5, R2, 14), // ver/ihl
            /* 8 */ Alu64(Rsh, R5, Imm(4)),
            /* 9 */ JmpIf(Ne, R5, Imm(4), 3),
            /*10 */ Load(B, R6, R2, 23), // protocol
            /*11 */ Load(W, R7, R2, 26), // src ip
            /*12 */ Load(W, R8, R2, 30), // dst ip
            /*13 */ Alu64(Mov, R0, Imm(1)), // XDP_DROP
            /*14 */ Exit,
        ],
    )
    .unwrap()
}

/// Table 5 task C: parse, look the destination MAC up in an L2 hash map
/// (key: 8 bytes, MAC zero-extended), then drop.
///
/// The map must have `key_size == 8`; use [`l2_key`] to build keys for
/// population.
pub fn task_c_parse_lookup_drop(l2_map_fd: u32) -> XdpProgram {
    XdpProgram::load(
        "task_c_parse_lookup_drop",
        vec![
            /* 0 */ Load(DW, R2, R1, 0),
            /* 1 */ Load(DW, R3, R1, 8),
            /* 2 */ Alu64(Mov, R4, Reg(R2)),
            /* 3 */ Alu64(Add, R4, Imm(34)),
            /* 4 */ JmpIf(Gt, R4, Reg(R3), 16), // -> 21 drop
            /* 5 */ Load(H, R5, R2, 12),
            /* 6 */ JmpIf(Ne, R5, Imm(ETH_P_IP_LE), 14), // -> 21
            /* 7 */ Load(B, R5, R2, 14),
            /* 8 */ Alu64(Rsh, R5, Imm(4)),
            /* 9 */ JmpIf(Ne, R5, Imm(4), 11), // -> 21
            /*10 */ Load(W, R6, R2, 0), // dst mac bytes 0..4
            /*11 */ Load(H, R7, R2, 4), // dst mac bytes 4..6
            /*12 */ Alu64(Lsh, R7, Imm(32)),
            /*13 */ Alu64(Or, R6, Reg(R7)),
            /*14 */ Store(DW, R10, -8, Reg(R6)),
            /*15 */ Alu64(Mov, R1, Imm(l2_map_fd as i64)),
            /*16 */ Alu64(Mov, R2, Reg(R10)),
            /*17 */ Alu64(Add, R2, Imm(-8)),
            /*18 */ Call(Helper::MapLookup),
            /*19 */ JmpIf(Eq, R0, Imm(0), 1), // miss -> 21
            /*20 */ Load(DW, R5, R0, 0), // touch the value
            /*21 */ Alu64(Mov, R0, Imm(1)), // XDP_DROP
            /*22 */ Exit,
        ],
    )
    .unwrap()
}

/// The 8-byte L2 key task C's map uses for a destination MAC: the MAC's
/// first four bytes as a little-endian u32 in the low half, the last two
/// in the high half — exactly the value the program assembles in `r6`.
pub fn l2_key(mac: [u8; 6]) -> [u8; 8] {
    let lo = u32::from_le_bytes([mac[0], mac[1], mac[2], mac[3]]);
    let hi = u16::from_le_bytes([mac[4], mac[5]]);
    let v = u64::from(lo) | (u64::from(hi) << 32);
    v.to_le_bytes()
}

/// Table 5 task D: parse Ethernet, swap source and destination MACs, and
/// transmit back out the same port (`XDP_TX`).
pub fn task_d_swap_fwd() -> XdpProgram {
    XdpProgram::load(
        "task_d_swap_fwd",
        vec![
            /* 0 */ Load(DW, R2, R1, 0),
            /* 1 */ Load(DW, R3, R1, 8),
            /* 2 */ Alu64(Mov, R4, Reg(R2)),
            /* 3 */ Alu64(Add, R4, Imm(14)),
            /* 4 */ JmpIf(Gt, R4, Reg(R3), 10), // -> 15 drop
            /* 5 */ Load(W, R5, R2, 0), // dst mac lo
            /* 6 */ Load(H, R6, R2, 4), // dst mac hi
            /* 7 */ Load(W, R7, R2, 6), // src mac lo
            /* 8 */ Load(H, R8, R2, 10), // src mac hi
            /* 9 */ Store(W, R2, 0, Reg(R7)),
            /*10 */ Store(H, R2, 4, Reg(R8)),
            /*11 */ Store(W, R2, 6, Reg(R5)),
            /*12 */ Store(H, R2, 10, Reg(R6)),
            /*13 */ Alu64(Mov, R0, Imm(3)), // XDP_TX
            /*14 */ Exit,
            /*15 */ Alu64(Mov, R0, Imm(1)),
            /*16 */ Exit,
        ],
    )
    .unwrap()
}

/// The OVS AF_XDP hook (§2.2.3): redirect **every** packet to the AF_XDP
/// socket bound for its receive queue — "a tiny eBPF helper program ...
/// which just sends every packet to userspace".
pub fn ovs_xsk_redirect(xskmap_fd: u32) -> XdpProgram {
    XdpProgram::load(
        "ovs_xsk_redirect",
        vec![
            /* 0 */ Load(DW, R6, R1, 16), // rx_queue_index
            /* 1 */ Alu64(Mov, R1, Imm(xskmap_fd as i64)),
            /* 2 */ Alu64(Mov, R2, Reg(R6)),
            /* 3 */ Alu64(Mov, R3, Imm(0)),
            /* 4 */ Call(Helper::RedirectMap),
            /* 5 */ Exit,
        ],
    )
    .unwrap()
}

/// The container fast path (§3.4 path C, used by the PCP scenario in
/// Fig 9c): packets whose IPv4 destination is the container's address are
/// redirected in-kernel to its veth through a devmap, skipping OVS
/// userspace entirely; everything else goes to the AF_XDP socket.
pub fn container_redirect(
    devmap_fd: u32,
    devmap_slot: u32,
    container_ip: [u8; 4],
    xskmap_fd: u32,
) -> XdpProgram {
    let ip_le = i64::from(u32::from_le_bytes(container_ip));
    XdpProgram::load(
        "container_redirect",
        vec![
            /* 0 */ Load(DW, R2, R1, 0),
            /* 1 */ Load(DW, R3, R1, 8),
            /* 2 */ Load(DW, R6, R1, 16), // rx queue, for the xsk path
            /* 3 */ Alu64(Mov, R4, Reg(R2)),
            /* 4 */ Alu64(Add, R4, Imm(34)),
            /* 5 */ JmpIf(Gt, R4, Reg(R3), 9), // -> 15 xsk
            /* 6 */ Load(H, R5, R2, 12),
            /* 7 */ JmpIf(Ne, R5, Imm(ETH_P_IP_LE), 7), // -> 15
            /* 8 */ Load(W, R5, R2, 30), // dst ip
            /* 9 */ JmpIf(Ne, R5, Imm(ip_le), 5), // -> 15
            /*10 */ Alu64(Mov, R1, Imm(devmap_fd as i64)),
            /*11 */ Alu64(Mov, R2, Imm(devmap_slot as i64)),
            /*12 */ Alu64(Mov, R3, Imm(0)),
            /*13 */ Call(Helper::RedirectMap),
            /*14 */ Exit,
            /*15 */ Alu64(Mov, R1, Imm(xskmap_fd as i64)),
            /*16 */ Alu64(Mov, R2, Reg(R6)),
            /*17 */ Alu64(Mov, R3, Imm(0)),
            /*18 */ Call(Helper::RedirectMap),
            /*19 */ Exit,
        ],
    )
    .unwrap()
}

/// The §4 control-plane split: steer TCP traffic aimed at the host's
/// management/controller ports straight up the kernel stack (XDP_PASS),
/// while everything else — the dataplane — goes to the AF_XDP socket.
/// "If it proves too slow later, we can modify the XDP program to steer
/// the control plane traffic directly from XDP to the network stack,
/// while keep pushing dataplane traffic directly to userspace."
pub fn control_plane_split(xskmap_fd: u32, mgmt_port: u16) -> XdpProgram {
    let port_le = i64::from(u16::from_le_bytes(mgmt_port.to_be_bytes()));
    XdpProgram::load(
        "control_plane_split",
        vec![
            /* 0 */ Load(DW, R2, R1, 0),
            /* 1 */ Load(DW, R3, R1, 8),
            /* 2 */ Load(DW, R6, R1, 16), // rx queue for the xsk path
            /* 3 */ Alu64(Mov, R4, Reg(R2)),
            /* 4 */ Alu64(Add, R4, Imm(42)),
            /* 5 */ JmpIf(Gt, R4, Reg(R3), 9), // short -> xsk (15)
            /* 6 */ Load(H, R5, R2, 12),
            /* 7 */ JmpIf(Ne, R5, Imm(ETH_P_IP_LE), 7), // -> 15
            /* 8 */ Load(B, R5, R2, 23),
            /* 9 */ JmpIf(Ne, R5, Imm(6), 5), // not TCP -> 15
            /*10 */ Load(H, R5, R2, 36), // tcp dst port
            /*11 */ JmpIf(Ne, R5, Imm(port_le), 3), // -> 15
            /*12 */ Alu64(Mov, R0, Imm(2)), // XDP_PASS: up the stack
            /*13 */ Exit,
            /*14 */ Alu64(Mov, R0, Imm(2)), // (unreachable pad)
            /*15 */ Alu64(Mov, R1, Imm(xskmap_fd as i64)),
            /*16 */ Alu64(Mov, R2, Reg(R6)),
            /*17 */ Alu64(Mov, R3, Imm(0)),
            /*18 */ Call(Helper::RedirectMap),
            /*19 */ Exit,
        ],
    )
    .unwrap()
}

/// Redirect **every** packet to a fixed devmap slot — the return-path
/// program attached to a container's veth host end in the PCP scenario
/// (container replies bounce straight back to the NIC without touching
/// userspace or the host stack).
pub fn redirect_all_to_dev(devmap_fd: u32, slot: u32) -> XdpProgram {
    XdpProgram::load(
        "redirect_all_to_dev",
        vec![
            /* 0 */ Alu64(Mov, R1, Imm(devmap_fd as i64)),
            /* 1 */ Alu64(Mov, R2, Imm(slot as i64)),
            /* 2 */ Alu64(Mov, R3, Imm(0)),
            /* 3 */ Call(Helper::RedirectMap),
            /* 4 */ Exit,
        ],
    )
    .unwrap()
}

/// The §3.5 example: an L4 load balancer targeting one UDP 5-tuple.
/// Matching packets get their destination IP rewritten to the backend and
/// bounce straight back out (`XDP_TX`), with the L4 checksum zeroed
/// (checksum-offload semantics); everything else passes to the stack /
/// AF_XDP socket as usual.
pub fn l4_lb(vip: [u8; 4], vport: u16, backend_ip: [u8; 4]) -> XdpProgram {
    let vip_le = i64::from(u32::from_le_bytes(vip));
    let backend_le = i64::from(u32::from_le_bytes(backend_ip));
    // Wire-order port compared against an LE halfword load.
    let vport_le = i64::from(u16::from_le_bytes(vport.to_be_bytes()));
    XdpProgram::load(
        "l4_lb",
        vec![
            /* 0 */ Load(DW, R2, R1, 0),
            /* 1 */ Load(DW, R3, R1, 8),
            /* 2 */ Alu64(Mov, R4, Reg(R2)),
            /* 3 */ Alu64(Add, R4, Imm(42)),
            /* 4 */ JmpIf(Gt, R4, Reg(R3), 21), // -> 26 pass
            /* 5 */ Load(H, R5, R2, 12),
            /* 6 */ JmpIf(Ne, R5, Imm(ETH_P_IP_LE), 19), // -> 26
            /* 7 */ Load(B, R5, R2, 23), // proto
            /* 8 */ JmpIf(Ne, R5, Imm(17), 17), // -> 26
            /* 9 */ Load(W, R5, R2, 30), // dst ip
            /*10 */ JmpIf(Ne, R5, Imm(vip_le), 15), // -> 26
            /*11 */ Load(H, R5, R2, 36), // udp dst port
            /*12 */ JmpIf(Ne, R5, Imm(vport_le), 13), // -> 26
            /*13 */ Store(W, R2, 30, Imm(backend_le)), // rewrite dst ip
            /*14 */ Store(H, R2, 24, Imm(0)), // zero ip csum (offload)
            /*15 */ Store(H, R2, 40, Imm(0)), // zero udp csum
            /*16 */ Load(W, R5, R2, 0),
            /*17 */ Load(H, R6, R2, 4),
            /*18 */ Load(W, R7, R2, 6),
            /*19 */ Load(H, R8, R2, 10),
            /*20 */ Store(W, R2, 0, Reg(R7)),
            /*21 */ Store(H, R2, 4, Reg(R8)),
            /*22 */ Store(W, R2, 6, Reg(R5)),
            /*23 */ Store(H, R2, 10, Reg(R6)),
            /*24 */ Alu64(Mov, R0, Imm(3)), // XDP_TX
            /*25 */ Exit,
            /*26 */ Alu64(Mov, R0, Imm(2)), // XDP_PASS
            /*27 */ Exit,
        ],
    )
    .unwrap()
}

/// The eBPF **datapath** of §2.2.2: parse the 5-tuple, look it up in a
/// flow hash map, and forward through a devmap on a hit (miss = pass to
/// userspace for the slow path). This is the Fig 2 "eBPF" contender —
/// same functional behaviour as the kernel module's flow cache, but paying
/// bytecode dispatch on every instruction.
pub fn ebpf_datapath(flow_map_fd: u32, devmap_fd: u32) -> XdpProgram {
    XdpProgram::load(
        "ebpf_datapath",
        vec![
            /* 0 */ Load(DW, R2, R1, 0),
            /* 1 */ Load(DW, R3, R1, 8),
            /* 2 */ Alu64(Mov, R4, Reg(R2)),
            /* 3 */ Alu64(Add, R4, Imm(42)),
            /* 4 */ JmpIf(Gt, R4, Reg(R3), 21), // -> 26 pass
            /* 5 */ Load(H, R5, R2, 12),
            /* 6 */ JmpIf(Ne, R5, Imm(ETH_P_IP_LE), 19), // -> 26
            /* 7 */ Load(W, R5, R2, 26), // src ip
            /* 8 */ Store(W, R10, -16, Reg(R5)),
            /* 9 */ Load(W, R5, R2, 30), // dst ip
            /*10 */ Store(W, R10, -12, Reg(R5)),
            /*11 */ Load(W, R5, R2, 34), // both ports
            /*12 */ Store(W, R10, -8, Reg(R5)),
            /*13 */ Load(B, R5, R2, 23), // proto
            /*14 */ Store(W, R10, -4, Reg(R5)),
            /*15 */ Alu64(Mov, R1, Imm(flow_map_fd as i64)),
            /*16 */ Alu64(Mov, R2, Reg(R10)),
            /*17 */ Alu64(Add, R2, Imm(-16)),
            /*18 */ Call(Helper::MapLookup),
            /*19 */ JmpIf(Eq, R0, Imm(0), 6), // miss -> 26
            /*20 */ Load(DW, R6, R0, 0), // devmap slot
            /*21 */ Alu64(Mov, R1, Imm(devmap_fd as i64)),
            /*22 */ Alu64(Mov, R2, Reg(R6)),
            /*23 */ Alu64(Mov, R3, Imm(0)),
            /*24 */ Call(Helper::RedirectMap),
            /*25 */ Exit,
            /*26 */ Alu64(Mov, R0, Imm(2)), // XDP_PASS
            /*27 */ Exit,
        ],
    )
    .unwrap()
}

/// Build the 16-byte flow key [`ebpf_datapath`] assembles on its stack for
/// a given 5-tuple, for userspace map population: source IP, destination
/// IP, and ports in wire order, then the protocol zero-extended.
pub fn dp_flow_key(
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    proto: u8,
) -> [u8; 16] {
    let mut key = [0u8; 16];
    key[0..4].copy_from_slice(&src_ip);
    key[4..8].copy_from_slice(&dst_ip);
    key[8..10].copy_from_slice(&src_port.to_be_bytes());
    key[10..12].copy_from_slice(&dst_port.to_be_bytes());
    key[12] = proto;
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::{DevMap, HashMap, Map, MapSet, XskMap};
    use crate::vm::Vm;
    use crate::xdp::{RedirectTarget, XdpAction};
    use ovs_packet::builder;
    use ovs_packet::MacAddr;

    fn udp_frame() -> Vec<u8> {
        builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1000,
            2000,
            64,
        )
    }

    #[test]
    fn task_ladder_instruction_counts_increase() {
        let mut maps = MapSet::new();
        let l2 = maps.add(Map::Hash(HashMap::new(8, 8, 16)));
        let a = task_a_drop();
        let b = task_b_parse_drop();
        let c = task_c_parse_lookup_drop(l2);
        let d = task_d_swap_fwd();
        let mut vm = Vm::new();
        let mut frame = udp_frame();
        let ra = a.run(&mut vm, &mut frame, 0, &mut maps).unwrap();
        let rb = b.run(&mut vm, &mut frame, 0, &mut maps).unwrap();
        let rc = c.run(&mut vm, &mut frame, 0, &mut maps).unwrap();
        assert!(ra.insns < rb.insns, "B does more work than A");
        assert!(rb.insns < rc.insns, "C does more work than B");
        assert_eq!(ra.action, XdpAction::Drop);
        assert_eq!(rb.action, XdpAction::Drop);
        assert_eq!(rc.action, XdpAction::Drop);
        assert_eq!(rc.map_lookups, 1);
        let rd = d.run(&mut vm, &mut frame, 0, &mut maps).unwrap();
        assert_eq!(rd.action, XdpAction::Tx);
    }

    #[test]
    fn task_d_actually_swaps_macs() {
        let mut maps = MapSet::new();
        let mut vm = Vm::new();
        let mut frame = udp_frame();
        task_d_swap_fwd()
            .run(&mut vm, &mut frame, 0, &mut maps)
            .unwrap();
        assert_eq!(&frame[0..6], &[2, 0, 0, 0, 0, 1], "dst is now old src");
        assert_eq!(&frame[6..12], &[2, 0, 0, 0, 0, 2], "src is now old dst");
    }

    #[test]
    fn task_c_hit_and_miss_both_drop() {
        let mut maps = MapSet::new();
        let l2fd = maps.add(Map::Hash(HashMap::new(8, 8, 16)));
        if let Some(Map::Hash(h)) = maps.get_mut(l2fd) {
            h.update(&l2_key([2, 0, 0, 0, 0, 2]), &7u64.to_le_bytes())
                .unwrap();
        }
        let prog = task_c_parse_lookup_drop(l2fd);
        let mut vm = Vm::new();
        let mut frame = udp_frame();
        let hit = prog.run(&mut vm, &mut frame, 0, &mut maps).unwrap();
        assert_eq!(hit.action, XdpAction::Drop);
        // Change dst MAC so the lookup misses; still drops.
        frame[5] = 0x99;
        let miss = prog.run(&mut vm, &mut frame, 0, &mut maps).unwrap();
        assert_eq!(miss.action, XdpAction::Drop);
        assert!(hit.insns > miss.insns, "hit path touches the value");
    }

    #[test]
    fn ovs_hook_redirects_to_queue_socket() {
        let mut maps = MapSet::new();
        let mut xsk = XskMap::new(8);
        xsk.set(0, 100).unwrap();
        xsk.set(3, 103).unwrap();
        let fd = maps.add(Map::Xsk(xsk));
        let prog = ovs_xsk_redirect(fd);
        let mut vm = Vm::new();
        let r = prog.run(&mut vm, &mut udp_frame(), 3, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Redirect(RedirectTarget::Xsk(103)));
        let r = prog.run(&mut vm, &mut udp_frame(), 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Redirect(RedirectTarget::Xsk(100)));
    }

    #[test]
    fn container_redirect_splits_traffic() {
        let mut maps = MapSet::new();
        let mut dev = DevMap::new(4);
        dev.set(1, 55).unwrap(); // veth ifindex 55
        let devfd = maps.add(Map::Dev(dev));
        let mut xsk = XskMap::new(4);
        xsk.set(0, 9).unwrap();
        let xskfd = maps.add(Map::Xsk(xsk));
        let prog = container_redirect(devfd, 1, [10, 0, 0, 2], xskfd);
        let mut vm = Vm::new();
        // Container-bound packet -> veth.
        let r = prog.run(&mut vm, &mut udp_frame(), 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Redirect(RedirectTarget::Device(55)));
        // Other traffic -> AF_XDP socket.
        let mut other = builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 1],
            [10, 0, 0, 99],
            1,
            2,
            64,
        );
        let r = prog.run(&mut vm, &mut other, 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Redirect(RedirectTarget::Xsk(9)));
    }

    #[test]
    fn l4_lb_rewrites_and_bounces() {
        let mut maps = MapSet::new();
        let prog = l4_lb([10, 0, 0, 2], 2000, [192, 168, 9, 9]);
        let mut vm = Vm::new();
        let mut frame = udp_frame();
        let r = prog.run(&mut vm, &mut frame, 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Tx);
        assert_eq!(&frame[30..34], &[192, 168, 9, 9], "dst ip rewritten");
        // Non-matching port passes.
        let mut other = builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1000,
            2001,
            64,
        );
        let r = prog.run(&mut vm, &mut other, 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Pass);
    }

    #[test]
    fn ebpf_datapath_hit_redirects_miss_passes() {
        let mut maps = MapSet::new();
        let flowfd = maps.add(Map::Hash(HashMap::new(16, 8, 64)));
        let mut dev = DevMap::new(8);
        dev.set(2, 77).unwrap();
        let devfd = maps.add(Map::Dev(dev));
        if let Some(Map::Hash(h)) = maps.get_mut(flowfd) {
            let key = dp_flow_key([10, 0, 0, 1], [10, 0, 0, 2], 1000, 2000, 17);
            h.update(&key, &2u64.to_le_bytes()).unwrap();
        }
        let prog = ebpf_datapath(flowfd, devfd);
        let mut vm = Vm::new();
        let r = prog.run(&mut vm, &mut udp_frame(), 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Redirect(RedirectTarget::Device(77)));
        // A different flow misses and passes to userspace.
        let mut other = builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 9, 9, 9],
            [10, 0, 0, 2],
            1000,
            2000,
            64,
        );
        let r = prog.run(&mut vm, &mut other, 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Pass);
    }

    #[test]
    fn control_plane_split_separates_traffic() {
        let mut maps = MapSet::new();
        let mut xsk = XskMap::new(4);
        xsk.set(0, 5).unwrap();
        let fd = maps.add(Map::Xsk(xsk));
        let prog = control_plane_split(fd, 6653); // OpenFlow port
        let mut vm = Vm::new();
        // Controller TCP goes up the stack.
        let mut ctrl = ovs_packet::builder::tcp_ipv4(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 9],
            [10, 0, 0, 1],
            40_000,
            6653,
            1,
            0,
            ovs_packet::tcp::flags::SYN,
            &[],
        );
        let r = prog.run(&mut vm, &mut ctrl, 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Pass);
        // Dataplane UDP goes to the socket.
        let mut data = udp_frame();
        let r = prog.run(&mut vm, &mut data, 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Redirect(RedirectTarget::Xsk(5)));
        // Other TCP (not the controller port) is dataplane too.
        let mut other = ovs_packet::builder::tcp_ipv4(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 9],
            [10, 0, 0, 1],
            40_000,
            443,
            1,
            0,
            ovs_packet::tcp::flags::SYN,
            &[],
        );
        let r = prog.run(&mut vm, &mut other, 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Redirect(RedirectTarget::Xsk(5)));
    }

    #[test]
    fn short_frames_handled_safely() {
        let mut maps = MapSet::new();
        let l2 = maps.add(Map::Hash(HashMap::new(8, 8, 4)));
        let mut vm = Vm::new();
        let mut short = vec![0u8; 10];
        for prog in [
            task_b_parse_drop(),
            task_c_parse_lookup_drop(l2),
            task_d_swap_fwd(),
            l4_lb([1, 2, 3, 4], 5, [6, 7, 8, 9]),
        ] {
            let r = prog.run(&mut vm, &mut short, 0, &mut maps).unwrap();
            assert!(
                matches!(r.action, XdpAction::Drop | XdpAction::Pass),
                "{} must not fault on short frames",
                prog.name()
            );
        }
    }
}
