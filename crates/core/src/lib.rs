//! # ovs-core — the OVS userspace datapath and OpenFlow layer
//!
//! The paper's primary contribution is moving the OVS datapath into
//! userspace over AF_XDP while keeping the rest of OVS unchanged. This
//! crate is that OVS: the three-level flow-caching datapath and the
//! OpenFlow pipeline above it.
//!
//! * [`classifier`] — tuple-space-search classifier: one hash table per
//!   distinct mask ("subtable"), probed in descending max-priority order.
//! * [`cache`] — the exact-match cache (EMC) and the megaflow cache that
//!   make the fast path fast; exactly the structures the eBPF sandbox
//!   could not express (§2.2.2).
//! * [`ofproto`] — the OpenFlow-ish multi-table pipeline: priorities,
//!   goto-table, conntrack with resume tables, tunnel set-field, meters —
//!   and the **translation** step that turns a slow-path traversal into a
//!   megaflow (actions + accumulated wildcard mask).
//! * [`dpif`] — the datapath interface: `dpif-netdev`, the userspace
//!   datapath with PMD-style per-queue processing over AF_XDP / DPDK /
//!   tap / vhostuser ports, and `dpif-netlink`, the driver for the
//!   in-kernel datapath module (the baseline).
//! * [`ct`] — sharded connection tracking (re-exported from `ovs-ct`):
//!   zones with per-zone limits, a bounded table with early-drop
//!   eviction, a TCP-lite state machine, NAT, and rotating expiry
//!   sweeps that ride the revalidator cadence.
//! * [`tunnel`] — userspace Geneve/VXLAN encap/decap routed through the
//!   Netlink replica caches of §4.
//! * [`meter`] — token-bucket meters, the rate-limiting substitute the
//!   paper mentions under "Some features must be reimplemented".
//! * [`mirror`] — ERSPAN port mirroring (the §2.1.1 backporting example).
//! * [`ofctl`] — the `ovs-ofctl add-flow` text syntax.
//! * [`tso`] — software segmentation for egress devices without TSO.
//! * [`revalidator`] — the udpif revalidator: megaflow lifecycle
//!   (idle/hard expiry, selective invalidation on `flow_mod`), the
//!   dynamic flow-limit algorithm, and stats pushback into OpenFlow
//!   rule counters.
//! * [`health`] — the datapath supervisor: `catch_unwind` around PMD
//!   polls, exponential-backoff restart with a bounded budget, and flow
//!   re-installation — the §6 "reduced risk" argument as a subsystem.
//! * [`snapshot`] — versioned datapath state capture (megaflows, ukeys,
//!   conntrack) and the `flow-restore-wait` gate: the hitless-restart
//!   substrate the supervisor uses for planned daemon restarts.
//! * [`controller`] — the modeled controller session: reconnect with
//!   exponential backoff riding `ovs-sim` faults, and the fail-mode
//!   ladder (standalone MAC-learning fallback vs secure drop).
//! * [`appctl`] — the `ovs-appctl` dispatch surface: `coverage/show`,
//!   `dpif-netdev/pmd-perf-show`, `ofproto/trace`, and friends.

pub use ovs_ct as ct;
pub use ovs_nfv as nfv;

pub mod appctl;
pub mod cache;
pub mod classifier;
pub mod controller;
pub mod dpif;
pub mod health;
pub mod meter;
pub mod mirror;
pub mod ofctl;
pub mod ofproto;
pub mod pmd;
pub mod revalidator;
pub mod snapshot;
pub mod tso;
pub mod tunnel;

pub use cache::{Emc, MegaflowCache};
pub use classifier::{Classifier, Rule};
pub use controller::{ControllerSession, FailMode};
pub use dpif::{DpAction, DpifNetdev, DpifNetlink, PortNo, PortType, NF_WORK_PORT};
pub use health::{HealthMonitor, HealthState};
pub use meter::{Meter, MeterSet};
pub use mirror::MirrorSession;
pub use ofctl::{dump_flows, parse_flow, parse_flows};
pub use ofproto::{OfAction, OfRule, Ofproto, RuleEntry};
pub use pmd::{AssignmentPolicy, PmdSet, PmdThread, RxqId};
pub use revalidator::{Revalidator, RevalidatorConfig, SweepSummary, Ukey};
pub use snapshot::{DpSnapshot, FlowRecord, RestoreState, SNAPSHOT_VERSION};
