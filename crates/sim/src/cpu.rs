//! Per-core, per-context CPU time accounting.
//!
//! The paper's Table 4 reports CPU consumption "in units of a CPU
//! hyperthread", broken down the same way Linux `/proc/stat` does:
//! `system` (syscall execution), `softirq` (kernel packet processing),
//! `guest` (time running a vCPU), and `user` (host userspace, i.e. the OVS
//! PMD threads). Simulated substrates charge every modelled operation to a
//! `(core, context)` pair through [`CpuSet::charge`]; experiment harnesses
//! then convert the accumulated busy time into hyperthread units by dividing
//! by the experiment's virtual duration.

/// The execution context a cost is charged to, mirroring `/proc/stat` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Context {
    /// Host userspace: OVS PMD threads, DPDK poll loops, main loop work.
    User,
    /// Kernel time on behalf of a syscall (`sendto`, `poll`, `read`, ...).
    System,
    /// Kernel softirq / NAPI time: drivers, XDP programs, the kernel
    /// datapath, veth and tap delivery.
    Softirq,
    /// Time executing inside a virtual machine's vCPU.
    Guest,
}

impl Context {
    /// All contexts, in the order Table 4 prints them.
    pub const ALL: [Context; 4] = [
        Context::System,
        Context::Softirq,
        Context::Guest,
        Context::User,
    ];

    /// The column label used by Table 4.
    pub fn label(&self) -> &'static str {
        match self {
            Context::User => "user",
            Context::System => "system",
            Context::Softirq => "softirq",
            Context::Guest => "guest",
        }
    }
}

/// Accumulated busy time for one core, split by context.
#[derive(Debug, Clone, Copy, Default)]
pub struct Core {
    user_ns: f64,
    system_ns: f64,
    softirq_ns: f64,
    guest_ns: f64,
}

impl Core {
    /// Busy time charged to `ctx`, in nanoseconds.
    pub fn ns(&self, ctx: Context) -> f64 {
        match ctx {
            Context::User => self.user_ns,
            Context::System => self.system_ns,
            Context::Softirq => self.softirq_ns,
            Context::Guest => self.guest_ns,
        }
    }

    /// Total busy time across all contexts.
    pub fn total_ns(&self) -> f64 {
        self.user_ns + self.system_ns + self.softirq_ns + self.guest_ns
    }

    fn charge(&mut self, ctx: Context, ns: f64) {
        let slot = match ctx {
            Context::User => &mut self.user_ns,
            Context::System => &mut self.system_ns,
            Context::Softirq => &mut self.softirq_ns,
            Context::Guest => &mut self.guest_ns,
        };
        *slot += ns;
    }
}

/// CPU usage for a whole machine over an interval, in hyperthread units
/// (1.0 = one hyperthread fully busy), the unit Table 4 reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpuUsage {
    pub system: f64,
    pub softirq: f64,
    pub guest: f64,
    pub user: f64,
}

impl CpuUsage {
    /// Sum of all contexts — Table 4's "total" column.
    pub fn total(&self) -> f64 {
        self.system + self.softirq + self.guest + self.user
    }

    /// Usage of a single context.
    pub fn get(&self, ctx: Context) -> f64 {
        match ctx {
            Context::User => self.user,
            Context::System => self.system,
            Context::Softirq => self.softirq,
            Context::Guest => self.guest,
        }
    }
}

/// A set of simulated CPU hyperthreads with cycle accounting.
///
/// Cores are identified by index. The paper's microbenchmark testbed is a
/// 12-core 2.4 GHz Xeon E5 2620 v3; the NSX testbed is an 8-core Xeon E5
/// 2440 v2 with hyperthreading (16 hyperthreads).
#[derive(Debug, Clone)]
pub struct CpuSet {
    cores: Vec<Core>,
    /// Clock frequency, used only to convert cycle-denominated costs.
    pub hz: u64,
}

impl CpuSet {
    /// Create `n` idle cores running at `hz`.
    pub fn new(n: usize, hz: u64) -> Self {
        Self {
            cores: vec![Core::default(); n],
            hz,
        }
    }

    /// Number of cores (hyperthreads).
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True if the set has no cores.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Charge `ns` of busy time in context `ctx` to core `core`.
    ///
    /// # Panics
    /// Panics if `core` is out of range — charging a nonexistent core is a
    /// harness bug, not a data-dependent condition.
    pub fn charge(&mut self, core: usize, ctx: Context, ns: f64) {
        self.cores[core].charge(ctx, ns);
    }

    /// Accounting snapshot for one core.
    pub fn core(&self, core: usize) -> &Core {
        &self.cores[core]
    }

    /// The busiest core's total busy time — the pipeline bottleneck.
    pub fn bottleneck_ns(&self) -> f64 {
        self.cores.iter().map(Core::total_ns).fold(0.0, f64::max)
    }

    /// Index of the busiest core.
    pub fn bottleneck_core(&self) -> usize {
        self.cores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_ns().total_cmp(&b.total_ns()))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Aggregate usage in hyperthread units over a `duration_ns` interval.
    ///
    /// Each context's usage is its total busy time across every core divided
    /// by the interval, so "9.7 softirq" means the machine spent 9.7
    /// hyperthread-intervals in softirq, exactly as Table 4 counts it.
    pub fn usage(&self, duration_ns: f64) -> CpuUsage {
        if duration_ns <= 0.0 {
            return CpuUsage::default();
        }
        let sum = |ctx: Context| -> f64 {
            self.cores.iter().map(|c| c.ns(ctx)).sum::<f64>() / duration_ns
        };
        CpuUsage {
            system: sum(Context::System),
            softirq: sum(Context::Softirq),
            guest: sum(Context::Guest),
            user: sum(Context::User),
        }
    }

    /// Reset all accounting to zero, keeping the core count.
    pub fn reset(&mut self) {
        for c in &mut self.cores {
            *c = Core::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_per_context() {
        let mut cpus = CpuSet::new(2, 2_400_000_000);
        cpus.charge(0, Context::User, 100.0);
        cpus.charge(0, Context::User, 50.0);
        cpus.charge(0, Context::Softirq, 25.0);
        cpus.charge(1, Context::Guest, 10.0);
        assert_eq!(cpus.core(0).ns(Context::User), 150.0);
        assert_eq!(cpus.core(0).ns(Context::Softirq), 25.0);
        assert_eq!(cpus.core(0).total_ns(), 175.0);
        assert_eq!(cpus.core(1).ns(Context::Guest), 10.0);
    }

    #[test]
    fn bottleneck_is_busiest_core() {
        let mut cpus = CpuSet::new(3, 1);
        cpus.charge(0, Context::User, 10.0);
        cpus.charge(2, Context::Softirq, 99.0);
        assert_eq!(cpus.bottleneck_ns(), 99.0);
        assert_eq!(cpus.bottleneck_core(), 2);
    }

    #[test]
    fn usage_in_hyperthread_units() {
        let mut cpus = CpuSet::new(4, 1);
        // Two cores each 100% softirq-busy over the interval.
        cpus.charge(0, Context::Softirq, 1_000.0);
        cpus.charge(1, Context::Softirq, 1_000.0);
        cpus.charge(2, Context::User, 500.0);
        let u = cpus.usage(1_000.0);
        assert_eq!(u.softirq, 2.0);
        assert_eq!(u.user, 0.5);
        assert_eq!(u.total(), 2.5);
    }

    #[test]
    fn usage_zero_duration_is_zero() {
        let cpus = CpuSet::new(1, 1);
        assert_eq!(cpus.usage(0.0).total(), 0.0);
    }

    #[test]
    fn reset_clears_all() {
        let mut cpus = CpuSet::new(1, 1);
        cpus.charge(0, Context::System, 7.0);
        cpus.reset();
        assert_eq!(cpus.core(0).total_ns(), 0.0);
    }

    #[test]
    fn context_labels_match_table4() {
        assert_eq!(
            Context::ALL.map(|c| c.label()),
            ["system", "softirq", "guest", "user"]
        );
    }
}
