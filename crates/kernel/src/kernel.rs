//! The kernel: device registry, driver RX/TX paths, XDP execution, the
//! host stack, and the glue between devices, namespaces, guests, the OVS
//! module, and AF_XDP sockets.
//!
//! All packet movement inside the simulated host flows through
//! [`Kernel::receive`] and [`Kernel::transmit`]; every modelled operation
//! charges the cost model through `self.sim`.

use crate::conntrack::CtTable;
use crate::dev::{Attachment, DeviceKind, NetDevice, Owner, XdpAttachment, XdpMode};
use crate::guest::{Guest, GuestRole, VirtioBackend};
use crate::namespace::{reflect_frame, ContainerRole, Namespace};
use crate::neigh::{NeighState, NeighTable, Neighbor};
use crate::ovs_module::{DpEnv, DpVerdict, OvsModule};
use crate::route::{Route, RouteTable};
use crate::rtnetlink::RtnlEvent;
use crate::xsk::XskHandle;
use ovs_ebpf::xdp::{RedirectTarget, XdpAction};
use ovs_ebpf::{MapSet, Vm, XdpProgram};
use ovs_obs::coverage;
use ovs_packet::ethernet::EthernetFrame;
use ovs_packet::{arp, builder, icmp, ipv4, udp, EtherType, MacAddr};
use ovs_sim::{faults::FaultKind, Context, SimCtx};
use std::collections::{BTreeMap, HashMap, VecDeque};

pub use crate::ovs_module::Upcall;

/// Recursion guard: maximum device hops one packet may take inside the
/// host (veth chains, XDP redirects, bridge recirculation).
const MAX_HOPS: usize = 16;

/// Upcall queue depth; the real datapath's Netlink sockets drop misses
/// beyond their buffering, which is how upcall storms shed load.
const MAX_UPCALLS: usize = 4096;

/// Per-kernel scheduling configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Hyperthreads that run NIC softirq work; queue `q` is serviced by
    /// `rss_cores[q % len]`.
    pub rss_cores: Vec<usize>,
    /// Hyperthread charged for host-stack and virtual-device work.
    pub host_stack_core: usize,
    /// Multiplier on all softirq charges, modelling the cache-bounce and
    /// hyperthread-sharing penalty when RSS spreads one workload across
    /// many threads (`CostModel::kernel_rss_penalty`; Table 4's 9.7
    /// softirq hyperthreads). 1.0 = no contention.
    pub softirq_scale: f64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            rss_cores: vec![0],
            host_stack_core: 0,
            softirq_scale: 1.0,
        }
    }
}

/// First-hop classification of a received packet (details are visible in
/// device/namespace/guest queues and stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcome {
    /// The device is owned by a userspace driver; queued for its PMD.
    UserOwned,
    /// Device down or other early drop.
    Dropped,
    /// XDP program dropped (or aborted on) the packet.
    XdpDrop,
    /// XDP bounced the packet back out the same NIC.
    XdpTx,
    /// Redirected into an AF_XDP socket.
    ToXsk(u32),
    /// Redirect to a socket failed (fill ring empty / ring full).
    XskDropped(u32),
    /// Redirected to another device.
    RedirectedDev(u32),
    /// Went through the OVS kernel datapath.
    Bridged,
    /// The OVS datapath missed and queued an upcall.
    Upcalled,
    /// Delivered to the host stack.
    ToHost,
    /// Delivered into a namespace (container).
    ToNamespace,
}

/// The simulated kernel.
pub struct Kernel {
    /// Virtual time, CPUs, and the cost model.
    pub sim: SimCtx,
    devices: Vec<NetDevice>,
    /// Addresses: `(ifindex, ip, prefix_len)`.
    addrs: Vec<(u32, [u8; 4], u8)>,
    /// The IPv4 routing table.
    pub routes: RouteTable,
    /// The neighbour (ARP) table.
    pub neighbors: NeighTable,
    /// Kernel conntrack.
    pub conntrack: CtTable,
    /// The OVS kernel datapath module.
    pub ovs: OvsModule,
    /// Global BPF map registry (map fds are kernel-wide).
    pub maps: MapSet,
    /// The eBPF execution engine.
    vm: Vm,
    xsks: Vec<XskHandle>,
    /// Container namespaces.
    pub namespaces: Vec<Namespace>,
    /// Virtual machines.
    pub guests: Vec<Guest>,
    /// Pending upcalls from the OVS kernel datapath.
    pub upcalls: VecDeque<Upcall>,
    /// Misses dropped because the upcall queue was full.
    pub upcall_drops: u64,
    /// Frames flushed from vhost rings on guest disconnect (counted so
    /// the robustness soak can account for every injected packet).
    pub vhost_flushed: u64,
    /// rtnetlink notification stream (consumed by userspace caches).
    pub events: Vec<RtnlEvent>,
    /// Scheduling configuration.
    pub config: KernelConfig,
    /// SNMP-style counters (`nstat`).
    pub nstat: BTreeMap<String, u64>,
    /// UDP sockets: `(ip, port)` → received payload frames.
    pub udp_sockets: HashMap<([u8; 4], u16), VecDeque<Vec<u8>>>,
    /// Per-device packet captures (`tcpdump`). Key: ifindex.
    captures: HashMap<u32, Vec<Vec<u8>>>,
    /// Frames flagged by an active `ofproto/trace`; `tcpdump` tags
    /// matching captures with `[traced]`.
    traced_frames: Vec<Vec<u8>>,
}

impl Kernel {
    /// A kernel on a machine with `n_cpus` hyperthreads.
    pub fn new(n_cpus: usize) -> Self {
        Self {
            sim: SimCtx::new(n_cpus),
            devices: Vec::new(),
            addrs: Vec::new(),
            routes: RouteTable::new(),
            neighbors: NeighTable::new(),
            conntrack: CtTable::new(),
            ovs: OvsModule::new(),
            maps: MapSet::new(),
            vm: Vm::new(),
            xsks: Vec::new(),
            namespaces: Vec::new(),
            guests: Vec::new(),
            upcalls: VecDeque::new(),
            upcall_drops: 0,
            vhost_flushed: 0,
            events: Vec::new(),
            config: KernelConfig::default(),
            nstat: BTreeMap::new(),
            udp_sockets: HashMap::new(),
            captures: HashMap::new(),
            traced_frames: Vec::new(),
        }
    }

    /// Flag a frame as belonging to a packet trace so capture tools can
    /// correlate it. Bounded: only the most recent flags are kept.
    pub fn mark_traced(&mut self, frame: &[u8]) {
        const MAX_TRACED: usize = 64;
        if self.traced_frames.len() >= MAX_TRACED {
            self.traced_frames.remove(0);
        }
        self.traced_frames.push(frame.to_vec());
    }

    /// Whether `frame` was flagged by [`mark_traced`](Self::mark_traced).
    pub fn is_traced(&self, frame: &[u8]) -> bool {
        self.traced_frames.iter().any(|f| f == frame)
    }

    /// Charge softirq time with the configured contention scaling.
    fn charge_softirq(&mut self, core: usize, ns: f64) {
        let scaled = ns * self.config.softirq_scale;
        self.sim.charge(core, Context::Softirq, scaled);
    }

    fn bump(&mut self, counter: &str) {
        *self.nstat.entry(counter.to_string()).or_insert(0) += 1;
    }

    // ------------------------------------------------------------------
    // Device management
    // ------------------------------------------------------------------

    /// Register a device, assigning its ifindex.
    pub fn add_device(&mut self, mut dev: NetDevice) -> u32 {
        let ifindex = (self.devices.len() + 1) as u32;
        dev.ifindex = ifindex;
        self.events.push(RtnlEvent::LinkAdd {
            ifindex,
            name: dev.name.clone(),
        });
        self.devices.push(dev);
        ifindex
    }

    /// Create a veth pair, returning `(a, b)` ifindexes.
    pub fn add_veth_pair(
        &mut self,
        name_a: &str,
        name_b: &str,
        mac_a: MacAddr,
        mac_b: MacAddr,
    ) -> (u32, u32) {
        let a = self.add_device(NetDevice::new(
            name_a,
            mac_a,
            DeviceKind::Veth { peer: 0 },
            1,
        ));
        let b = self.add_device(NetDevice::new(
            name_b,
            mac_b,
            DeviceKind::Veth { peer: a },
            1,
        ));
        if let DeviceKind::Veth { peer } = &mut self.dev_mut(a).kind {
            *peer = b;
        }
        (a, b)
    }

    /// Borrow a device by ifindex. Panics on an invalid index (harness
    /// bug, not a data condition).
    pub fn device(&self, ifindex: u32) -> &NetDevice {
        &self.devices[(ifindex - 1) as usize]
    }

    /// Mutably borrow a device.
    pub fn dev_mut(&mut self, ifindex: u32) -> &mut NetDevice {
        &mut self.devices[(ifindex - 1) as usize]
    }

    /// Find a kernel-visible device by name. Userspace-owned devices are
    /// invisible, exactly as an unbound device is to `ip link`.
    pub fn device_by_name(&self, name: &str) -> Option<&NetDevice> {
        self.devices
            .iter()
            .find(|d| d.name == name && !d.is_user_owned())
    }

    /// Find any device by name, including userspace-owned ones (used by
    /// the userspace drivers themselves).
    pub fn device_by_name_any(&self, name: &str) -> Option<&NetDevice> {
        self.devices.iter().find(|d| d.name == name)
    }

    /// All kernel-owned devices.
    pub fn kernel_devices(&self) -> impl Iterator<Item = &NetDevice> {
        self.devices.iter().filter(|d| !d.is_user_owned())
    }

    /// Assign an IP address, adding the connected route.
    pub fn add_addr(&mut self, ifindex: u32, ip: [u8; 4], prefix_len: u8) {
        self.addrs.push((ifindex, ip, prefix_len));
        self.routes.add(Route {
            dst: ip,
            prefix_len,
            gateway: None,
            ifindex,
        });
        self.events.push(RtnlEvent::AddrAdd {
            ifindex,
            ip,
            prefix_len,
        });
    }

    /// Addresses on a device.
    pub fn addrs_of(&self, ifindex: u32) -> Vec<([u8; 4], u8)> {
        self.addrs
            .iter()
            .filter(|(i, _, _)| *i == ifindex)
            .map(|(_, ip, p)| (*ip, *p))
            .collect()
    }

    /// Is `ip` assigned to any kernel device?
    pub fn is_local_ip(&self, ip: [u8; 4]) -> bool {
        self.addrs.iter().any(|(_, a, _)| *a == ip)
    }

    /// `(ifindex, mac)` for every device (tunnel source-MAC resolution).
    fn dev_macs(&self) -> Vec<(u32, MacAddr)> {
        self.devices.iter().map(|d| (d.ifindex, d.mac)).collect()
    }

    /// Hand a device to a userspace driver (DPDK-style unbind). Kernel
    /// state referring to it (XDP programs, bridge attachment) is dropped,
    /// and tools stop seeing it.
    pub fn take_device(&mut self, ifindex: u32, driver: &str) {
        let d = self.dev_mut(ifindex);
        d.owner = Owner::UserDriver(driver.to_string());
        d.xdp = None;
        self.events.push(RtnlEvent::LinkDel { ifindex });
    }

    /// Return a device to the kernel driver.
    pub fn release_device(&mut self, ifindex: u32) {
        let name = {
            let d = self.dev_mut(ifindex);
            d.owner = Owner::Kernel;
            d.name.clone()
        };
        self.events.push(RtnlEvent::LinkAdd { ifindex, name });
    }

    /// Attach an XDP program. Enforces the driver models of Fig 6:
    /// per-queue attachment requires a driver that supports it, native
    /// mode requires native-XDP capability (otherwise use
    /// [`XdpMode::Generic`], the universal fallback).
    pub fn attach_xdp(
        &mut self,
        ifindex: u32,
        prog: XdpProgram,
        mode: XdpMode,
        queues: Option<Vec<usize>>,
    ) -> Result<(), String> {
        // Injected attach rejection: `arg = 1` models the verifier/driver
        // rejecting native mode only (copy mode still works); `arg >= 2`
        // rejects generic too, forcing the tap rung of the ladder.
        if let Some(arg) = self
            .sim
            .faults
            .active_arg(FaultKind::XdpAttachFail, ifindex)
        {
            if mode == XdpMode::Native || arg >= 2 {
                let name = self.device(ifindex).name.clone();
                coverage!("xdp_attach_rejected");
                return Err(format!(
                    "{name}: XDP program rejected by driver ({mode:?} mode)"
                ));
            }
        }
        let d = self.dev_mut(ifindex);
        if d.is_user_owned() {
            return Err(format!("{}: device not managed by the kernel", d.name));
        }
        if mode == XdpMode::Native && !d.caps.native_xdp {
            return Err(format!("{}: driver lacks native XDP support", d.name));
        }
        if queues.is_some() && !d.caps.per_queue_xdp {
            return Err(format!(
                "{}: driver only supports whole-device XDP attachment",
                d.name
            ));
        }
        d.xdp = Some(XdpAttachment { prog, mode, queues });
        Ok(())
    }

    /// Detach the XDP program.
    pub fn detach_xdp(&mut self, ifindex: u32) {
        self.dev_mut(ifindex).xdp = None;
    }

    /// Register an AF_XDP socket binding, returning its socket id (the
    /// value stored in xskmaps).
    pub fn register_xsk(&mut self, handle: XskHandle) -> u32 {
        self.xsks.push(handle);
        (self.xsks.len() - 1) as u32
    }

    /// Shared handle to a registered socket.
    pub fn xsk(&self, id: u32) -> XskHandle {
        std::rc::Rc::clone(&self.xsks[id as usize])
    }

    /// Userspace closed socket `xsk_id`: destroy the binding's rings and
    /// mark it inert. Socket ids are stable (they index `xsks`), so the
    /// entry stays; stale xskmap lookups and recovery kicks find a
    /// binding that accepts and yields nothing.
    pub fn close_xsk(&mut self, xsk_id: u32) {
        self.xsks[xsk_id as usize].borrow_mut().close();
    }

    /// Create a container: a veth pair whose inner end sits in a new
    /// namespace. Returns `(host_ifindex, inner_ifindex, ns_index)`.
    pub fn add_container(
        &mut self,
        name: &str,
        ip: [u8; 4],
        mac: MacAddr,
        role: ContainerRole,
    ) -> (u32, u32, usize) {
        let host_mac = MacAddr::new(0x0a, 0, 0, mac.0[3], mac.0[4], mac.0[5]);
        let (host_if, inner_if) = self.add_veth_pair(
            &format!("veth-{name}"),
            &format!("eth0@{name}"),
            host_mac,
            mac,
        );
        let mut ns = Namespace::new(name, ip, mac, role);
        ns.ifindex = inner_if;
        self.namespaces.push(ns);
        let idx = self.namespaces.len() - 1;
        self.dev_mut(inner_if).attachment = Attachment::Namespace { ns: idx };
        (host_if, inner_if, idx)
    }

    /// Register a guest VM. For vhost-net guests, pass the tap it sits
    /// behind. Returns the guest index.
    pub fn add_guest(&mut self, guest: Guest) -> usize {
        self.guests.push(guest);
        self.guests.len() - 1
    }

    // ------------------------------------------------------------------
    // Packet capture
    // ------------------------------------------------------------------

    /// Start capturing on a device (`tcpdump -i`).
    pub fn capture_start(&mut self, ifindex: u32) {
        self.captures.entry(ifindex).or_default();
    }

    /// Stop capturing and return the captured frames.
    pub fn capture_stop(&mut self, ifindex: u32) -> Vec<Vec<u8>> {
        self.captures.remove(&ifindex).unwrap_or_default()
    }

    fn capture(&mut self, ifindex: u32, frame: &[u8]) {
        if let Some(buf) = self.captures.get_mut(&ifindex) {
            buf.push(frame.to_vec());
        }
    }

    // ------------------------------------------------------------------
    // RX path
    // ------------------------------------------------------------------

    /// A packet arrives from the wire on `(ifindex, queue)`.
    pub fn receive(&mut self, ifindex: u32, queue: usize, frame: Vec<u8>) -> RxOutcome {
        self.receive_inner(ifindex, queue, frame, 0)
    }

    /// A packet arrives from the wire and the NIC picks the queue itself:
    /// ntuple steering rules first, then RSS (Fig 6b's hardware
    /// classification).
    pub fn receive_steered(&mut self, ifindex: u32, frame: Vec<u8>) -> RxOutcome {
        let queue = self.device(ifindex).hw_queue_for(&frame);
        self.receive_inner(ifindex, queue, frame, 0)
    }

    /// The softirq core servicing `(ifindex, queue)` — each device's
    /// queues get their own IRQ affinity slot, as `irqbalance` would set.
    fn softirq_core(&self, ifindex: u32, queue: usize) -> usize {
        let n = self.config.rss_cores.len();
        self.config.rss_cores[(ifindex as usize * 7 + queue) % n]
    }

    fn receive_inner(
        &mut self,
        ifindex: u32,
        queue: usize,
        mut frame: Vec<u8>,
        depth: usize,
    ) -> RxOutcome {
        if depth > MAX_HOPS {
            return RxOutcome::Dropped;
        }
        self.capture(ifindex, &frame);
        let (up, user_owned, is_phys, attachment, xdp_active, xdp_mode) = {
            let d = self.device(ifindex);
            (
                d.up,
                d.is_user_owned(),
                matches!(d.kind, DeviceKind::Phys { .. }),
                d.attachment,
                d.xdp.as_ref().map(|x| x.covers(queue)).unwrap_or(false),
                d.xdp.as_ref().map(|x| x.mode),
            )
        };
        {
            let d = self.dev_mut(ifindex);
            d.stats.rx_packets += 1;
            d.stats.rx_bytes += frame.len() as u64;
        }
        if !up {
            self.dev_mut(ifindex).stats.rx_dropped += 1;
            coverage!("netdev_rx_carrier_down");
            return RxOutcome::Dropped;
        }
        if user_owned {
            let d = self.dev_mut(ifindex);
            let q = queue % d.user_rx.len();
            d.user_rx[q].push_back(frame);
            return RxOutcome::UserOwned;
        }

        let core = if is_phys {
            self.softirq_core(ifindex, queue)
        } else {
            self.config.host_stack_core
        };
        if is_phys {
            let c = self.sim.costs.driver_rx_ns;
            self.charge_softirq(core, c);
        }

        // XDP stage.
        if xdp_active {
            if xdp_mode == Some(XdpMode::Generic) {
                // Generic mode runs after skb allocation and pays a copy.
                let c = self.sim.costs.skb_alloc_ns
                    + self.sim.costs.afxdp_copy_mode_extra_ns
                    + self.sim.costs.copy_ns(frame.len());
                self.charge_softirq(core, c);
            }
            let prog = self.device(ifindex).xdp.as_ref().unwrap().prog.clone();
            let run = prog.run(&mut self.vm, &mut frame, queue as u32, &mut self.maps);
            let res = match run {
                Ok(r) => r,
                Err(_) => {
                    self.dev_mut(ifindex).stats.xdp_drop += 1;
                    return RxOutcome::XdpDrop;
                }
            };
            let mut c = self.sim.costs.xdp_dispatch_ns
                + res.insns as f64 * self.sim.costs.ebpf_insn_ns
                + res.map_lookups as f64 * self.sim.costs.ebpf_map_lookup_ns;
            if res.pkt_accesses > 0 {
                c += self.sim.costs.xdp_pkt_touch_ns;
            }
            self.charge_softirq(core, c);

            match res.action {
                XdpAction::Drop | XdpAction::Aborted => {
                    self.dev_mut(ifindex).stats.xdp_drop += 1;
                    return RxOutcome::XdpDrop;
                }
                XdpAction::Tx => {
                    let c = self.sim.costs.xdp_tx_ns;
                    self.charge_softirq(core, c);
                    self.dev_mut(ifindex).stats.xdp_tx += 1;
                    self.transmit_at(ifindex, frame, core, depth + 1);
                    return RxOutcome::XdpTx;
                }
                XdpAction::Redirect(RedirectTarget::Xsk(id)) => {
                    self.dev_mut(ifindex).stats.xdp_redirect += 1;
                    // Preferred busy polling: the XSK delivery work runs
                    // inline on the application's core.
                    let deliver_core = self.xsk(id).borrow().busy_poll_core.unwrap_or(core);
                    let c = self.sim.costs.xsk_deliver_ns;
                    self.charge_softirq(deliver_core, c);
                    let h = self.xsk(id);
                    let mut b = h.borrow_mut();
                    if !b.zero_copy {
                        let c = self.sim.costs.copy_ns(frame.len());
                        drop(b);
                        self.charge_softirq(core, c);
                        b = h.borrow_mut();
                    }
                    return if b.deliver(&frame) {
                        RxOutcome::ToXsk(id)
                    } else {
                        RxOutcome::XskDropped(id)
                    };
                }
                XdpAction::Redirect(RedirectTarget::Device(dif)) => {
                    self.dev_mut(ifindex).stats.xdp_redirect += 1;
                    let c = self.sim.costs.xdp_redirect_ns;
                    self.charge_softirq(core, c);
                    self.transmit_at(dif, frame, core, depth + 1);
                    return RxOutcome::RedirectedDev(dif);
                }
                XdpAction::Redirect(RedirectTarget::Invalid) => {
                    self.dev_mut(ifindex).stats.xdp_drop += 1;
                    return RxOutcome::XdpDrop;
                }
                XdpAction::Pass => {
                    self.dev_mut(ifindex).stats.xdp_pass += 1;
                    // Fall through to the skb path.
                }
            }
        }

        // skb path.
        if is_phys {
            let c = self.sim.costs.skb_alloc_ns;
            self.charge_softirq(core, c);
        }

        // tc ingress hook: the eBPF-datapath attachment point (§2.2.2).
        // Unlike XDP it runs on an allocated skb, paying the fixed skb
        // context cost plus interpreted bytecode per packet.
        let has_tc = self.device(ifindex).tc_bpf.is_some();
        if has_tc {
            let prog = self.device(ifindex).tc_bpf.as_ref().unwrap().clone();
            let run = prog.run(&mut self.vm, &mut frame, queue as u32, &mut self.maps);
            let res = match run {
                Ok(r) => r,
                Err(_) => {
                    self.dev_mut(ifindex).stats.rx_dropped += 1;
                    return RxOutcome::Dropped;
                }
            };
            let mut c = self.sim.costs.tc_bpf_fixed_ns
                + res.insns as f64 * self.sim.costs.ebpf_insn_ns
                + res.map_lookups as f64 * self.sim.costs.ebpf_map_lookup_ns;
            if res.pkt_accesses > 0 {
                c += self.sim.costs.xdp_pkt_touch_ns;
            }
            self.charge_softirq(core, c);
            match res.action {
                XdpAction::Drop | XdpAction::Aborted => {
                    self.dev_mut(ifindex).stats.rx_dropped += 1;
                    return RxOutcome::Dropped;
                }
                XdpAction::Redirect(RedirectTarget::Device(dif)) => {
                    self.transmit_at(dif, frame, core, depth + 1);
                    return RxOutcome::RedirectedDev(dif);
                }
                XdpAction::Redirect(_) | XdpAction::Tx => {
                    // tc hooks cannot reach XSKs or TX in this model.
                    self.dev_mut(ifindex).stats.rx_dropped += 1;
                    return RxOutcome::Dropped;
                }
                XdpAction::Pass => {}
            }
        }

        match attachment {
            Attachment::OvsBridge { .. } => self.bridge_input(ifindex, frame, core, depth),
            Attachment::Namespace { ns } => self.namespace_input(ifindex, ns, frame, core, depth),
            Attachment::HostStack => {
                self.stack_deliver(ifindex, frame, core, depth);
                RxOutcome::ToHost
            }
        }
    }

    /// Run a frame through the OVS kernel datapath and apply the verdicts.
    fn bridge_input(
        &mut self,
        ifindex: u32,
        frame: Vec<u8>,
        core: usize,
        depth: usize,
    ) -> RxOutcome {
        let dev_macs = self.dev_macs();
        let now = self.sim.clock.now_ns();
        let (lookups0, enc0, dec0, ct0) = (
            self.ovs.stats.lookups,
            self.ovs.stats.tunnel_encaps,
            self.ovs.stats.tunnel_decaps,
            self.conntrack.stats.ops,
        );
        let verdicts = {
            let mut env = DpEnv {
                routes: &self.routes,
                neighbors: &self.neighbors,
                conntrack: &mut self.conntrack,
                dev_macs: &dev_macs,
                now_ns: now,
            };
            self.ovs.receive(frame, ifindex, &mut env)
        };
        // Charge datapath work from the stats deltas.
        let c = (self.ovs.stats.lookups - lookups0) as f64 * self.sim.costs.kernel_ovs_flow_ns
            + (self.ovs.stats.tunnel_encaps - enc0 + self.ovs.stats.tunnel_decaps - dec0) as f64
                * self.sim.costs.kernel_tunnel_ns
            + (self.conntrack.stats.ops - ct0) as f64 * self.sim.costs.kernel_conntrack_ns;
        self.charge_softirq(core, c);

        let mut outcome = RxOutcome::Bridged;
        for v in verdicts {
            match v {
                DpVerdict::Emit {
                    ifindex: out_if,
                    frame,
                } => {
                    self.transmit_at(out_if, frame, core, depth + 1);
                }
                DpVerdict::ToHost { frame } => {
                    self.stack_deliver(ifindex, frame, core, depth);
                }
                DpVerdict::Upcall(u) => {
                    if self.upcalls.len() < MAX_UPCALLS {
                        self.upcalls.push_back(u);
                        outcome = RxOutcome::Upcalled;
                    } else {
                        self.upcall_drops += 1;
                        coverage!("upcall_queue_full");
                        outcome = RxOutcome::Dropped;
                    }
                }
                DpVerdict::Drop => {}
            }
        }
        outcome
    }

    /// Deliver a frame into a container namespace and handle its reply.
    fn namespace_input(
        &mut self,
        ifindex: u32,
        ns: usize,
        frame: Vec<u8>,
        core: usize,
        depth: usize,
    ) -> RxOutcome {
        // Container socket receive + application + send run in the host
        // kernel (softirq/syscall); modelled as one stack traversal each
        // way, plus the socket copy which scales with frame size.
        let c = self.sim.costs.kernel_tcp_segment_ns + self.sim.costs.copy_ns(frame.len());
        self.charge_softirq(core, c);
        let reply = self.namespaces[ns].handle_frame(&frame);
        if let Some(r) = reply {
            let c = self.sim.costs.kernel_tcp_segment_ns + self.sim.costs.copy_ns(r.len());
            self.charge_softirq(core, c);
            self.transmit_at(ifindex, r, core, depth + 1);
        }
        RxOutcome::ToNamespace
    }

    // ------------------------------------------------------------------
    // TX path
    // ------------------------------------------------------------------

    /// Transmit a frame out a device, charging the given core.
    pub fn transmit(&mut self, ifindex: u32, frame: Vec<u8>, core: usize) {
        self.transmit_at(ifindex, frame, core, 0)
    }

    fn transmit_at(&mut self, ifindex: u32, frame: Vec<u8>, core: usize, depth: usize) {
        if depth > MAX_HOPS {
            return;
        }
        // Carrier down: the driver drops at the qdisc/ring boundary, with
        // a counter. Virtual devices keep working (their "link" is code).
        {
            let d = self.dev_mut(ifindex);
            if !d.up && matches!(d.kind, DeviceKind::Phys { .. }) {
                d.stats.tx_dropped += 1;
                coverage!("netdev_tx_carrier_down");
                return;
            }
        }
        self.capture(ifindex, &frame);
        let kind = {
            let d = self.dev_mut(ifindex);
            d.stats.tx_packets += 1;
            d.stats.tx_bytes += frame.len() as u64;
            d.kind.clone()
        };
        match kind {
            DeviceKind::Phys { .. } => {
                let c = self.sim.costs.driver_tx_ns;
                self.charge_softirq(core, c);
                self.dev_mut(ifindex).tx_wire.push_back(frame);
            }
            DeviceKind::Tap => {
                let c = self.sim.costs.tap_kernel_ns;
                self.charge_softirq(core, c);
                self.dev_mut(ifindex).fd_queue.push_back(frame);
            }
            DeviceKind::Veth { peer } => {
                let c = self.sim.costs.veth_xmit_ns;
                self.charge_softirq(core, c);
                self.receive_inner(peer, 0, frame, depth + 1);
            }
            DeviceKind::Loopback => {
                self.stack_deliver(ifindex, frame, core, depth);
            }
        }
    }

    // ------------------------------------------------------------------
    // Host stack
    // ------------------------------------------------------------------

    /// Deliver a frame to the host TCP/IP stack: answers ARP and ICMP
    /// echo aimed at local addresses, delivers UDP to bound sockets, and
    /// parks everything else in the device's `stack_rx`.
    fn stack_deliver(&mut self, ifindex: u32, frame: Vec<u8>, core: usize, depth: usize) {
        let c = self.sim.costs.kernel_tcp_segment_ns;
        self.charge_softirq(core, c);
        self.bump("IpInReceives");

        let Ok(eth) = EthernetFrame::new_checked(&frame[..]) else {
            self.dev_mut(ifindex).stack_rx.push_back(frame);
            return;
        };
        match eth.ethertype() {
            EtherType::Arp => {
                if let Ok(a) = arp::ArpPacket::new_checked(eth.payload()) {
                    if a.oper() == arp::op::REQUEST && self.is_local_ip(a.target_ip()) {
                        self.bump("ArpInRequests");
                        // Learn the asker and reply.
                        self.neighbors.add(Neighbor {
                            ip: a.sender_ip(),
                            mac: a.sender_mac(),
                            ifindex,
                            state: NeighState::Reachable,
                        });
                        let my_mac = self.device(ifindex).mac;
                        let reply = builder::arp_frame(
                            my_mac,
                            a.sender_mac(),
                            arp::op::REPLY,
                            my_mac,
                            a.target_ip(),
                            a.sender_mac(),
                            a.sender_ip(),
                        );
                        self.bump("ArpOutReplies");
                        self.transmit_at(ifindex, reply, core, depth + 1);
                        return;
                    }
                }
                self.dev_mut(ifindex).stack_rx.push_back(frame);
            }
            EtherType::Ipv4 => {
                let Ok(ip) = ipv4::Ipv4Packet::new_checked(eth.payload()) else {
                    self.bump("IpInHdrErrors");
                    return;
                };
                if !self.is_local_ip(ip.dst()) {
                    // Not for us; no IP forwarding in the host model.
                    self.dev_mut(ifindex).stack_rx.push_back(frame);
                    return;
                }
                match ip.protocol() {
                    ipv4::protocol::ICMP => {
                        self.bump("IcmpInMsgs");
                        if let Ok(ic) = icmp::IcmpPacket::new_checked(ip.payload()) {
                            if ic.msg_type() == icmp::msg_type::ECHO_REQUEST {
                                self.bump("IcmpInEchos");
                                if let Some(reply) = reflect_frame(&frame) {
                                    self.bump("IcmpOutEchoReps");
                                    self.transmit_at(ifindex, reply, core, depth + 1);
                                    return;
                                }
                            }
                        }
                        self.dev_mut(ifindex).stack_rx.push_back(frame);
                    }
                    ipv4::protocol::UDP => {
                        self.bump("UdpInDatagrams");
                        if let Ok(u) = udp::UdpDatagram::new_checked(ip.payload()) {
                            let key = (ip.dst(), u.dst_port());
                            if let Some(q) = self.udp_sockets.get_mut(&key) {
                                q.push_back(frame);
                                return;
                            }
                            self.bump("UdpNoPorts");
                        }
                        self.dev_mut(ifindex).stack_rx.push_back(frame);
                    }
                    _ => {
                        self.dev_mut(ifindex).stack_rx.push_back(frame);
                    }
                }
            }
            _ => {
                self.dev_mut(ifindex).stack_rx.push_back(frame);
            }
        }
    }

    /// Bind a UDP socket (tools and test endpoints).
    pub fn udp_bind(&mut self, ip: [u8; 4], port: u16) {
        self.udp_sockets.insert((ip, port), VecDeque::new());
    }

    // ------------------------------------------------------------------
    // Tap fd side (userspace OVS / QEMU)
    // ------------------------------------------------------------------

    /// Userspace reads one frame from a tap fd. Charges a light syscall
    /// to the caller's core when a frame is returned (the poll loop is
    /// readiness-driven, so empty taps cost nothing).
    pub fn tap_fd_read(&mut self, ifindex: u32, caller_core: usize) -> Option<Vec<u8>> {
        let f = self.dev_mut(ifindex).fd_queue.pop_front()?;
        let c = self.sim.costs.syscall_light_ns;
        self.sim.charge(caller_core, Context::System, c);
        Some(f)
    }

    /// OVS-userspace access to a tap/veth **kernel** side via a raw
    /// (AF_PACKET) socket, as `netdev-linux` does: read frames the kernel
    /// side received (e.g. what vhost-net injected for a VM).
    pub fn raw_socket_recv(&mut self, ifindex: u32, caller_core: usize) -> Option<Vec<u8>> {
        let f = self.dev_mut(ifindex).stack_rx.pop_front()?;
        let c = self.sim.costs.syscall_light_ns + self.sim.costs.copy_ns(f.len());
        self.sim.charge(caller_core, Context::System, c);
        Some(f)
    }

    /// OVS-userspace send onto a device's kernel side via a raw socket:
    /// the 2 µs `sendto` of §3.3, then normal kernel-side transmission
    /// (for a tap, delivery to the fd reader — the VM's vhost backend).
    pub fn raw_socket_send(&mut self, ifindex: u32, frame: Vec<u8>, caller_core: usize) {
        let c = self.sim.costs.syscall_sendto_ns + self.sim.costs.copy_ns(frame.len());
        self.sim.charge(caller_core, Context::System, c);
        self.transmit_at(ifindex, frame, caller_core, 0)
    }

    /// Userspace writes one frame into a tap fd — the 2 µs `sendto` the
    /// paper measured (§3.3). The frame then enters the kernel as if
    /// received on the tap device.
    pub fn tap_fd_write(&mut self, ifindex: u32, frame: Vec<u8>, caller_core: usize) -> RxOutcome {
        let c = self.sim.costs.syscall_sendto_ns;
        self.sim.charge(caller_core, Context::System, c);
        self.receive_inner(ifindex, 0, frame, 0)
    }

    // ------------------------------------------------------------------
    // Guests
    // ------------------------------------------------------------------

    /// Service a vhost-net guest: move tap frames into the guest, run the
    /// guest app, and inject its output back through the tap. Returns
    /// the total packets moved (tap→guest, guest app, guest→kernel).
    pub fn vhost_net_service(&mut self, guest_idx: usize) -> usize {
        let VirtioBackend::VhostNet { tap_ifindex } = self.guests[guest_idx].backend else {
            return self.run_guest(guest_idx);
        };
        // vhost-net kthread: tap fd -> guest rx ring.
        let mut moved = 0;
        while let Some(f) = self.dev_mut(tap_ifindex).fd_queue.pop_front() {
            let c = self.sim.costs.vhost_net_ns + self.sim.costs.copy_ns(f.len());
            let core = self.config.host_stack_core;
            self.charge_softirq(core, c);
            self.guests[guest_idx].rx_ring.push_back(f);
            moved += 1;
        }
        moved += self.run_guest(guest_idx);
        // Guest output: vhost-net injects into the kernel via the tap.
        while let Some(f) = self.guests[guest_idx].tx_ring.pop_front() {
            let c = self.sim.costs.vhost_net_ns + self.sim.costs.copy_ns(f.len());
            let core = self.config.host_stack_core;
            self.charge_softirq(core, c);
            self.receive_inner(tap_ifindex, 0, f, 0);
            moved += 1;
        }
        moved
    }

    /// Run a guest's application over its RX ring, charging guest time.
    /// (For vhostuser guests the switch moves the frames; this only runs
    /// the app.)
    pub fn run_guest(&mut self, guest_idx: usize) -> usize {
        let (core, role, pending) = {
            let g = &self.guests[guest_idx];
            (g.core, g.role, g.rx_ring.len())
        };
        let per_pkt = match role {
            GuestRole::PmdForwarder => self.sim.costs.guest_pmd_fwd_ns,
            GuestRole::Echo | GuestRole::Sink => self.sim.costs.guest_tcp_segment_ns,
        };
        let processed = self.guests[guest_idx].run();
        debug_assert_eq!(processed, pending);
        self.sim
            .charge(core, Context::Guest, per_pkt * processed as f64);
        processed
    }

    /// Execute a datapath action list on a packet (the userspace side of
    /// `OVS_PACKET_CMD_EXECUTE`, used after an upcall). Charges datapath
    /// work to `core` in softirq context and applies the resulting
    /// verdicts.
    pub fn ovs_execute(
        &mut self,
        pkt: ovs_packet::DpPacket,
        actions: &[crate::ovs_module::KAction],
        core: usize,
    ) {
        let dev_macs = self.dev_macs();
        let now = self.sim.clock.now_ns();
        let (lookups0, enc0, dec0, ct0) = (
            self.ovs.stats.lookups,
            self.ovs.stats.tunnel_encaps,
            self.ovs.stats.tunnel_decaps,
            self.conntrack.stats.ops,
        );
        let verdicts = {
            let mut env = DpEnv {
                routes: &self.routes,
                neighbors: &self.neighbors,
                conntrack: &mut self.conntrack,
                dev_macs: &dev_macs,
                now_ns: now,
            };
            self.ovs.execute(pkt, actions, &mut env)
        };
        let c = (self.ovs.stats.lookups - lookups0) as f64 * self.sim.costs.kernel_ovs_flow_ns
            + (self.ovs.stats.tunnel_encaps - enc0 + self.ovs.stats.tunnel_decaps - dec0) as f64
                * self.sim.costs.kernel_tunnel_ns
            + (self.conntrack.stats.ops - ct0) as f64 * self.sim.costs.kernel_conntrack_ns;
        self.charge_softirq(core, c);
        for v in verdicts {
            match v {
                DpVerdict::Emit { ifindex, frame } => self.transmit_at(ifindex, frame, core, 1),
                DpVerdict::ToHost { frame } => {
                    let ifindex = 1;
                    self.stack_deliver(ifindex, frame, core, 1);
                }
                DpVerdict::Upcall(u) => {
                    if self.upcalls.len() < MAX_UPCALLS {
                        self.upcalls.push_back(u);
                    } else {
                        self.upcall_drops += 1;
                        coverage!("upcall_queue_full");
                    }
                }
                DpVerdict::Drop => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Userspace poll-mode driver access (DPDK-style)
    // ------------------------------------------------------------------

    /// PMD RX: poll one frame off a userspace-owned device's queue. The
    /// NIC DMAs straight into the driver's memory, so no kernel cost.
    pub fn user_rx_pop(&mut self, ifindex: u32, queue: usize) -> Option<Vec<u8>> {
        let d = self.dev_mut(ifindex);
        let q = queue % d.user_rx.len();
        d.user_rx[q].pop_front()
    }

    /// PMD TX: place a frame on the wire of a userspace-owned device
    /// directly (no kernel involvement).
    pub fn user_tx(&mut self, ifindex: u32, frame: Vec<u8>) {
        let d = self.dev_mut(ifindex);
        d.stats.tx_packets += 1;
        d.stats.tx_bytes += frame.len() as u64;
        d.tx_wire.push_back(frame);
    }

    // ------------------------------------------------------------------
    // vhostuser (shared-memory virtio rings, path B in Fig 5)
    // ------------------------------------------------------------------

    /// Switch → guest: enqueue a frame on a vhostuser guest's RX ring.
    /// Charges the ring work and copy as user time on the caller's core
    /// and the guest-notify eventfd kick as system time. Returns `false`
    /// (accepting nothing, charging nothing) when the guest's vhost
    /// backend is disconnected — the caller drops with a counter.
    pub fn vhostuser_push(&mut self, guest_idx: usize, frame: Vec<u8>, core: usize) -> bool {
        if !self.guests[guest_idx].connected {
            return false;
        }
        let c = self.sim.costs.vhostuser_ring_ns + self.sim.costs.copy_ns(frame.len());
        self.sim.charge(core, Context::User, c);
        let kick = self.sim.costs.vhost_kick_ns;
        self.sim.charge(core, Context::System, kick);
        self.guests[guest_idx].rx_ring.push_back(frame);
        true
    }

    /// Guest → switch: dequeue a frame from a vhostuser guest's TX ring.
    /// A disconnected guest's rings are unmapped: nothing to pop.
    pub fn vhostuser_pop(&mut self, guest_idx: usize, core: usize) -> Option<Vec<u8>> {
        if !self.guests[guest_idx].connected {
            return None;
        }
        let f = self.guests[guest_idx].tx_ring.pop_front()?;
        let c = self.sim.costs.vhostuser_ring_ns + self.sim.costs.copy_ns(f.len());
        self.sim.charge(core, Context::User, c);
        Some(f)
    }

    /// The vhost backend of guest `guest_idx` went away (QEMU crash or
    /// restart): unmap the shared rings, flushing whatever sat on them.
    /// Flushed frames are counted — a disconnect loses packets, but
    /// never *silently*.
    pub fn vhost_disconnect(&mut self, guest_idx: usize) {
        let g = &mut self.guests[guest_idx];
        if !g.connected {
            return;
        }
        g.connected = false;
        let flushed = (g.rx_ring.len() + g.tx_ring.len()) as u64;
        g.rx_ring.clear();
        g.tx_ring.clear();
        self.vhost_flushed += flushed;
        coverage!("vhost_disconnect");
        if flushed > 0 {
            coverage!("vhost_ring_flushed", flushed);
        }
    }

    /// The guest's vhost backend came back: renegotiate (fresh, empty
    /// rings, bumped generation) and resume forwarding.
    pub fn vhost_reconnect(&mut self, guest_idx: usize) {
        let g = &mut self.guests[guest_idx];
        if g.connected {
            return;
        }
        g.connected = true;
        g.ring_generation += 1;
        coverage!("vhost_reconnect");
    }

    // ------------------------------------------------------------------
    // AF_XDP TX (kernel side)
    // ------------------------------------------------------------------

    /// Drain an XSK TX ring and transmit the frames on the bound device.
    /// Driver TX work is charged to the device's softirq core. Returns
    /// the number of packets sent.
    pub fn xsk_tx_drain(&mut self, xsk_id: u32, budget: usize) -> usize {
        let h = self.xsk(xsk_id);
        let (frames, ifindex, queue) = {
            let mut b = h.borrow_mut();
            // Lost `need_wakeup` kick: the kernel never saw the doorbell,
            // so the ring backlog sits untouched (delayed, not dropped)
            // until the recovery kick clears the stall.
            if b.kick_lost {
                coverage!("xsk_tx_kick_lost");
                return 0;
            }
            let f = b.drain_tx(budget);
            (f, b.ifindex, b.queue)
        };
        let n = frames.len();
        let core = self.softirq_core(ifindex, queue);
        for f in frames {
            self.transmit_at(ifindex, f, core, 0);
        }
        n
    }

    // ------------------------------------------------------------------
    // Fault injection (the apply side of `ovs_sim::faults`)
    // ------------------------------------------------------------------

    /// Set link carrier, counting transitions (`carrier_transitions`,
    /// as `ip -s link` reports).
    pub fn set_carrier(&mut self, ifindex: u32, up: bool) {
        let d = self.dev_mut(ifindex);
        if d.up == up {
            return;
        }
        d.up = up;
        d.stats.carrier_transitions += 1;
        if !up {
            coverage!("netdev_carrier_down");
        }
    }

    /// Mark every XSK bound to `ifindex` as having lost (or regained)
    /// its tx `need_wakeup` kick.
    pub fn set_xsk_kick_lost(&mut self, ifindex: u32, lost: bool) {
        for h in &self.xsks {
            let mut b = h.borrow_mut();
            if b.ifindex == ifindex {
                b.kick_lost = lost;
            }
        }
    }

    /// Recovery kick after an rx-ring stall clears: drain the whole tx
    /// backlog of every XSK on `ifindex` (the periodic wakeup a real PMD
    /// issues when completions stop arriving).
    pub fn xsk_recovery_kick(&mut self, ifindex: u32) {
        let ids: Vec<u32> = (0..self.xsks.len() as u32)
            .filter(|id| self.xsks[*id as usize].borrow().ifindex == ifindex)
            .collect();
        for id in ids {
            while self.xsk_tx_drain(id, 64) > 0 {}
        }
    }

    /// Advance the fault schedule to the current virtual time and apply
    /// kernel-side effects: carrier flaps, vhost disconnect/reconnect,
    /// and tx-kick stalls. Attach rejection, umem exhaustion, and the
    /// datapath panic are level faults consumed where they bite
    /// (`attach_xdp`, the AF_XDP socket, the health supervisor).
    pub fn fault_tick(&mut self) {
        let now = self.sim.clock.now_ns();
        let tr = self.sim.faults.tick(now);
        self.apply_fault_transitions(&tr);
    }

    /// Inject one fault immediately (the `fault/inject` appctl path) and
    /// apply its kernel-side effects.
    pub fn inject_fault(&mut self, kind: FaultKind, target: u32, arg: u32, duration_ns: u64) {
        let now = self.sim.clock.now_ns();
        let tr = self.sim.faults.inject(now, kind, target, arg, duration_ns);
        self.apply_fault_transitions(&tr);
    }

    fn apply_fault_transitions(&mut self, tr: &ovs_sim::FaultTransitions) {
        for ev in &tr.fired {
            match ev.kind {
                FaultKind::CarrierFlap => self.set_carrier(ev.target, false),
                FaultKind::VhostDisconnect if (ev.target as usize) < self.guests.len() => {
                    self.vhost_disconnect(ev.target as usize);
                }
                FaultKind::VhostReconnect if (ev.target as usize) < self.guests.len() => {
                    self.vhost_reconnect(ev.target as usize);
                }
                FaultKind::RxRingStall => self.set_xsk_kick_lost(ev.target, true),
                _ => {}
            }
        }
        for (kind, target, _arg) in &tr.cleared {
            match kind {
                FaultKind::CarrierFlap => self.set_carrier(*target, true),
                FaultKind::VhostDisconnect if (*target as usize) < self.guests.len() => {
                    self.vhost_reconnect(*target as usize);
                }
                FaultKind::RxRingStall => {
                    self.set_xsk_kick_lost(*target, false);
                    self.xsk_recovery_kick(*target);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ovs_module::{KAction, Vport};
    use crate::xsk::XskBinding;
    use ovs_ebpf::maps::{Map, XskMap};
    use ovs_packet::flow::{fields, FlowKey, FlowMask};
    use ovs_ring::Desc;

    const M1: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const M2: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);

    fn phys(k: &mut Kernel, name: &str, mac: MacAddr) -> u32 {
        k.add_device(NetDevice::new(
            name,
            mac,
            DeviceKind::Phys { link_gbps: 10.0 },
            4,
        ))
    }

    fn udp64() -> Vec<u8> {
        builder::udp_ipv4_frame(M1, M2, [10, 0, 0, 1], [10, 0, 0, 2], 100, 200, 64)
    }

    #[test]
    fn user_owned_device_queues_for_pmd() {
        let mut k = Kernel::new(4);
        let eth0 = phys(&mut k, "eth0", M1);
        k.take_device(eth0, "dpdk");
        assert_eq!(k.receive(eth0, 0, udp64()), RxOutcome::UserOwned);
        assert_eq!(k.device(eth0).user_rx[0].len(), 1);
        assert!(
            k.device_by_name("eth0").is_none(),
            "invisible to the kernel"
        );
        assert!(k.device_by_name_any("eth0").is_some());
        k.release_device(eth0);
        assert!(k.device_by_name("eth0").is_some());
    }

    #[test]
    fn xdp_drop_counts_and_charges_softirq() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        k.attach_xdp(
            eth0,
            ovs_ebpf::programs::task_a_drop(),
            XdpMode::Native,
            None,
        )
        .unwrap();
        assert_eq!(k.receive(eth0, 0, udp64()), RxOutcome::XdpDrop);
        assert_eq!(k.device(eth0).stats.xdp_drop, 1);
        assert!(k.sim.cpus.core(0).ns(Context::Softirq) > 0.0);
        assert_eq!(k.sim.cpus.core(0).ns(Context::User), 0.0);
    }

    #[test]
    fn xdp_tx_bounces_out_same_nic() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        k.attach_xdp(
            eth0,
            ovs_ebpf::programs::task_d_swap_fwd(),
            XdpMode::Native,
            None,
        )
        .unwrap();
        assert_eq!(k.receive(eth0, 0, udp64()), RxOutcome::XdpTx);
        let out = k.dev_mut(eth0).tx_wire.pop_front().unwrap();
        assert_eq!(&out[0..6], M1.as_bytes(), "MACs swapped by the program");
    }

    #[test]
    fn xdp_redirect_to_xsk_delivers_frame() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        let h = XskBinding::new(eth0, 0, 16, 2048, true).into_handle();
        for i in 0..8 {
            h.borrow()
                .umem
                .fill
                .push(Desc { frame: i, len: 0 })
                .unwrap();
        }
        let xsk_id = k.register_xsk(std::rc::Rc::clone(&h));
        let mut xmap = XskMap::new(4);
        xmap.set(0, xsk_id).unwrap();
        let fd = k.maps.add(Map::Xsk(xmap));
        k.attach_xdp(
            eth0,
            ovs_ebpf::programs::ovs_xsk_redirect(fd),
            XdpMode::Native,
            None,
        )
        .unwrap();

        let f = udp64();
        assert_eq!(k.receive(eth0, 0, f.clone()), RxOutcome::ToXsk(xsk_id));
        let b = h.borrow();
        let d = b.rx.pop().unwrap();
        assert_eq!(&b.umem.frame(d.frame)[..d.len as usize], &f[..]);
    }

    #[test]
    fn xsk_backpressure_drops_when_fill_empty() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        let h = XskBinding::new(eth0, 0, 4, 2048, true).into_handle();
        let xsk_id = k.register_xsk(std::rc::Rc::clone(&h));
        let mut xmap = XskMap::new(4);
        xmap.set(0, xsk_id).unwrap();
        let fd = k.maps.add(Map::Xsk(xmap));
        k.attach_xdp(
            eth0,
            ovs_ebpf::programs::ovs_xsk_redirect(fd),
            XdpMode::Native,
            None,
        )
        .unwrap();
        assert_eq!(k.receive(eth0, 0, udp64()), RxOutcome::XskDropped(xsk_id));
        assert_eq!(h.borrow().stats.rx_dropped, 1);
    }

    #[test]
    fn bridge_forwards_via_kernel_module() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        let eth1 = phys(&mut k, "eth1", M2);
        let p0 = k.ovs.add_vport(Vport::Netdev { ifindex: eth0 });
        let p1 = k.ovs.add_vport(Vport::Netdev { ifindex: eth1 });
        k.dev_mut(eth0).attachment = Attachment::OvsBridge { port: p0 };
        k.dev_mut(eth1).attachment = Attachment::OvsBridge { port: p1 };
        let mut key = FlowKey::default();
        key.set_in_port(p0);
        k.ovs.install_flow(
            &key,
            &FlowMask::of_fields(&[&fields::IN_PORT]),
            vec![KAction::Output(p1)],
        );
        let f = udp64();
        assert_eq!(k.receive(eth0, 0, f.clone()), RxOutcome::Bridged);
        assert_eq!(k.dev_mut(eth1).tx_wire.pop_front().unwrap(), f);
    }

    #[test]
    fn bridge_miss_upcalls() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        let p0 = k.ovs.add_vport(Vport::Netdev { ifindex: eth0 });
        k.dev_mut(eth0).attachment = Attachment::OvsBridge { port: p0 };
        assert_eq!(k.receive(eth0, 0, udp64()), RxOutcome::Upcalled);
        assert_eq!(k.upcalls.len(), 1);
        assert_eq!(k.upcalls[0].in_port, p0);
    }

    #[test]
    fn container_echo_roundtrip_over_veth() {
        let mut k = Kernel::new(2);
        let (host_if, _inner_if, _ns) =
            k.add_container("c0", [10, 0, 0, 2], M2, ContainerRole::Echo);
        // Send a frame into the container by transmitting on the host end.
        let f = builder::udp_ipv4(M1, M2, [10, 0, 0, 1], [10, 0, 0, 2], 7, 8, b"req");
        k.transmit(host_if, f, 0);
        // The echo reply comes back out of the host veth end's stack_rx
        // (nothing else is attached there).
        let ns = &k.namespaces[0];
        assert_eq!(ns.rx_count, 1);
        let host_dev = k.device(host_if);
        assert_eq!(host_dev.stack_rx.len(), 1);
        let reply = &host_dev.stack_rx[0];
        let ip = ipv4::Ipv4Packet::new_checked(&reply[14..]).unwrap();
        assert_eq!(ip.src(), [10, 0, 0, 2]);
        assert_eq!(ip.dst(), [10, 0, 0, 1]);
    }

    #[test]
    fn icmp_echo_responder() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        k.add_addr(eth0, [192, 168, 1, 1], 24);
        let req = builder::icmp_echo(M2, M1, [192, 168, 1, 2], [192, 168, 1, 1], false, 1, 1);
        assert_eq!(k.receive(eth0, 0, req), RxOutcome::ToHost);
        let reply = k
            .dev_mut(eth0)
            .tx_wire
            .pop_front()
            .expect("echo reply sent");
        let ip = ipv4::Ipv4Packet::new_checked(&reply[14..]).unwrap();
        assert_eq!(ip.dst(), [192, 168, 1, 2]);
        assert_eq!(k.nstat["IcmpInEchos"], 1);
        assert_eq!(k.nstat["IcmpOutEchoReps"], 1);
    }

    #[test]
    fn arp_responder_learns_and_replies() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        k.add_addr(eth0, [192, 168, 1, 1], 24);
        let req = builder::arp_frame(
            M2,
            MacAddr::BROADCAST,
            arp::op::REQUEST,
            M2,
            [192, 168, 1, 2],
            MacAddr::ZERO,
            [192, 168, 1, 1],
        );
        k.receive(eth0, 0, req);
        let reply = k.dev_mut(eth0).tx_wire.pop_front().expect("arp reply");
        let a = arp::ArpPacket::new_checked(&reply[14..]).unwrap();
        assert_eq!(a.oper(), arp::op::REPLY);
        assert_eq!(a.sender_ip(), [192, 168, 1, 1]);
        // And the asker was learned.
        assert_eq!(k.neighbors.lookup([192, 168, 1, 2]).unwrap().mac, M2);
    }

    #[test]
    fn udp_socket_delivery() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        k.add_addr(eth0, [10, 0, 0, 2], 24);
        k.udp_bind([10, 0, 0, 2], 200);
        k.receive(eth0, 0, udp64());
        assert_eq!(k.udp_sockets[&([10, 0, 0, 2], 200)].len(), 1);
        assert_eq!(k.nstat["UdpInDatagrams"], 1);
    }

    #[test]
    fn tap_fd_write_charges_sendto_as_system_time() {
        let mut k = Kernel::new(4);
        let tap = k.add_device(NetDevice::new("tap0", M2, DeviceKind::Tap, 1));
        k.tap_fd_write(tap, udp64(), 3);
        let sys = k.sim.cpus.core(3).ns(Context::System);
        assert_eq!(sys, k.sim.costs.syscall_sendto_ns);
    }

    #[test]
    fn vhost_net_guest_forwarder_roundtrip() {
        let mut k = Kernel::new(4);
        let tap = k.add_device(NetDevice::new("tap0", M2, DeviceKind::Tap, 1));
        let g = k.add_guest(Guest::new(
            "vm0",
            M2,
            [10, 0, 0, 2],
            GuestRole::PmdForwarder,
            VirtioBackend::VhostNet { tap_ifindex: tap },
            2,
        ));
        // A frame addressed to the VM lands on the tap (e.g. from OVS).
        k.transmit(tap, udp64(), 0);
        assert_eq!(k.device(tap).fd_queue.len(), 1);
        let n = k.vhost_net_service(g);
        assert_eq!(n, 3, "tap->guest, guest app, guest->kernel");
        assert!(
            k.sim.cpus.core(2).ns(Context::Guest) > 0.0,
            "guest time charged"
        );
        // The forwarded frame re-entered the kernel through the tap and,
        // with no bridge attached, landed in the tap's stack path.
        assert_eq!(k.guests[g].rx_count, 1);
    }

    #[test]
    fn per_queue_attach_requires_capability() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        k.dev_mut(eth0).caps.per_queue_xdp = false; // Intel model
        let err = k
            .attach_xdp(
                eth0,
                ovs_ebpf::programs::task_a_drop(),
                XdpMode::Native,
                Some(vec![1]),
            )
            .unwrap_err();
        assert!(err.contains("whole-device"));
        // Whole-device attach works.
        k.attach_xdp(
            eth0,
            ovs_ebpf::programs::task_a_drop(),
            XdpMode::Native,
            None,
        )
        .unwrap();
    }

    #[test]
    fn per_queue_attach_only_covers_selected_queues() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        k.attach_xdp(
            eth0,
            ovs_ebpf::programs::task_a_drop(),
            XdpMode::Native,
            Some(vec![2, 3]),
        )
        .unwrap();
        assert_eq!(k.receive(eth0, 2, udp64()), RxOutcome::XdpDrop);
        // Queue 0 bypasses the program and goes to the stack.
        assert_eq!(k.receive(eth0, 0, udp64()), RxOutcome::ToHost);
    }

    #[test]
    fn native_xdp_requires_driver_support() {
        let mut k = Kernel::new(2);
        let tap = k.add_device(NetDevice::new("tap0", M2, DeviceKind::Tap, 1));
        let err = k
            .attach_xdp(
                tap,
                ovs_ebpf::programs::task_a_drop(),
                XdpMode::Native,
                None,
            )
            .unwrap_err();
        assert!(err.contains("native XDP"));
        k.attach_xdp(
            tap,
            ovs_ebpf::programs::task_a_drop(),
            XdpMode::Generic,
            None,
        )
        .unwrap();
    }

    #[test]
    fn capture_sees_rx_and_tx() {
        let mut k = Kernel::new(2);
        let eth0 = phys(&mut k, "eth0", M1);
        k.add_addr(eth0, [192, 168, 1, 1], 24);
        k.capture_start(eth0);
        let req = builder::icmp_echo(M2, M1, [192, 168, 1, 2], [192, 168, 1, 1], false, 1, 1);
        k.receive(eth0, 0, req);
        let cap = k.capture_stop(eth0);
        assert_eq!(cap.len(), 2, "request and reply both captured");
    }

    #[test]
    fn rss_spreads_charges_across_cores() {
        let mut k = Kernel::new(4);
        k.config.rss_cores = vec![0, 1, 2, 3];
        let eth0 = phys(&mut k, "eth0", M1);
        for q in 0..4 {
            k.receive(eth0, q, udp64());
        }
        for c in 0..4 {
            assert!(
                k.sim.cpus.core(c).ns(Context::Softirq) > 0.0,
                "core {c} idle"
            );
        }
    }
}
