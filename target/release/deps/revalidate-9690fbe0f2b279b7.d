/root/repo/target/release/deps/revalidate-9690fbe0f2b279b7.d: crates/bench/benches/revalidate.rs

/root/repo/target/release/deps/revalidate-9690fbe0f2b279b7: crates/bench/benches/revalidate.rs

crates/bench/benches/revalidate.rs:
