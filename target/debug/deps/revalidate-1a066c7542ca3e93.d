/root/repo/target/debug/deps/revalidate-1a066c7542ca3e93.d: crates/bench/benches/revalidate.rs Cargo.toml

/root/repo/target/debug/deps/librevalidate-1a066c7542ca3e93.rmeta: crates/bench/benches/revalidate.rs Cargo.toml

crates/bench/benches/revalidate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
