/root/repo/target/debug/deps/ebpf_interp-d20f783b87595adb.d: crates/bench/benches/ebpf_interp.rs Cargo.toml

/root/repo/target/debug/deps/libebpf_interp-d20f783b87595adb.rmeta: crates/bench/benches/ebpf_interp.rs Cargo.toml

crates/bench/benches/ebpf_interp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
