//! Net devices: physical NICs, tap devices, veth pairs, loopback.

use ovs_ebpf::XdpProgram;
use ovs_packet::MacAddr;
use std::collections::VecDeque;

/// Who drives the device — the kernel, or a userspace poll-mode driver
/// that unbinds it from the kernel (the DPDK situation that breaks every
/// tool in Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Owner {
    /// The kernel driver owns the device; tools and rtnetlink work.
    Kernel,
    /// A userspace driver owns it (value = driver name, e.g. "dpdk").
    /// The kernel no longer sees the device.
    UserDriver(String),
}

/// What the kernel does with packets that survive the driver/XDP stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// Deliver to the host TCP/IP stack (default).
    HostStack,
    /// The device is a port of the OVS kernel datapath; `port` is the OVS
    /// datapath port number.
    OvsBridge { port: u32 },
    /// Deliver into a network namespace (the inner end of a veth pair);
    /// index into the kernel's namespace table.
    Namespace { ns: usize },
}

/// Hardware offload capabilities (O5, Fig 8's checksum/TSO knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadCaps {
    /// NIC verifies receive checksums.
    pub rx_csum: bool,
    /// NIC fills transmit checksums.
    pub tx_csum: bool,
    /// NIC segments TCP super-frames.
    pub tso: bool,
    /// Driver supports native (zero-copy) XDP.
    pub native_xdp: bool,
    /// NIC supplies an RSS hash to the host (no XDP hint API yet — AF_XDP
    /// must still hash in software, §5.5).
    pub rss_hash: bool,
    /// Driver supports attaching XDP to a *subset* of queues — the
    /// Mellanox model of Fig 6(b). Intel-model drivers (Fig 6a) attach to
    /// the whole device only.
    pub per_queue_xdp: bool,
}

impl OffloadCaps {
    /// A modern NIC (ConnectX-6 class): everything on.
    pub fn full() -> Self {
        Self {
            rx_csum: true,
            tx_csum: true,
            tso: true,
            native_xdp: true,
            rss_hash: true,
            per_queue_xdp: true,
        }
    }

    /// No offloads (virtual devices, or offloads disabled for a test).
    pub fn none() -> Self {
        Self {
            rx_csum: false,
            tx_csum: false,
            tso: false,
            native_xdp: false,
            rss_hash: false,
            per_queue_xdp: false,
        }
    }
}

/// XDP attachment mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XdpMode {
    /// Driver-native XDP: runs before skb allocation, zero-copy AF_XDP.
    Native,
    /// Generic (skb) mode: the universal fallback, one extra copy
    /// (§3.5 "Limitations").
    Generic,
}

/// A hardware flow-steering rule (`ethtool --config-ntuple` style): match
/// on L4 destination port and/or IP protocol, direct to a queue. With the
/// Fig 6(b) per-queue XDP model, these split management traffic (to
/// non-XDP queues, hence the normal stack) from dataplane traffic (to
/// XDP/AF_XDP queues) in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtupleRule {
    /// Match the L4 destination port, if set.
    pub tp_dst: Option<u16>,
    /// Match the IP protocol, if set.
    pub ip_proto: Option<u8>,
    /// Queue to steer matching packets to.
    pub queue: usize,
}

impl NtupleRule {
    /// Does this rule match the flow key?
    pub fn matches(&self, key: &ovs_packet::FlowKey) -> bool {
        self.tp_dst.map(|p| key.tp_dst() == p).unwrap_or(true)
            && self.ip_proto.map(|p| key.nw_proto() == p).unwrap_or(true)
    }
}

/// An XDP program attached to a device.
#[derive(Debug, Clone)]
pub struct XdpAttachment {
    /// The verified program.
    pub prog: XdpProgram,
    /// Attachment mode.
    pub mode: XdpMode,
    /// Which RX queues trigger the program: `None` = all queues (the Intel
    /// model in Fig 6a); `Some(qs)` = only those queues (the Mellanox
    /// model in Fig 6b, used with hardware flow steering).
    pub queues: Option<Vec<usize>>,
}

impl XdpAttachment {
    /// Does the program cover packets arriving on `queue`?
    pub fn covers(&self, queue: usize) -> bool {
        match &self.queues {
            None => true,
            Some(qs) => qs.contains(&queue),
        }
    }
}

/// Per-device packet counters (`ip -s link` / `nstat` fodder).
#[derive(Debug, Clone, Copy, Default)]
pub struct DevStats {
    pub rx_packets: u64,
    pub rx_bytes: u64,
    pub rx_dropped: u64,
    pub tx_packets: u64,
    pub tx_bytes: u64,
    /// Frames dropped at the driver because carrier was down.
    pub tx_dropped: u64,
    /// Link up/down transitions (carrier flaps).
    pub carrier_transitions: u64,
    pub xdp_drop: u64,
    pub xdp_tx: u64,
    pub xdp_redirect: u64,
    pub xdp_pass: u64,
}

/// Device flavour.
#[derive(Debug, Clone)]
pub enum DeviceKind {
    /// A physical NIC with a link speed.
    Phys { link_gbps: f64 },
    /// A tap device: the kernel side plus a file-descriptor side read and
    /// written by userspace (QEMU/vhost or OVS itself).
    Tap,
    /// One end of a veth pair; `peer` is the other end's ifindex.
    Veth { peer: u32 },
    /// Loopback.
    Loopback,
}

/// A network device.
#[derive(Debug)]
pub struct NetDevice {
    /// Interface name (`eth0`, `tap1`, `veth-c0`, ...).
    pub name: String,
    /// Interface index (1-based, stable).
    pub ifindex: u32,
    /// MAC address.
    pub mac: MacAddr,
    /// MTU in bytes.
    pub mtu: usize,
    /// Administrative state.
    pub up: bool,
    /// Flavour.
    pub kind: DeviceKind,
    /// Kernel or userspace driver ownership.
    pub owner: Owner,
    /// Number of RX queues.
    pub num_queues: usize,
    /// Offload capabilities.
    pub caps: OffloadCaps,
    /// Attached XDP program, if any.
    pub xdp: Option<XdpAttachment>,
    /// eBPF program at the tc ingress hook (runs on the skb path, after
    /// allocation — the §2.2.2 eBPF-datapath attachment point).
    pub tc_bpf: Option<XdpProgram>,
    /// Where stack-bound packets go.
    pub attachment: Attachment,
    /// Counters.
    pub stats: DevStats,
    /// Physical devices: frames transmitted onto the wire (read by the
    /// harness or the peer host).
    pub tx_wire: VecDeque<Vec<u8>>,
    /// Tap devices: frames queued for the fd reader (userspace).
    pub fd_queue: VecDeque<Vec<u8>>,
    /// Frames delivered to the local stack on this device (tools,
    /// namespaces, sockets read these).
    pub stack_rx: VecDeque<Vec<u8>>,
    /// Userspace-driver mode: per-queue RX buffers the PMD polls.
    pub user_rx: Vec<VecDeque<Vec<u8>>>,
    /// Hardware flow-steering rules, first match wins.
    pub ntuple: Vec<NtupleRule>,
}

impl NetDevice {
    /// Build a device shell; the [`crate::Kernel`] assigns the ifindex.
    pub fn new(name: &str, mac: MacAddr, kind: DeviceKind, num_queues: usize) -> Self {
        let caps = match kind {
            DeviceKind::Phys { .. } => OffloadCaps::full(),
            _ => OffloadCaps::none(),
        };
        Self {
            name: name.to_string(),
            ifindex: 0,
            mac,
            mtu: 1500,
            up: true,
            kind,
            owner: Owner::Kernel,
            num_queues: num_queues.max(1),
            caps,
            xdp: None,
            tc_bpf: None,
            attachment: Attachment::HostStack,
            stats: DevStats::default(),
            tx_wire: VecDeque::new(),
            fd_queue: VecDeque::new(),
            stack_rx: VecDeque::new(),
            user_rx: (0..num_queues.max(1)).map(|_| VecDeque::new()).collect(),
            ntuple: Vec::new(),
        }
    }

    /// Pick the RX queue for a frame: ntuple steering rules first, then
    /// RSS over the 5-tuple hash — what the NIC does in hardware.
    pub fn hw_queue_for(&self, frame: &[u8]) -> usize {
        let mut pkt = ovs_packet::DpPacket::from_data(frame);
        let key = ovs_packet::flow::extract_flow_key(&mut pkt);
        for r in &self.ntuple {
            if r.matches(&key) {
                return r.queue % self.num_queues;
            }
        }
        if self.num_queues <= 1 {
            0
        } else {
            key.rss_hash() as usize % self.num_queues
        }
    }

    /// True when a userspace driver owns this device.
    pub fn is_user_owned(&self) -> bool {
        matches!(self.owner, Owner::UserDriver(_))
    }

    /// Link speed in Gbps (physical devices only).
    pub fn link_gbps(&self) -> Option<f64> {
        match self.kind {
            DeviceKind::Phys { link_gbps } => Some(link_gbps),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_device_defaults() {
        let d = NetDevice::new(
            "eth0",
            MacAddr::new(2, 0, 0, 0, 0, 1),
            DeviceKind::Phys { link_gbps: 25.0 },
            4,
        );
        assert!(d.caps.native_xdp);
        assert!(d.caps.tso);
        assert_eq!(d.link_gbps(), Some(25.0));
        assert_eq!(d.num_queues, 4);
        assert!(!d.is_user_owned());
    }

    #[test]
    fn tap_has_no_offloads_by_default() {
        let d = NetDevice::new("tap0", MacAddr::ZERO, DeviceKind::Tap, 1);
        assert!(!d.caps.native_xdp);
        assert!(d.link_gbps().is_none());
    }

    #[test]
    fn xdp_queue_coverage() {
        let prog = ovs_ebpf::programs::task_a_drop();
        let all = XdpAttachment {
            prog: prog.clone(),
            mode: XdpMode::Native,
            queues: None,
        };
        assert!(all.covers(0));
        assert!(all.covers(7));
        let subset = XdpAttachment {
            prog,
            mode: XdpMode::Native,
            queues: Some(vec![3, 4]),
        };
        assert!(subset.covers(3));
        assert!(!subset.covers(0));
    }

    #[test]
    fn zero_queues_clamped_to_one() {
        let d = NetDevice::new("x", MacAddr::ZERO, DeviceKind::Loopback, 0);
        assert_eq!(d.num_queues, 1);
        assert_eq!(d.user_rx.len(), 1);
    }
}
