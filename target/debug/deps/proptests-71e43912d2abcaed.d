/root/repo/target/debug/deps/proptests-71e43912d2abcaed.d: crates/ebpf/tests/proptests.rs

/root/repo/target/debug/deps/proptests-71e43912d2abcaed: crates/ebpf/tests/proptests.rs

crates/ebpf/tests/proptests.rs:
