//! OpenFlow meters: token-bucket rate limiting.
//!
//! "Traffic shaping and policing is still missing, so we currently use
//! the OpenFlow meter action to support rate limiting, which is not fully
//! equivalent" (§6). This is that substitute: a policer that drops over-
//! rate packets, with no queueing/shaping.

/// One token-bucket meter.
#[derive(Debug, Clone)]
pub struct Meter {
    /// Rate in bits per second.
    pub rate_bps: u64,
    /// Bucket depth in bits.
    pub burst_bits: u64,
    tokens_bits: f64,
    last_ns: u64,
    /// Packets dropped by this meter.
    pub drops: u64,
    /// Packets passed.
    pub passes: u64,
}

impl Meter {
    /// A meter passing `rate_bps` with `burst_bits` of burst tolerance.
    pub fn new(rate_bps: u64, burst_bits: u64) -> Self {
        Self {
            rate_bps,
            burst_bits,
            tokens_bits: burst_bits as f64,
            last_ns: 0,
            drops: 0,
            passes: 0,
        }
    }

    /// Offer a packet of `len` bytes at virtual time `now_ns`. Returns
    /// `true` if it passes, `false` if the policer drops it.
    pub fn offer(&mut self, now_ns: u64, len: usize) -> bool {
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns;
        self.tokens_bits = (self.tokens_bits + elapsed as f64 * self.rate_bps as f64 / 1e9)
            .min(self.burst_bits as f64);
        let need = (len * 8) as f64;
        if self.tokens_bits >= need {
            self.tokens_bits -= need;
            self.passes += 1;
            true
        } else {
            self.drops += 1;
            false
        }
    }
}

/// A meter table keyed by meter id.
#[derive(Debug, Default)]
pub struct MeterSet {
    meters: std::collections::HashMap<u32, Meter>,
}

impl MeterSet {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install or replace a meter.
    pub fn set(&mut self, id: u32, meter: Meter) {
        self.meters.insert(id, meter);
    }

    /// Remove a meter.
    pub fn remove(&mut self, id: u32) -> bool {
        self.meters.remove(&id).is_some()
    }

    /// Offer a packet to meter `id`. Unknown meters pass (as OVS does).
    pub fn offer(&mut self, id: u32, now_ns: u64, len: usize) -> bool {
        match self.meters.get_mut(&id) {
            Some(m) => m.offer(now_ns, len),
            None => true,
        }
    }

    /// Borrow a meter for stats.
    pub fn get(&self, id: u32) -> Option<&Meter> {
        self.meters.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_under_rate_drops_over() {
        // 8 Mbps, small burst of one 1000-byte packet.
        let mut m = Meter::new(8_000_000, 8_000);
        assert!(m.offer(0, 1000), "burst allows the first packet");
        assert!(!m.offer(1, 1000), "bucket empty immediately after");
        // After 1 ms at 8 Mbps, 8000 bits accumulate: one more packet.
        assert!(m.offer(1_000_000, 1000));
        assert_eq!(m.passes, 2);
        assert_eq!(m.drops, 1);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        // 80 Mbps; offer 64-byte packets every 1 us (512 Mbps offered).
        let mut m = Meter::new(80_000_000, 10_000);
        let mut passed = 0;
        for i in 0..10_000u64 {
            if m.offer(i * 1_000, 64) {
                passed += 1;
            }
        }
        // 10 ms at 80 Mbps = 800,000 bits = ~1562 packets of 512 bits.
        let expected = 800_000 / 512;
        assert!(
            (passed as i64 - expected as i64).abs() < 50,
            "passed {passed}, expected ~{expected}"
        );
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut m = Meter::new(1_000_000, 4_096);
        // A long idle period must not accumulate unbounded tokens.
        assert!(m.offer(10_000_000_000, 512)); // 4096 bits
        assert!(!m.offer(10_000_000_001, 512), "only one burst's worth");
    }

    #[test]
    fn meterset_unknown_passes() {
        let mut ms = MeterSet::new();
        assert!(ms.offer(9, 0, 1500));
        ms.set(1, Meter::new(8_000, 800));
        assert!(ms.offer(1, 0, 100));
        assert!(!ms.offer(1, 1, 100));
        assert!(ms.remove(1));
        assert!(ms.offer(1, 2, 100), "removed meter passes again");
    }
}
