/root/repo/target/debug/deps/proptests-06176c6175d9e69a.d: crates/ebpf/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-06176c6175d9e69a.rmeta: crates/ebpf/tests/proptests.rs Cargo.toml

crates/ebpf/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
