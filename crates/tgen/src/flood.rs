//! Stateless flood generation (the TRex role).

use ovs_packet::flow::extract_flow_key;
use ovs_packet::{builder, DpPacket, MacAddr};
use ovs_sim::SimRng;

/// Source MAC of generated traffic.
pub const GEN_SRC_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0xAA]);
/// Destination MAC of generated traffic (the DUT's port MAC).
pub const GEN_DST_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0xBB]);

/// Build `n_flows` distinct UDP frames of `frame_len` bytes. Flow 0 is
/// fixed; with `n_flows > 1` each flow gets random source and destination
/// addresses out of the 10.0.0.0/8 space ("we assigned each packet random
/// source and destination IPs out of 1,000 possibilities", §5.2).
pub fn make_flows(n_flows: usize, frame_len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SimRng::new(seed);
    (0..n_flows.max(1))
        .map(|i| {
            let (src, dst, sport, dport) = if i == 0 {
                ([10, 0, 0, 1], [10, 0, 0, 2], 1000, 2000)
            } else {
                (
                    [
                        10,
                        rng.below(250) as u8 + 1,
                        rng.below(250) as u8,
                        rng.below(250) as u8 + 1,
                    ],
                    [
                        10,
                        rng.below(250) as u8 + 1,
                        rng.below(250) as u8,
                        rng.below(250) as u8 + 1,
                    ],
                    1024 + rng.below(50_000) as u16,
                    1024 + rng.below(50_000) as u16,
                )
            };
            builder::udp_ipv4_frame(GEN_SRC_MAC, GEN_DST_MAC, src, dst, sport, dport, frame_len)
        })
        .collect()
}

/// The NIC's RSS queue selection for a frame: hash of the 5-tuple modulo
/// the queue count, as receive-side scaling does in hardware.
pub fn rss_queue(frame: &[u8], queues: usize) -> usize {
    if queues <= 1 {
        return 0;
    }
    let mut p = DpPacket::from_data(frame);
    (extract_flow_key(&mut p).rss_hash() as usize) % queues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_are_distinct_and_sized() {
        let flows = make_flows(100, 64, 1);
        assert_eq!(flows.len(), 100);
        for f in &flows {
            assert_eq!(f.len(), 64);
        }
        let mut keys: Vec<&Vec<u8>> = flows.iter().collect();
        keys.sort();
        keys.dedup();
        assert!(keys.len() > 95, "flows are (nearly) all distinct");
    }

    #[test]
    fn single_flow_is_deterministic() {
        assert_eq!(make_flows(1, 64, 1), make_flows(1, 64, 999));
    }

    #[test]
    fn rss_spreads_many_flows() {
        let flows = make_flows(1000, 64, 7);
        let mut per_queue = [0usize; 4];
        for f in &flows {
            per_queue[rss_queue(f, 4)] += 1;
        }
        for (q, &n) in per_queue.iter().enumerate() {
            assert!(n > 150, "queue {q} got {n}/1000 — RSS should spread");
        }
        // One flow always lands on one queue.
        let one = make_flows(1, 64, 7);
        let q = rss_queue(&one[0], 4);
        for _ in 0..10 {
            assert_eq!(rss_queue(&one[0], 4), q);
        }
    }
}
