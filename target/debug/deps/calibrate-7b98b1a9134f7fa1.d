/root/repo/target/debug/deps/calibrate-7b98b1a9134f7fa1.d: crates/tgen/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-7b98b1a9134f7fa1: crates/tgen/src/bin/calibrate.rs

crates/tgen/src/bin/calibrate.rs:
