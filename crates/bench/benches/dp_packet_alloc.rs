//! The O4 ablation for real: preallocated, reused dp_packet metadata vs a
//! fresh allocation per packet.

use criterion::{criterion_group, criterion_main, Criterion};
use ovs_ring::DpPacketPool;
use std::hint::black_box;

const FRAME: [u8; 64] = [0x5a; 64];

fn bench_prealloc_vs_fresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("dp_packet_alloc");

    g.bench_function("preallocated_pool (O4)", |b| {
        let mut pool = DpPacketPool::with_preallocated(64, 2048);
        b.iter(|| {
            let mut p = pool.take();
            p.set_data(black_box(&FRAME));
            p.in_port = 3;
            let len = p.len();
            pool.put(p);
            black_box(len)
        })
    });

    g.bench_function("fresh_alloc_per_packet (pre-O4)", |b| {
        let mut pool = DpPacketPool::without_preallocation(2048);
        b.iter(|| {
            let mut p = pool.take();
            p.set_data(black_box(&FRAME));
            p.in_port = 3;
            let len = p.len();
            drop(p); // dropped, not recycled — the pre-O4 behaviour
            black_box(len)
        })
    });

    g.finish();
}

/// Short measurement windows keep the full `cargo bench --workspace`
/// run to a few minutes; pass `--measurement-time` to override.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_prealloc_vs_fresh
}
criterion_main!(benches);
