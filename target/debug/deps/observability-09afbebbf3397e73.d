/root/repo/target/debug/deps/observability-09afbebbf3397e73.d: tests/observability.rs

/root/repo/target/debug/deps/observability-09afbebbf3397e73: tests/observability.rs

tests/observability.rs:
