//! Golden revalidator test: the deterministic two-host NSX scenario from
//! the observability goldens, taken through a full megaflow lifecycle —
//! traffic warms the caches, a sweep pushes stats and keeps the hot
//! flows, the clock idles past the timeout, and a second sweep drains
//! the table. `upcall/show`, `revalidator/wait`, and the post-churn
//! `dpctl/dump-flows` text are pinned exactly.

use ovs_afxdp::OptLevel;
use ovs_afxdp_repro::nsx::ruleset::{self, NsxConfig};
use ovs_afxdp_repro::nsx::topology::{DatapathKind, Host, HostConfig, VmAttachment};
use ovs_afxdp_repro::ovs::appctl;
use ovs_afxdp_repro::packet::builder;

/// The deterministic 2-VM NSX host pair on the userspace AF_XDP datapath.
fn build_host(id: u8) -> Host {
    let dpk = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O5,
        interrupt_mode: false,
    };
    let mut cfg = HostConfig::nsx_default(id, dpk, VmAttachment::VhostUser);
    cfg.nsx = NsxConfig {
        vms: 2,
        tunnels: 4,
        target_rules: 800,
        local_vtep: [172, 16, 0, id],
        remote_vtep: [172, 16, 0, 3 - id],
        ..NsxConfig::default()
    };
    Host::build(&cfg)
}

fn vm_frame(src_host: u8, dst_host: u8) -> Vec<u8> {
    builder::udp_ipv4_frame(
        ruleset::vm_mac(src_host, 0, 0),
        ruleset::vm_mac(dst_host, 0, 0),
        ruleset::vm_ip(src_host, 0, 0),
        ruleset::vm_ip(dst_host, 0, 0),
        3333,
        4444,
        200,
    )
}

/// Shuttle frames between the two hosts until quiescent.
fn run_pair(a: &mut Host, b: &mut Host) {
    for _ in 0..32 {
        let mut moved = a.pump() + b.pump();
        for f in a.wire_take() {
            b.wire_inject(f);
            moved += 1;
        }
        for f in b.wire_take() {
            a.wire_inject(f);
            moved += 1;
        }
        if moved == 0 {
            break;
        }
    }
}

const GOLDEN_SHOW_WARM: &str = "\
netdev@ovs-netdev:
  flows         : (current 5) (max 0) (limit 200000)
  dump duration : 0ms
  sweeps        : 0 (0 flows dumped)
  deleted       : 0 idle, 0 hard, 0 changed, 0 evicted
  stats pushed  : 0 packets, 0 bytes
  limit hits    : 0
  queue full    : 0
  restore       : 0 pending, 0 adopted, 0 orphaned, 0 gated
";
const GOLDEN_WAIT_1: &str = "revalidation complete: 5 flows dumped, \
0 deleted (0 idle, 0 hard, 0 changed, 0 evicted), \
flow limit 200000, dump duration 1ms\n";
const GOLDEN_DUMP: &str = "\
in_port(1),recirc(0),eth_type(0x0000),tun_id(5000) packets:14 bytes:2800 used:0.000s mask_bits:192 actions:[Ct { zone: 100, commit: false, nat: None }, Recirc(3)]
in_port(1),recirc(3),eth_type(0x0000),ct_state(0x04) packets:14 bytes:2800 used:0.000s mask_bits:113 actions:[Output(2)]
in_port(2),recirc(0),eth_type(0x0000) packets:15 bytes:3000 used:0.000s mask_bits:128 actions:[Ct { zone: 1, commit: false, nat: None }, Recirc(1)]
in_port(2),recirc(1),eth_type(0x0800),ipv4(src=10.101.0.2,dst=10.102.0.2),ct_state(0x02) packets:15 bytes:3000 used:0.000s mask_bits:234 actions:[Ct { zone: 100, commit: true, nat: None }, Recirc(2)]
in_port(2),recirc(2),eth_type(0x0000) packets:15 bytes:3000 used:0.000s mask_bits:112 actions:[SetTunnel { id: 5000, dst: [172, 16, 0, 2] }, Output(1)]
";
const GOLDEN_WAIT_2: &str = "revalidation complete: 5 flows dumped, \
5 deleted (5 idle, 0 hard, 0 changed, 0 evicted), \
flow limit 200000, dump duration 1ms\n";
const GOLDEN_SHOW_DRAINED: &str = "\
netdev@ovs-netdev:
  flows         : (current 0) (max 5) (limit 200000)
  dump duration : 1ms
  sweeps        : 2 (10 flows dumped)
  deleted       : 5 idle, 0 hard, 0 changed, 0 evicted
  stats pushed  : 73 packets, 14600 bytes
  limit hits    : 0
  queue full    : 0
  restore       : 0 pending, 0 adopted, 0 orphaned, 0 gated
";

#[test]
fn golden_revalidator_two_host_nsx() {
    let mut h1 = build_host(1);
    let mut h2 = build_host(2);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());

    let g = h1.guest_of_vif[0];
    h1.kernel.guests[g].tx_ring.push_back(vm_frame(1, 2));
    run_pair(&mut h1, &mut h2);

    let dp1 = h1.dp.as_mut().unwrap();
    let show = appctl::dispatch(dp1, &mut h1.kernel, "upcall/show", &[]).unwrap();
    assert_eq!(
        show, GOLDEN_SHOW_WARM,
        "upcall/show golden drifted:\n{show}"
    );

    // First sweep: everything is hot, nothing dies, stats get pushed.
    let dp1 = h1.dp.as_mut().unwrap();
    let wait = appctl::dispatch(dp1, &mut h1.kernel, "revalidator/wait", &[]).unwrap();
    assert_eq!(
        wait, GOLDEN_WAIT_1,
        "revalidator/wait golden drifted:\n{wait}"
    );

    // The post-churn datapath flow dump: per-flow packets, bytes, and
    // ages, all virtual-clock deterministic.
    let dp1 = h1.dp.as_mut().unwrap();
    let dump = appctl::dispatch(dp1, &mut h1.kernel, "dpctl/dump-flows", &[]).unwrap();
    assert_eq!(
        dump, GOLDEN_DUMP,
        "dpctl/dump-flows golden drifted:\n{dump}"
    );

    // Idle out and sweep again: the table drains.
    h1.kernel.sim.clock.advance(15_000_000_000);
    let dp1 = h1.dp.as_mut().unwrap();
    let wait = appctl::dispatch(dp1, &mut h1.kernel, "revalidator/wait", &[]).unwrap();
    assert_eq!(
        wait, GOLDEN_WAIT_2,
        "revalidator/wait golden drifted:\n{wait}"
    );

    let dp1 = h1.dp.as_mut().unwrap();
    let show = appctl::dispatch(dp1, &mut h1.kernel, "upcall/show", &[]).unwrap();
    assert_eq!(
        show, GOLDEN_SHOW_DRAINED,
        "upcall/show golden drifted:\n{show}"
    );
    assert_eq!(h1.dp.as_ref().unwrap().megaflow_count(), 0);

    // The overlay still works after the drain: a fresh frame crosses the
    // re-translated slow path and reinstalls its megaflows.
    let upcalls = h1.dp.as_ref().unwrap().stats.upcalls;
    let g = h1.guest_of_vif[0];
    h1.kernel.guests[g].tx_ring.push_back(vm_frame(1, 2));
    run_pair(&mut h1, &mut h2);
    let dp1 = h1.dp.as_ref().unwrap();
    assert!(dp1.stats.upcalls > upcalls, "drained flows re-upcall");
    assert!(dp1.megaflow_count() > 0, "megaflows reinstalled");
    assert!(dp1.stats.coherent(), "{:?}", dp1.stats);
}
