//! Wall-clock cost of the two-phase batched receive path: scalar
//! `process_packet` vs `process_burst` vs `process_burst` with the SMC
//! tier, each driving the full NSX pipeline (DFW conntrack ×2
//! recirculations plus Geneve encap). Complements the simulated-cycle
//! ablation in `repro --fastpath`: criterion measures what the *host*
//! pays to classify, batch, and flush; the simulation measures what the
//! modelled PMD core pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovs_tgen::scenarios::{run_fastpath, FastpathMode};
use std::hint::black_box;

fn bench_fastpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("fastpath");
    // One run_fastpath call builds the NSX host, warms 64 flows, and
    // pushes 512 frames through the pipeline — sized so an iteration
    // stays in the low milliseconds.
    g.sample_size(10);
    for burst in [1usize, 8, 32] {
        for mode in [
            FastpathMode::Scalar,
            FastpathMode::Batched,
            FastpathMode::BatchedSmc,
        ] {
            g.bench_with_input(
                BenchmarkId::new(mode.label(), burst),
                &(mode, burst),
                |b, &(mode, burst)| {
                    b.iter(|| black_box(run_fastpath(mode, burst, 64, 512).ns_per_pkt))
                },
            );
        }
    }
    g.finish();
}

/// Short measurement windows keep the full `cargo bench --workspace`
/// run to a few minutes; pass `--measurement-time` to override.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_fastpath
}
criterion_main!(benches);
