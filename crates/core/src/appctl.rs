//! The `ovs-appctl` dispatch surface.
//!
//! One entry point, [`dispatch`], maps command strings to the
//! observability handlers the rest of the crate exposes — the same wire
//! a real `ovs-appctl` invocation rides over the vswitchd unixctl
//! socket. The paper's §6 "easier troubleshooting" lesson is that moving
//! the datapath to userspace makes this surface the *primary* window
//! into the fast path; this module is that window.

use crate::controller::{ControllerSession, FailMode};
use crate::dpif::{DpifNetdev, PortNo};
use crate::health::HealthMonitor;
use crate::pmd::PmdSet;
use ovs_kernel::Kernel;
use ovs_sim::FaultKind;

/// Commands understood by [`dispatch`], one per line.
pub const COMMANDS: &[&str] = &[
    "coverage/show",
    "dpif-netdev/pmd-perf-show",
    "dpif-netdev/pmd-stats-show",
    "dpif-netdev/pmd-stats-clear",
    "dpif-netdev/latency-show",
    "dpif-netdev/latency-hist",
    "dpif-netdev/pmd-rxq-show",
    "dpif-netdev/pmd-rxq-rebalance",
    "dpif-netdev/pmd-auto-lb-show",
    "dpif-netdev/port-status",
    "dpif-netdev/subtable-ranking",
    "dpif-netdev/miniflow-stats",
    "dpif-netdev/emc-insert-inv-prob",
    "dpif-netdev/smc-enable",
    "dpctl/dump-flows",
    "dpctl/ct-dump",
    "dpctl/ct-stats",
    "ct/flush",
    "fault/inject",
    "fault/show",
    "health/show",
    "flow-restore/show",
    "flow-restore/complete",
    "fail-mode/show",
    "fail-mode/set",
    "nfv/show",
    "nfv/chain-show",
    "nfv/stats",
    "ofproto/trace",
    "upcall/show",
    "revalidator/wait",
    "list-commands",
];

/// Run one appctl command against a datapath. `args` are the
/// space-separated operands after the command name.
///
/// `ofproto/trace` takes `in_port=<N> <hex frame>`: the frame (hex, no
/// separators) is injected on port `N` and the rendered trace returned.
pub fn dispatch(
    dpif: &mut DpifNetdev,
    kernel: &mut Kernel,
    cmd: &str,
    args: &[&str],
) -> Result<String, String> {
    dispatch_with_health(dpif, kernel, None, cmd, args)
}

/// [`dispatch`] with the optional health supervisor attached, so
/// `health/show` can report it (a supervised deployment passes it in).
pub fn dispatch_with_health(
    dpif: &mut DpifNetdev,
    kernel: &mut Kernel,
    health: Option<&HealthMonitor>,
    cmd: &str,
    args: &[&str],
) -> Result<String, String> {
    dispatch_full(dpif, kernel, health, None, cmd, args)
}

/// The full dispatch surface: health supervisor plus the PMD scheduler,
/// so the `dpif-netdev/pmd-rxq-*` and `pmd-auto-lb-*` commands can
/// inspect and rebalance the rxq→PMD assignment.
pub fn dispatch_full(
    dpif: &mut DpifNetdev,
    kernel: &mut Kernel,
    health: Option<&HealthMonitor>,
    pmds: Option<&mut PmdSet>,
    cmd: &str,
    args: &[&str],
) -> Result<String, String> {
    dispatch_ctl(dpif, kernel, health, pmds, None, cmd, args)
}

/// [`dispatch_full`] plus the controller session, so the `fail-mode/*`
/// commands can inspect and steer the fail-mode ladder. Deployments
/// without a controller (`None`) get a clear refusal instead of silence.
pub fn dispatch_ctl(
    dpif: &mut DpifNetdev,
    kernel: &mut Kernel,
    health: Option<&HealthMonitor>,
    mut pmds: Option<&mut PmdSet>,
    controller: Option<&mut ControllerSession>,
    cmd: &str,
    args: &[&str],
) -> Result<String, String> {
    const NO_PMDS: &str = "no PMD scheduler attached (datapath is driven directly)";
    const NO_CTL: &str = "no controller session (datapath is not controller-managed)";
    match cmd {
        "fail-mode/show" => match controller {
            Some(c) => Ok(c.show()),
            None => Err(NO_CTL.to_string()),
        },
        // `fail-mode/set standalone|secure` — refused mid-outage.
        "fail-mode/set" => match controller {
            Some(c) => {
                let usage = "usage: fail-mode/set standalone|secure";
                let [mode] = args else {
                    return Err(usage.to_string());
                };
                let mode = FailMode::parse(mode).ok_or_else(|| usage.to_string())?;
                c.set_mode(mode)?;
                Ok(format!("fail-mode set to {}\n", mode.label()))
            }
            None => Err(NO_CTL.to_string()),
        },
        "dpif-netdev/pmd-rxq-show" => match pmds {
            Some(p) => Ok(p.pmd_rxq_show(dpif)),
            None => Err(NO_PMDS.to_string()),
        },
        "dpif-netdev/pmd-rxq-rebalance" => match pmds.as_deref_mut() {
            Some(p) => {
                p.rebalance();
                Ok(format!(
                    "rxq assignment rebalanced ({} policy)\n{}",
                    p.policy().label(),
                    p.pmd_rxq_show(dpif)
                ))
            }
            None => Err(NO_PMDS.to_string()),
        },
        "dpif-netdev/pmd-auto-lb-show" => match pmds {
            Some(p) => Ok(p.pmd_auto_lb_show()),
            None => Err(NO_PMDS.to_string()),
        },
        // `nfv/chain-show <tenant>` wants the scheduler (to render which
        // PMD polls each NF), but degrades to "unassigned" without one.
        "nfv/chain-show" => {
            let usage = "usage: nfv/chain-show <tenant>";
            let [tenant] = args else {
                return Err(usage.to_string());
            };
            let tenant: u32 = tenant.parse().map_err(|_| usage.to_string())?;
            let pmds = pmds.as_deref();
            Ok(dpif.nfv.chain_show(tenant, &|nf| {
                pmds.and_then(|p| {
                    p.core_of(crate::pmd::RxqId::new(
                        crate::dpif::NF_WORK_PORT,
                        nf as usize,
                    ))
                })
            }))
        }
        _ => dispatch_inner(dpif, kernel, health, cmd, args),
    }
}

fn dispatch_inner(
    dpif: &mut DpifNetdev,
    kernel: &mut Kernel,
    health: Option<&HealthMonitor>,
    cmd: &str,
    args: &[&str],
) -> Result<String, String> {
    match cmd {
        "coverage/show" => Ok(ovs_obs::coverage::show()),
        "dpif-netdev/port-status" => Ok(dpif.port_status(kernel)),
        // `dpctl/ct-dump [zone=<N>]`: list tracked connections.
        "dpctl/ct-dump" => {
            let zone = match args {
                [] => None,
                [z] => Some(parse_zone(z)?),
                _ => return Err("usage: dpctl/ct-dump [zone=<N>]".to_string()),
            };
            Ok(dpif.ct.dump(zone, kernel.sim.clock.now_ns()))
        }
        "dpctl/ct-stats" => Ok(dpif.ct.stats_show()),
        // `ct/flush [zone=<N>]`: drop tracked connections.
        "ct/flush" => {
            let zone = match args {
                [] => None,
                [z] => Some(parse_zone(z)?),
                _ => return Err("usage: ct/flush [zone=<N>]".to_string()),
            };
            let removed = dpif.ct.flush(zone);
            match zone {
                Some(z) => Ok(format!("{removed} connection(s) flushed from zone {z}\n")),
                None => Ok(format!("{removed} connection(s) flushed\n")),
            }
        }
        // `fault/inject <kind> [target] [arg] [duration_ms]`: arm a fault
        // right now, applying kernel-side effects immediately.
        "fault/inject" => {
            let usage = "usage: fault/inject <kind> [target] [arg] [duration_ms]";
            let [kind, rest @ ..] = args else {
                return Err(usage.to_string());
            };
            let kind = FaultKind::parse(kind).ok_or_else(|| {
                let all: Vec<&str> = FaultKind::ALL.iter().map(|k| k.label()).collect();
                format!("unknown fault kind \"{kind}\" (one of: {})", all.join(", "))
            })?;
            let num = |i: usize| -> Result<u64, String> {
                rest.get(i)
                    .map(|s| s.parse::<u64>().map_err(|_| usage.to_string()))
                    .unwrap_or(Ok(0))
            };
            let target = num(0)? as u32;
            let arg = num(1)? as u32;
            let duration_ns = num(2)?.saturating_mul(1_000_000);
            kernel.inject_fault(kind, target, arg, duration_ns);
            Ok(format!(
                "injected {} target {target} arg {arg} duration {}ms\n",
                kind.label(),
                duration_ns / 1_000_000
            ))
        }
        "fault/show" => Ok(kernel.sim.faults.show(kernel.sim.clock.now_ns())),
        "health/show" => Ok(match health {
            Some(h) => h.show(kernel.sim.clock.now_ns()),
            None => "datapath health: unsupervised (no health monitor)\n".to_string(),
        }),
        // Restore-gate state: what was restored, what the gate dropped,
        // and how reconciliation is going.
        "flow-restore/show" => Ok(dpif.flow_restore_show()),
        // Lift the `flow-restore-wait` gate now instead of waiting for
        // the deadline (the rule table has been repopulated early).
        "flow-restore/complete" => {
            if !dpif.restore.wait {
                return Err("flow-restore-wait is not active".to_string());
            }
            dpif.flow_restore_complete(kernel.sim.clock.now_ns());
            Ok("flow-restore-wait gate lifted\n".to_string())
        }
        // `-hist` extends the cycle attribution with the per-stage
        // latency contribution (satellite of the latency pipeline).
        "dpif-netdev/pmd-perf-show" => {
            Ok(dpif
                .pmd_perf_show_detail(kernel.sim.cpus.hz, args.first().copied() == Some("-hist")))
        }
        "dpif-netdev/latency-show" => Ok(dpif.latency_show()),
        "dpif-netdev/latency-hist" => Ok(dpif.latency_hist()),
        "dpif-netdev/pmd-stats-show" => Ok(dpif.pmd_stats()),
        "dpif-netdev/pmd-stats-clear" => {
            dpif.pmd_stats_clear();
            Ok("statistics cleared\n".to_string())
        }
        // The dpcls subtable probe order with per-subtable hit counts.
        "dpif-netdev/subtable-ranking" => Ok(dpif.subtable_ranking_show()),
        // Sparse-key shape: populated-slot histogram, expansion count,
        // and wide-lane bulk dpcls occupancy.
        "dpif-netdev/miniflow-stats" => Ok(dpif.miniflow_stats_show()),
        // Get/set `other_config:emc-insert-inv-prob` (no operand reads
        // the current value; 0 disables EMC insertion).
        "dpif-netdev/emc-insert-inv-prob" => match args {
            [] => Ok(format!(
                "emc-insert-inv-prob: {}\n",
                dpif.emc_insert_inv_prob()
            )),
            [p] => {
                let p: u64 = p
                    .parse()
                    .map_err(|_| "usage: dpif-netdev/emc-insert-inv-prob [N]".to_string())?;
                dpif.set_emc_insert_inv_prob(p);
                Ok(format!("emc-insert-inv-prob set to {p}\n"))
            }
            _ => Err("usage: dpif-netdev/emc-insert-inv-prob [N]".to_string()),
        },
        // Get/toggle `other_config:smc-enable`.
        "dpif-netdev/smc-enable" => match args {
            [] => Ok(format!(
                "smc-enable: {} ({} entries)\n",
                if dpif.smc_enable { "true" } else { "false" },
                dpif.smc_count()
            )),
            ["on" | "true"] => {
                dpif.smc_enable = true;
                Ok("smc-enable set to true\n".to_string())
            }
            ["off" | "false"] => {
                dpif.smc_enable = false;
                Ok("smc-enable set to false\n".to_string())
            }
            _ => Err("usage: dpif-netdev/smc-enable [on|off]".to_string()),
        },
        // `dpctl/dump-flows` dumps the userspace datapath; with the
        // `system` operand it dumps the in-kernel module's table instead
        // (the `system@ovs-system` datapath in OVS terms).
        "dpctl/dump-flows" => match args {
            ["system", ..] => Ok(kernel.ovs.dump_flows(kernel.sim.clock.now_ns())),
            _ => Ok(dpif.dump_flows(kernel.sim.clock.now_ns())),
        },
        // The NF manager surfaces (ovs-nfv): per-NF state and counters,
        // and subsystem totals with the mempool reuse stats.
        "nfv/show" => Ok(dpif.nfv.show()),
        "nfv/stats" => Ok(dpif.nfv.stats_show()),
        // Flow counts against the dynamic flow limit, dump duration, and
        // sweep totals — `ovs-appctl upcall/show`.
        "upcall/show" => Ok(dpif.upcall_show()),
        // Run one synchronous revalidator sweep and report what it did —
        // the blocking analogue of `ovs-appctl revalidator/wait`.
        "revalidator/wait" => {
            let s = dpif.revalidate(kernel, 0);
            Ok(format!(
                "revalidation complete: {} flows dumped, {} deleted \
                 ({} idle, {} hard, {} changed, {} evicted), \
                 flow limit {}, dump duration {}ms\n",
                s.dumped,
                s.deleted(),
                s.deleted_idle,
                s.deleted_hard,
                s.deleted_changed,
                s.evicted,
                s.flow_limit,
                s.dump_duration_ms,
            ))
        }
        "ofproto/trace" => {
            let usage = "usage: ofproto/trace in_port=<N> <hex frame>";
            let [port_arg, hex] = args else {
                return Err(usage.to_string());
            };
            let in_port: PortNo = port_arg
                .strip_prefix("in_port=")
                .unwrap_or(port_arg)
                .parse()
                .map_err(|_| usage.to_string())?;
            let frame = parse_hex(hex).ok_or_else(|| usage.to_string())?;
            Ok(dpif.ofproto_trace(kernel, &frame, in_port, 0))
        }
        "list-commands" => {
            let mut out = String::new();
            for c in COMMANDS {
                out.push_str(c);
                out.push('\n');
            }
            Ok(out)
        }
        other => Err(format!("\"{other}\" is not a valid command")),
    }
}

/// A zone operand: `zone=<N>` or a bare number.
fn parse_zone(s: &str) -> Result<u16, String> {
    let digits = s.strip_prefix("zone=").unwrap_or(s);
    digits
        .parse::<u16>()
        .map_err(|_| format!("\"{s}\" is not a zone (expected zone=<N>)"))
}

fn parse_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_command_is_an_error() {
        let mut dpif = DpifNetdev::new();
        let mut kernel = Kernel::new(1);
        let err = dispatch(&mut dpif, &mut kernel, "no/such", &[]).unwrap_err();
        assert!(err.contains("not a valid command"), "{err}");
    }

    #[test]
    fn list_commands_lists_everything() {
        let mut dpif = DpifNetdev::new();
        let mut kernel = Kernel::new(1);
        let out = dispatch(&mut dpif, &mut kernel, "list-commands", &[]).unwrap();
        for c in COMMANDS {
            assert!(out.contains(c), "missing {c}");
        }
    }

    #[test]
    fn coverage_show_and_stats_clear_round_trip() {
        let mut dpif = DpifNetdev::new();
        let mut kernel = Kernel::new(1);
        ovs_obs::coverage::reset();
        ovs_obs::coverage!("appctl_test_evt");
        let out = dispatch(&mut dpif, &mut kernel, "coverage/show", &[]).unwrap();
        assert!(out.contains("appctl_test_evt"), "{out}");
        let out = dispatch(&mut dpif, &mut kernel, "dpif-netdev/pmd-stats-clear", &[]).unwrap();
        assert!(out.contains("cleared"));
        ovs_obs::coverage::reset();
    }

    #[test]
    fn trace_usage_errors() {
        let mut dpif = DpifNetdev::new();
        let mut kernel = Kernel::new(1);
        assert!(dispatch(&mut dpif, &mut kernel, "ofproto/trace", &[]).is_err());
        assert!(dispatch(
            &mut dpif,
            &mut kernel,
            "ofproto/trace",
            &["in_port=0", "zz"]
        )
        .is_err());
    }

    #[test]
    fn emc_insert_inv_prob_get_set() {
        let mut dpif = DpifNetdev::new();
        let mut kernel = Kernel::new(1);
        let out = dispatch(
            &mut dpif,
            &mut kernel,
            "dpif-netdev/emc-insert-inv-prob",
            &[],
        )
        .unwrap();
        assert!(out.contains("100"), "default inv prob: {out}");
        let out = dispatch(
            &mut dpif,
            &mut kernel,
            "dpif-netdev/emc-insert-inv-prob",
            &["1"],
        )
        .unwrap();
        assert!(out.contains("set to 1"), "{out}");
        assert_eq!(dpif.emc_insert_inv_prob(), 1);
        assert!(dispatch(
            &mut dpif,
            &mut kernel,
            "dpif-netdev/emc-insert-inv-prob",
            &["nope"]
        )
        .is_err());
    }

    #[test]
    fn smc_enable_toggle() {
        let mut dpif = DpifNetdev::new();
        let mut kernel = Kernel::new(1);
        let out = dispatch(&mut dpif, &mut kernel, "dpif-netdev/smc-enable", &[]).unwrap();
        assert!(out.contains("false"), "off by default: {out}");
        dispatch(&mut dpif, &mut kernel, "dpif-netdev/smc-enable", &["on"]).unwrap();
        assert!(dpif.smc_enable);
        dispatch(&mut dpif, &mut kernel, "dpif-netdev/smc-enable", &["off"]).unwrap();
        assert!(!dpif.smc_enable);
        assert!(dispatch(&mut dpif, &mut kernel, "dpif-netdev/smc-enable", &["maybe"]).is_err());
    }

    #[test]
    fn subtable_ranking_renders() {
        let mut dpif = DpifNetdev::new();
        let mut kernel = Kernel::new(1);
        let out = dispatch(&mut dpif, &mut kernel, "dpif-netdev/subtable-ranking", &[]).unwrap();
        assert!(out.contains("0 subtables"), "{out}");
    }

    #[test]
    fn miniflow_stats_renders() {
        let mut dpif = DpifNetdev::new();
        let mut kernel = Kernel::new(1);
        let out = dispatch(&mut dpif, &mut kernel, "dpif-netdev/miniflow-stats", &[]).unwrap();
        assert!(out.contains("miniflow stats:"), "{out}");
        assert!(out.contains("bulk dpcls:"), "{out}");
    }

    #[test]
    fn flow_restore_and_fail_mode_commands() {
        let mut dpif = DpifNetdev::new();
        let mut kernel = Kernel::new(1);
        let out = dispatch(&mut dpif, &mut kernel, "flow-restore/show", &[]).unwrap();
        assert!(out.contains("idle"), "{out}");
        let err = dispatch(&mut dpif, &mut kernel, "flow-restore/complete", &[]).unwrap_err();
        assert!(err.contains("not active"), "{err}");
        let err = dispatch(&mut dpif, &mut kernel, "fail-mode/show", &[]).unwrap_err();
        assert!(err.contains("no controller session"), "{err}");

        let mut ctl = ControllerSession::new(FailMode::Secure, crate::ofproto::Ofproto::new(), 0);
        let out = dispatch_ctl(
            &mut dpif,
            &mut kernel,
            None,
            None,
            Some(&mut ctl),
            "fail-mode/show",
            &[],
        )
        .unwrap();
        assert!(out.contains("fail-mode: secure"), "{out}");
        let out = dispatch_ctl(
            &mut dpif,
            &mut kernel,
            None,
            None,
            Some(&mut ctl),
            "fail-mode/set",
            &["standalone"],
        )
        .unwrap();
        assert!(out.contains("set to standalone"), "{out}");
        assert_eq!(ctl.fail_mode, FailMode::Standalone);
        assert!(dispatch_ctl(
            &mut dpif,
            &mut kernel,
            None,
            None,
            Some(&mut ctl),
            "fail-mode/set",
            &["open"],
        )
        .is_err());
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(parse_hex("0aff"), Some(vec![0x0a, 0xff]));
        assert_eq!(parse_hex("0af"), None);
        assert_eq!(parse_hex("zz"), None);
        assert_eq!(parse_hex(""), Some(vec![]));
    }
}
