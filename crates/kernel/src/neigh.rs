//! The kernel ARP/neighbour table.
//!
//! Like the route table, OVS userspace mirrors this over Netlink so its
//! userspace tunnel implementation can resolve next-hop MACs (§4).

use ovs_packet::MacAddr;
use std::collections::HashMap;

/// Neighbour entry state (subset of NUD_*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighState {
    Reachable,
    Stale,
    Permanent,
}

/// One neighbour entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor {
    pub ip: [u8; 4],
    pub mac: MacAddr,
    pub ifindex: u32,
    pub state: NeighState,
}

/// The neighbour table, keyed by IP.
#[derive(Debug, Clone, Default)]
pub struct NeighTable {
    entries: HashMap<[u8; 4], Neighbor>,
}

impl NeighTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace an entry.
    pub fn add(&mut self, n: Neighbor) {
        self.entries.insert(n.ip, n);
    }

    /// Remove an entry.
    pub fn del(&mut self, ip: [u8; 4]) -> bool {
        self.entries.remove(&ip).is_some()
    }

    /// Resolve an IP to a MAC.
    pub fn lookup(&self, ip: [u8; 4]) -> Option<&Neighbor> {
        self.entries.get(&ip)
    }

    /// All entries, for display (sorted by IP for deterministic output).
    pub fn iter_sorted(&self) -> Vec<&Neighbor> {
        let mut v: Vec<&Neighbor> = self.entries.values().collect();
        v.sort_by_key(|n| n.ip);
        v
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_lookup_del() {
        let mut t = NeighTable::new();
        t.add(Neighbor {
            ip: [10, 0, 0, 2],
            mac: MacAddr::new(2, 0, 0, 0, 0, 2),
            ifindex: 1,
            state: NeighState::Reachable,
        });
        assert_eq!(
            t.lookup([10, 0, 0, 2]).unwrap().mac,
            MacAddr::new(2, 0, 0, 0, 0, 2)
        );
        assert!(t.lookup([10, 0, 0, 3]).is_none());
        assert!(t.del([10, 0, 0, 2]));
        assert!(!t.del([10, 0, 0, 2]));
        assert!(t.is_empty());
    }

    #[test]
    fn replace_updates() {
        let mut t = NeighTable::new();
        let mut n = Neighbor {
            ip: [1, 1, 1, 1],
            mac: MacAddr::ZERO,
            ifindex: 1,
            state: NeighState::Stale,
        };
        t.add(n);
        n.mac = MacAddr::new(9, 9, 9, 9, 9, 9);
        n.state = NeighState::Reachable;
        t.add(n);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup([1, 1, 1, 1]).unwrap().state, NeighState::Reachable);
    }

    #[test]
    fn sorted_iteration_deterministic() {
        let mut t = NeighTable::new();
        for i in [3u8, 1, 2] {
            t.add(Neighbor {
                ip: [10, 0, 0, i],
                mac: MacAddr::ZERO,
                ifindex: 1,
                state: NeighState::Permanent,
            });
        }
        let ips: Vec<u8> = t.iter_sorted().iter().map(|n| n.ip[3]).collect();
        assert_eq!(ips, vec![1, 2, 3]);
    }
}
