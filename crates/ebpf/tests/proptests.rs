//! Property tests for the eBPF machine: verified programs terminate
//! without faulting the host, and every canned program is total on
//! arbitrary packet bytes.

use ovs_ebpf::insn::Operand::{Imm, Reg as RegOp};
use ovs_ebpf::insn::{AluOp, CmpOp, Insn, Size};
use ovs_ebpf::maps::{DevMap, HashMap as BpfHashMap, Map, MapSet, XskMap};
use ovs_ebpf::{programs, verify, Vm};
use proptest::prelude::*;

/// Generate structurally random (often invalid) instructions.
fn arb_insn() -> impl Strategy<Value = Insn> {
    let reg = (0u8..12).prop_map(ovs_ebpf::insn::Reg);
    let operand = prop_oneof![
        reg.clone().prop_map(RegOp),
        any::<i32>().prop_map(|i| Imm(i as i64)),
    ];
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Lsh),
        Just(AluOp::Rsh),
        Just(AluOp::Mov),
        Just(AluOp::Xor),
        Just(AluOp::Mod),
        Just(AluOp::Arsh),
    ];
    let size = prop_oneof![Just(Size::B), Just(Size::H), Just(Size::W), Just(Size::DW)];
    let cmp = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Gt),
        Just(CmpOp::Lt),
        Just(CmpOp::Set),
        Just(CmpOp::SGe),
    ];
    prop_oneof![
        (alu.clone(), reg.clone(), operand.clone()).prop_map(|(o, r, s)| Insn::Alu64(o, r, s)),
        (alu, reg.clone(), operand.clone()).prop_map(|(o, r, s)| Insn::Alu32(o, r, s)),
        (reg.clone(), any::<u64>()).prop_map(|(r, v)| Insn::LoadImm64(r, v)),
        (size.clone(), reg.clone(), reg.clone(), -64i16..64)
            .prop_map(|(s, d, b, o)| Insn::Load(s, d, b, o)),
        (size, reg.clone(), -64i16..64, operand.clone())
            .prop_map(|(s, b, o, v)| Insn::Store(s, b, o, v)),
        (-8i16..16).prop_map(Insn::Jmp),
        (cmp, reg, operand, -8i16..16).prop_map(|(c, r, o, off)| Insn::JmpIf(c, r, o, off)),
        Just(Insn::Exit),
    ]
}

proptest! {
    /// The verifier never panics on arbitrary programs, and anything it
    /// accepts runs to completion (or a clean runtime fault) within the
    /// no-loop execution bound.
    #[test]
    fn verified_programs_terminate(
        insns in proptest::collection::vec(arb_insn(), 1..60),
        pkt in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        if verify(&insns).is_ok() {
            let mut vm = Vm::new();
            let mut maps = MapSet::new();
            let mut packet = pkt;
            // Accepted => terminates; either a value or a clean fault.
            let res = vm.run(&insns, &mut packet, &mut maps);
            if let Ok(r) = res {
                // No loops: executed instructions bounded by program size.
                prop_assert!(r.insns <= insns.len() as u64);
            }
        }
    }

    /// All canned programs are total on arbitrary frames: they never
    /// return a runtime fault (their bounds checks precede every access).
    #[test]
    fn canned_programs_never_fault(pkt in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut maps = MapSet::new();
        let l2 = maps.add(Map::Hash(BpfHashMap::new(8, 8, 16)));
        let flow = maps.add(Map::Hash(BpfHashMap::new(16, 8, 16)));
        let dev = maps.add(Map::Dev(DevMap::new(4)));
        let mut xsk = XskMap::new(4);
        xsk.set(0, 1).unwrap();
        let xsk_fd = maps.add(Map::Xsk(xsk));
        let progs = [
            programs::task_a_drop(),
            programs::task_b_parse_drop(),
            programs::task_c_parse_lookup_drop(l2),
            programs::task_d_swap_fwd(),
            programs::ovs_xsk_redirect(xsk_fd),
            programs::container_redirect(dev, 0, [10, 0, 0, 2], xsk_fd),
            programs::redirect_all_to_dev(dev, 0),
            programs::l4_lb([10, 0, 0, 1], 80, [10, 0, 0, 2]),
            programs::ebpf_datapath(flow, dev),
        ];
        let mut vm = Vm::new();
        for prog in &progs {
            let mut p = pkt.clone();
            let r = prog.run(&mut vm, &mut p, 0, &mut maps);
            prop_assert!(r.is_ok(), "{} faulted on {} bytes", prog.name(), pkt.len());
        }
    }

    /// Swapped MACs are an involution: running task D twice restores the
    /// original frame.
    #[test]
    fn task_d_is_an_involution(pkt in proptest::collection::vec(any::<u8>(), 14..256)) {
        let prog = programs::task_d_swap_fwd();
        let mut maps = MapSet::new();
        let mut vm = Vm::new();
        let mut once = pkt.clone();
        prog.run(&mut vm, &mut once, 0, &mut maps).unwrap();
        let mut twice = once.clone();
        prog.run(&mut vm, &mut twice, 0, &mut maps).unwrap();
        prop_assert_eq!(twice, pkt);
    }
}
