/root/repo/target/debug/deps/proptest-d9daa1e38da4952b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-d9daa1e38da4952b: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
