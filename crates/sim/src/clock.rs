//! A monotonically advancing virtual clock, in nanoseconds.
//!
//! The clock is plain data: nothing advances it except explicit calls. All
//! simulated durations in this workspace are `u64` nanoseconds; at the
//! paper's 2.4 GHz clock one nanosecond is 2.4 cycles, and the largest
//! representable duration (~584 years) is never approached.

/// A virtual clock counting nanoseconds since the start of a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self { now_ns: 0 }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current virtual time in (fractional) microseconds.
    pub fn now_us(&self) -> f64 {
        self.now_ns as f64 / 1_000.0
    }

    /// Advance the clock by `ns` nanoseconds, saturating on overflow.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Advance the clock to an absolute time, if that time is in the future.
    ///
    /// Returns `true` if the clock moved. A simulation that merges several
    /// per-core timelines uses this to track the slowest (bottleneck) core.
    pub fn advance_to(&mut self, ns: u64) -> bool {
        if ns > self.now_ns {
            self.now_ns = ns;
            true
        } else {
            false
        }
    }

    /// Elapsed time since an earlier reading, saturating at zero.
    pub fn since(&self, earlier_ns: u64) -> u64 {
        self.now_ns.saturating_sub(earlier_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now_ns(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(10);
        c.advance(32);
        assert_eq!(c.now_ns(), 42);
        assert_eq!(c.now_us(), 0.042);
    }

    #[test]
    fn advance_saturates() {
        let mut c = VirtualClock::new();
        c.advance(u64::MAX);
        c.advance(1);
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut c = VirtualClock::new();
        assert!(c.advance_to(100));
        assert!(!c.advance_to(50));
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    fn since_saturates_at_zero() {
        let mut c = VirtualClock::new();
        c.advance(5);
        assert_eq!(c.since(3), 2);
        assert_eq!(c.since(10), 0);
    }
}
