/root/repo/target/debug/deps/criterion-1c5b25382d97fa6c.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-1c5b25382d97fa6c.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
