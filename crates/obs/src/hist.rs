//! Log2-bucketed histograms, the shape OVS's `pmd-perf-show` uses for
//! per-iteration cycle distributions: cheap to record (one increment),
//! mergeable across PMDs, and good enough for tail percentiles.

/// A histogram whose bucket `i` counts samples in `[2^(i-1), 2^i)`
/// (bucket 0 counts zeros and ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Log2Hist {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros() as usize).min(63);
        self.buckets[b] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> u64 {
        self.min
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Combine another histogram into this one (per-PMD merge).
    pub fn merge(&mut self, other: &Log2Hist) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Approximate percentile: the upper bound of the bucket holding the
    /// nearest-rank sample (exact min/max are substituted at the edges).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << i).saturating_sub(1).max(1)
                };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Render occupied buckets as `[lo, hi): count` lines with a bar.
    pub fn render(&self, indent: &str) -> String {
        let mut out = String::new();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
            let hi = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
            let bar = "#".repeat(((n * 40) / peak).max(1) as usize);
            out.push_str(&format!("{indent}[{lo:>12}, {hi:>12}] {n:>10} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_stats() {
        let mut h = Log2Hist::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!(h.mean() > 200.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        a.record(10);
        b.record(1000);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.sum(), 1015);
    }

    #[test]
    fn percentiles_bracket_samples() {
        let mut h = Log2Hist::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(10_000);
        let p50 = h.percentile(50.0);
        assert!((64..=255).contains(&p50), "p50 bucket bound, got {p50}");
        assert!(h.percentile(99.9) >= 8191, "tail lands in the big bucket");
        assert!(h.percentile(99.9) <= 10_000);
    }

    #[test]
    fn render_marks_occupied_buckets() {
        let mut h = Log2Hist::new();
        h.record(7);
        let text = h.render("  ");
        assert!(text.contains('#'), "{text}");
        assert_eq!(text.lines().count(), 1);
    }
}
