/root/repo/target/release/deps/ovs_packet-919d89bce695767c.d: crates/packet/src/lib.rs crates/packet/src/arp.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/dp_packet.rs crates/packet/src/ethernet.rs crates/packet/src/flow.rs crates/packet/src/geneve.rs crates/packet/src/gre.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/ipv6.rs crates/packet/src/mac.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/vlan.rs crates/packet/src/vxlan.rs

/root/repo/target/release/deps/libovs_packet-919d89bce695767c.rlib: crates/packet/src/lib.rs crates/packet/src/arp.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/dp_packet.rs crates/packet/src/ethernet.rs crates/packet/src/flow.rs crates/packet/src/geneve.rs crates/packet/src/gre.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/ipv6.rs crates/packet/src/mac.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/vlan.rs crates/packet/src/vxlan.rs

/root/repo/target/release/deps/libovs_packet-919d89bce695767c.rmeta: crates/packet/src/lib.rs crates/packet/src/arp.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/dp_packet.rs crates/packet/src/ethernet.rs crates/packet/src/flow.rs crates/packet/src/geneve.rs crates/packet/src/gre.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/ipv6.rs crates/packet/src/mac.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/vlan.rs crates/packet/src/vxlan.rs

crates/packet/src/lib.rs:
crates/packet/src/arp.rs:
crates/packet/src/builder.rs:
crates/packet/src/checksum.rs:
crates/packet/src/dp_packet.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/flow.rs:
crates/packet/src/geneve.rs:
crates/packet/src/gre.rs:
crates/packet/src/icmp.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/ipv6.rs:
crates/packet/src/mac.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
crates/packet/src/vlan.rs:
crates/packet/src/vxlan.rs:
