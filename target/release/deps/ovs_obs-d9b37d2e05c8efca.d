/root/repo/target/release/deps/ovs_obs-d9b37d2e05c8efca.d: crates/obs/src/lib.rs crates/obs/src/coverage.rs crates/obs/src/hist.rs crates/obs/src/perf.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libovs_obs-d9b37d2e05c8efca.rlib: crates/obs/src/lib.rs crates/obs/src/coverage.rs crates/obs/src/hist.rs crates/obs/src/perf.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libovs_obs-d9b37d2e05c8efca.rmeta: crates/obs/src/lib.rs crates/obs/src/coverage.rs crates/obs/src/hist.rs crates/obs/src/perf.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/coverage.rs:
crates/obs/src/hist.rs:
crates/obs/src/perf.rs:
crates/obs/src/trace.rs:
