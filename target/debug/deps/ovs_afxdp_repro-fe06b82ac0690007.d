/root/repo/target/debug/deps/ovs_afxdp_repro-fe06b82ac0690007.d: src/lib.rs

/root/repo/target/debug/deps/libovs_afxdp_repro-fe06b82ac0690007.rlib: src/lib.rs

/root/repo/target/debug/deps/libovs_afxdp_repro-fe06b82ac0690007.rmeta: src/lib.rs

src/lib.rs:
