//! Software TCP segmentation — the fallback when an egress device lacks
//! TSO.
//!
//! With TSO the kernel (or guest) hands the switch 64 kB "super-segments";
//! devices that can't segment in hardware need the switch to do it in
//! software, paying per-segment header building and checksums. This is
//! the mechanism behind the TSO columns of Fig 8 and the "in-kernel OVS
//! still outperforms AF_XDP for container TCP workloads" outcome (§6):
//! XDP paths had no TSO yet.

use ovs_packet::ethernet::{self, EthernetFrame};
use ovs_packet::ipv4::{self, Ipv4Packet};
use ovs_packet::tcp::TcpSegment;

/// Segment an Ethernet/IPv4/TCP super-frame into MSS-sized frames with
/// correct lengths, sequence numbers, and checksums. Non-TCP or
/// already-small frames are returned unchanged.
pub fn segment(frame: &[u8], mss: usize) -> Vec<Vec<u8>> {
    let Some((header_end, payload_len)) = tcp_payload_bounds(frame) else {
        return vec![frame.to_vec()];
    };
    if payload_len <= mss {
        return vec![frame.to_vec()];
    }

    let headers = &frame[..header_end];
    let payload = &frame[header_end..];
    let eth = EthernetFrame::new_unchecked(headers);
    let ip = Ipv4Packet::new_unchecked(eth.payload());
    let ip_header_len = ip.header_len();
    let (src_ip, dst_ip) = (ip.src(), ip.dst());
    let tcp = TcpSegment::new_unchecked(&eth.payload()[ip_header_len..]);
    let base_seq = tcp.seq();
    let tcp_header_len = tcp.header_len();

    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < payload.len() {
        let chunk = (payload.len() - offset).min(mss);
        let mut seg = Vec::with_capacity(header_end + chunk);
        seg.extend_from_slice(headers);
        seg.extend_from_slice(&payload[offset..offset + chunk]);
        // Fix lengths, sequence number and checksums.
        let ip_total = ip_header_len + tcp_header_len + chunk;
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut seg[ethernet::HEADER_LEN..]);
            ip.set_total_len(ip_total as u16);
            ip.fill_checksum();
        }
        {
            let l4 = ethernet::HEADER_LEN + ip_header_len;
            let mut t = TcpSegment::new_unchecked(&mut seg[l4..]);
            t.set_seq(base_seq.wrapping_add(offset as u32));
            t.fill_checksum_ipv4(src_ip, dst_ip);
        }
        out.push(seg);
        offset += chunk;
    }
    out
}

/// For an Ethernet/IPv4/TCP frame, return `(payload start offset, payload
/// length)`.
fn tcp_payload_bounds(frame: &[u8]) -> Option<(usize, usize)> {
    let eth = EthernetFrame::new_checked(frame).ok()?;
    if eth.ethertype() != ovs_packet::EtherType::Ipv4 {
        return None;
    }
    let ip = Ipv4Packet::new_checked(eth.payload()).ok()?;
    if ip.protocol() != ipv4::protocol::TCP {
        return None;
    }
    let tcp = TcpSegment::new_checked(ip.payload()).ok()?;
    let header_end = ethernet::HEADER_LEN + ip.header_len() + tcp.header_len();
    let payload_len = ip.total_len() as usize - ip.header_len() - tcp.header_len();
    Some((header_end, payload_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovs_packet::tcp::flags;
    use ovs_packet::{builder, MacAddr};

    const A: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const B: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);

    fn super_frame(payload_len: usize) -> Vec<u8> {
        let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
        builder::tcp_ipv4(
            A,
            B,
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1000,
            80,
            5000,
            0,
            flags::ACK,
            &payload,
        )
    }

    #[test]
    fn small_frame_unchanged() {
        let f = super_frame(100);
        let segs = segment(&f, 1460);
        assert_eq!(segs, vec![f]);
    }

    #[test]
    fn large_frame_segmented_correctly() {
        let f = super_frame(4000);
        let segs = segment(&f, 1460);
        assert_eq!(segs.len(), 3); // 1460 + 1460 + 1080
        let mut reassembled = Vec::new();
        let mut expected_seq = 5000u32;
        for seg in &segs {
            let ip = Ipv4Packet::new_checked(&seg[14..]).unwrap();
            assert!(ip.verify_checksum());
            let t = TcpSegment::new_checked(ip.payload()).unwrap();
            assert!(t.verify_checksum_ipv4(ip.src(), ip.dst()));
            assert_eq!(t.seq(), expected_seq);
            expected_seq = expected_seq.wrapping_add(t.payload().len() as u32);
            reassembled.extend_from_slice(t.payload());
        }
        let expected: Vec<u8> = (0..4000).map(|i| i as u8).collect();
        assert_eq!(reassembled, expected, "payload preserved in order");
    }

    #[test]
    fn exact_multiple_of_mss() {
        let f = super_frame(2920);
        let segs = segment(&f, 1460);
        assert_eq!(segs.len(), 2);
        for seg in segs {
            let ip = Ipv4Packet::new_checked(&seg[14..]).unwrap();
            let t = TcpSegment::new_checked(ip.payload()).unwrap();
            assert_eq!(t.payload().len(), 1460);
        }
    }

    #[test]
    fn udp_not_segmented() {
        let f = builder::udp_ipv4(A, B, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[0u8; 3000]);
        let segs = segment(&f, 1460);
        assert_eq!(segs.len(), 1);
    }
}
