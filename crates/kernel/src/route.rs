//! The kernel IPv4 routing table (longest-prefix match).
//!
//! OVS userspace keeps a Netlink-fed replica of this table to route its
//! tunnel traffic (§4); the `tools::ip_route` command prints it.

/// One route entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Destination network address.
    pub dst: [u8; 4],
    /// Prefix length (0 = default route).
    pub prefix_len: u8,
    /// Next-hop gateway, if any (`None` = directly connected).
    pub gateway: Option<[u8; 4]>,
    /// Output interface.
    pub ifindex: u32,
}

impl Route {
    fn mask(&self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(self.prefix_len))
        }
    }

    /// Does this route cover `addr`?
    pub fn covers(&self, addr: [u8; 4]) -> bool {
        let a = u32::from_be_bytes(addr);
        let d = u32::from_be_bytes(self.dst);
        (a & self.mask()) == (d & self.mask())
    }
}

/// The routing table.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a route.
    pub fn add(&mut self, route: Route) {
        self.routes.push(route);
    }

    /// Remove routes matching destination and prefix exactly. Returns how
    /// many were removed.
    pub fn del(&mut self, dst: [u8; 4], prefix_len: u8) -> usize {
        let before = self.routes.len();
        self.routes
            .retain(|r| !(r.dst == dst && r.prefix_len == prefix_len));
        before - self.routes.len()
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: [u8; 4]) -> Option<&Route> {
        self.routes
            .iter()
            .filter(|r| r.covers(addr))
            .max_by_key(|r| r.prefix_len)
    }

    /// All routes, for display.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter()
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes exist.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut t = RouteTable::new();
        t.add(Route {
            dst: [0, 0, 0, 0],
            prefix_len: 0,
            gateway: Some([10, 0, 0, 1]),
            ifindex: 1,
        });
        t.add(Route {
            dst: [10, 1, 0, 0],
            prefix_len: 16,
            gateway: None,
            ifindex: 2,
        });
        t.add(Route {
            dst: [10, 1, 2, 0],
            prefix_len: 24,
            gateway: None,
            ifindex: 3,
        });

        assert_eq!(t.lookup([10, 1, 2, 3]).unwrap().ifindex, 3);
        assert_eq!(t.lookup([10, 1, 9, 9]).unwrap().ifindex, 2);
        assert_eq!(t.lookup([8, 8, 8, 8]).unwrap().ifindex, 1);
    }

    #[test]
    fn no_default_route_misses() {
        let mut t = RouteTable::new();
        t.add(Route {
            dst: [192, 168, 0, 0],
            prefix_len: 24,
            gateway: None,
            ifindex: 1,
        });
        assert!(t.lookup([8, 8, 8, 8]).is_none());
        assert!(t.lookup([192, 168, 0, 77]).is_some());
    }

    #[test]
    fn del_removes_exact() {
        let mut t = RouteTable::new();
        t.add(Route {
            dst: [10, 0, 0, 0],
            prefix_len: 8,
            gateway: None,
            ifindex: 1,
        });
        t.add(Route {
            dst: [10, 0, 0, 0],
            prefix_len: 16,
            gateway: None,
            ifindex: 1,
        });
        assert_eq!(t.del([10, 0, 0, 0], 8), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup([10, 0, 0, 1]).unwrap().prefix_len, 16);
    }
}
