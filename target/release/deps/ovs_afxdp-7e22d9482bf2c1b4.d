/root/repo/target/release/deps/ovs_afxdp-7e22d9482bf2c1b4.d: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/release/deps/libovs_afxdp-7e22d9482bf2c1b4.rlib: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/release/deps/libovs_afxdp-7e22d9482bf2c1b4.rmeta: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

crates/afxdp/src/lib.rs:
crates/afxdp/src/port.rs:
crates/afxdp/src/socket.rs:
