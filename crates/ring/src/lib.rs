//! # ovs-ring — descriptor rings and the umem frame pool
//!
//! The data structures underneath AF_XDP packet I/O, implemented for real:
//!
//! * [`SpscRing`] — a lock-free single-producer/single-consumer ring of
//!   64-bit descriptors, the shape of the four XSK rings (RX, TX, fill,
//!   completion) described in §3.1 and Figure 4 of the paper.
//! * [`Umem`] — the shared packet-buffer region an XSK socket is bound to,
//!   with its fill and completion rings and a frame allocator.
//! * [`UmemPool`] — the paper's "umempool" userspace library (§3.2, O2/O3):
//!   the lockable free-frame manager, with selectable locking strategy
//!   (POSIX-style mutex, spinlock, or batched spinlock) so the O1→O2→O3
//!   optimization steps are real code-path differences.
//! * [`DpPacketPool`] — optimization **O4**: preallocated, reusable packet
//!   metadata in a contiguous pool instead of per-packet allocation.
//! * [`PacketBatch`] — the 32-packet working batch the datapath processes
//!   at a time.

pub mod batch;
pub mod metapool;
pub mod spinlock;
pub mod spsc;
pub mod umem;

pub use batch::{PacketBatch, BATCH_SIZE};
pub use metapool::DpPacketPool;
pub use spinlock::{LockStrategy, RawSpinlock};
pub use spsc::{Desc, SpscRing};
pub use umem::{Umem, UmemPool};
