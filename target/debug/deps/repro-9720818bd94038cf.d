/root/repo/target/debug/deps/repro-9720818bd94038cf.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-9720818bd94038cf: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
