/root/repo/target/debug/examples/xdp_loadbalancer-0030439ab7e4e6dd.d: examples/xdp_loadbalancer.rs

/root/repo/target/debug/examples/xdp_loadbalancer-0030439ab7e4e6dd: examples/xdp_loadbalancer.rs

examples/xdp_loadbalancer.rs:
