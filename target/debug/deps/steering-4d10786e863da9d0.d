/root/repo/target/debug/deps/steering-4d10786e863da9d0.d: crates/kernel/tests/steering.rs

/root/repo/target/debug/deps/steering-4d10786e863da9d0: crates/kernel/tests/steering.rs

crates/kernel/tests/steering.rs:
