/root/repo/target/debug/deps/dp_packet_alloc-ed6656d87b684ad9.d: crates/bench/benches/dp_packet_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libdp_packet_alloc-ed6656d87b684ad9.rmeta: crates/bench/benches/dp_packet_alloc.rs Cargo.toml

crates/bench/benches/dp_packet_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
