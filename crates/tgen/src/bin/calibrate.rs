//! Calibration probe: prints the raw numbers of every experiment so cost
//! constants can be tuned against the paper's targets.

use ovs_afxdp::OptLevel;
use ovs_nsx::topology::{DatapathKind, VmAttachment};
use ovs_tgen::iperf::{self, CcMode, Offloads};
use ovs_tgen::netperf::{self, RrConfig};
use ovs_tgen::scenarios::{self, DpKind, PathKind, ScenarioConfig, VmAttach, XdpTask};

fn main() {
    let poll = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O5,
        interrupt_mode: false,
    };
    let nocsum = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O4,
        interrupt_mode: false,
    };
    let intr = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O4,
        interrupt_mode: true,
    };

    println!("== Table 2 ladder (target 0.8/4.8/6.0/6.3/6.6/7.1) ==");
    for opt in OptLevel::LADDER {
        let m = scenarios::run_ladder(opt);
        println!("  {:<16} {:.2} Mpps", opt.label(), m.mpps);
    }

    println!("== Fig 2 (target kernel ~1.9, ebpf 10-20% less, dpdk ~9) ==");
    println!(
        "  kernel {:.2}  ebpf {:.2}  dpdk {:.2}",
        scenarios::run_fig2_kernel().mpps,
        scenarios::run_fig2_ebpf().mpps,
        scenarios::run_fig2_dpdk().mpps
    );

    println!("== Table 5 (target 14/8.1/7.1/4.7) ==");
    for t in [
        XdpTask::Drop,
        XdpTask::ParseDrop,
        XdpTask::ParseLookupDrop,
        XdpTask::SwapFwd,
    ] {
        println!("  {:?}: {:.2} Mpps", t, scenarios::run_xdp_task(t).mpps);
    }

    println!("== Fig 9 P2P 1/1000 flows + Table 4 ==");
    for dp in [DpKind::Kernel, DpKind::Afxdp(OptLevel::O5), DpKind::Dpdk] {
        for flows in [1usize, 1000] {
            let m = scenarios::run(&ScenarioConfig::micro(dp, PathKind::P2p, flows));
            println!("  {dp:?} f{flows}: {:.2} Mpps  cpu sys={:.1} softirq={:.1} guest={:.1} user={:.1} tot={:.1}",
                m.mpps, m.usage.system, m.usage.softirq, m.usage.guest, m.usage.user, m.usage.total());
        }
    }
    println!("== Fig 9 PVP ==");
    for (dp, at) in [
        (DpKind::Kernel, VmAttach::Tap),
        (DpKind::Afxdp(OptLevel::O5), VmAttach::Tap),
        (DpKind::Afxdp(OptLevel::O5), VmAttach::VhostUser),
        (DpKind::Dpdk, VmAttach::VhostUser),
    ] {
        for flows in [1usize, 1000] {
            let m = scenarios::run(&ScenarioConfig::micro(dp, PathKind::Pvp(at), flows));
            println!("  {dp:?}/{at:?} f{flows}: {:.2} Mpps  cpu sys={:.1} softirq={:.1} guest={:.1} user={:.1} tot={:.1}",
                m.mpps, m.usage.system, m.usage.softirq, m.usage.guest, m.usage.user, m.usage.total());
        }
    }
    println!("== Fig 9 PCP ==");
    for dp in [DpKind::Kernel, DpKind::Afxdp(OptLevel::O5), DpKind::Dpdk] {
        let m = scenarios::run(&ScenarioConfig::micro(dp, PathKind::Pcp, 1000));
        println!(
            "  {dp:?}: {:.2} Mpps  cpu sys={:.1} softirq={:.1} guest={:.1} user={:.1} tot={:.1}",
            m.mpps,
            m.usage.system,
            m.usage.softirq,
            m.usage.guest,
            m.usage.user,
            m.usage.total()
        );
    }

    println!("== Fig 12 queue scaling (64B: afxdp tops ~12, dpdk higher; 1518B afxdp line@6q) ==");
    for q in [1usize, 2, 4, 6] {
        for len in [64usize, 1518] {
            let a = scenarios::run(&ScenarioConfig {
                queues: q,
                frame_len: len,
                ..ScenarioConfig::micro(DpKind::Afxdp(OptLevel::O5), PathKind::P2p, 1000)
            });
            let d = scenarios::run(&ScenarioConfig {
                queues: q,
                frame_len: len,
                ..ScenarioConfig::micro(DpKind::Dpdk, PathKind::P2p, 1000)
            });
            println!(
                "  q{q} {len}B: afxdp {:.2} Mpps ({:.1} Gbps)  dpdk {:.2} Mpps ({:.1} Gbps)",
                a.mpps, a.gbps, d.mpps, d.gbps
            );
        }
    }

    println!(
        "== Fig 8a (target: intr 1.9 < kernel 2.2 < poll-tap 3.0 < vhost 4.4 < vhost+csum 6.5) =="
    );
    println!(
        "  kernel+tap     {:.2}",
        iperf::fig8a_cross_host(DatapathKind::Kernel, VmAttachment::Tap).gbps
    );
    println!(
        "  afxdp intr+tap {:.2}",
        iperf::fig8a_cross_host(intr, VmAttachment::Tap).gbps
    );
    println!(
        "  afxdp poll+tap {:.2}",
        iperf::fig8a_cross_host(nocsum, VmAttachment::Tap).gbps
    );
    println!(
        "  afxdp vhost    {:.2}",
        iperf::fig8a_cross_host(nocsum, VmAttachment::VhostUser).gbps
    );
    println!(
        "  afxdp vhost+cs {:.2}",
        iperf::fig8a_cross_host(poll, VmAttachment::VhostUser).gbps
    );

    if std::env::args().any(|a| a == "--debug-8a") {
        println!("== 8a debug: afxdp poll+tap ==");
        iperf::fig8a_debug(nocsum, VmAttachment::Tap);
        println!("== 8a debug: kernel+tap ==");
        iperf::fig8a_debug(DatapathKind::Kernel, VmAttachment::Tap);
    }

    println!("== Fig 8b (target: kernel 12, vhost 3.8 / 8.4 / 29) ==");
    println!(
        "  kernel+tap TSO {:.2}",
        iperf::fig8b_intra_host(DatapathKind::Kernel, VmAttachment::Tap, Offloads::FULL).gbps
    );
    println!(
        "  vhost none     {:.2}",
        iperf::fig8b_intra_host(nocsum, VmAttachment::VhostUser, Offloads::NONE).gbps
    );
    println!(
        "  vhost csum     {:.2}",
        iperf::fig8b_intra_host(poll, VmAttachment::VhostUser, Offloads::CSUM).gbps
    );
    println!(
        "  vhost csum+tso {:.2}",
        iperf::fig8b_intra_host(poll, VmAttachment::VhostUser, Offloads::FULL).gbps
    );

    println!("== Fig 8c (target: kernel 5.9/49, xdp 5.7, afxdp 4.1/5.0/8.0) ==");
    println!(
        "  kernel none    {:.2}",
        iperf::fig8c_containers(CcMode::Kernel, Offloads::NONE).gbps
    );
    println!(
        "  kernel full    {:.2}",
        iperf::fig8c_containers(CcMode::Kernel, Offloads::FULL).gbps
    );
    println!(
        "  xdp redirect   {:.2}",
        iperf::fig8c_containers(CcMode::XdpRedirect, Offloads::NONE).gbps
    );
    println!(
        "  afxdp none     {:.2}",
        iperf::fig8c_containers(CcMode::AfxdpUserspace(OptLevel::O4), Offloads::NONE).gbps
    );
    println!(
        "  afxdp csum     {:.2}",
        iperf::fig8c_containers(CcMode::AfxdpUserspace(OptLevel::O5), Offloads::CSUM).gbps
    );

    println!("== Fig 10 (target k 58/68/94, d 36/38/45, a 39/41/53) ==");
    for cfg in [RrConfig::Kernel, RrConfig::Dpdk, RrConfig::Afxdp] {
        let r = netperf::vm_rr(cfg);
        println!(
            "  {cfg:?}: {:.0}/{:.0}/{:.0}/{:.0} us  {:.0} tps",
            r.latency_us.p50, r.latency_us.p90, r.latency_us.p99, r.latency_us.p999, r.tps
        );
    }
    println!("== Fig 11 (target k 15/16/20, a 15/16/20, d 81/136/241) ==");
    for cfg in [RrConfig::Kernel, RrConfig::Afxdp, RrConfig::Dpdk] {
        let r = netperf::container_rr(cfg);
        println!(
            "  {cfg:?}: {:.0}/{:.0}/{:.0}/{:.0} us  {:.0} tps",
            r.latency_us.p50, r.latency_us.p90, r.latency_us.p99, r.latency_us.p999, r.tps
        );
    }
}
