/root/repo/target/release/deps/criterion-6a39686fd73b1c7a.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-6a39686fd73b1c7a.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-6a39686fd73b1c7a.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
