//! Packet parsing and flow extraction: the per-packet fixed work every
//! datapath pays (miniflow extraction, checksum verification, rxhash).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovs_packet::flow::extract_flow_key;
use ovs_packet::{builder, checksum, DpPacket, MacAddr};
use std::hint::black_box;

fn frame(len: usize) -> Vec<u8> {
    builder::udp_ipv4_frame(
        MacAddr::new(2, 0, 0, 0, 0, 1),
        MacAddr::new(2, 0, 0, 0, 0, 2),
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        1000,
        2000,
        len,
    )
}

fn bench_extract(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet/extract_flow_key");
    for len in [64usize, 512, 1518] {
        let f = frame(len);
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            let mut pkt = DpPacket::from_data(&f);
            b.iter(|| black_box(extract_flow_key(black_box(&mut pkt)).hash()))
        });
    }
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    // The O5 question in wall-clock terms: what does a software checksum
    // cost per frame size?
    let mut g = c.benchmark_group("packet/sw_checksum");
    for len in [64usize, 512, 1518] {
        let f = frame(len);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(checksum::checksum(black_box(&f))))
        });
    }
    g.finish();
}

fn bench_rss_hash(c: &mut Criterion) {
    // The software rxhash AF_XDP computes per packet (§5.5).
    let f = frame(64);
    let mut pkt = DpPacket::from_data(&f);
    let key = extract_flow_key(&mut pkt);
    c.bench_function("packet/sw_rxhash", |b| {
        b.iter(|| black_box(black_box(&key).rss_hash()))
    });
}

fn bench_geneve_encap(c: &mut Criterion) {
    let inner = frame(1460);
    c.bench_function("packet/geneve_encap_1460B", |b| {
        b.iter(|| {
            black_box(builder::geneve_encap(
                MacAddr::new(4, 0, 0, 0, 0, 1),
                MacAddr::new(4, 0, 0, 0, 0, 2),
                [172, 16, 0, 1],
                [172, 16, 0, 2],
                40_000,
                5001,
                black_box(&inner),
            ))
        })
    });
}

/// Short measurement windows keep the full `cargo bench --workspace`
/// run to a few minutes; pass `--measurement-time` to override.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_extract, bench_checksum, bench_rss_hash, bench_geneve_encap
}
criterion_main!(benches);
