//! The umem: the shared packet-buffer region behind AF_XDP sockets, plus
//! the "umempool" free-frame manager the paper wrote for OVS (§3.2).

use crate::spinlock::{LockStrategy, RawSpinlock};
use crate::spsc::SpscRing;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default frame size: one 2 KiB chunk per packet, AF_XDP's default.
pub const DEFAULT_FRAME_SIZE: usize = 2048;

/// The umem buffer region: `nframes` fixed-size frames plus the fill and
/// completion rings through which frame ownership passes between the
/// kernel and userspace (paths 1–5 in Figure 4 of the paper).
#[derive(Debug)]
pub struct Umem {
    frame_size: usize,
    data: Vec<u8>,
    /// Userspace → kernel: empty frames available for RX.
    pub fill: SpscRing,
    /// Kernel → userspace: frames holding received packets.
    pub comp: SpscRing,
}

impl Umem {
    /// Allocate a umem of `nframes` frames of `frame_size` bytes.
    pub fn new(nframes: usize, frame_size: usize) -> Self {
        Self {
            frame_size,
            data: vec![0; nframes * frame_size],
            fill: SpscRing::new(nframes),
            comp: SpscRing::new(nframes),
        }
    }

    /// Number of frames.
    pub fn nframes(&self) -> usize {
        self.data.len() / self.frame_size
    }

    /// Frame size in bytes.
    pub fn frame_size(&self) -> usize {
        self.frame_size
    }

    /// Read access to frame `idx`.
    pub fn frame(&self, idx: u32) -> &[u8] {
        let start = idx as usize * self.frame_size;
        &self.data[start..start + self.frame_size]
    }

    /// Write access to frame `idx`.
    pub fn frame_mut(&mut self, idx: u32) -> &mut [u8] {
        let start = idx as usize * self.frame_size;
        &mut self.data[start..start + self.frame_size]
    }

    /// Copy a packet into frame `idx`, returning the stored length.
    /// Panics if the packet exceeds the frame size — callers must respect
    /// the MTU contract.
    pub fn write_frame(&mut self, idx: u32, pkt: &[u8]) -> u32 {
        assert!(
            pkt.len() <= self.frame_size,
            "packet larger than umem frame"
        );
        let start = idx as usize * self.frame_size;
        self.data[start..start + pkt.len()].copy_from_slice(pkt);
        pkt.len() as u32
    }
}

/// Counters exposed by [`UmemPool`] so benches and tests can observe the
/// locking behaviour directly.
#[derive(Debug, Default)]
pub struct UmemPoolStats {
    /// Times any lock was acquired.
    pub lock_acquisitions: AtomicU64,
    /// Frames handed out.
    pub allocs: AtomicU64,
    /// Frames returned.
    pub frees: AtomicU64,
}

/// The free-frame manager ("umempool") with a selectable locking strategy.
///
/// Any thread may need to return frames to any umem region (a PMD thread
/// can send a packet out any port), so the free list is synchronized even
/// in single-queue deployments — exactly the situation where the paper
/// found `pthread_mutex_lock` burning 5% CPU and moved to spinlocks (O2),
/// then to batch-granularity locking (O3).
#[derive(Debug)]
pub struct UmemPool {
    free: Mutex<Vec<u32>>,
    spin: RawSpinlock,
    strategy: LockStrategy,
    nframes: u32,
    /// Observable locking/allocation counters.
    pub stats: UmemPoolStats,
}

impl UmemPool {
    /// A pool owning frames `0..nframes`, initially all free.
    pub fn new(nframes: u32, strategy: LockStrategy) -> Self {
        Self {
            free: Mutex::new((0..nframes).rev().collect()),
            spin: RawSpinlock::new(),
            strategy,
            nframes,
            stats: UmemPoolStats::default(),
        }
    }

    /// Total frames this pool owns (free + in flight). The frame-leak
    /// audit asserts every frame is findable against this.
    pub fn nframes(&self) -> u32 {
        self.nframes
    }

    /// The configured locking strategy.
    pub fn strategy(&self) -> LockStrategy {
        self.strategy
    }

    /// Number of free frames (takes the lock).
    pub fn free_count(&self) -> usize {
        self.locked(|free| free.len())
    }

    fn locked<R>(&self, f: impl FnOnce(&mut Vec<u32>) -> R) -> R {
        self.stats.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        match self.strategy {
            LockStrategy::MutexPerPacket => {
                let mut g = self.free.lock().unwrap();
                f(&mut g)
            }
            LockStrategy::SpinlockPerPacket | LockStrategy::SpinlockBatched => {
                // The spinlock provides the mutual exclusion; the inner
                // mutex is uncontended by construction and exists only to
                // satisfy safe interior mutability.
                self.spin.lock();
                let mut g = self.free.try_lock().expect("spinlock already excludes");
                let r = f(&mut g);
                drop(g);
                self.spin.unlock();
                r
            }
        }
    }

    /// Allocate one frame, taking the lock once.
    pub fn alloc(&self) -> Option<u32> {
        let got = self.locked(|free| free.pop());
        if got.is_some() {
            self.stats.allocs.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Free one frame, taking the lock once.
    pub fn free(&self, idx: u32) {
        self.locked(|free| free.push(idx));
        self.stats.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Allocate up to `n` frames into `out`.
    ///
    /// Under [`LockStrategy::SpinlockBatched`] the lock is taken **once**
    /// for the whole batch (O3); under the per-packet strategies it is
    /// taken once per frame, reproducing the pre-O3 behaviour.
    pub fn alloc_batch(&self, out: &mut Vec<u32>, n: usize) -> usize {
        let got = match self.strategy {
            LockStrategy::SpinlockBatched => self.locked(|free| {
                let take = n.min(free.len());
                let at = free.len() - take;
                out.extend(free.drain(at..));
                take
            }),
            _ => {
                let mut got = 0;
                for _ in 0..n {
                    match self.locked(|free| free.pop()) {
                        Some(idx) => {
                            out.push(idx);
                            got += 1;
                        }
                        None => break,
                    }
                }
                got
            }
        };
        self.stats.allocs.fetch_add(got as u64, Ordering::Relaxed);
        got
    }

    /// Free a batch of frames; one lock acquisition under
    /// [`LockStrategy::SpinlockBatched`], one per frame otherwise.
    pub fn free_batch(&self, frames: &[u32]) {
        match self.strategy {
            LockStrategy::SpinlockBatched => {
                self.locked(|free| free.extend_from_slice(frames));
            }
            _ => {
                for &f in frames {
                    self.locked(|free| free.push(f));
                }
            }
        }
        self.stats
            .frees
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc::Desc;

    #[test]
    fn umem_frame_io() {
        let mut u = Umem::new(4, 256);
        assert_eq!(u.nframes(), 4);
        let n = u.write_frame(2, &[0xab; 100]);
        assert_eq!(n, 100);
        assert_eq!(&u.frame(2)[..100], &[0xab; 100]);
        assert_eq!(u.frame(1)[0], 0);
    }

    #[test]
    #[should_panic(expected = "larger than umem frame")]
    fn oversized_write_panics() {
        let mut u = Umem::new(1, 64);
        u.write_frame(0, &[0; 65]);
    }

    #[test]
    fn fill_completion_flow() {
        // Model Figure 4: userspace fills, kernel completes.
        let mut u = Umem::new(8, 128);
        u.fill.push(Desc { frame: 3, len: 0 }).unwrap();
        // "Kernel": take a fill descriptor, write the packet, complete it.
        let d = u.fill.pop().unwrap();
        let len = u.write_frame(d.frame, b"packet!");
        u.comp
            .push(Desc {
                frame: d.frame,
                len,
            })
            .unwrap();
        // "Userspace": read completion, find the data.
        let done = u.comp.pop().unwrap();
        assert_eq!(done.frame, 3);
        assert_eq!(&u.frame(done.frame)[..done.len as usize], b"packet!");
    }

    #[test]
    fn pool_alloc_free_all_strategies() {
        for strategy in [
            LockStrategy::MutexPerPacket,
            LockStrategy::SpinlockPerPacket,
            LockStrategy::SpinlockBatched,
        ] {
            let pool = UmemPool::new(16, strategy);
            assert_eq!(pool.free_count(), 16);
            let a = pool.alloc().unwrap();
            let b = pool.alloc().unwrap();
            assert_ne!(a, b);
            assert_eq!(pool.free_count(), 14);
            pool.free(a);
            pool.free(b);
            assert_eq!(pool.free_count(), 16);
        }
    }

    #[test]
    fn pool_exhaustion() {
        let pool = UmemPool::new(2, LockStrategy::SpinlockPerPacket);
        assert!(pool.alloc().is_some());
        assert!(pool.alloc().is_some());
        assert!(pool.alloc().is_none());
    }

    #[test]
    fn batched_strategy_locks_once_per_batch() {
        let pool = UmemPool::new(64, LockStrategy::SpinlockBatched);
        let before = pool.stats.lock_acquisitions.load(Ordering::Relaxed);
        let mut out = Vec::new();
        pool.alloc_batch(&mut out, 32);
        assert_eq!(out.len(), 32);
        let after = pool.stats.lock_acquisitions.load(Ordering::Relaxed);
        assert_eq!(after - before, 1, "one lock per batch under O3");

        let pool2 = UmemPool::new(64, LockStrategy::SpinlockPerPacket);
        let mut out2 = Vec::new();
        pool2.alloc_batch(&mut out2, 32);
        assert_eq!(
            pool2.stats.lock_acquisitions.load(Ordering::Relaxed),
            32,
            "one lock per packet pre-O3"
        );
    }

    #[test]
    fn batch_alloc_unique_frames() {
        let pool = UmemPool::new(32, LockStrategy::SpinlockBatched);
        let mut out = Vec::new();
        pool.alloc_batch(&mut out, 40);
        assert_eq!(out.len(), 32, "cannot allocate more than the pool holds");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32, "no duplicate frames");
        pool.free_batch(&out);
        assert_eq!(pool.free_count(), 32);
    }

    #[test]
    fn concurrent_alloc_free() {
        use std::sync::Arc;
        let pool = Arc::new(UmemPool::new(128, LockStrategy::SpinlockPerPacket));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    if let Some(f) = pool.alloc() {
                        pool.free(f);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.free_count(), 128, "all frames returned");
    }
}
