/root/repo/target/debug/deps/ovs_afxdp_repro-caef5fff5fbed593.d: src/lib.rs

/root/repo/target/debug/deps/libovs_afxdp_repro-caef5fff5fbed593.rlib: src/lib.rs

/root/repo/target/debug/deps/libovs_afxdp_repro-caef5fff5fbed593.rmeta: src/lib.rs

src/lib.rs:
