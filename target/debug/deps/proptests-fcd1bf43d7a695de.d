/root/repo/target/debug/deps/proptests-fcd1bf43d7a695de.d: crates/ring/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fcd1bf43d7a695de: crates/ring/tests/proptests.rs

crates/ring/tests/proptests.rs:
