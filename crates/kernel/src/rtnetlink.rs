//! rtnetlink: the kernel's configuration/notification channel, and the
//! userspace replica cache OVS keeps of it.
//!
//! §4: "OVS caches a userspace replica of each kernel table using
//! Netlink ... these tables are only updated by slow control plane
//! operations." [`RtnlCache`] is that replica: it consumes the kernel's
//! event stream and mirrors the route and neighbour tables so the
//! userspace datapath can do tunnel routing without syscalls per packet.

use crate::neigh::{NeighTable, Neighbor};
use crate::route::{Route, RouteTable};

/// A netlink notification.
#[derive(Debug, Clone, PartialEq)]
pub enum RtnlEvent {
    LinkAdd {
        ifindex: u32,
        name: String,
    },
    LinkDel {
        ifindex: u32,
    },
    AddrAdd {
        ifindex: u32,
        ip: [u8; 4],
        prefix_len: u8,
    },
    RouteAdd(Route),
    RouteDel {
        dst: [u8; 4],
        prefix_len: u8,
    },
    NeighAdd(Neighbor),
    NeighDel {
        ip: [u8; 4],
    },
}

/// Userspace replica of the kernel route/neighbour/link tables.
#[derive(Debug, Default)]
pub struct RtnlCache {
    /// Mirrored routes.
    pub routes: RouteTable,
    /// Mirrored neighbours.
    pub neighbors: NeighTable,
    /// Mirrored links: `(ifindex, name)`.
    pub links: Vec<(u32, String)>,
    /// Position in the consumed event stream.
    cursor: usize,
}

impl RtnlCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume any new events from the kernel's stream. Returns how many
    /// were applied.
    pub fn sync(&mut self, events: &[RtnlEvent]) -> usize {
        let new = &events[self.cursor.min(events.len())..];
        for ev in new {
            self.apply(ev);
        }
        let n = new.len();
        self.cursor = events.len();
        n
    }

    fn apply(&mut self, ev: &RtnlEvent) {
        match ev {
            RtnlEvent::LinkAdd { ifindex, name } => {
                self.links.retain(|(i, _)| i != ifindex);
                self.links.push((*ifindex, name.clone()));
            }
            RtnlEvent::LinkDel { ifindex } => {
                self.links.retain(|(i, _)| i != ifindex);
            }
            RtnlEvent::AddrAdd {
                ifindex,
                ip,
                prefix_len,
            } => {
                // Addresses imply connected routes, as the kernel does.
                self.routes.add(Route {
                    dst: *ip,
                    prefix_len: *prefix_len,
                    gateway: None,
                    ifindex: *ifindex,
                });
            }
            RtnlEvent::RouteAdd(r) => self.routes.add(*r),
            RtnlEvent::RouteDel { dst, prefix_len } => {
                self.routes.del(*dst, *prefix_len);
            }
            RtnlEvent::NeighAdd(n) => self.neighbors.add(*n),
            RtnlEvent::NeighDel { ip } => {
                self.neighbors.del(*ip);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neigh::NeighState;
    use ovs_packet::MacAddr;

    #[test]
    fn cache_mirrors_events() {
        let events = vec![
            RtnlEvent::LinkAdd {
                ifindex: 1,
                name: "eth0".into(),
            },
            RtnlEvent::AddrAdd {
                ifindex: 1,
                ip: [10, 0, 0, 1],
                prefix_len: 24,
            },
            RtnlEvent::RouteAdd(Route {
                dst: [0, 0, 0, 0],
                prefix_len: 0,
                gateway: Some([10, 0, 0, 254]),
                ifindex: 1,
            }),
            RtnlEvent::NeighAdd(Neighbor {
                ip: [10, 0, 0, 254],
                mac: MacAddr::new(2, 0, 0, 0, 0, 0xfe),
                ifindex: 1,
                state: NeighState::Reachable,
            }),
        ];
        let mut cache = RtnlCache::new();
        assert_eq!(cache.sync(&events), 4);
        assert_eq!(cache.links.len(), 1);
        assert_eq!(
            cache.routes.lookup([8, 8, 8, 8]).unwrap().gateway,
            Some([10, 0, 0, 254])
        );
        assert!(cache.neighbors.lookup([10, 0, 0, 254]).is_some());
        // Re-sync with no new events is a no-op.
        assert_eq!(cache.sync(&events), 0);
    }

    #[test]
    fn incremental_sync() {
        let mut events = vec![RtnlEvent::LinkAdd {
            ifindex: 1,
            name: "a".into(),
        }];
        let mut cache = RtnlCache::new();
        cache.sync(&events);
        events.push(RtnlEvent::LinkDel { ifindex: 1 });
        assert_eq!(cache.sync(&events), 1);
        assert!(cache.links.is_empty());
    }

    #[test]
    fn route_del_mirrored() {
        let events = vec![
            RtnlEvent::RouteAdd(Route {
                dst: [10, 0, 0, 0],
                prefix_len: 8,
                gateway: None,
                ifindex: 1,
            }),
            RtnlEvent::RouteDel {
                dst: [10, 0, 0, 0],
                prefix_len: 8,
            },
        ];
        let mut cache = RtnlCache::new();
        cache.sync(&events);
        assert!(cache.routes.lookup([10, 1, 1, 1]).is_none());
    }
}
