//! The kernel side of an AF_XDP socket binding.
//!
//! An [`XskBinding`] is the shared state between the kernel (which fills
//! RX descriptors and drains TX descriptors) and the userspace socket
//! wrapper in `ovs-afxdp`: a [`Umem`] whose fill/completion rings carry
//! free frames, plus the RX and TX descriptor rings (Figure 4). The
//! simulation is single-threaded, so the two sides share the binding via
//! `Rc<RefCell<..>>`.

use ovs_obs::coverage;
use ovs_ring::{Desc, SpscRing, Umem};
use std::cell::RefCell;
use std::rc::Rc;

/// Counters for one socket.
#[derive(Debug, Clone, Copy, Default)]
pub struct XskStats {
    /// Packets delivered to the RX ring.
    pub rx_delivered: u64,
    /// Packets dropped because the fill ring was empty (userspace too
    /// slow) or the RX ring full.
    pub rx_dropped: u64,
    /// Packets transmitted from the TX ring.
    pub tx_completed: u64,
}

/// Shared kernel/userspace state for one AF_XDP socket.
#[derive(Debug)]
pub struct XskBinding {
    /// The packet buffer region with its fill and completion rings.
    pub umem: Umem,
    /// Kernel → userspace: received packet descriptors.
    pub rx: SpscRing,
    /// Userspace → kernel: packets to transmit.
    pub tx: SpscRing,
    /// Zero-copy (native driver) or copy (generic) mode.
    pub zero_copy: bool,
    /// The device this socket is bound to.
    pub ifindex: u32,
    /// The queue this socket is bound to.
    pub queue: usize,
    /// `need_wakeup` flag: when set, the kernel requires a syscall kick to
    /// start TX processing (the overhead §5.5 measured).
    pub need_wakeup: bool,
    /// Preferred busy polling (the [64] patch set the paper expects to
    /// reduce softirq cost): when set, kernel-side XSK work executes
    /// inline on this application core instead of a separate softirq
    /// thread — same work, no extra hyperthread.
    pub busy_poll_core: Option<usize>,
    /// Fault state: the tx `need_wakeup` kick was lost, so the kernel
    /// does not drain the tx ring until a recovery kick clears it. The
    /// backlog stays on the ring (delayed, never dropped).
    pub kick_lost: bool,
    /// Userspace closed the socket: the rings are destroyed and the
    /// binding is inert. Stale xskmap entries or recovery kicks must
    /// neither deliver to it nor drain packets out of it — the packets
    /// it held were already counted at close time.
    pub closed: bool,
    /// Counters.
    pub stats: XskStats,
}

/// Shared handle to a binding.
pub type XskHandle = Rc<RefCell<XskBinding>>;

impl XskBinding {
    /// Create a binding with `nframes` frames of `frame_size` bytes, all
    /// initially on neither ring (userspace must post them to the fill
    /// ring through its frame pool).
    pub fn new(
        ifindex: u32,
        queue: usize,
        nframes: usize,
        frame_size: usize,
        zero_copy: bool,
    ) -> Self {
        Self {
            umem: Umem::new(nframes, frame_size),
            rx: SpscRing::new(nframes),
            tx: SpscRing::new(nframes),
            zero_copy,
            ifindex,
            queue,
            need_wakeup: true,
            busy_poll_core: None,
            kick_lost: false,
            closed: false,
            stats: XskStats::default(),
        }
    }

    /// Wrap in the shared handle.
    pub fn into_handle(self) -> XskHandle {
        Rc::new(RefCell::new(self))
    }

    /// Tear the binding down from the userspace side (socket close):
    /// empty every ring and mark the binding inert. The caller counts
    /// whatever was parked (`xsk_close_flushed`) *before* calling this —
    /// afterwards those packets are unreachable, so nothing can drain
    /// them onto the wire and count (or deliver) them a second time.
    pub fn close(&mut self) {
        self.closed = true;
        while self.rx.pop().is_some() {}
        while self.tx.pop().is_some() {}
        while self.umem.fill.pop().is_some() {}
        while self.umem.comp.pop().is_some() {}
    }

    /// Kernel-side delivery: take a frame from the fill ring, copy the
    /// packet in, and push an RX descriptor. Returns `false` (and counts a
    /// drop) when no fill descriptor is available or the RX ring is full —
    /// the lossless-rate search in the experiments keys off this.
    pub fn deliver(&mut self, packet: &[u8]) -> bool {
        if self.closed {
            // A stale xskmap entry redirected here after close.
            self.stats.rx_dropped += 1;
            coverage!("xsk_rx_dropped");
            return false;
        }
        let Some(fill_desc) = self.umem.fill.pop() else {
            self.stats.rx_dropped += 1;
            coverage!("xsk_rx_dropped");
            return false;
        };
        if packet.len() > self.umem.frame_size() {
            // Oversized for the umem frame; the kernel would have dropped
            // at the driver.
            self.stats.rx_dropped += 1;
            coverage!("xsk_rx_dropped");
            // Frame goes back so it isn't leaked.
            let _ = self.umem.fill.push(fill_desc);
            return false;
        }
        let len = self.umem.write_frame(fill_desc.frame, packet);
        let desc = Desc {
            frame: fill_desc.frame,
            len,
        };
        if self.rx.push(desc).is_err() {
            self.stats.rx_dropped += 1;
            coverage!("xsk_rx_dropped");
            let _ = self.umem.fill.push(fill_desc);
            return false;
        }
        self.stats.rx_delivered += 1;
        true
    }

    /// Kernel-side TX drain: pop up to `max` descriptors from the TX ring,
    /// returning the frames to transmit; the frame indices are pushed to
    /// the completion ring for userspace to reclaim.
    pub fn drain_tx(&mut self, max: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        if self.closed {
            return out;
        }
        for _ in 0..max {
            let Some(d) = self.tx.pop() else { break };
            out.push(self.umem.frame(d.frame)[..d.len as usize].to_vec());
            // Completion: frame ownership returns to userspace.
            let _ = self.umem.comp.push(Desc {
                frame: d.frame,
                len: 0,
            });
            self.stats.tx_completed += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binding_with_fill(n: usize) -> XskBinding {
        let b = XskBinding::new(1, 0, 8, 2048, true);
        for i in 0..n {
            b.umem
                .fill
                .push(Desc {
                    frame: i as u32,
                    len: 0,
                })
                .unwrap();
        }
        b
    }

    #[test]
    fn deliver_and_read_back() {
        let mut b = binding_with_fill(4);
        assert!(b.deliver(b"hello-xdp"));
        let d = b.rx.pop().unwrap();
        assert_eq!(&b.umem.frame(d.frame)[..d.len as usize], b"hello-xdp");
        assert_eq!(b.stats.rx_delivered, 1);
    }

    #[test]
    fn empty_fill_ring_drops() {
        let mut b = binding_with_fill(0);
        assert!(!b.deliver(b"pkt"));
        assert_eq!(b.stats.rx_dropped, 1);
        assert!(b.rx.is_empty());
    }

    #[test]
    fn fill_exhaustion_then_refill() {
        let mut b = binding_with_fill(2);
        assert!(b.deliver(b"a"));
        assert!(b.deliver(b"b"));
        assert!(!b.deliver(b"c"), "no fill descriptors left");
        // Userspace consumes RX and reposts the frame.
        let d = b.rx.pop().unwrap();
        b.umem
            .fill
            .push(Desc {
                frame: d.frame,
                len: 0,
            })
            .unwrap();
        assert!(b.deliver(b"c"));
    }

    #[test]
    fn tx_roundtrip_with_completion() {
        let mut b = binding_with_fill(0);
        // Userspace writes a packet into frame 5 and posts it for TX.
        b.umem.write_frame(5, b"outbound");
        b.tx.push(Desc { frame: 5, len: 8 }).unwrap();
        let frames = b.drain_tx(32);
        assert_eq!(frames, vec![b"outbound".to_vec()]);
        // Completion gives the frame back.
        let c = b.umem.comp.pop().unwrap();
        assert_eq!(c.frame, 5);
        assert_eq!(b.stats.tx_completed, 1);
    }

    #[test]
    fn oversized_packet_dropped_without_leak() {
        let mut b = XskBinding::new(1, 0, 4, 64, true);
        b.umem.fill.push(Desc { frame: 0, len: 0 }).unwrap();
        assert!(!b.deliver(&[0u8; 100]));
        // The fill descriptor is still available.
        assert!(b.deliver(&[0u8; 64]));
    }
}
