/root/repo/target/debug/deps/criterion-83cbb5cd50cd002a.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-83cbb5cd50cd002a: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
