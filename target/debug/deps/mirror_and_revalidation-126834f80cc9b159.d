/root/repo/target/debug/deps/mirror_and_revalidation-126834f80cc9b159.d: crates/core/tests/mirror_and_revalidation.rs Cargo.toml

/root/repo/target/debug/deps/libmirror_and_revalidation-126834f80cc9b159.rmeta: crates/core/tests/mirror_and_revalidation.rs Cargo.toml

crates/core/tests/mirror_and_revalidation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
