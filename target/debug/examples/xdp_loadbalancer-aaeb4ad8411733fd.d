/root/repo/target/debug/examples/xdp_loadbalancer-aaeb4ad8411733fd.d: examples/xdp_loadbalancer.rs Cargo.toml

/root/repo/target/debug/examples/libxdp_loadbalancer-aaeb4ad8411733fd.rmeta: examples/xdp_loadbalancer.rs Cargo.toml

examples/xdp_loadbalancer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
