/root/repo/target/debug/deps/steering-7916e72c15e60f39.d: crates/kernel/tests/steering.rs Cargo.toml

/root/repo/target/debug/deps/libsteering-7916e72c15e60f39.rmeta: crates/kernel/tests/steering.rs Cargo.toml

crates/kernel/tests/steering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
