/root/repo/target/debug/deps/ovs_kernel-ea7967639367fbdb.d: crates/kernel/src/lib.rs crates/kernel/src/conntrack.rs crates/kernel/src/dev.rs crates/kernel/src/guest.rs crates/kernel/src/kernel.rs crates/kernel/src/namespace.rs crates/kernel/src/neigh.rs crates/kernel/src/ovs_module.rs crates/kernel/src/route.rs crates/kernel/src/rtnetlink.rs crates/kernel/src/tools.rs crates/kernel/src/xsk.rs

/root/repo/target/debug/deps/ovs_kernel-ea7967639367fbdb: crates/kernel/src/lib.rs crates/kernel/src/conntrack.rs crates/kernel/src/dev.rs crates/kernel/src/guest.rs crates/kernel/src/kernel.rs crates/kernel/src/namespace.rs crates/kernel/src/neigh.rs crates/kernel/src/ovs_module.rs crates/kernel/src/route.rs crates/kernel/src/rtnetlink.rs crates/kernel/src/tools.rs crates/kernel/src/xsk.rs

crates/kernel/src/lib.rs:
crates/kernel/src/conntrack.rs:
crates/kernel/src/dev.rs:
crates/kernel/src/guest.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/namespace.rs:
crates/kernel/src/neigh.rs:
crates/kernel/src/ovs_module.rs:
crates/kernel/src/route.rs:
crates/kernel/src/rtnetlink.rs:
crates/kernel/src/tools.rs:
crates/kernel/src/xsk.rs:
