/root/repo/target/debug/deps/proptests-3d4dd82b8e09e0c0.d: crates/kernel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3d4dd82b8e09e0c0: crates/kernel/tests/proptests.rs

crates/kernel/tests/proptests.rs:
