/root/repo/target/debug/deps/ovs_afxdp-48b84d0cd54b900f.d: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/debug/deps/libovs_afxdp-48b84d0cd54b900f.rlib: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/debug/deps/libovs_afxdp-48b84d0cd54b900f.rmeta: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

crates/afxdp/src/lib.rs:
crates/afxdp/src/port.rs:
crates/afxdp/src/socket.rs:
