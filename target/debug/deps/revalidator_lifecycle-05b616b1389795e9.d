/root/repo/target/debug/deps/revalidator_lifecycle-05b616b1389795e9.d: crates/core/tests/revalidator_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/librevalidator_lifecycle-05b616b1389795e9.rmeta: crates/core/tests/revalidator_lifecycle.rs Cargo.toml

crates/core/tests/revalidator_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
