//! Table 1, live: the standard Linux tools keep working on a NIC whose
//! traffic feeds OVS through AF_XDP, and stop existing the moment a
//! DPDK-style driver takes the device over.
//!
//! Run with: `cargo run --example tool_compat`

use ovs_dpdk::EthDev;
use ovs_ebpf::maps::{Map, XskMap};
use ovs_ebpf::programs;
use ovs_kernel::dev::{DeviceKind, NetDevice, XdpMode};
use ovs_kernel::{tools, Kernel};
use ovs_packet::MacAddr;

fn main() {
    let mut k = Kernel::new(4);
    let eth0 = k.add_device(NetDevice::new(
        "eth0",
        MacAddr::new(2, 0, 0, 0, 0, 1),
        DeviceKind::Phys { link_gbps: 10.0 },
        2,
    ));
    k.add_addr(eth0, [10, 0, 0, 1], 24);
    tools::ip_neigh_add(
        &mut k,
        [10, 0, 0, 2],
        MacAddr::new(2, 0, 0, 0, 0, 2),
        "eth0",
    )
    .unwrap();

    // Phase 1: the device is kernel-managed with the OVS AF_XDP hook on.
    let fd = k.maps.add(Map::Xsk(XskMap::new(2)));
    k.attach_xdp(eth0, programs::ovs_xsk_redirect(fd), XdpMode::Native, None)
        .unwrap();
    println!("--- eth0 kernel-managed, OVS AF_XDP hook attached ---");
    print!("{}", tools::ip_link(&k, Some("eth0")).unwrap());
    print!("{}", tools::ip_addr(&k, Some("eth0")).unwrap());
    print!("{}", tools::ip_route(&k).unwrap());
    print!("{}", tools::ip_neigh(&k).unwrap());
    let ping = tools::ping(&mut k, [10, 0, 0, 2]).unwrap();
    println!("ping 10.0.0.2: {:.1} us", ping.rtt_us);
    let mac = tools::arping(&mut k, "eth0", [10, 0, 0, 2]).unwrap();
    println!("arping 10.0.0.2: {mac}");

    // Phase 2: a DPDK-style driver takes the NIC.
    let mut dpdk = EthDev::probe(&mut k, "eth0", 256).unwrap();
    println!("\n--- eth0 taken over by the userspace PMD ---");
    for (cmd, result) in [
        ("ip link show eth0", tools::ip_link(&k, Some("eth0")).err()),
        ("ip addr show eth0", tools::ip_addr(&k, Some("eth0")).err()),
        (
            "arping -I eth0",
            tools::arping(&mut k, "eth0", [10, 0, 0, 2]).err(),
        ),
        ("tcpdump -i eth0", tools::tcpdump(&mut k, "eth0", 1).err()),
    ] {
        println!("{cmd}: {}", result.expect("must fail"));
    }
    println!(
        "ping 10.0.0.2: {}",
        tools::ping(&mut k, [10, 0, 0, 2]).unwrap_err()
    );
    println!(
        "(the DPDK-native replacement: {})",
        ovs_dpdk::testpmd::proc_info(&dpdk)
    );

    // Phase 3: release it, and everything returns.
    dpdk.close(&mut k);
    println!("\n--- eth0 released back to the kernel ---");
    print!("{}", tools::ip_link(&k, Some("eth0")).unwrap());
    println!("ok");
}
