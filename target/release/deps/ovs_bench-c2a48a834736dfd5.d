/root/repo/target/release/deps/ovs_bench-c2a48a834736dfd5.d: crates/bench/src/lib.rs crates/bench/src/fig1.rs

/root/repo/target/release/deps/libovs_bench-c2a48a834736dfd5.rlib: crates/bench/src/lib.rs crates/bench/src/fig1.rs

/root/repo/target/release/deps/libovs_bench-c2a48a834736dfd5.rmeta: crates/bench/src/lib.rs crates/bench/src/fig1.rs

crates/bench/src/lib.rs:
crates/bench/src/fig1.rs:
