/root/repo/target/release/deps/ovs_sim-c74eedc6a2f0211f.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/costs.rs crates/sim/src/cpu.rs crates/sim/src/ctx.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libovs_sim-c74eedc6a2f0211f.rlib: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/costs.rs crates/sim/src/cpu.rs crates/sim/src/ctx.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libovs_sim-c74eedc6a2f0211f.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/costs.rs crates/sim/src/cpu.rs crates/sim/src/ctx.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/costs.rs:
crates/sim/src/cpu.rs:
crates/sim/src/ctx.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
