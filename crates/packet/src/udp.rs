//! UDP datagrams.

use crate::checksum;
use crate::{ParseError, Result};

mod field {
    pub const SRC_PORT: core::ops::Range<usize> = 0..2;
    pub const DST_PORT: core::ops::Range<usize> = 2..4;
    pub const LENGTH: core::ops::Range<usize> = 4..6;
    pub const CHECKSUM: core::ops::Range<usize> = 6..8;
}

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A typed view over a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wrap a buffer, validating lengths.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let d = Self { buffer };
        let l = d.length() as usize;
        if l < HEADER_LEN || l > len {
            return Err(ParseError::BadLength);
        }
        Ok(d)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::SRC_PORT];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::DST_PORT];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Length field (header + payload).
    pub fn length(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::LENGTH];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Checksum field (0 = not computed, legal for IPv4).
    pub fn checksum(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::CHECKSUM];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.length() as usize]
    }

    /// Verify the checksum against an IPv4 pseudo-header. A zero checksum
    /// passes (checksum not computed).
    pub fn verify_checksum_ipv4(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let data = &self.buffer.as_ref()[..self.length() as usize];
        let pseudo =
            checksum::pseudo_header_ipv4(src, dst, crate::ipv4::protocol::UDP, self.length());
        checksum::combine(&[pseudo, checksum::ones_complement_sum(data)]) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_length(&mut self, l: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&l.to_be_bytes());
    }

    /// Write the checksum field.
    pub fn set_checksum(&mut self, c: u16) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&c.to_be_bytes());
    }

    /// Compute and fill the checksum over an IPv4 pseudo-header.
    /// A computed value of 0 is transmitted as 0xffff, per RFC 768.
    pub fn fill_checksum_ipv4(&mut self, src: [u8; 4], dst: [u8; 4]) {
        self.set_checksum(0);
        let len = self.length();
        let data = &self.buffer.as_ref()[..len as usize];
        let pseudo = checksum::pseudo_header_ipv4(src, dst, crate::ipv4::protocol::UDP, len);
        let csum = !checksum::combine(&[pseudo, checksum::ones_complement_sum(data)]);
        self.set_checksum(if csum == 0 { 0xffff } else { csum });
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.length() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 4];
        let mut d = UdpDatagram::new_unchecked(&mut buf[..]);
        d.set_src_port(1234);
        d.set_dst_port(4789);
        d.set_length(12);
        d.payload_mut().copy_from_slice(b"abcd");
        d.fill_checksum_ipv4([10, 0, 0, 1], [10, 0, 0, 2]);
        buf
    }

    #[test]
    fn roundtrip_and_checksum() {
        let buf = sample();
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 1234);
        assert_eq!(d.dst_port(), 4789);
        assert_eq!(d.length(), 12);
        assert_eq!(d.payload(), b"abcd");
        assert!(d.verify_checksum_ipv4([10, 0, 0, 1], [10, 0, 0, 2]));
        // Wrong pseudo-header fails.
        assert!(!d.verify_checksum_ipv4([10, 0, 0, 1], [10, 0, 0, 3]));
    }

    #[test]
    fn zero_checksum_passes() {
        let mut buf = sample();
        buf[6..8].copy_from_slice(&[0, 0]);
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum_ipv4([1, 1, 1, 1], [2, 2, 2, 2]));
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut buf = sample();
        buf[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            ParseError::BadLength
        );
    }

    #[test]
    fn truncated() {
        assert_eq!(
            UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err(),
            ParseError::Truncated
        );
    }
}
