/root/repo/target/debug/deps/criterion-bc584034ed318c09.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bc584034ed318c09.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bc584034ed318c09.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
