/root/repo/target/debug/examples/nsx_deployment-6d1d3a364ca909f3.d: examples/nsx_deployment.rs Cargo.toml

/root/repo/target/debug/examples/libnsx_deployment-6d1d3a364ca909f3.rmeta: examples/nsx_deployment.rs Cargo.toml

examples/nsx_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
