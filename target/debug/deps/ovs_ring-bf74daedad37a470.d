/root/repo/target/debug/deps/ovs_ring-bf74daedad37a470.d: crates/ring/src/lib.rs crates/ring/src/batch.rs crates/ring/src/metapool.rs crates/ring/src/spinlock.rs crates/ring/src/spsc.rs crates/ring/src/umem.rs

/root/repo/target/debug/deps/ovs_ring-bf74daedad37a470: crates/ring/src/lib.rs crates/ring/src/batch.rs crates/ring/src/metapool.rs crates/ring/src/spinlock.rs crates/ring/src/spsc.rs crates/ring/src/umem.rs

crates/ring/src/lib.rs:
crates/ring/src/batch.rs:
crates/ring/src/metapool.rs:
crates/ring/src/spinlock.rs:
crates/ring/src/spsc.rs:
crates/ring/src/umem.rs:
