//! # ovs-nfv — an openNetVM-style NF manager on the OVS dataplane
//!
//! The paper's context is NFV: the OVS dataplane exists to carry traffic
//! between virtualized network functions, and the benchmarking literature
//! it engages with (Niu et al.; Zhang et al., see PAPERS.md) evaluates
//! software switches *through* NF service chains. This crate adds the
//! missing half of that rig: a centralized NF manager in the openNetVM
//! mold — the manager owns the packet mempool, per-NF SPSC descriptor
//! rings, and the tenant→chain table; NFs are isolated workers that see
//! nothing but batches.
//!
//! Layering:
//!
//! - [`nf`] — the [`NetworkFunction`] trait, verdicts, and the built-in
//!   NFs (pass-through, firewall, L4 LB, flow monitor, DPI-lite).
//! - [`chain`] — per-tenant [`NfChain`]s and the dead-NF policy
//!   (bypass vs fail-closed).
//! - [`manager`] — the [`NfManager`]: rings, slots, mempool, crash
//!   isolation (`catch_unwind` per invocation, rebuild-from-spec with
//!   exponential backoff and a bounded restart budget).
//!
//! `ovs-core` wires chains into the datapath via `DpAction::NfChain` and
//! schedules each NF instance as an rxq-like unit on the PMD scheduler;
//! this crate stays kernel-free so its semantics are testable in
//! isolation.

pub mod chain;
pub mod manager;
pub mod nf;

pub use chain::{ChainId, ChainPolicy, NfChain};
pub use manager::{
    Ingress, NfId, NfInstance, NfManager, NfState, NfStats, PollOutcome, NF_PANIC_MSG,
};
pub use nf::{
    five_tuple_hash, parse_five_tuple, payload_offset, FiveTuple, FwRule, NetworkFunction, NfSpec,
    NfVerdict,
};
