//! Percentile and summary statistics for latency experiments.
//!
//! Figures 10 and 11 report P50/P90/P99 latency and transactions per second
//! from `netperf TCP_RR`; [`Percentiles`] reproduces netperf's reporting
//! from a vector of per-transaction round-trip times.

/// Summary of a latency sample set, in the sample's own unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub count: usize,
}

impl Percentiles {
    /// Compute summary statistics from samples. Returns `None` when empty.
    ///
    /// Percentiles use the nearest-rank method on the sorted samples, the
    /// same definition netperf's omni tests use.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = |p: f64| -> f64 {
            let idx = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        Some(Self {
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            count: sorted.len(),
        })
    }

    /// Transactions per second for round-trip samples given in microseconds:
    /// the request/response loop is closed-loop, so TPS = 1e6 / mean RTT.
    pub fn transactions_per_sec_us(&self) -> f64 {
        if self.mean <= 0.0 {
            return 0.0;
        }
        1e6 / self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Percentiles::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let p = Percentiles::from_samples(&[5.0]).unwrap();
        assert_eq!(p.p50, 5.0);
        assert_eq!(p.p99, 5.0);
        assert_eq!(p.mean, 5.0);
        assert_eq!(p.count, 1);
    }

    #[test]
    fn percentiles_of_1_to_100() {
        let samples: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let p = Percentiles::from_samples(&samples).unwrap();
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 100.0);
    }

    #[test]
    fn unsorted_input_ok() {
        let p = Percentiles::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 3.0);
    }

    #[test]
    fn tps_from_mean_rtt() {
        let p = Percentiles::from_samples(&[100.0, 100.0]).unwrap();
        // 100 us mean RTT -> 10,000 transactions/s.
        assert!((p.transactions_per_sec_us() - 10_000.0).abs() < 1e-9);
    }
}
