/root/repo/target/debug/deps/ovs_ebpf-03ff1a32be3520ea.d: crates/ebpf/src/lib.rs crates/ebpf/src/insn.rs crates/ebpf/src/maps.rs crates/ebpf/src/programs.rs crates/ebpf/src/verifier.rs crates/ebpf/src/vm.rs crates/ebpf/src/xdp.rs

/root/repo/target/debug/deps/ovs_ebpf-03ff1a32be3520ea: crates/ebpf/src/lib.rs crates/ebpf/src/insn.rs crates/ebpf/src/maps.rs crates/ebpf/src/programs.rs crates/ebpf/src/verifier.rs crates/ebpf/src/vm.rs crates/ebpf/src/xdp.rs

crates/ebpf/src/lib.rs:
crates/ebpf/src/insn.rs:
crates/ebpf/src/maps.rs:
crates/ebpf/src/programs.rs:
crates/ebpf/src/verifier.rs:
crates/ebpf/src/vm.rs:
crates/ebpf/src/xdp.rs:
