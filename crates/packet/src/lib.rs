//! # ovs-packet — wire formats and flow keys
//!
//! Typed, bounds-checked views over raw packet bytes in the style of
//! smoltcp: a `Packet<&[u8]>` wrapper validates lengths once
//! (`check_len`), then field accessors index without panicking on
//! untrusted input. Emission uses the same wrappers over `&mut [u8]`.
//!
//! The crate also provides the two structures the OVS datapath keys on:
//!
//! * [`DpPacket`] — a packet buffer plus the metadata OVS tracks per packet
//!   (input port, layer offsets, RSS hash, offload flags, conntrack and
//!   tunnel state). The paper's optimization **O4** (§3.2) preallocates
//!   these; `ovs-ring` provides the preallocated pool.
//! * [`FlowKey`] — the fixed-width header fingerprint extracted from a
//!   packet, stored as maskable 64-bit words so the exact-match cache,
//!   megaflow cache, and tuple-space-search classifier can hash and compare
//!   under a [`FlowMask`].
//! * [`Miniflow`] / [`MiniMask`] — the sparse forms of the two (presence
//!   bitmap + packed non-zero words, OVS's `struct miniflow`) that the fast
//!   path extracts, hashes, and matches on; a full [`FlowKey`] is only
//!   expanded on the upcall/miss path.
//!
//! Supported protocols: Ethernet II, 802.1Q VLAN, ARP, IPv4, IPv6, TCP,
//! UDP, ICMPv4, and the tunnel encapsulations the paper's NSX deployment
//! uses: Geneve, VXLAN, and GRE/ERSPAN.

pub mod arp;
pub mod builder;
pub mod checksum;
pub mod dp_packet;
pub mod ethernet;
pub mod flow;
pub mod geneve;
pub mod gre;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod mac;
pub mod tcp;
pub mod udp;
pub mod vlan;
pub mod vxlan;

pub use dp_packet::{DpPacket, OffloadFlags};
pub use ethernet::{EtherType, EthernetFrame};
pub use flow::{extract_flow_key, extract_miniflow, FlowKey, FlowMask, MiniMask, Miniflow};
pub use mac::MacAddr;

/// Error returned when a buffer is too short or a field is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the protocol's minimum header.
    Truncated,
    /// A length field points outside the buffer.
    BadLength,
    /// A version or type field has an unsupported value.
    Unsupported,
    /// A checksum failed verification.
    BadChecksum,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "buffer truncated"),
            ParseError::BadLength => write!(f, "length field out of range"),
            ParseError::Unsupported => write!(f, "unsupported version or type"),
            ParseError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Result alias for packet parsing.
pub type Result<T> = std::result::Result<T, ParseError>;
