/root/repo/target/debug/deps/ovs_dpdk-6f31b474f277917f.d: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

/root/repo/target/debug/deps/ovs_dpdk-6f31b474f277917f: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

crates/dpdk/src/lib.rs:
crates/dpdk/src/af_packet.rs:
crates/dpdk/src/ethdev.rs:
crates/dpdk/src/mbuf.rs:
crates/dpdk/src/testpmd.rs:
crates/dpdk/src/vhost.rs:
