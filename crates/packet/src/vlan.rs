//! 802.1Q VLAN tags.

use crate::{EtherType, ParseError, Result};

/// Length of the 802.1Q tag that follows the Ethernet source address:
/// 2 bytes TCI + 2 bytes inner EtherType.
pub const TAG_LEN: usize = 4;

/// A typed view over the 4 bytes following a `0x8100` EtherType:
/// tag control information plus the encapsulated EtherType.
#[derive(Debug, Clone)]
pub struct VlanTag<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> VlanTag<T> {
    /// Wrap a buffer, validating the minimum length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < TAG_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Tag control information: PCP(3) | DEI(1) | VID(12).
    pub fn tci(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// VLAN identifier (12 bits).
    pub fn vid(&self) -> u16 {
        self.tci() & 0x0fff
    }

    /// Priority code point (3 bits).
    pub fn pcp(&self) -> u8 {
        (self.tci() >> 13) as u8
    }

    /// Drop-eligible indicator.
    pub fn dei(&self) -> bool {
        self.tci() & 0x1000 != 0
    }

    /// EtherType of the encapsulated payload.
    pub fn inner_ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from_u16(u16::from_be_bytes([b[2], b[3]]))
    }

    /// Payload after the tag.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[TAG_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> VlanTag<T> {
    /// Set the tag control information.
    pub fn set_tci(&mut self, tci: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&tci.to_be_bytes());
    }

    /// Set VID, preserving PCP/DEI.
    pub fn set_vid(&mut self, vid: u16) {
        let tci = (self.tci() & !0x0fff) | (vid & 0x0fff);
        self.set_tci(tci);
    }

    /// Set PCP, preserving VID/DEI.
    pub fn set_pcp(&mut self, pcp: u8) {
        let tci = (self.tci() & !0xe000) | (u16::from(pcp & 0x7) << 13);
        self.set_tci(tci);
    }

    /// Set the encapsulated EtherType.
    pub fn set_inner_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[2..4].copy_from_slice(&ty.to_u16().to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; TAG_LEN];
        let mut tag = VlanTag::new_checked(&mut buf[..]).unwrap();
        tag.set_vid(100);
        tag.set_pcp(5);
        tag.set_inner_ethertype(EtherType::Ipv4);
        let tag = VlanTag::new_checked(&buf[..]).unwrap();
        assert_eq!(tag.vid(), 100);
        assert_eq!(tag.pcp(), 5);
        assert!(!tag.dei());
        assert_eq!(tag.inner_ethertype(), EtherType::Ipv4);
    }

    #[test]
    fn vid_masked_to_12_bits() {
        let mut buf = [0u8; TAG_LEN];
        let mut tag = VlanTag::new_checked(&mut buf[..]).unwrap();
        tag.set_vid(0xffff);
        assert_eq!(tag.vid(), 0x0fff);
        assert_eq!(tag.pcp(), 0);
    }

    #[test]
    fn truncated() {
        assert_eq!(
            VlanTag::new_checked(&[0u8; 3][..]).unwrap_err(),
            ParseError::Truncated
        );
    }
}
