/root/repo/target/debug/deps/ovs_ring-1083bafa013111d2.d: crates/ring/src/lib.rs crates/ring/src/batch.rs crates/ring/src/metapool.rs crates/ring/src/spinlock.rs crates/ring/src/spsc.rs crates/ring/src/umem.rs Cargo.toml

/root/repo/target/debug/deps/libovs_ring-1083bafa013111d2.rmeta: crates/ring/src/lib.rs crates/ring/src/batch.rs crates/ring/src/metapool.rs crates/ring/src/spinlock.rs crates/ring/src/spsc.rs crates/ring/src/umem.rs Cargo.toml

crates/ring/src/lib.rs:
crates/ring/src/batch.rs:
crates/ring/src/metapool.rs:
crates/ring/src/spinlock.rs:
crates/ring/src/spsc.rs:
crates/ring/src/umem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
