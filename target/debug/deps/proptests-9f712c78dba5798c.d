/root/repo/target/debug/deps/proptests-9f712c78dba5798c.d: crates/packet/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9f712c78dba5798c.rmeta: crates/packet/tests/proptests.rs Cargo.toml

crates/packet/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
