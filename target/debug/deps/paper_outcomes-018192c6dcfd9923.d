/root/repo/target/debug/deps/paper_outcomes-018192c6dcfd9923.d: tests/paper_outcomes.rs

/root/repo/target/debug/deps/paper_outcomes-018192c6dcfd9923: tests/paper_outcomes.rs

tests/paper_outcomes.rs:
