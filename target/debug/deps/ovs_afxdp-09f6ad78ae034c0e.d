/root/repo/target/debug/deps/ovs_afxdp-09f6ad78ae034c0e.d: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/debug/deps/ovs_afxdp-09f6ad78ae034c0e: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

crates/afxdp/src/lib.rs:
crates/afxdp/src/port.rs:
crates/afxdp/src/socket.rs:
