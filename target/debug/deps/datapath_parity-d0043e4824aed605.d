/root/repo/target/debug/deps/datapath_parity-d0043e4824aed605.d: tests/datapath_parity.rs Cargo.toml

/root/repo/target/debug/deps/libdatapath_parity-d0043e4824aed605.rmeta: tests/datapath_parity.rs Cargo.toml

tests/datapath_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
