/root/repo/target/debug/deps/classifier-d96e3edd1f53705a.d: crates/bench/benches/classifier.rs Cargo.toml

/root/repo/target/debug/deps/libclassifier-d96e3edd1f53705a.rmeta: crates/bench/benches/classifier.rs Cargo.toml

crates/bench/benches/classifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
