/root/repo/target/debug/deps/nat_and_introspection-29023e443505188b.d: crates/core/tests/nat_and_introspection.rs

/root/repo/target/debug/deps/nat_and_introspection-29023e443505188b: crates/core/tests/nat_and_introspection.rs

crates/core/tests/nat_and_introspection.rs:
