//! Deterministic, seeded fault injection (§6: the reduced-risk argument).
//!
//! The paper's case for the userspace AF_XDP datapath is only half about
//! speed; the other half is that failures are survivable. A datapath bug
//! crashes one restartable process instead of the host, an XDP attach
//! rejection degrades to copy mode instead of blackholing a port, a
//! vhostuser guest that goes away drops with a counter instead of a
//! panic. This module is the *fault side* of exercising those claims: a
//! [`FaultPlan`] is a seeded schedule of [`FaultEvent`]s, armed into the
//! [`FaultState`] that rides inside `SimCtx`, and polled by the simulated
//! kernel as virtual time advances. The substrates (kernel, AF_XDP
//! sockets, vhost, the health supervisor) query it and *react*; this
//! module never touches them directly, so `ovs-sim` stays dependency-free
//! and every consumer decides its own recovery semantics.
//!
//! Determinism is the whole point: the same seed yields the same
//! schedule, the same drops, and the same recovery timeline, which is
//! what lets `repro --faults` emit a byte-identical `BENCH_robustness.json`
//! and lets the robustness proptest shrink failures.

use crate::rng::SimRng;

/// The fault classes the robustness harness knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A bug in the datapath itself: the next PMD poll panics (caught by
    /// `ovs-core::health` via `catch_unwind`). One-shot: armed until a
    /// supervisor consumes it with [`FaultState::take`].
    DatapathPanic,
    /// XDP program attach is rejected while active. `arg = 1` rejects
    /// driver/native mode only (the Intel whole-device model / verifier
    /// rejection — copy mode still works); `arg >= 2` rejects generic
    /// mode too, forcing the tap rung of the degradation ladder.
    XdpAttachFail,
    /// The vhostuser guest `target` disconnects (QEMU restart): its rings
    /// are torn down and tx to it drops with a counter until reconnect.
    VhostDisconnect,
    /// Explicit reconnect edge for guest `target` (a `VhostDisconnect`
    /// with a duration reconnects implicitly when it expires).
    VhostReconnect,
    /// The umem free-frame pool of the port on ifindex `target` is
    /// exhausted: rx must stall via the fill ring, not lose frames.
    UmemExhaust,
    /// The tx `need_wakeup` kick to ifindex `target` is lost: the kernel
    /// stops draining the tx ring until the stall clears (the recovery
    /// kick), when the whole backlog drains.
    RxRingStall,
    /// Carrier drops on ifindex `target`: rx and tx while down are
    /// dropped with device counters, link restores when the flap clears.
    CarrierFlap,
    /// The OpenFlow controller session of switch `target` drops: the
    /// ofproto layer rides its fail-mode ladder (standalone falls back
    /// to a normal-action rule set, secure drops new flows) until the
    /// window clears and the modeled reconnect succeeds.
    ControllerDisconnect,
    /// A planned daemon upgrade/restart of switch `target`: the health
    /// supervisor snapshots the datapath, tears it down, and performs a
    /// hitless flow-restore instead of a crash cold-start. One-shot:
    /// armed until the supervisor consumes it with [`FaultState::take`].
    DaemonRestart,
    /// A bug in network function `target` (an NF id): the next invocation
    /// of that NF panics inside the manager's `catch_unwind` boundary and
    /// the worker is rebuilt after backoff. Windowed rather than one-shot
    /// so a random plan armed against a host with no NF manager expires
    /// harmlessly instead of wedging `all_clear`; the NF poll path
    /// consumes it early with [`FaultState::take_for`].
    NfPanic,
}

impl FaultKind {
    /// Every class, in a stable order (report and `fault/show` order).
    pub const ALL: [FaultKind; 10] = [
        FaultKind::DatapathPanic,
        FaultKind::XdpAttachFail,
        FaultKind::VhostDisconnect,
        FaultKind::VhostReconnect,
        FaultKind::UmemExhaust,
        FaultKind::RxRingStall,
        FaultKind::CarrierFlap,
        FaultKind::ControllerDisconnect,
        FaultKind::DaemonRestart,
        FaultKind::NfPanic,
    ];

    /// Stable snake_case label (counter names, JSON keys, `fault/show`).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DatapathPanic => "datapath_panic",
            FaultKind::XdpAttachFail => "xdp_attach_fail",
            FaultKind::VhostDisconnect => "vhost_disconnect",
            FaultKind::VhostReconnect => "vhost_reconnect",
            FaultKind::UmemExhaust => "umem_exhaust",
            FaultKind::RxRingStall => "rx_ring_stall",
            FaultKind::CarrierFlap => "carrier_flap",
            FaultKind::ControllerDisconnect => "controller_disconnect",
            FaultKind::DaemonRestart => "daemon_restart",
            FaultKind::NfPanic => "nf_panic",
        }
    }

    /// Parse a [`label`](Self::label) back to a kind (`fault/inject`).
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.label() == s)
    }

    fn index(self) -> usize {
        FaultKind::ALL.iter().position(|k| *k == self).unwrap()
    }

    /// Whether this class is a level (active for a window) rather than an
    /// edge consumed at injection time.
    fn is_level(self) -> bool {
        !matches!(self, FaultKind::VhostReconnect)
    }

    /// Whether this class stays armed until a supervisor consumes it with
    /// [`FaultState::take`], regardless of any duration on the event.
    fn is_one_shot(self) -> bool {
        matches!(self, FaultKind::DatapathPanic | FaultKind::DaemonRestart)
    }
}

/// One scheduled fault. `target` is class-dependent (an ifindex for
/// device faults, a guest index for vhost faults, unused for
/// `DatapathPanic`); `arg` carries class-specific severity (see
/// [`FaultKind::XdpAttachFail`]). `duration_ns == 0` means the fault
/// stays active until explicitly cleared (or consumed, for one-shots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual-time injection instant.
    pub at_ns: u64,
    pub kind: FaultKind,
    pub target: u32,
    pub arg: u32,
    pub duration_ns: u64,
}

/// A seeded schedule of fault events, built explicitly with
/// [`FaultPlan::event`] or generated with [`FaultPlan::random`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub events: Vec<FaultEvent>,
}

/// Injection targets for [`FaultPlan::random`]: which ifindex takes
/// device-level faults and which guest index takes vhost faults.
#[derive(Debug, Clone, Copy)]
pub struct PlanTargets {
    pub ifindex: u32,
    pub guest: u32,
    /// NF id that takes `NfPanic` faults (ignored by rigs without an NF
    /// manager — the window simply expires).
    pub nf: u32,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Append one event (builder style).
    pub fn event(
        mut self,
        at_ns: u64,
        kind: FaultKind,
        target: u32,
        arg: u32,
        duration_ns: u64,
    ) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            kind,
            target,
            arg,
            duration_ns,
        });
        self
    }

    /// A random plan over `[horizon/10, 8*horizon/10]` that covers every
    /// registered fault class at least once (derived from
    /// [`FaultKind::ALL`] so new classes are picked up automatically),
    /// with seeded jitter on times and durations. Windowed classes always
    /// carry a duration, so they clear implicitly before the horizon
    /// ends; the explicit `VhostReconnect` edge is left to
    /// `fault/inject`. One-shots (`DatapathPanic`, `DaemonRestart`) are
    /// generated once each — they stay armed until a supervisor consumes
    /// them, so stacking several of the same kind is indistinguishable
    /// from one.
    pub fn random(seed: u64, horizon_ns: u64, targets: PlanTargets) -> Self {
        let mut rng = SimRng::new(seed ^ 0xfau64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut plan = FaultPlan::new(seed);
        let classes = FaultKind::ALL
            .iter()
            .copied()
            .filter(|k| *k != FaultKind::VhostReconnect);
        let lo = horizon_ns / 10;
        let hi = horizon_ns * 8 / 10;
        for kind in classes {
            let n = if kind.is_one_shot() {
                1
            } else {
                1 + rng.below(2) // 1..=2 events of each windowed class
            };
            for _ in 0..n {
                let at = rng.range(lo, hi);
                let duration = if kind.is_one_shot() {
                    // One-shot: consumed by the supervisor, no window.
                    0
                } else {
                    rng.range(horizon_ns / 40, horizon_ns / 10)
                };
                let (target, arg) = match kind {
                    FaultKind::VhostDisconnect => (targets.guest, 0),
                    FaultKind::NfPanic => (targets.nf, 0),
                    FaultKind::DatapathPanic
                    | FaultKind::DaemonRestart
                    | FaultKind::ControllerDisconnect => (0, 0),
                    // Native-only rejection: exercises the copy-mode rung
                    // without taking the whole port to tap.
                    FaultKind::XdpAttachFail => (targets.ifindex, 1),
                    _ => (targets.ifindex, 0),
                };
                plan.events.push(FaultEvent {
                    at_ns: at,
                    kind,
                    target,
                    arg,
                    duration_ns: duration,
                });
            }
        }
        plan.events
            .sort_by_key(|e| (e.at_ns, e.kind.index(), e.target));
        plan
    }

    /// The end of the last fault window in the plan (when everything has
    /// cleared, modulo one-shots waiting to be consumed).
    pub fn horizon_ns(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.at_ns + e.duration_ns)
            .max()
            .unwrap_or(0)
    }
}

/// One applied injection, kept for `fault/show`.
#[derive(Debug, Clone, Copy)]
struct Injection {
    at_ns: u64,
    event: FaultEvent,
}

/// A currently-active (level) fault.
#[derive(Debug, Clone, Copy)]
struct ActiveFault {
    kind: FaultKind,
    target: u32,
    arg: u32,
    since_ns: u64,
    /// `u64::MAX` for no expiry (duration 0 / one-shots awaiting take).
    until_ns: u64,
}

/// Edge transitions surfaced by [`FaultState::tick`] so the kernel can
/// apply side effects (flush rings on disconnect, restore carrier on
/// flap expiry) exactly once.
#[derive(Debug, Default)]
pub struct FaultTransitions {
    /// Events whose injection instant was reached this tick.
    pub fired: Vec<FaultEvent>,
    /// `(kind, target, arg)` of windows that expired this tick.
    pub cleared: Vec<(FaultKind, u32, u32)>,
}

/// The live fault state threaded through `SimCtx`. Cloneable so `SimCtx`
/// stays cloneable; `Default` is "no faults", which every existing
/// scenario gets for free.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    seed: u64,
    plan: Vec<FaultEvent>,
    cursor: usize,
    active: Vec<ActiveFault>,
    log: Vec<Injection>,
    injected: [u64; 10],
}

impl FaultState {
    /// Arm a plan. Events fire as [`tick`](Self::tick) observes their
    /// instants; an already-armed plan is replaced (active faults stay).
    pub fn arm(&mut self, plan: FaultPlan) {
        self.seed = plan.seed;
        self.plan = plan.events;
        self.plan
            .sort_by_key(|e| (e.at_ns, e.kind.index(), e.target));
        self.cursor = 0;
    }

    /// Inject one fault right now (the `fault/inject` appctl path).
    /// Returns the transitions it caused, same contract as `tick`.
    pub fn inject(
        &mut self,
        now_ns: u64,
        kind: FaultKind,
        target: u32,
        arg: u32,
        duration_ns: u64,
    ) -> FaultTransitions {
        let ev = FaultEvent {
            at_ns: now_ns,
            kind,
            target,
            arg,
            duration_ns,
        };
        let mut tr = FaultTransitions::default();
        self.apply(now_ns, ev, &mut tr);
        tr
    }

    /// Advance to `now_ns`: fire due plan events, expire elapsed windows.
    /// The caller (the simulated kernel) applies the side effects.
    pub fn tick(&mut self, now_ns: u64) -> FaultTransitions {
        let mut tr = FaultTransitions::default();
        while self.cursor < self.plan.len() && self.plan[self.cursor].at_ns <= now_ns {
            let ev = self.plan[self.cursor];
            self.cursor += 1;
            self.apply(now_ns, ev, &mut tr);
        }
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].until_ns <= now_ns {
                let a = self.active.remove(i);
                tr.cleared.push((a.kind, a.target, a.arg));
            } else {
                i += 1;
            }
        }
        tr
    }

    fn apply(&mut self, now_ns: u64, ev: FaultEvent, tr: &mut FaultTransitions) {
        self.injected[ev.kind.index()] += 1;
        self.log.push(Injection {
            at_ns: now_ns,
            event: ev,
        });
        tr.fired.push(ev);
        match ev.kind {
            // Reconnect clears any matching disconnect immediately.
            FaultKind::VhostReconnect => {
                self.active
                    .retain(|a| !(a.kind == FaultKind::VhostDisconnect && a.target == ev.target));
            }
            k if k.is_level() => {
                let until = match (k, ev.duration_ns) {
                    // One-shots wait for the supervisor's take().
                    (k, _) if k.is_one_shot() => u64::MAX,
                    (_, 0) => u64::MAX,
                    (_, d) => now_ns.saturating_add(d),
                };
                self.active.push(ActiveFault {
                    kind: k,
                    target: ev.target,
                    arg: ev.arg,
                    since_ns: now_ns,
                    until_ns: until,
                });
            }
            _ => {}
        }
    }

    /// Is a fault of `kind` active against `target`?
    pub fn active(&self, kind: FaultKind, target: u32) -> bool {
        self.active_arg(kind, target).is_some()
    }

    /// Like [`active`](Self::active), surfacing the fault's `arg`.
    pub fn active_arg(&self, kind: FaultKind, target: u32) -> Option<u32> {
        self.active
            .iter()
            .find(|a| a.kind == kind && a.target == target)
            .map(|a| a.arg)
    }

    /// Consume one active one-shot of `kind` (any target). The datapath
    /// supervisor calls this from inside `catch_unwind` so the panic is
    /// raised at a quiescent instant — no packets are mid-pipeline.
    pub fn take(&mut self, kind: FaultKind) -> bool {
        if let Some(i) = self.active.iter().position(|a| a.kind == kind) {
            self.active.remove(i);
            true
        } else {
            false
        }
    }

    /// Consume one active fault of `kind` against `target` specifically.
    /// The NF poll path uses this so a crash armed for NF 3 cannot be
    /// absorbed by whichever NF happens to poll first.
    pub fn take_for(&mut self, kind: FaultKind, target: u32) -> bool {
        if let Some(i) = self
            .active
            .iter()
            .position(|a| a.kind == kind && a.target == target)
        {
            self.active.remove(i);
            true
        } else {
            false
        }
    }

    /// True once the armed plan has fully fired and no window is active:
    /// the all-clear the soak waits for before its final forwarding probe.
    pub fn all_clear(&self) -> bool {
        self.cursor >= self.plan.len() && self.active.is_empty()
    }

    /// Total injections of `kind` so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total injections across all classes.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// `ovs-appctl fault/show`: plan progress, active windows, per-class
    /// injection counts, and the injection log. Deterministic.
    pub fn show(&self, now_ns: u64) -> String {
        let secs = |ns: u64| format!("{:.3}s", ns as f64 / 1e9);
        let mut out = format!(
            "fault injection: seed {}, plan {}/{} fired, {} active, {} injected\n",
            self.seed,
            self.cursor,
            self.plan.len(),
            self.active.len(),
            self.injected_total(),
        );
        out.push_str("active:\n");
        if self.active.is_empty() {
            out.push_str("  (none)\n");
        }
        for a in &self.active {
            let until = if a.until_ns == u64::MAX {
                "pending".to_string()
            } else {
                format!("until {}", secs(a.until_ns))
            };
            out.push_str(&format!(
                "  {} target {} (since {}, {})\n",
                a.kind.label(),
                a.target,
                secs(a.since_ns),
                until
            ));
        }
        out.push_str("injected by class:\n");
        for k in FaultKind::ALL {
            if self.injected[k.index()] > 0 {
                out.push_str(&format!(
                    "  {:<18} {}\n",
                    k.label(),
                    self.injected[k.index()]
                ));
            }
        }
        out.push_str("log:\n");
        for inj in &self.log {
            let e = inj.event;
            let dur = if e.duration_ns > 0 {
                format!(" for {}", secs(e.duration_ns))
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {} {} target {} arg {}{}\n",
                secs(inj.at_ns),
                e.kind.label(),
                e.target,
                e.arg,
                dur
            ));
        }
        let _ = now_ns;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_in_order_and_expires() {
        let plan = FaultPlan::new(7)
            .event(100, FaultKind::CarrierFlap, 3, 0, 50)
            .event(200, FaultKind::VhostDisconnect, 1, 0, 100);
        let mut st = FaultState::default();
        st.arm(plan);
        assert!(!st.all_clear());
        let tr = st.tick(100);
        assert_eq!(tr.fired.len(), 1);
        assert!(st.active(FaultKind::CarrierFlap, 3));
        let tr = st.tick(200);
        assert_eq!(tr.fired.len(), 1);
        // Carrier flap expired at 150.
        assert!(tr.cleared.contains(&(FaultKind::CarrierFlap, 3, 0)));
        assert!(st.active(FaultKind::VhostDisconnect, 1));
        let tr = st.tick(400);
        assert!(tr.cleared.contains(&(FaultKind::VhostDisconnect, 1, 0)));
        assert!(st.all_clear());
    }

    #[test]
    fn panic_is_one_shot_until_taken() {
        let mut st = FaultState::default();
        st.arm(FaultPlan::new(1).event(10, FaultKind::DatapathPanic, 0, 0, 0));
        st.tick(10_000);
        assert!(st.active(FaultKind::DatapathPanic, 0), "no auto-expiry");
        assert!(st.take(FaultKind::DatapathPanic));
        assert!(!st.take(FaultKind::DatapathPanic), "consumed exactly once");
        assert!(st.all_clear());
    }

    #[test]
    fn reconnect_clears_disconnect() {
        let mut st = FaultState::default();
        st.inject(0, FaultKind::VhostDisconnect, 2, 0, 0);
        assert!(st.active(FaultKind::VhostDisconnect, 2));
        st.inject(50, FaultKind::VhostReconnect, 2, 0, 0);
        assert!(!st.active(FaultKind::VhostDisconnect, 2));
    }

    #[test]
    fn random_plan_is_deterministic_and_covers_classes() {
        let t = PlanTargets {
            ifindex: 1,
            guest: 0,
            nf: 0,
        };
        let a = FaultPlan::random(42, 1_000_000, t);
        let b = FaultPlan::random(42, 1_000_000, t);
        assert_eq!(a.events, b.events, "same seed, same plan");
        let c = FaultPlan::random(43, 1_000_000, t);
        assert_ne!(a.events, c.events, "different seed, different plan");
        // Every registered class except the explicit reconnect edge must
        // appear — including classes registered after the generator was
        // first written (the PR 9 regression: controller_disconnect and
        // daemon_restart were invisible to random soaks).
        for kind in FaultKind::ALL {
            if kind == FaultKind::VhostReconnect {
                continue;
            }
            assert!(
                a.events.iter().any(|e| e.kind == kind),
                "class {} missing",
                kind.label()
            );
        }
        assert!(a.horizon_ns() <= 1_000_000, "windows close in-horizon");
    }

    #[test]
    fn daemon_restart_is_one_shot_until_taken() {
        let mut st = FaultState::default();
        st.arm(FaultPlan::new(2).event(10, FaultKind::DaemonRestart, 0, 0, 0));
        st.tick(10_000);
        assert!(st.active(FaultKind::DaemonRestart, 0), "no auto-expiry");
        assert!(st.take(FaultKind::DaemonRestart));
        assert!(!st.take(FaultKind::DaemonRestart), "consumed exactly once");
        assert!(st.all_clear());
    }

    #[test]
    fn controller_disconnect_window_expires() {
        let mut st = FaultState::default();
        st.inject(0, FaultKind::ControllerDisconnect, 0, 0, 1_000);
        assert!(st.active(FaultKind::ControllerDisconnect, 0));
        let tr = st.tick(1_000);
        assert!(tr
            .cleared
            .contains(&(FaultKind::ControllerDisconnect, 0, 0)));
        assert!(st.all_clear());
    }

    #[test]
    fn show_renders_log_and_counts() {
        let mut st = FaultState::default();
        st.arm(FaultPlan::new(9).event(1_000_000, FaultKind::UmemExhaust, 4, 0, 2_000_000));
        st.tick(1_000_000);
        let s = st.show(1_500_000);
        assert!(s.contains("seed 9"), "{s}");
        assert!(s.contains("umem_exhaust target 4"), "{s}");
        assert!(s.contains("plan 1/1 fired"), "{s}");
    }
}
