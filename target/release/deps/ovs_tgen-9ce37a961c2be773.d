/root/repo/target/release/deps/ovs_tgen-9ce37a961c2be773.d: crates/tgen/src/lib.rs crates/tgen/src/flood.rs crates/tgen/src/iperf.rs crates/tgen/src/measure.rs crates/tgen/src/netperf.rs crates/tgen/src/scenarios.rs

/root/repo/target/release/deps/libovs_tgen-9ce37a961c2be773.rlib: crates/tgen/src/lib.rs crates/tgen/src/flood.rs crates/tgen/src/iperf.rs crates/tgen/src/measure.rs crates/tgen/src/netperf.rs crates/tgen/src/scenarios.rs

/root/repo/target/release/deps/libovs_tgen-9ce37a961c2be773.rmeta: crates/tgen/src/lib.rs crates/tgen/src/flood.rs crates/tgen/src/iperf.rs crates/tgen/src/measure.rs crates/tgen/src/netperf.rs crates/tgen/src/scenarios.rs

crates/tgen/src/lib.rs:
crates/tgen/src/flood.rs:
crates/tgen/src/iperf.rs:
crates/tgen/src/measure.rs:
crates/tgen/src/netperf.rs:
crates/tgen/src/scenarios.rs:
