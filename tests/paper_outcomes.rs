//! The paper's five numbered outcomes (§5), as executable assertions over
//! the simulation. These pin the *shape* of every headline claim so a
//! regression in any substrate that would invert a conclusion fails CI.

use ovs_afxdp::OptLevel;
use ovs_afxdp_repro::nsx::topology::{DatapathKind, VmAttachment};
use ovs_afxdp_repro::tgen::iperf::{self, CcMode, Offloads};
use ovs_afxdp_repro::tgen::netperf::{self, RrConfig};
use ovs_afxdp_repro::tgen::scenarios::{self, DpKind, PathKind, ScenarioConfig, VmAttach};

const AFXDP: DatapathKind = DatapathKind::UserspaceAfxdp {
    opt: OptLevel::O5,
    interrupt_mode: false,
};

/// Outcome #1: "For VMs, OVS AF_XDP outperforms in-kernel OVS ... For
/// container networking, however, in-kernel OVS remains faster than
/// AF_XDP for TCP workloads for now."
#[test]
fn outcome1_vms_faster_containers_not_yet() {
    // VMs, cross-host (Fig 8a): AF_XDP + vhostuser beats kernel + tap.
    let kernel = iperf::fig8a_cross_host(DatapathKind::Kernel, VmAttachment::Tap);
    let afxdp = iperf::fig8a_cross_host(AFXDP, VmAttachment::VhostUser);
    assert!(
        afxdp.gbps > 2.0 * kernel.gbps,
        "about 3x across hosts in the paper; got {:.2} vs {:.2}",
        afxdp.gbps,
        kernel.gbps
    );
    // VMs, intra-host (Fig 8b): AF_XDP + vhostuser + offloads beats kernel.
    let kernel_b = iperf::fig8b_intra_host(DatapathKind::Kernel, VmAttachment::Tap, Offloads::FULL);
    let afxdp_b = iperf::fig8b_intra_host(AFXDP, VmAttachment::VhostUser, Offloads::FULL);
    assert!(afxdp_b.gbps > kernel_b.gbps);
    // Containers, TCP (Fig 8c): the kernel still wins — XDP lacks TSO.
    let kernel_c = iperf::fig8c_containers(CcMode::Kernel, Offloads::FULL);
    let afxdp_c = iperf::fig8c_containers(CcMode::AfxdpUserspace(OptLevel::O5), Offloads::CSUM);
    assert!(
        kernel_c.gbps > afxdp_c.gbps,
        "in-kernel {:.1} must beat AF_XDP {:.1} for container TCP",
        kernel_c.gbps,
        afxdp_c.gbps
    );
}

/// Outcome #2: "OVS AF_XDP outperforms the other solutions when the
/// endpoints are containers. In the other settings, DPDK provides better
/// performance."
#[test]
fn outcome2_containers_afxdp_else_dpdk() {
    for flows in [1usize, 1000] {
        // PCP: AF_XDP (XDP redirect) wins in speed.
        let pcp = |dp| scenarios::run(&ScenarioConfig::micro(dp, PathKind::Pcp, flows));
        let a = pcp(DpKind::Afxdp(OptLevel::O5));
        let k = pcp(DpKind::Kernel);
        let d = pcp(DpKind::Dpdk);
        assert!(a.mpps > k.mpps && a.mpps > d.mpps, "flows={flows}");
        // ... and in CPU use.
        assert!(a.usage.total() <= d.usage.total() + 0.3, "flows={flows}");

        // P2P and PVP: DPDK leads.
        let p2p = |dp| scenarios::run(&ScenarioConfig::micro(dp, PathKind::P2p, flows));
        assert!(p2p(DpKind::Dpdk).mpps > p2p(DpKind::Afxdp(OptLevel::O5)).mpps);
        let pvp = |dp| {
            scenarios::run(&ScenarioConfig::micro(
                dp,
                PathKind::Pvp(VmAttach::VhostUser),
                flows,
            ))
        };
        assert!(pvp(DpKind::Dpdk).mpps > pvp(DpKind::Afxdp(OptLevel::O5)).mpps);
    }
}

/// Outcome #3: "OVS with AF_XDP performs about as well as the better of
/// in-kernel or DPDK for virtual networking both across and within hosts"
/// (the latency view, Fig 10/11).
#[test]
fn outcome3_latency_tracks_the_best() {
    // Inter-host VM: AF_XDP barely trails DPDK, both far ahead of kernel.
    let a = netperf::vm_rr(RrConfig::Afxdp).latency_us;
    let d = netperf::vm_rr(RrConfig::Dpdk).latency_us;
    let k = netperf::vm_rr(RrConfig::Kernel).latency_us;
    assert!(a.p50 < d.p50 * 1.2, "afxdp {} ~ dpdk {}", a.p50, d.p50);
    assert!(a.p50 < k.p50 * 0.8);
    // Intra-host containers: AF_XDP matches the kernel; DPDK collapses
    // ("beats DPDK processing latency by 12x" in the intro).
    let a = netperf::container_rr(RrConfig::Afxdp);
    let k = netperf::container_rr(RrConfig::Kernel);
    let d = netperf::container_rr(RrConfig::Dpdk);
    assert!((a.latency_us.p50 - k.latency_us.p50).abs() < 0.25 * k.latency_us.p50);
    assert!(
        d.latency_us.p99 > 10.0 * a.latency_us.p99,
        "P99: dpdk {} vs afxdp {}",
        d.latency_us.p99,
        a.latency_us.p99
    );
    assert!(a.tps > 4.0 * d.tps, "transaction rate gap");
}

/// Outcome #4: "Complexity in XDP code reduces performance. Processing
/// packets in userspace with AF_XDP isn't always slower than processing
/// in XDP."
#[test]
fn outcome4_xdp_complexity_costs() {
    use scenarios::XdpTask;
    let a = scenarios::run_xdp_task(XdpTask::Drop).mpps;
    let b = scenarios::run_xdp_task(XdpTask::ParseDrop).mpps;
    let c = scenarios::run_xdp_task(XdpTask::ParseLookupDrop).mpps;
    let d = scenarios::run_xdp_task(XdpTask::SwapFwd).mpps;
    assert!(
        a > b && b > c && c > d,
        "each added task step costs: {a} {b} {c} {d}"
    );
    // The userspace datapath's P2P rate beats the in-XDP forwarding task:
    // userspace isn't always slower than XDP.
    let user = scenarios::run(&ScenarioConfig {
        link_gbps: 10.0,
        ..ScenarioConfig::micro(DpKind::Afxdp(OptLevel::O5), PathKind::P2p, 1)
    });
    assert!(
        user.mpps > d,
        "userspace {:.1} vs XDP fwd {:.1}",
        user.mpps,
        d
    );
}

/// Outcome #5: "AF_XDP does not yet provide the performance of DPDK but
/// it is mature enough to saturate 25 Gbps with large packets."
#[test]
fn outcome5_line_rate_with_large_packets() {
    let big = scenarios::run(&ScenarioConfig {
        queues: 6,
        frame_len: 1518,
        ..ScenarioConfig::micro(DpKind::Afxdp(OptLevel::O5), PathKind::P2p, 1000)
    });
    assert!(big.line_limited, "1518B at 6 queues saturates 25 GbE");
    let small = scenarios::run(&ScenarioConfig {
        queues: 6,
        frame_len: 64,
        ..ScenarioConfig::micro(DpKind::Afxdp(OptLevel::O5), PathKind::P2p, 1000)
    });
    assert!(!small.line_limited, "64B tops out below line rate");
    let dpdk_small = scenarios::run(&ScenarioConfig {
        queues: 6,
        frame_len: 64,
        ..ScenarioConfig::micro(DpKind::Dpdk, PathKind::P2p, 1000)
    });
    assert!(
        dpdk_small.mpps > small.mpps,
        "DPDK consistently outperforms at 64B"
    );
}

/// Takeaway #4: "eBPF solves maintainability issues but it is too slow
/// for packet switching" — 10–20% behind the kernel module.
#[test]
fn takeaway4_ebpf_datapath_too_slow() {
    let kernel = scenarios::run_fig2_kernel().mpps;
    let ebpf = scenarios::run_fig2_ebpf().mpps;
    assert!(ebpf < kernel);
    let slowdown = 1.0 - ebpf / kernel;
    assert!(
        (0.05..=0.30).contains(&slowdown),
        "eBPF should be ~10-20% slower, got {:.0}%",
        slowdown * 100.0
    );
}
