//! End-to-end integration across every crate: the two-host NSX overlay
//! carrying real, checksummed frames through the full AF_XDP userspace
//! datapath — XDP hook → XSK → EMC/megaflow/ofproto → conntrack →
//! Geneve → wire — and back.

use ovs_afxdp::OptLevel;
use ovs_afxdp_repro::kernel::guest::GuestRole;
use ovs_afxdp_repro::nsx::ruleset::{self, NsxConfig};
use ovs_afxdp_repro::nsx::topology::{DatapathKind, Host, HostConfig, VmAttachment};
use ovs_afxdp_repro::packet::{builder, ipv4, udp, EthernetFrame};

fn build_host(id: u8, datapath: DatapathKind, attachment: VmAttachment) -> Host {
    let mut cfg = HostConfig::nsx_default(id, datapath, attachment);
    cfg.nsx = NsxConfig {
        vms: 3,
        tunnels: 6,
        target_rules: 1_200,
        local_vtep: [172, 16, 0, id],
        remote_vtep: [172, 16, 0, 3 - id],
        ..NsxConfig::default()
    };
    Host::build(&cfg)
}

fn wire(h1: &mut Host, h2: &mut Host) {
    for _ in 0..24 {
        let mut moved = h1.pump() + h2.pump();
        for f in h1.wire_take() {
            h2.wire_inject(f);
            moved += 1;
        }
        for f in h2.wire_take() {
            h1.wire_inject(f);
            moved += 1;
        }
        if moved == 0 {
            break;
        }
    }
}

fn request(seq: u16) -> Vec<u8> {
    builder::udp_ipv4(
        ruleset::vm_mac(1, 0, 0),
        ruleset::vm_mac(2, 0, 0),
        ruleset::vm_ip(1, 0, 0),
        ruleset::vm_ip(2, 0, 0),
        4000 + seq,
        7,
        format!("req-{seq}").as_bytes(),
    )
}

#[test]
fn afxdp_overlay_round_trip_with_firewall() {
    let dpk = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O5,
        interrupt_mode: false,
    };
    let mut h1 = build_host(1, dpk, VmAttachment::VhostUser);
    let mut h2 = build_host(2, dpk, VmAttachment::VhostUser);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());
    let sender = h1.guest_of_vif[0];
    h1.kernel.guests[sender].role = GuestRole::Sink;

    for seq in 0..20 {
        h1.kernel.guests[sender].tx_ring.push_back(request(seq));
    }
    wire(&mut h1, &mut h2);

    // Every request was answered across the overlay.
    assert_eq!(h1.kernel.guests[sender].rx_count, 20);

    let dp1 = h1.dp.as_ref().unwrap();
    let dp2 = h2.dp.as_ref().unwrap();
    // Both directions tunnelled and recirculated through the firewall.
    assert!(dp1.stats.tunnel_encaps >= 20);
    assert!(dp1.stats.tunnel_decaps >= 20);
    assert!(dp2.stats.tunnel_encaps >= 20);
    assert!(dp1.stats.recirculations >= 40, "ct pipeline recirculates");
    // Conntrack on both hosts saw the connections.
    assert!(dp1.ct.len() >= 20);
    assert!(dp2.ct.len() >= 20);
    // The caches converge: far fewer upcalls than packets processed.
    assert!(
        dp1.stats.upcalls as f64 <= 0.2 * dp1.stats.rx_packets as f64,
        "{} upcalls for {} packets",
        dp1.stats.upcalls,
        dp1.stats.rx_packets
    );
}

#[test]
fn kernel_datapath_overlay_round_trip() {
    let mut h1 = build_host(1, DatapathKind::Kernel, VmAttachment::Tap);
    let mut h2 = build_host(2, DatapathKind::Kernel, VmAttachment::Tap);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());
    let sender = h1.guest_of_vif[0];
    h1.kernel.guests[sender].role = GuestRole::Sink;

    // Ten packets of ONE flow, sent one at a time (as a real stream
    // arrives): the first installs the megaflows, the rest must ride the
    // kernel fast path.
    for _ in 0..10 {
        h1.kernel.guests[sender].tx_ring.push_back(request(0));
        wire(&mut h1, &mut h2);
    }

    assert_eq!(h1.kernel.guests[sender].rx_count, 10);
    assert!(h1.kernel.ovs.stats.tunnel_encaps >= 10);
    assert!(h2.kernel.ovs.stats.tunnel_decaps >= 10);
    // Kernel megaflows were installed by the upcall handler; steady state
    // hits them.
    assert!(h1.kernel.ovs.flow_count() >= 3);
    assert!(h1.kernel.ovs.stats.hits > h1.kernel.ovs.stats.misses);
    // Kernel conntrack (not the userspace one) tracked the connections.
    assert!(!h1.kernel.conntrack.is_empty());
}

#[test]
fn outer_frames_on_the_wire_are_valid_geneve() {
    let dpk = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O5,
        interrupt_mode: false,
    };
    let mut h1 = build_host(1, dpk, VmAttachment::VhostUser);
    let mut h2 = build_host(2, dpk, VmAttachment::VhostUser);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());
    let sender = h1.guest_of_vif[0];
    h1.kernel.guests[sender].role = GuestRole::Sink;

    h1.kernel.guests[sender].tx_ring.push_back(request(0));
    h1.pump();
    let outers = h1.wire_take();
    assert!(!outers.is_empty(), "a frame reached the wire");
    for f in &outers {
        let eth = EthernetFrame::new_checked(&f[..]).unwrap();
        let ip = ipv4::Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum(), "outer IP checksum valid");
        assert_eq!(ip.src(), [172, 16, 0, 1]);
        assert_eq!(ip.dst(), [172, 16, 0, 2]);
        let u = udp::UdpDatagram::new_checked(ip.payload()).unwrap();
        assert_eq!(u.dst_port(), ovs_afxdp_repro::packet::geneve::UDP_PORT);
        let g = ovs_afxdp_repro::packet::geneve::GenevePacket::new_checked(u.payload()).unwrap();
        // The inner frame is the original request, byte for byte.
        assert_eq!(g.payload(), &request(0)[..]);
    }
}

#[test]
fn intra_host_traffic_never_touches_the_tunnel() {
    let dpk = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O5,
        interrupt_mode: false,
    };
    let mut h1 = build_host(1, dpk, VmAttachment::VhostUser);
    let sender = h1.guest_of_vif[0];
    h1.kernel.guests[sender].role = GuestRole::Sink;
    // VM0 -> VM1 on the same host.
    let frame = builder::udp_ipv4(
        ruleset::vm_mac(1, 0, 0),
        ruleset::vm_mac(1, 1, 0),
        ruleset::vm_ip(1, 0, 0),
        ruleset::vm_ip(1, 1, 0),
        5000,
        7,
        b"local",
    );
    h1.kernel.guests[sender].tx_ring.push_back(frame);
    for _ in 0..8 {
        if h1.pump() == 0 {
            break;
        }
    }
    let receiver = h1.guest_of_vif[2]; // VM1 iface 0
    assert!(
        h1.kernel.guests[receiver].rx_count >= 1,
        "locally delivered"
    );
    assert_eq!(h1.dp.as_ref().unwrap().stats.tunnel_encaps, 0);
    assert!(h1.wire_take().is_empty(), "nothing left the host");
}
