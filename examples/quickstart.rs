//! Quickstart: bring up the userspace OVS datapath over AF_XDP, install a
//! flow, and forward packets — the minimal end-to-end path of the paper's
//! architecture (Fig 3, right).
//!
//! Run with: `cargo run --example quickstart`

use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_core::dpif::{DpifNetdev, PortType};
use ovs_core::{AssignmentPolicy, PmdSet};
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_packet::{builder, MacAddr};

fn main() {
    // 1. A simulated host: 8 hyperthreads, two 25 GbE NICs.
    let mut kernel = Kernel::new(8);
    let eth0 = kernel.add_device(NetDevice::new(
        "eth0",
        MacAddr::new(2, 0, 0, 0, 0, 1),
        DeviceKind::Phys { link_gbps: 25.0 },
        1,
    ));
    let eth1 = kernel.add_device(NetDevice::new(
        "eth1",
        MacAddr::new(2, 0, 0, 0, 0, 2),
        DeviceKind::Phys { link_gbps: 25.0 },
        1,
    ));

    // 2. The userspace datapath with one AF_XDP port per NIC. Opening a
    //    port creates the XSK sockets, the umem, and loads the OVS XDP
    //    hook program onto the device.
    let mut dp = DpifNetdev::new();
    let p0 = dp.add_port(
        "eth0",
        PortType::Afxdp(AfxdpPort::open(&mut kernel, eth0, 4096, OptLevel::O5).unwrap()),
    );
    let p1 = dp.add_port(
        "eth1",
        PortType::Afxdp(AfxdpPort::open(&mut kernel, eth1, 4096, OptLevel::O5).unwrap()),
    );

    // 3. One OpenFlow rule in ovs-ofctl syntax: everything from eth0
    //    goes out eth1.
    dp.add_flows(&format!(
        "table=0, priority=10, in_port={p0}, actions=output:{p1}"
    ))
    .expect("valid flow spec");

    // 4. A PMD thread on core 1 polls eth0's queue — the scheduler owns
    //    the polling loop and the thread's private EMC/SMC caches.
    let mut pmds = PmdSet::new(&[1], AssignmentPolicy::RoundRobin);
    pmds.add_rxq(p0, 0);
    pmds.rebalance();

    // 5. Traffic arrives on the wire; the XDP hook redirects it into the
    //    AF_XDP socket; the PMD round polls, classifies, and forwards.
    for i in 0..100u16 {
        let frame = builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 1, 1),
            MacAddr::new(2, 0, 0, 0, 0, 1),
            [10, 0, 0, 1],
            [10, 0, (i >> 8) as u8, i as u8 + 1],
            1000 + i,
            53,
            64,
        );
        kernel.receive(eth0, 0, frame);
        pmds.run_round(&mut dp, &mut kernel);
    }

    let forwarded = kernel.device(eth1).tx_wire.len();
    println!("forwarded {forwarded} packets from eth0 to eth1");
    println!(
        "cache hierarchy: {} upcall(s), {} megaflow hit(s), {} EMC hit(s)",
        dp.stats.upcalls, dp.stats.megaflow_hits, dp.stats.emc_hits
    );
    println!("megaflows installed: {}", dp.megaflow_count());
    println!("--- pmd-rxq-show ---\n{}", pmds.pmd_rxq_show(&dp));
    println!(
        "--- dpctl/dump-flows ---\n{}",
        dp.dump_flows(kernel.sim.clock.now_ns())
    );
    println!(
        "virtual CPU cost: {:.0} ns user, {:.0} ns softirq",
        kernel.sim.cpus.core(1).ns(ovs_sim::Context::User),
        kernel.sim.cpus.core(0).ns(ovs_sim::Context::Softirq),
    );

    assert_eq!(forwarded, 100);
    assert_eq!(dp.stats.upcalls, 1, "one slow-path trip, then the caches");
    println!("ok");
}
