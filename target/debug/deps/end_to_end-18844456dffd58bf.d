/root/repo/target/debug/deps/end_to_end-18844456dffd58bf.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-18844456dffd58bf: tests/end_to_end.rs

tests/end_to_end.rs:
