//! Lock-free single-producer/single-consumer descriptor ring.
//!
//! This is the shape of all four AF_XDP rings (Figure 4): a power-of-two
//! array of 64-bit descriptors with free-running producer and consumer
//! counters. The implementation uses only safe atomics: descriptor slots
//! are `AtomicU64`s written by the producer before it publishes the new
//! producer index with `Release`, and read by the consumer after an
//! `Acquire` load of that index.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// An XSK-style descriptor: a frame index plus a length.
///
/// Real AF_XDP descriptors carry a umem byte address; ours carry a frame
/// index (the umem is chunked into fixed-size frames, so the two are
/// interchangeable) packed with the packet length into one u64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Desc {
    /// Frame index within the umem.
    pub frame: u32,
    /// Packet length in bytes.
    pub len: u32,
}

impl Desc {
    /// Pack into the ring's 64-bit slot format.
    pub fn to_u64(self) -> u64 {
        (u64::from(self.frame) << 32) | u64::from(self.len)
    }

    /// Unpack from the ring's 64-bit slot format.
    pub fn from_u64(v: u64) -> Self {
        Self {
            frame: (v >> 32) as u32,
            len: v as u32,
        }
    }
}

/// A lock-free SPSC ring of 64-bit descriptors.
///
/// One thread may push, one thread may pop, concurrently. The capacity is
/// rounded up to a power of two.
#[derive(Debug)]
pub struct SpscRing {
    slots: Vec<AtomicU64>,
    mask: usize,
    /// Next slot the producer will write (free-running).
    prod: AtomicUsize,
    /// Next slot the consumer will read (free-running).
    cons: AtomicUsize,
}

impl SpscRing {
    /// Create a ring with at least `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
            prod: AtomicUsize::new(0),
            cons: AtomicUsize::new(0),
        }
    }

    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of descriptors currently queued.
    pub fn len(&self) -> usize {
        self.prod
            .load(Ordering::Acquire)
            .wrapping_sub(self.cons.load(Ordering::Acquire))
    }

    /// True when no descriptors are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the ring is full.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Push one descriptor. Returns `Err(desc)` when full.
    pub fn push(&self, desc: Desc) -> Result<(), Desc> {
        if self.push_batch(&[desc]) == 1 {
            Ok(())
        } else {
            Err(desc)
        }
    }

    /// Push up to `descs.len()` descriptors, returning how many fit.
    ///
    /// Batched pushes are the normal mode: AF_XDP's performance depends on
    /// amortizing the index publication over a batch (§3.2, O3).
    pub fn push_batch(&self, descs: &[Desc]) -> usize {
        let prod = self.prod.load(Ordering::Relaxed);
        let cons = self.cons.load(Ordering::Acquire);
        let free = self.capacity() - prod.wrapping_sub(cons);
        let n = descs.len().min(free);
        for (i, d) in descs[..n].iter().enumerate() {
            self.slots[(prod.wrapping_add(i)) & self.mask].store(d.to_u64(), Ordering::Relaxed);
        }
        // Publish: the consumer's Acquire load of `prod` synchronizes with
        // this Release store, making the slot writes visible.
        self.prod.store(prod.wrapping_add(n), Ordering::Release);
        n
    }

    /// Pop one descriptor.
    pub fn pop(&self) -> Option<Desc> {
        let mut buf = [Desc { frame: 0, len: 0 }];
        if self.pop_batch(&mut buf) == 1 {
            Some(buf[0])
        } else {
            None
        }
    }

    /// Pop up to `out.len()` descriptors, returning how many were read.
    pub fn pop_batch(&self, out: &mut [Desc]) -> usize {
        let cons = self.cons.load(Ordering::Relaxed);
        let prod = self.prod.load(Ordering::Acquire);
        let avail = prod.wrapping_sub(cons);
        let n = out.len().min(avail);
        for (i, slot) in out[..n].iter_mut().enumerate() {
            *slot = Desc::from_u64(
                self.slots[(cons.wrapping_add(i)) & self.mask].load(Ordering::Relaxed),
            );
        }
        // Publish consumption so the producer sees the freed space.
        self.cons.store(cons.wrapping_add(n), Ordering::Release);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn desc_pack_roundtrip() {
        let d = Desc {
            frame: 0xdead_beef,
            len: 1518,
        };
        assert_eq!(Desc::from_u64(d.to_u64()), d);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(SpscRing::new(100).capacity(), 128);
        assert_eq!(SpscRing::new(128).capacity(), 128);
        assert_eq!(SpscRing::new(0).capacity(), 2);
    }

    #[test]
    fn fifo_order() {
        let r = SpscRing::new(8);
        for i in 0..5u32 {
            r.push(Desc {
                frame: i,
                len: i * 10,
            })
            .unwrap();
        }
        for i in 0..5u32 {
            assert_eq!(
                r.pop(),
                Some(Desc {
                    frame: i,
                    len: i * 10
                })
            );
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let r = SpscRing::new(4);
        for i in 0..4 {
            r.push(Desc { frame: i, len: 0 }).unwrap();
        }
        assert!(r.is_full());
        assert!(r.push(Desc { frame: 99, len: 0 }).is_err());
        r.pop().unwrap();
        assert!(r.push(Desc { frame: 99, len: 0 }).is_ok());
    }

    #[test]
    fn batch_partial_fill() {
        let r = SpscRing::new(4);
        let descs: Vec<Desc> = (0..6).map(|i| Desc { frame: i, len: 0 }).collect();
        assert_eq!(r.push_batch(&descs), 4);
        let mut out = [Desc { frame: 0, len: 0 }; 8];
        assert_eq!(r.pop_batch(&mut out), 4);
        assert_eq!(out[3].frame, 3);
    }

    #[test]
    fn wraparound() {
        let r = SpscRing::new(4);
        for round in 0..100u32 {
            r.push(Desc {
                frame: round,
                len: 1,
            })
            .unwrap();
            assert_eq!(r.pop().unwrap().frame, round);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn concurrent_producer_consumer() {
        let r = Arc::new(SpscRing::new(64));
        let n: u32 = 100_000;
        let prod = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..n {
                    loop {
                        if r.push(Desc {
                            frame: i,
                            len: i ^ 0xff,
                        })
                        .is_ok()
                        {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut next = 0u32;
        while next < n {
            if let Some(d) = r.pop() {
                assert_eq!(d.frame, next, "descriptors must arrive in order");
                assert_eq!(d.len, next ^ 0xff, "payload must be intact");
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        prod.join().unwrap();
        assert!(r.is_empty());
    }
}
