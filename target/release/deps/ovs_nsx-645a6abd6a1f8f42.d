/root/repo/target/release/deps/ovs_nsx-645a6abd6a1f8f42.d: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

/root/repo/target/release/deps/libovs_nsx-645a6abd6a1f8f42.rlib: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

/root/repo/target/release/deps/libovs_nsx-645a6abd6a1f8f42.rmeta: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

crates/nsx/src/lib.rs:
crates/nsx/src/ruleset.rs:
crates/nsx/src/topology.rs:
