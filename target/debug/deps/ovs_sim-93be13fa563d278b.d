/root/repo/target/debug/deps/ovs_sim-93be13fa563d278b.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/costs.rs crates/sim/src/cpu.rs crates/sim/src/ctx.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/libovs_sim-93be13fa563d278b.rlib: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/costs.rs crates/sim/src/cpu.rs crates/sim/src/ctx.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/libovs_sim-93be13fa563d278b.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/costs.rs crates/sim/src/cpu.rs crates/sim/src/ctx.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/costs.rs:
crates/sim/src/cpu.rs:
crates/sim/src/ctx.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
