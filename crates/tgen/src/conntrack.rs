//! Connection-churn and CT-exhaustion scenarios for the `ovs-ct`
//! subsystem.
//!
//! Two rigs, following the NFV benchmarking split of Zhang et al.
//! (PAPERS.md): a *subsystem* soak that drives the sharded table
//! directly at million-connection churn (mice/elephant lifetimes,
//! NAT-heavy mixes, zone limits, rotating sweeps), and a *pipeline*
//! reproduction of the Tuple Space Explosion attack shifted from the
//! classifier (PR 2) to connection-table exhaustion: a SYN flood of
//! unique 5-tuples against a bounded CT table fronting a stateful
//! firewall, measured undefended (naive oldest-first eviction) vs
//! defended (early-drop of NEW conns under pressure + per-zone
//! limits). Both rigs enforce the PR 4 invariant: offered ==
//! delivered + Σ(named drops), zero unaccounted loss.

use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_core::ct::{ConnKey, CtAction, CtConfig, CtTable, NatSpec};
use ovs_core::dpif::{DpifNetdev, PortType};
use ovs_core::ofproto::{OfAction, OfRule};
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_packet::dp_packet::ct_state;
use ovs_packet::flow::{fields, FlowKey, FlowMask};
use ovs_packet::tcp::flags;
use ovs_packet::{builder, MacAddr};
use ovs_sim::SimRng;

// ----------------------------------------------------------------------
// Million-connection churn soak (subsystem-level)
// ----------------------------------------------------------------------

/// Outcome of [`run_conn_churn`]. All counts are exact; `unaccounted`
/// must be zero (commit attempts either created a connection or were
/// refused under a named reason).
#[derive(Debug)]
pub struct ConnChurnReport {
    /// Long-lived connections kept alive across every round.
    pub elephants: usize,
    /// Short-lived connections committed per round.
    pub mice_per_round: usize,
    /// Churn rounds after the ramp.
    pub rounds: usize,
    /// Peak concurrent tracked connections.
    pub peak_conns: usize,
    /// Minimum concurrent connections over the steady rounds — the
    /// "sustained" number the CI gate checks against 1M.
    pub sustained_conns: usize,
    /// Commit attempts offered to the table.
    pub offered_commits: u64,
    /// Connections actually created.
    pub commits: u64,
    /// NEW→ESTABLISHED transitions.
    pub established: u64,
    /// Commits refused by zone limits / full table / invalid state.
    pub refused_zone: u64,
    pub refused_full: u64,
    pub refused_invalid: u64,
    /// Connections reclaimed by expiry (lazy + swept) and eviction.
    pub expired: u64,
    pub evicted: u64,
    /// NATed connections created.
    pub nat_commits: u64,
    /// offered - commits - Σ(refusals); the gate requires 0.
    pub unaccounted: i64,
    /// Modeled connection-setup rate: commits over the virtual time the
    /// cost model charges for every table operation.
    pub setup_rate_cps: f64,
    /// Total table operations (cost-model unit).
    pub ct_ops: u64,
    /// Internal invariant: shard sums == zone sums == total.
    pub accounting_ok: bool,
}

fn churn_key(id: u64, zone: u16) -> ConnKey {
    ConnKey {
        zone,
        src_ip: [10, (id >> 16) as u8, (id >> 8) as u8, id as u8],
        dst_ip: [192, 168, 0, 1],
        src_port: (1024 + (id % 60_000)) as u16,
        dst_port: 443,
        proto: 6,
    }
}

/// Drive the sharded table to >1M concurrent connections and hold it
/// there under churn: a stable population of elephants refreshed every
/// round, plus waves of mice that idle out two rounds later, ~30%
/// carrying SNAT, with a capped zone and a trickle of committing RSTs
/// exercising the named refusals.
pub fn run_conn_churn() -> ConnChurnReport {
    const ELEPHANTS: usize = 350_000;
    const MICE_PER_ROUND: usize = 350_000;
    const ROUNDS: usize = 6;
    const NAT_PCT: u64 = 30;
    const ZONES: u16 = 8;
    /// The capped zone: small enough that its wave always overflows it.
    const CAPPED_ZONE: u16 = 9;
    const CAPPED_LIMIT: usize = 32_768;
    const CAPPED_WAVE: usize = 40_000;
    const RST_WAVE: usize = 1_000;
    // Short enough that a mouse (120 s TCP idle timeout) stays tracked
    // across two full rounds — three generations of mice coexist with
    // the elephants, which is what holds occupancy above a million.
    const ROUND_NS: u64 = 50_000_000_000;

    let mut ct = CtTable::with_config(CtConfig {
        shards: 256,
        max_conns: 1 << 21,
        ..CtConfig::default()
    });
    ct.set_zone_limit(CAPPED_ZONE, CAPPED_LIMIT);
    let mut rng = SimRng::new(7);
    let mut now: u64 = 0;
    let mut next_id: u64 = ELEPHANTS as u64;
    let mut offered: u64 = 0;
    let mut nat_count: u64 = 0;
    let mut peak = 0usize;
    let mut sustained = usize::MAX;

    // One full TCP-style setup: SYN commit + SYN-ACK reply. The PMD id
    // is derived from the key so affinity stats see a sticky mapping.
    fn establish(ct: &mut CtTable, k: ConnKey, nat: Option<NatSpec>, now: u64) {
        let pmd = (k.hash() >> 60) as usize & 3;
        ct.process_full(
            k,
            CtAction {
                zone: k.zone,
                commit: true,
                mark: None,
                nat,
            },
            Some(flags::SYN),
            Some(pmd),
            now,
        );
        ct.process_full(
            k.reversed(),
            CtAction::track(k.zone),
            Some(flags::SYN | flags::ACK),
            Some(pmd),
            now + 1_000,
        );
    }

    // Ramp: the elephant population, established once, refreshed below.
    for id in 0..ELEPHANTS as u64 {
        let zone = 1 + (id % ZONES as u64) as u16;
        let nat = (rng.below(100) < NAT_PCT).then(|| NatSpec::Snat {
            ip: [203, 0, 113, (id % 250) as u8 + 1],
            port: Some((1_024 + (id % 60_000)) as u16),
        });
        nat_count += nat.is_some() as u64;
        establish(&mut ct, churn_key(id, zone), nat, now);
        offered += 1;
    }

    for round in 0..ROUNDS {
        // A wave of mice: established now, idle from then on, reclaimed
        // by the rotating sweeps two rounds later.
        for _ in 0..MICE_PER_ROUND {
            let id = next_id;
            next_id += 1;
            let zone = 1 + (id % ZONES as u64) as u16;
            let nat = (rng.below(100) < NAT_PCT).then(|| NatSpec::Snat {
                ip: [203, 0, 113, (id % 250) as u8 + 1],
                port: Some((1_024 + (id % 60_000)) as u16),
            });
            nat_count += nat.is_some() as u64;
            establish(&mut ct, churn_key(id, zone), nat, now);
            offered += 1;
        }
        // The capped zone's wave: overflows its limit every round, so
        // refusals are exercised (and named) continuously.
        for _ in 0..CAPPED_WAVE {
            let id = next_id;
            next_id += 1;
            let mut k = churn_key(id, CAPPED_ZONE);
            k.proto = 17; // UDP mice
            ct.process_full(k, CtAction::commit(CAPPED_ZONE), None, Some(0), now);
            offered += 1;
        }
        // Committing RSTs can never create state: named invalid drops.
        for _ in 0..RST_WAVE {
            let id = next_id;
            next_id += 1;
            let zone = 1 + (id % ZONES as u64) as u16;
            ct.process_full(
                churn_key(id, zone),
                CtAction::commit(zone),
                Some(flags::RST),
                Some(0),
                now,
            );
            offered += 1;
        }
        // Keep the elephants alive.
        for id in 0..ELEPHANTS as u64 {
            let zone = 1 + (id % ZONES as u64) as u16;
            let k = churn_key(id, zone);
            let pmd = (k.hash() >> 60) as usize & 3;
            ct.process_full(
                k,
                CtAction::track(zone),
                Some(flags::ACK),
                Some(pmd),
                now + 2_000,
            );
        }
        peak = peak.max(ct.len());
        // Half the shards swept per round, riding the (simulated)
        // revalidator cadence.
        now += ROUND_NS;
        ct.sweep_slice(now, ct.n_shards() / 2);
        if round >= ROUNDS / 2 {
            sustained = sustained.min(ct.len());
        }
    }

    let s = ct.stats;
    let refused = s.zone_limit_drops + s.full_drops + s.invalid_drops;
    let ct_ns = ovs_sim::costs::CostModel::default().userspace_ct_ns;
    let virtual_s = s.ops as f64 * ct_ns / 1e9;
    ConnChurnReport {
        elephants: ELEPHANTS,
        mice_per_round: MICE_PER_ROUND,
        rounds: ROUNDS,
        peak_conns: peak,
        sustained_conns: sustained,
        offered_commits: offered,
        commits: s.commits,
        established: s.established,
        refused_zone: s.zone_limit_drops,
        refused_full: s.full_drops,
        refused_invalid: s.invalid_drops,
        expired: s.expired,
        evicted: s.evictions,
        nat_commits: nat_count,
        unaccounted: offered as i64 - s.commits as i64 - refused as i64,
        setup_rate_cps: if virtual_s > 0.0 {
            s.commits as f64 / virtual_s
        } else {
            0.0
        },
        ct_ops: s.ops,
        accounting_ok: ct.accounting_ok(),
    }
}

// ----------------------------------------------------------------------
// CT-exhaustion TSE attack through the real pipeline
// ----------------------------------------------------------------------

/// Outcome of one [`run_ct_tse`] run (attack against one policy).
#[derive(Debug)]
pub struct CtTseReport {
    pub defended: bool,
    /// Legitimate data packets offered / delivered to the server.
    pub legit_offered: u64,
    pub legit_delivered: u64,
    /// Attack SYNs offered / reaching the server.
    pub attack_offered: u64,
    pub attack_delivered: u64,
    /// Handshake packets (SYN, SYN-ACK) offered while establishing.
    pub setup_offered: u64,
    /// Every named CT refusal the datapath counted.
    pub ct_limit_drops: u64,
    pub ct_full_drops: u64,
    pub ct_invalid_drops: u64,
    /// Non-CT drops (firewall default-deny on invalid state bits).
    pub other_drops: u64,
    /// offered − delivered − Σ(drops); the gate requires 0.
    pub unaccounted: i64,
    /// Legitimate ESTABLISHED connections still tracked after the storm.
    pub established_surviving: usize,
    /// CT occupancy after the storm.
    pub ct_occupancy: usize,
    /// Modeled legitimate goodput over the measured window.
    pub legit_mpps: f64,
}

const CLIENT_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0x11]);
const SERVER_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0x22]);
const ATTACK_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0x33]);
const SWITCH_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0x01]);

const LEGIT_CONNS: usize = 384;
const STORM_ROUNDS: usize = 24;
const SYNS_PER_ROUND: usize = 512;
const TABLE_MAX: usize = 2_048;
const ZONE_LIMIT: usize = 1_536;
const ATTACK_ZONE_LIMIT: usize = 1_024;

fn legit_ip(i: usize) -> [u8; 4] {
    [10, 0, (i >> 8) as u8, i as u8]
}

fn attack_ip(i: usize) -> [u8; 4] {
    [203, 0, (i >> 8) as u8, i as u8]
}

fn tcp_frame(
    src_mac: MacAddr,
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    sport: u16,
    dport: u16,
    fl: u8,
) -> Vec<u8> {
    builder::tcp_ipv4(
        src_mac, SWITCH_MAC, src_ip, dst_ip, sport, dport, 1, 1, fl, b"x",
    )
}

/// A stateful firewall over the CT table: ingress traffic is tracked,
/// ESTABLISHED flows pass, NEW flows are committed (SYN-gated by strict
/// tracking), everything else is default-denied. The attack is a SYN
/// flood of unique 5-tuples sized several times the table bound;
/// between flood bursts the established legitimate connections keep
/// sending data. Undefended, eviction is oldest-first and the flood
/// cannibalizes legitimate state; defended, early-drop recycles the
/// attacker's own embryonic connections and per-zone limits cap the
/// flood's footprint.
pub fn run_ct_tse(defended: bool) -> CtTseReport {
    let mut k = Kernel::new(4);
    let core = 1usize;
    let eth0 = k.add_device(NetDevice::new(
        "eth0",
        SWITCH_MAC,
        DeviceKind::Phys { link_gbps: 25.0 },
        1,
    ));
    let eth1 = k.add_device(NetDevice::new(
        "eth1",
        MacAddr::new(2, 0, 0, 0, 0, 2),
        DeviceKind::Phys { link_gbps: 25.0 },
        1,
    ));
    let eth2 = k.add_device(NetDevice::new(
        "eth2",
        MacAddr::new(2, 0, 0, 0, 0, 3),
        DeviceKind::Phys { link_gbps: 25.0 },
        1,
    ));
    let mut dp = DpifNetdev::new();
    dp.ct = CtTable::with_config(CtConfig {
        shards: 64,
        max_conns: TABLE_MAX,
        pressure_pct: 90,
        early_drop: defended,
        tcp_loose: false,
    });
    if defended {
        dp.ct.set_zone_limit(1, ZONE_LIMIT);
        // The untrusted zone gets a much tighter budget: the flood can
        // never hold more than half the table, whatever the pressure.
        dp.ct.set_zone_limit(2, ATTACK_ZONE_LIMIT);
    }
    let p_client = dp.add_port(
        "eth0",
        PortType::Afxdp(AfxdpPort::open(&mut k, eth0, 256, OptLevel::O5).unwrap()),
    );
    let p_server = dp.add_port(
        "eth1",
        PortType::Afxdp(AfxdpPort::open(&mut k, eth1, 256, OptLevel::O5).unwrap()),
    );
    let p_attack = dp.add_port(
        "eth2",
        PortType::Afxdp(AfxdpPort::open(&mut k, eth2, 256, OptLevel::O5).unwrap()),
    );

    // Table 0: track by ingress. Client and attacker land in their own
    // zones and resume in the verdict table; server replies resume in
    // the reply table.
    let add_ingress = |dp: &mut DpifNetdev, port, zone: u16, resume| {
        let mut key = FlowKey::default();
        key.set_in_port(port);
        key.set_eth_type(ovs_packet::EtherType::Ipv4);
        dp.ofproto.add_rule(OfRule {
            table: 0,
            priority: 100,
            key,
            mask: FlowMask::of_fields(&[&fields::IN_PORT, &fields::ETH_TYPE]),
            actions: vec![OfAction::Ct {
                zone,
                commit: false,
                resume_table: resume,
                nat: None,
            }],
            cookie: zone as u64,
        });
    };
    add_ingress(&mut dp, p_client, 1, 1);
    add_ingress(&mut dp, p_attack, 2, 1);
    add_ingress(&mut dp, p_server, 1, 3);

    // Table 1 (ingress verdict): established passes, new commits in the
    // packet's ct zone, anything else is default-denied.
    let ct_key = |bits: u8| {
        let mut key = FlowKey::default();
        key.set_ct_state(bits);
        key
    };
    let ct_mask = FlowMask::of_fields(&[&fields::CT_STATE]);
    dp.ofproto.add_rule(OfRule {
        table: 1,
        priority: 100,
        key: ct_key(ct_state::TRACKED | ct_state::ESTABLISHED),
        mask: ct_mask,
        actions: vec![OfAction::Output(p_server)],
        cookie: 10,
    });
    // NEW from the client zone commits in zone 1; from the attacker's
    // VLAN in zone 2. in_port survives recirculation, so key on it.
    let commit_rule = |dp: &mut DpifNetdev, port, zone: u16, cookie| {
        let mut key = ct_key(ct_state::TRACKED | ct_state::NEW);
        key.set_in_port(port);
        let mask = FlowMask::of_fields(&[&fields::IN_PORT, &fields::CT_STATE]);
        dp.ofproto.add_rule(OfRule {
            table: 1,
            priority: 90,
            key,
            mask,
            actions: vec![OfAction::Ct {
                zone,
                commit: true,
                resume_table: 2,
                nat: None,
            }],
            cookie,
        });
    };
    commit_rule(&mut dp, p_client, 1, 11);
    commit_rule(&mut dp, p_attack, 2, 12);
    dp.ofproto.add_rule(OfRule {
        table: 1,
        priority: 0,
        key: FlowKey::default(),
        mask: FlowMask::EMPTY,
        actions: vec![OfAction::Drop],
        cookie: 13,
    });
    // Table 2: committed NEW traffic forwards to the server.
    dp.ofproto.add_rule(OfRule {
        table: 2,
        priority: 0,
        key: FlowKey::default(),
        mask: FlowMask::EMPTY,
        actions: vec![OfAction::Output(p_server)],
        cookie: 20,
    });
    // Table 3: server replies pass only for established connections.
    dp.ofproto.add_rule(OfRule {
        table: 3,
        priority: 100,
        key: ct_key(ct_state::TRACKED | ct_state::ESTABLISHED | ct_state::REPLY),
        mask: FlowMask::of_fields(&[&fields::CT_STATE]),
        actions: vec![OfAction::Output(p_client)],
        cookie: 30,
    });
    dp.ofproto.add_rule(OfRule {
        table: 3,
        priority: 0,
        key: FlowKey::default(),
        mask: FlowMask::EMPTY,
        actions: vec![OfAction::Drop],
        cookie: 31,
    });

    let mut offered: u64 = 0;
    let mut setup_offered: u64 = 0;
    let mut legit_offered: u64 = 0;
    let mut attack_offered: u64 = 0;
    let mut legit_delivered: u64 = 0;
    let mut attack_delivered: u64 = 0;
    let mut reply_delivered: u64 = 0;

    // Drain both egress wires, classifying by source prefix (legit
    // sources are 10/8, attack sources 203/8).
    let drain = |k: &mut Kernel| {
        let mut out = (0u64, 0u64, 0u64);
        while let Some(f) = k.dev_mut(eth1).tx_wire.pop_front() {
            if f.len() > 30 && f[26] == 10 {
                out.0 += 1;
            } else {
                out.1 += 1;
            }
        }
        while k.dev_mut(eth0).tx_wire.pop_front().is_some() {
            out.2 += 1;
        }
        out
    };
    // Push at most one rx burst (32 frames) per poll so the 256-slot
    // ring never backlogs — every offered frame is polled through.
    let inject = |k: &mut Kernel, dp: &mut DpifNetdev, dev, frames: Vec<Vec<u8>>| {
        for chunk in frames.chunks(32) {
            for f in chunk {
                k.receive(dev, 0, f.clone());
            }
            let port = if dev == eth0 {
                p_client
            } else if dev == eth1 {
                p_server
            } else {
                p_attack
            };
            dp.pmd_poll(k, port, 0, core);
        }
    };

    // --- Phase 1: establish the legitimate connections. ---------------
    for i in 0..LEGIT_CONNS {
        let syn = tcp_frame(
            CLIENT_MAC,
            legit_ip(i),
            [192, 168, 1, 1],
            10_000,
            443,
            flags::SYN,
        );
        inject(&mut k, &mut dp, eth0, vec![syn]);
        setup_offered += 1;
        offered += 1;
        let synack = tcp_frame(
            SERVER_MAC,
            [192, 168, 1, 1],
            legit_ip(i),
            443,
            10_000,
            flags::SYN | flags::ACK,
        );
        inject(&mut k, &mut dp, eth1, vec![synack]);
        setup_offered += 1;
        offered += 1;
    }
    let (d_setup_legit, _, d_setup_reply) = drain(&mut k);
    assert_eq!(
        d_setup_legit as usize, LEGIT_CONNS,
        "every legitimate SYN must reach the server"
    );
    reply_delivered += d_setup_reply;

    // --- Phase 2: the SYN-flood storm, data flowing in between. -------
    let t0 = k.sim.cpus.core(core).total_ns();
    let mut syn_id = 0usize;
    for round in 0..STORM_ROUNDS {
        let syns: Vec<Vec<u8>> = (0..SYNS_PER_ROUND)
            .map(|_| {
                let f = tcp_frame(
                    ATTACK_MAC,
                    attack_ip(syn_id),
                    [192, 168, 1, 1],
                    (20_000 + (syn_id % 40_000)) as u16,
                    443,
                    flags::SYN,
                );
                syn_id += 1;
                f
            })
            .collect();
        attack_offered += syns.len() as u64;
        offered += syns.len() as u64;
        inject(&mut k, &mut dp, eth2, syns);

        let data: Vec<Vec<u8>> = (0..LEGIT_CONNS)
            .map(|i| {
                tcp_frame(
                    CLIENT_MAC,
                    legit_ip(i),
                    [192, 168, 1, 1],
                    10_000,
                    443,
                    flags::ACK | flags::PSH,
                )
            })
            .collect();
        legit_offered += data.len() as u64;
        offered += data.len() as u64;
        inject(&mut k, &mut dp, eth0, data);

        let (dl, da, dr) = drain(&mut k);
        legit_delivered += dl;
        attack_delivered += da;
        reply_delivered += dr;
        // The revalidator rides along every few rounds: megaflow sweep
        // plus the rotating CT shard-slice sweep.
        if round % 4 == 3 {
            k.sim.clock.advance(50_000_000);
            dp.revalidate(&mut k, core);
        }
    }
    let dt_ns = k.sim.cpus.core(core).total_ns() - t0;

    // Legit sources live in 10/8; one dump of the client zone tells us
    // how many of their connections survived the storm established.
    let zone_dump = dp.ct.dump(Some(1), k.sim.clock.now_ns());
    let surviving = zone_dump
        .lines()
        .filter(|l| l.contains("src=10.") && l.contains("state=ESTABLISHED"))
        .count();

    let s = dp.stats;
    let delivered = d_setup_legit + reply_delivered + legit_delivered + attack_delivered;
    let ct_drops = s.ct_limit_drops + s.ct_full_drops + s.ct_invalid_drops;
    let other_drops = s.dropped - ct_drops;
    CtTseReport {
        defended,
        legit_offered,
        legit_delivered,
        attack_offered,
        attack_delivered,
        setup_offered,
        ct_limit_drops: s.ct_limit_drops,
        ct_full_drops: s.ct_full_drops,
        ct_invalid_drops: s.ct_invalid_drops,
        other_drops,
        unaccounted: offered as i64 - delivered as i64 - s.dropped as i64,
        established_surviving: surviving,
        ct_occupancy: dp.ct.len(),
        legit_mpps: if dt_ns > 0.0 {
            legit_delivered as f64 * 1e3 / dt_ns
        } else {
            0.0
        },
    }
}
