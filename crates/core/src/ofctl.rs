//! `ovs-ofctl add-flow` syntax: parse textual flow specifications into
//! [`OfRule`]s.
//!
//! NSX programs OVS through OpenFlow, but humans (and most test rigs)
//! speak the `ovs-ofctl` text dialect. This module implements the subset
//! the reproduction needs:
//!
//! ```text
//! table=0, priority=100, in_port=2, ip, nw_dst=10.0.0.0/24, actions=output:3
//! table=1, ct_state=+new, udp, tp_dst=53, actions=ct(commit,zone=5,table=2)
//! table=2, dl_dst=52:01:00:00:00:01, actions=set_tunnel:5001->172.16.0.2,output:1
//! ```

use crate::dpif::PortNo;
use crate::ofproto::{OfAction, OfRule};
use ovs_kernel::conntrack::NatSpec;
use ovs_packet::dp_packet::ct_state;
use ovs_packet::flow::{fields, FlowKey, FlowMask, WORDS};
use ovs_packet::{EtherType, MacAddr};

/// A parse failure, with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub token: String,
    pub reason: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot parse '{}': {}", self.token, self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err(token: &str, reason: &'static str) -> ParseError {
    ParseError {
        token: token.to_string(),
        reason,
    }
}

fn parse_ip(s: &str) -> Result<[u8; 4], ParseError> {
    let parts: Vec<&str> = s.split('.').collect();
    if parts.len() != 4 {
        return Err(err(s, "expected a.b.c.d"));
    }
    let mut ip = [0u8; 4];
    for (i, p) in parts.iter().enumerate() {
        ip[i] = p.parse().map_err(|_| err(s, "bad IPv4 octet"))?;
    }
    Ok(ip)
}

fn parse_ip_prefix(s: &str) -> Result<([u8; 4], u8), ParseError> {
    match s.split_once('/') {
        Some((ip, len)) => Ok((
            parse_ip(ip)?,
            len.parse().map_err(|_| err(s, "bad prefix length"))?,
        )),
        None => Ok((parse_ip(s)?, 32)),
    }
}

fn parse_mac(s: &str) -> Result<MacAddr, ParseError> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 6 {
        return Err(err(s, "expected xx:xx:xx:xx:xx:xx"));
    }
    let mut m = [0u8; 6];
    for (i, p) in parts.iter().enumerate() {
        m[i] = u8::from_str_radix(p, 16).map_err(|_| err(s, "bad MAC byte"))?;
    }
    Ok(MacAddr(m))
}

fn parse_u<T: std::str::FromStr>(s: &str) -> Result<T, ParseError> {
    s.parse().map_err(|_| err(s, "bad number"))
}

/// ct_state bit-match syntax: `+new`, `+est+trk`, `-new`, ...
/// Returns (key bits, mask bits).
fn parse_ct_state(s: &str) -> Result<(u8, u8), ParseError> {
    let mut key = 0u8;
    let mut mask = 0u8;
    let mut rest = s;
    while !rest.is_empty() {
        let (sign, body) = rest.split_at(1);
        let positive = match sign {
            "+" => true,
            "-" => false,
            _ => return Err(err(s, "ct_state terms start with + or -")),
        };
        let end = body.find(['+', '-']).unwrap_or(body.len());
        let (name, tail) = body.split_at(end);
        let bit = match name {
            "new" => ct_state::NEW,
            "est" => ct_state::ESTABLISHED,
            "rel" => ct_state::RELATED,
            "rpl" => ct_state::REPLY,
            "trk" => ct_state::TRACKED,
            "inv" => ct_state::INVALID,
            _ => return Err(err(name, "unknown ct_state flag")),
        };
        mask |= bit;
        if positive {
            key |= bit;
        }
        rest = tail;
    }
    Ok((key, mask))
}

/// A mask matching only the given `ct_state` bits.
fn ct_state_bit_mask(bits: u8) -> FlowMask {
    let mut w = [0u64; WORDS];
    w[10] = u64::from(bits) << 56;
    FlowMask::from_words(w)
}

fn parse_ct_action(body: &str) -> Result<OfAction, ParseError> {
    let mut zone = 0u16;
    let mut commit = false;
    let mut table = 0u8;
    let mut nat = None;
    // Split on commas OUTSIDE nested parens (for nat(...)).
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut parts = Vec::new();
    for (i, ch) in body.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    for p in parts.iter().map(|p| p.trim()).filter(|p| !p.is_empty()) {
        if p == "commit" {
            commit = true;
        } else if let Some(v) = p.strip_prefix("zone=") {
            zone = parse_u(v)?;
        } else if let Some(v) = p.strip_prefix("table=") {
            table = parse_u(v)?;
        } else if let Some(v) = p.strip_prefix("nat(").and_then(|v| v.strip_suffix(')')) {
            // nat(dst=ip:port) or nat(src=ip:port) or nat(src=ip)
            let (kind, target) = v.split_once('=').ok_or(err(v, "nat needs src= or dst="))?;
            let (ip_s, port) = match target.rsplit_once(':') {
                Some((ip, port)) => (ip, Some(parse_u::<u16>(port)?)),
                None => (target, None),
            };
            let ip = parse_ip(ip_s)?;
            nat = Some(match kind {
                "src" => NatSpec::Snat { ip, port },
                "dst" => NatSpec::Dnat { ip, port },
                _ => return Err(err(kind, "nat direction must be src or dst")),
            });
        } else {
            return Err(err(p, "unknown ct() argument"));
        }
    }
    Ok(OfAction::Ct {
        zone,
        commit,
        resume_table: table,
        nat,
    })
}

fn parse_action(tok: &str) -> Result<OfAction, ParseError> {
    let tok = tok.trim();
    if let Some(p) = tok.strip_prefix("output:") {
        return Ok(OfAction::Output(parse_u::<PortNo>(p)?));
    }
    if let Some(t) = tok.strip_prefix("goto_table:") {
        return Ok(OfAction::Goto(parse_u(t)?));
    }
    if let Some(body) = tok.strip_prefix("ct(").and_then(|b| b.strip_suffix(')')) {
        return parse_ct_action(body);
    }
    if let Some(v) = tok.strip_prefix("set_tunnel:") {
        // set_tunnel:VNI->a.b.c.d
        let (id, dst) = v
            .split_once("->")
            .ok_or(err(v, "expected VNI->remote_ip"))?;
        return Ok(OfAction::SetTunnel {
            id: parse_u(id)?,
            dst: parse_ip(dst)?,
        });
    }
    if let Some(v) = tok.strip_prefix("write_metadata:") {
        return Ok(OfAction::SetMetadata(parse_u(v)?));
    }
    if let Some(m) = tok.strip_prefix("mod_dl_dst:") {
        return Ok(OfAction::SetEthDst(parse_mac(m)?));
    }
    if let Some(m) = tok.strip_prefix("mod_dl_src:") {
        return Ok(OfAction::SetEthSrc(parse_mac(m)?));
    }
    if let Some(v) = tok.strip_prefix("push_vlan:") {
        return Ok(OfAction::PushVlan(parse_u(v)?));
    }
    if tok == "pop_vlan" || tok == "strip_vlan" {
        return Ok(OfAction::PopVlan);
    }
    if let Some(v) = tok.strip_prefix("meter:") {
        return Ok(OfAction::Meter(parse_u(v)?));
    }
    if let Some(v) = tok.strip_prefix("nf_chain:") {
        return Ok(OfAction::NfChain(parse_u(v)?));
    }
    if tok == "drop" {
        return Ok(OfAction::Drop);
    }
    Err(err(tok, "unknown action"))
}

/// Parse one `ovs-ofctl add-flow` style line into an [`OfRule`].
pub fn parse_flow(spec: &str) -> Result<OfRule, ParseError> {
    let mut rule = OfRule {
        table: 0,
        priority: 0,
        key: FlowKey::default(),
        mask: FlowMask::EMPTY,
        actions: Vec::new(),
        cookie: 0,
    };
    // Split match part and actions part.
    let (matches, actions) = match spec.find("actions=") {
        Some(i) => (&spec[..i], &spec[i + "actions=".len()..]),
        None => return Err(err(spec, "missing actions=")),
    };

    for tok in matches
        .split(',')
        .map(|t| t.trim())
        .filter(|t| !t.is_empty())
    {
        if let Some(v) = tok.strip_prefix("table=") {
            rule.table = parse_u(v)?;
        } else if let Some(v) = tok.strip_prefix("priority=") {
            rule.priority = parse_u(v)?;
        } else if let Some(v) = tok.strip_prefix("cookie=") {
            rule.cookie = parse_u(v)?;
        } else if let Some(v) = tok.strip_prefix("in_port=") {
            rule.key.set_in_port(parse_u(v)?);
            rule.mask.set_field(&fields::IN_PORT);
        } else if tok == "ip" {
            rule.key.set_eth_type(EtherType::Ipv4);
            rule.mask.set_field(&fields::ETH_TYPE);
        } else if tok == "ipv6" {
            rule.key.set_eth_type(EtherType::Ipv6);
            rule.mask.set_field(&fields::ETH_TYPE);
        } else if tok == "arp" {
            rule.key.set_eth_type(EtherType::Arp);
            rule.mask.set_field(&fields::ETH_TYPE);
        } else if tok == "udp" || tok == "tcp" || tok == "icmp" {
            rule.key.set_eth_type(EtherType::Ipv4);
            rule.mask.set_field(&fields::ETH_TYPE);
            rule.key.set_nw_proto(match tok {
                "udp" => 17,
                "tcp" => 6,
                _ => 1,
            });
            rule.mask.set_field(&fields::NW_PROTO);
        } else if let Some(v) = tok.strip_prefix("nw_src=") {
            let (ip, len) = parse_ip_prefix(v)?;
            rule.key.set_nw_src_v4(ip);
            rule.mask.set_nw_src_v4_prefix(len);
        } else if let Some(v) = tok.strip_prefix("nw_dst=") {
            let (ip, len) = parse_ip_prefix(v)?;
            rule.key.set_nw_dst_v4(ip);
            rule.mask.set_nw_dst_v4_prefix(len);
        } else if let Some(v) = tok.strip_prefix("nw_proto=") {
            rule.key.set_nw_proto(parse_u(v)?);
            rule.mask.set_field(&fields::NW_PROTO);
        } else if let Some(v) = tok.strip_prefix("tp_src=") {
            rule.key.set_tp_src(parse_u(v)?);
            rule.mask.set_field(&fields::TP_SRC);
        } else if let Some(v) = tok.strip_prefix("tp_dst=") {
            rule.key.set_tp_dst(parse_u(v)?);
            rule.mask.set_field(&fields::TP_DST);
        } else if let Some(v) = tok.strip_prefix("dl_src=") {
            rule.key.set_dl_src(parse_mac(v)?);
            rule.mask.set_field(&fields::DL_SRC);
        } else if let Some(v) = tok.strip_prefix("dl_dst=") {
            rule.key.set_dl_dst(parse_mac(v)?);
            rule.mask.set_field(&fields::DL_DST);
        } else if let Some(v) = tok.strip_prefix("vlan_vid=") {
            rule.key.set_vlan_tci(parse_u::<u16>(v)? | 0x1000);
            rule.mask.set_field(&fields::VLAN_VID);
            // Presence bit.
            let mut w = [0u64; WORDS];
            w[2] = 0x1000;
            rule.mask.unite(&FlowMask::from_words(w));
        } else if let Some(v) = tok.strip_prefix("tun_id=") {
            rule.key.set_tun_id(parse_u(v)?);
            rule.mask.set_field(&fields::TUN_ID);
        } else if let Some(v) = tok.strip_prefix("metadata=") {
            rule.key.set_metadata(parse_u(v)?);
            rule.mask.set_field(&fields::METADATA);
        } else if let Some(v) = tok.strip_prefix("ct_zone=") {
            rule.key.set_ct_zone(parse_u(v)?);
            rule.mask.set_field(&fields::CT_ZONE);
        } else if let Some(v) = tok.strip_prefix("ct_state=") {
            let (bits, mask) = parse_ct_state(v)?;
            rule.key.set_ct_state(bits);
            rule.mask.unite(&ct_state_bit_mask(mask));
        } else {
            return Err(err(tok, "unknown match field"));
        }
    }

    // Actions: split on commas outside parens.
    let mut depth = 0usize;
    let mut start = 0usize;
    let bytes: Vec<char> = actions.chars().collect();
    let mut toks: Vec<String> = Vec::new();
    for (i, ch) in bytes.iter().enumerate() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                toks.push(bytes[start..i].iter().collect());
                start = i + 1;
            }
            _ => {}
        }
    }
    toks.push(bytes[start..].iter().collect());
    for t in toks.iter().map(|t| t.trim()).filter(|t| !t.is_empty()) {
        rule.actions.push(parse_action(t)?);
    }
    Ok(rule)
}

/// Parse a multi-line flow table (blank lines and `#` comments ignored).
pub fn parse_flows(text: &str) -> Result<Vec<OfRule>, ParseError> {
    text.lines()
        .map(|l| l.trim())
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(parse_flow)
        .collect()
}

/// Render one rule's match in `ovs-ofctl` dialect (the fields this
/// parser understands).
fn render_match(rule: &OfRule) -> String {
    let has = |f: &ovs_packet::flow::Field| FlowMask::of_fields(&[f]).subset_of(&rule.mask);
    let mut parts: Vec<String> = Vec::new();
    if has(&fields::IN_PORT) {
        parts.push(format!("in_port={}", rule.key.in_port()));
    }
    if has(&fields::ETH_TYPE) {
        match rule.key.eth_type_raw() {
            0x0800 => parts.push("ip".to_string()),
            0x86dd => parts.push("ipv6".to_string()),
            0x0806 => parts.push("arp".to_string()),
            t => parts.push(format!("eth_type=0x{t:04x}")),
        }
    }
    if has(&fields::NW_PROTO) {
        parts.push(format!("nw_proto={}", rule.key.nw_proto()));
    }
    if has(&fields::DL_SRC) {
        parts.push(format!("dl_src={}", rule.key.dl_src()));
    }
    if has(&fields::DL_DST) {
        parts.push(format!("dl_dst={}", rule.key.dl_dst()));
    }
    let ip4 = |a: [u8; 4]| format!("{}.{}.{}.{}", a[0], a[1], a[2], a[3]);
    if rule.key.nw_src_v4() != [0, 0, 0, 0] {
        parts.push(format!("nw_src={}", ip4(rule.key.nw_src_v4())));
    }
    if rule.key.nw_dst_v4() != [0, 0, 0, 0] {
        parts.push(format!("nw_dst={}", ip4(rule.key.nw_dst_v4())));
    }
    if has(&fields::TP_SRC) {
        parts.push(format!("tp_src={}", rule.key.tp_src()));
    }
    if has(&fields::TP_DST) {
        parts.push(format!("tp_dst={}", rule.key.tp_dst()));
    }
    if has(&fields::TUN_ID) {
        parts.push(format!("tun_id={}", rule.key.tun_id()));
    }
    if has(&fields::METADATA) {
        parts.push(format!("metadata={}", rule.key.metadata()));
    }
    if rule.key.ct_state() != 0 {
        parts.push(format!("ct_state=0x{:02x}", rule.key.ct_state()));
    }
    parts.join(",")
}

/// `ovs-ofctl dump-flows` equivalent: one line per OpenFlow rule with
/// its **live** `n_packets`/`n_bytes` counters — upcalled packets are
/// credited at translation time and cache-forwarded packets arrive via
/// revalidator stats pushback. Sorted by (table, -priority, match) so
/// the output is deterministic.
pub fn dump_flows(of: &crate::ofproto::Ofproto) -> String {
    use std::fmt::Write as _;
    let mut lines: Vec<(u8, i32, String)> = of
        .iter_rules()
        .map(|entry| {
            let r = &entry.rule;
            let m = render_match(r);
            let sep = if m.is_empty() { "" } else { ", " };
            let line = format!(
                " cookie=0x{:x}, table={}, n_packets={}, n_bytes={}, priority={}{sep}{m} actions={:?}",
                r.cookie,
                r.table,
                entry.n_packets.get(),
                entry.n_bytes.get(),
                r.priority,
                r.actions
            );
            (r.table, -r.priority, line)
        })
        .collect();
    lines.sort();
    let mut out = String::new();
    for (_, _, l) in lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_forward_rule() {
        let r = parse_flow("table=0, priority=100, in_port=2, actions=output:3").unwrap();
        assert_eq!(r.table, 0);
        assert_eq!(r.priority, 100);
        assert_eq!(r.key.in_port(), 2);
        assert!(FlowMask::of_fields(&[&fields::IN_PORT]).subset_of(&r.mask));
        assert_eq!(r.actions, vec![OfAction::Output(3)]);
    }

    #[test]
    fn ip_prefix_and_protocol() {
        let r = parse_flow("udp, nw_dst=10.1.0.0/16, tp_dst=53, actions=drop").unwrap();
        assert_eq!(r.key.eth_type(), EtherType::Ipv4);
        assert_eq!(r.key.nw_proto(), 17);
        assert_eq!(r.key.nw_dst_v4(), [10, 1, 0, 0]);
        assert_eq!(r.key.tp_dst(), 53);
        assert_eq!(r.actions, vec![OfAction::Drop]);
        // /16: a host inside matches, outside doesn't.
        let mut probe = r.key;
        probe.set_nw_dst_v4([10, 1, 99, 99]);
        assert!(probe.matches(&r.key, &r.mask));
        probe.set_nw_dst_v4([10, 2, 0, 0]);
        assert!(!probe.matches(&r.key, &r.mask));
    }

    #[test]
    fn ct_action_with_nat() {
        let r = parse_flow(
            "table=0, ip, nw_dst=10.0.0.100, actions=ct(commit,zone=5,table=2,nat(dst=192.168.1.10:8080))",
        )
        .unwrap();
        assert_eq!(
            r.actions,
            vec![OfAction::Ct {
                zone: 5,
                commit: true,
                resume_table: 2,
                nat: Some(NatSpec::Dnat {
                    ip: [192, 168, 1, 10],
                    port: Some(8080)
                }),
            }]
        );
    }

    #[test]
    fn ct_state_bit_syntax() {
        let r = parse_flow("table=10, ct_state=+est-new, actions=goto_table:20").unwrap();
        assert_eq!(r.key.ct_state(), ct_state::ESTABLISHED);
        // Both bits significant: +est must be set, -new must be clear.
        let mut probe = FlowKey::default();
        probe.set_ct_state(ct_state::ESTABLISHED | ct_state::TRACKED);
        assert!(
            probe.matches(&r.key, &r.mask),
            "est+trk matches (trk not constrained)"
        );
        probe.set_ct_state(ct_state::ESTABLISHED | ct_state::NEW);
        assert!(!probe.matches(&r.key, &r.mask), "-new excludes new");
    }

    #[test]
    fn tunnel_and_multi_action() {
        let r = parse_flow(
            "table=20, dl_dst=52:01:00:00:00:01, actions=set_tunnel:5001->172.16.0.2,output:1",
        )
        .unwrap();
        assert_eq!(r.key.dl_dst(), MacAddr::new(0x52, 1, 0, 0, 0, 1));
        assert_eq!(
            r.actions,
            vec![
                OfAction::SetTunnel {
                    id: 5001,
                    dst: [172, 16, 0, 2]
                },
                OfAction::Output(1)
            ]
        );
    }

    #[test]
    fn vlan_and_metadata() {
        let r =
            parse_flow("vlan_vid=100, metadata=7, actions=pop_vlan,write_metadata:9,goto_table:3")
                .unwrap();
        assert_eq!(r.key.vlan_tci() & 0xfff, 100);
        assert_eq!(r.key.metadata(), 7);
        assert_eq!(r.actions.len(), 3);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_flow("in_port=2").is_err(), "missing actions");
        assert!(parse_flow("bogus=1, actions=drop").is_err());
        assert!(parse_flow("in_port=2, actions=fly:3").is_err());
        assert!(parse_flow("nw_dst=10.0.0, actions=drop").is_err());
        let e = parse_flow("ct_state=~new, actions=drop").unwrap_err();
        assert!(e.to_string().contains("ct_state"));
    }

    #[test]
    fn multiline_with_comments() {
        let rules = parse_flows(
            "# classification\n\
             table=0, in_port=1, actions=goto_table:1\n\
             \n\
             table=1, tcp, tp_dst=22, actions=meter:1,output:2\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1].actions[0], OfAction::Meter(1));
    }

    #[test]
    fn dump_flows_renders_live_rule_stats() {
        use crate::ofproto::Ofproto;
        let mut of = Ofproto::new();
        for r in parse_flows(
            "table=0, priority=10, in_port=0, ip, actions=goto_table:1\n\
             table=1, nw_dst=10.0.0.0/8, actions=output:7\n",
        )
        .unwrap()
        {
            of.add_rule(r);
        }
        let mut key = FlowKey::default();
        key.set_in_port(0);
        key.set_eth_type(EtherType::Ipv4);
        key.set_nw_dst_v4([10, 5, 5, 5]);
        let t = of.translate(&key);
        // Both rules sit on the translation path; credit them as the
        // datapath (upcall + stats pushback) would.
        for r in &t.rules {
            r.credit(3, 300);
        }
        let dump = dump_flows(&of);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2, "{dump}");
        assert!(lines[0].contains("table=0"), "{dump}");
        assert!(lines[0].contains("in_port=0"), "{dump}");
        assert!(lines[0].contains("in_port=0,ip"), "{dump}");
        assert!(lines[1].contains("nw_dst=10.0.0.0"), "{dump}");
        for l in &lines {
            assert!(l.contains("n_packets=3"), "{dump}");
            assert!(l.contains("n_bytes=300"), "{dump}");
        }
    }

    #[test]
    fn parsed_rules_drive_the_pipeline() {
        use crate::ofproto::Ofproto;
        let mut of = Ofproto::new();
        for r in parse_flows(
            "table=0, priority=10, in_port=0, ip, actions=goto_table:1\n\
             table=1, nw_dst=10.0.0.0/8, actions=output:7\n",
        )
        .unwrap()
        {
            of.add_rule(r);
        }
        let mut key = FlowKey::default();
        key.set_in_port(0);
        key.set_eth_type(EtherType::Ipv4);
        key.set_nw_dst_v4([10, 5, 5, 5]);
        let t = of.translate(&key);
        assert_eq!(t.actions, vec![crate::dpif::DpAction::Output(7)]);
    }
}
