//! GRE (RFC 2784/2890) and ERSPAN type II headers.
//!
//! ERSPAN is the feature whose out-of-tree backport cost the OVS team more
//! than 5,000 lines of compatibility code (§2.1.1); here it is ~100 lines.

use crate::{ParseError, Result};

/// GRE protocol type for ERSPAN type II.
pub const PROTO_ERSPAN: u16 = 0x88be;
/// GRE protocol type for transparent Ethernet bridging.
pub const PROTO_TEB: u16 = 0x6558;

/// A typed view over a GRE header (checksum and key fields optional, no
/// routing), plus payload.
#[derive(Debug, Clone)]
pub struct GrePacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> GrePacket<T> {
    /// Wrap a buffer, validating the flags and length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < 4 {
            return Err(ParseError::Truncated);
        }
        let p = Self { buffer };
        let b = p.buffer.as_ref();
        if b[0] & 0x07 != 0 || b[1] & 0xf8 != 0 {
            // Routing present or nonzero version/reserved bits.
            return Err(ParseError::Unsupported);
        }
        if p.header_len() > b.len() {
            return Err(ParseError::Truncated);
        }
        Ok(p)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Checksum-present flag.
    pub fn has_checksum(&self) -> bool {
        self.buffer.as_ref()[0] & 0x80 != 0
    }

    /// Key-present flag.
    pub fn has_key(&self) -> bool {
        self.buffer.as_ref()[0] & 0x20 != 0
    }

    /// Sequence-present flag.
    pub fn has_seq(&self) -> bool {
        self.buffer.as_ref()[0] & 0x10 != 0
    }

    /// Header length including optional fields.
    pub fn header_len(&self) -> usize {
        let mut len = 4;
        if self.has_checksum() {
            len += 4;
        }
        if self.has_key() {
            len += 4;
        }
        if self.has_seq() {
            len += 4;
        }
        len
    }

    /// Encapsulated protocol type.
    pub fn protocol(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Tunnel key, if present.
    pub fn key(&self) -> Option<u32> {
        if !self.has_key() {
            return None;
        }
        let off = 4 + if self.has_checksum() { 4 } else { 0 };
        let b = self.buffer.as_ref();
        Some(u32::from_be_bytes([
            b[off],
            b[off + 1],
            b[off + 2],
            b[off + 3],
        ]))
    }

    /// Sequence number, if present.
    pub fn seq(&self) -> Option<u32> {
        if !self.has_seq() {
            return None;
        }
        let off = 4 + if self.has_checksum() { 4 } else { 0 } + if self.has_key() { 4 } else { 0 };
        let b = self.buffer.as_ref();
        Some(u32::from_be_bytes([
            b[off],
            b[off + 1],
            b[off + 2],
            b[off + 3],
        ]))
    }

    /// Payload after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }
}

/// Build a GRE header into `buf`, returning the header length.
///
/// `key` and `seq` are emitted when `Some`. `buf` must have room (up to 12
/// bytes).
pub fn build_header(buf: &mut [u8], protocol: u16, key: Option<u32>, seq: Option<u32>) -> usize {
    let mut flags0 = 0u8;
    if key.is_some() {
        flags0 |= 0x20;
    }
    if seq.is_some() {
        flags0 |= 0x10;
    }
    buf[0] = flags0;
    buf[1] = 0;
    buf[2..4].copy_from_slice(&protocol.to_be_bytes());
    let mut off = 4;
    if let Some(k) = key {
        buf[off..off + 4].copy_from_slice(&k.to_be_bytes());
        off += 4;
    }
    if let Some(s) = seq {
        buf[off..off + 4].copy_from_slice(&s.to_be_bytes());
        off += 4;
    }
    off
}

/// ERSPAN type II header (8 bytes), carried inside GRE with
/// [`PROTO_ERSPAN`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErspanHeader {
    /// Monitoring session identifier (10 bits).
    pub session_id: u16,
    /// Original VLAN of the mirrored frame (12 bits).
    pub vlan: u16,
    /// Class of service (3 bits).
    pub cos: u8,
}

impl ErspanHeader {
    /// ERSPAN type II header length.
    pub const LEN: usize = 8;

    /// Parse from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated);
        }
        let ver = buf[0] >> 4;
        if ver != 1 {
            // Version 1 is "type II" in ERSPAN terms.
            return Err(ParseError::Unsupported);
        }
        let w0 = u16::from_be_bytes([buf[0], buf[1]]);
        let w1 = u16::from_be_bytes([buf[2], buf[3]]);
        Ok(Self {
            vlan: w0 & 0x0fff,
            cos: (w1 >> 13) as u8,
            session_id: w1 & 0x03ff,
        })
    }

    /// Emit into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) {
        let w0 = 0x1000 | (self.vlan & 0x0fff);
        let w1 = (u16::from(self.cos & 0x7) << 13) | (self.session_id & 0x03ff);
        buf[0..2].copy_from_slice(&w0.to_be_bytes());
        buf[2..4].copy_from_slice(&w1.to_be_bytes());
        buf[4..8].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_gre() {
        let mut buf = vec![0u8; 16];
        let n = build_header(&mut buf, PROTO_TEB, None, None);
        assert_eq!(n, 4);
        let p = GrePacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.protocol(), PROTO_TEB);
        assert_eq!(p.key(), None);
        assert_eq!(p.seq(), None);
        assert_eq!(p.header_len(), 4);
    }

    #[test]
    fn gre_with_key_and_seq() {
        let mut buf = vec![0u8; 16];
        let n = build_header(&mut buf, PROTO_ERSPAN, Some(0xdead), Some(7));
        assert_eq!(n, 12);
        let p = GrePacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.key(), Some(0xdead));
        assert_eq!(p.seq(), Some(7));
        assert_eq!(p.payload().len(), 4);
    }

    #[test]
    fn rejects_routing_flag() {
        let mut buf = [0u8; 8];
        buf[0] = 0x04;
        assert_eq!(
            GrePacket::new_checked(&buf[..]).unwrap_err(),
            ParseError::Unsupported
        );
    }

    #[test]
    fn erspan_roundtrip() {
        let h = ErspanHeader {
            session_id: 0x155,
            vlan: 100,
            cos: 3,
        };
        let mut buf = [0u8; ErspanHeader::LEN];
        h.emit(&mut buf);
        assert_eq!(ErspanHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn erspan_rejects_other_version() {
        let mut buf = [0u8; ErspanHeader::LEN];
        buf[0] = 0x20;
        assert_eq!(
            ErspanHeader::parse(&buf).unwrap_err(),
            ParseError::Unsupported
        );
    }
}
