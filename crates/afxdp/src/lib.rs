//! # ovs-afxdp — the OVS userspace AF_XDP driver
//!
//! The paper's §3: OVS implements its own AF_XDP driver rather than using
//! DPDK's, and optimizes it in five steps (Table 2):
//!
//! | level | change | Table 2 rate |
//! |---|---|---|
//! | O0 | datapath shares the general-purpose main thread | 0.8 Mpps |
//! | O1 | dedicated PMD thread per queue | 4.8 Mpps |
//! | O2 | umem pool spinlock instead of POSIX mutex | 6.0 Mpps |
//! | O3 | one lock per batch, shared housekeeping | 6.3 Mpps |
//! | O4 | preallocated `dp_packet` metadata | 6.6 Mpps |
//! | O5 | checksum offload (estimated) | 7.1 Mpps |
//!
//! [`OptLevel`] selects a cumulative prefix of these. Each level changes
//! the *actual code path* (which lock the umem pool takes, whether
//! metadata is pooled, whether checksums are computed in software) and the
//! corresponding calibrated charge.
//!
//! [`XskSocket`] is the userspace side of a socket created against the
//! simulated kernel; [`AfxdpPort`] bundles one socket per NIC queue and
//! installs the OVS hook program (an xskmap redirect) the way
//! `ovs-vswitchd` does when a port is added.

pub mod port;
pub mod socket;

pub use port::AfxdpPort;
pub use socket::{OptLevel, XskSocket};
