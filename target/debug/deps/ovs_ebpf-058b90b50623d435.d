/root/repo/target/debug/deps/ovs_ebpf-058b90b50623d435.d: crates/ebpf/src/lib.rs crates/ebpf/src/insn.rs crates/ebpf/src/maps.rs crates/ebpf/src/programs.rs crates/ebpf/src/verifier.rs crates/ebpf/src/vm.rs crates/ebpf/src/xdp.rs Cargo.toml

/root/repo/target/debug/deps/libovs_ebpf-058b90b50623d435.rmeta: crates/ebpf/src/lib.rs crates/ebpf/src/insn.rs crates/ebpf/src/maps.rs crates/ebpf/src/programs.rs crates/ebpf/src/verifier.rs crates/ebpf/src/vm.rs crates/ebpf/src/xdp.rs Cargo.toml

crates/ebpf/src/lib.rs:
crates/ebpf/src/insn.rs:
crates/ebpf/src/maps.rs:
crates/ebpf/src/programs.rs:
crates/ebpf/src/verifier.rs:
crates/ebpf/src/vm.rs:
crates/ebpf/src/xdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
