/root/repo/target/debug/deps/ovs_nsx-5279b9c0d85ce96b.d: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

/root/repo/target/debug/deps/libovs_nsx-5279b9c0d85ce96b.rlib: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

/root/repo/target/debug/deps/libovs_nsx-5279b9c0d85ce96b.rmeta: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

crates/nsx/src/lib.rs:
crates/nsx/src/ruleset.rs:
crates/nsx/src/topology.rs:
