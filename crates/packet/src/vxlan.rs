//! VXLAN encapsulation headers (RFC 7348).

use crate::{ParseError, Result};

/// The IANA UDP destination port for VXLAN.
pub const UDP_PORT: u16 = 4789;

/// VXLAN header length.
pub const HEADER_LEN: usize = 8;

/// A typed view over a VXLAN header plus inner Ethernet payload.
#[derive(Debug, Clone)]
pub struct VxlanPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> VxlanPacket<T> {
    /// Wrap a buffer, validating length and the I flag.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let p = Self { buffer };
        if !p.vni_valid() {
            return Err(ParseError::Unsupported);
        }
        Ok(p)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// The "I" flag: VNI field is valid. Must be set on data packets.
    pub fn vni_valid(&self) -> bool {
        self.buffer.as_ref()[0] & 0x08 != 0
    }

    /// Virtual network identifier (24 bits).
    pub fn vni(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([0, b[4], b[5], b[6]])
    }

    /// Inner Ethernet frame.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> VxlanPacket<T> {
    /// Initialize flags (I bit set, all reserved fields zero) and VNI.
    pub fn init(&mut self, vni: u32) {
        debug_assert!(vni <= 0x00ff_ffff);
        let b = self.buffer.as_mut();
        b[..HEADER_LEN].fill(0);
        b[0] = 0x08;
        let v = vni.to_be_bytes();
        b[4..7].copy_from_slice(&v[1..4]);
    }

    /// Mutable inner payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; HEADER_LEN + 3];
        let mut p = VxlanPacket::new_unchecked(&mut buf[..]);
        p.init(42);
        p.payload_mut().copy_from_slice(&[9, 9, 9]);
        let p = VxlanPacket::new_checked(&buf[..]).unwrap();
        assert!(p.vni_valid());
        assert_eq!(p.vni(), 42);
        assert_eq!(p.payload(), &[9, 9, 9]);
    }

    #[test]
    fn missing_i_flag_rejected() {
        let buf = [0u8; HEADER_LEN];
        assert_eq!(
            VxlanPacket::new_checked(&buf[..]).unwrap_err(),
            ParseError::Unsupported
        );
    }

    #[test]
    fn truncated() {
        assert_eq!(
            VxlanPacket::new_checked(&[0u8; 4][..]).unwrap_err(),
            ParseError::Truncated
        );
    }
}
