//! IPv6 traffic through the userspace datapath: extraction, classifier
//! matching on 128-bit addresses, and forwarding.

use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_core::dpif::{DpifNetdev, PortType};
use ovs_core::ofproto::{OfAction, OfRule};
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_packet::ethernet::{self, EthernetFrame};
use ovs_packet::flow::{fields, FlowKey, FlowMask};
use ovs_packet::{ipv6, udp, EtherType, MacAddr};

fn v6_udp_frame(src: [u8; 16], dst: [u8; 16], sport: u16, dport: u16) -> Vec<u8> {
    let payload = b"v6-payload";
    let udp_len = udp::HEADER_LEN + payload.len();
    let mut buf = vec![0u8; ethernet::HEADER_LEN + ipv6::HEADER_LEN + udp_len];
    {
        let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
        eth.set_src(MacAddr::new(2, 0, 0, 0, 0, 1));
        eth.set_dst(MacAddr::new(2, 0, 0, 0, 0, 2));
        eth.set_ethertype(EtherType::Ipv6);
    }
    {
        let mut ip = ipv6::Ipv6Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
        ip.set_ver_tc_fl(0, 0);
        ip.set_payload_len(udp_len as u16);
        ip.set_next_header(17);
        ip.set_hop_limit(64);
        ip.set_src(src);
        ip.set_dst(dst);
    }
    {
        let off = ethernet::HEADER_LEN + ipv6::HEADER_LEN;
        let mut u = udp::UdpDatagram::new_unchecked(&mut buf[off..]);
        u.set_src_port(sport);
        u.set_dst_port(dport);
        u.set_length(udp_len as u16);
        u.payload_mut().copy_from_slice(payload);
    }
    buf
}

fn addr(last: u8) -> [u8; 16] {
    let mut a = [0u8; 16];
    a[0] = 0xfd;
    a[1] = 0x00;
    a[15] = last;
    a
}

#[test]
fn ipv6_flows_classify_and_forward() {
    let mut k = Kernel::new(4);
    let mut dp = DpifNetdev::new();
    let mut nics = Vec::new();
    for i in 0..3u8 {
        let nic = k.add_device(NetDevice::new(
            &format!("eth{i}"),
            MacAddr::new(2, 0, 0, 0, 0, i + 1),
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        dp.add_port(
            &format!("eth{i}"),
            PortType::Afxdp(AfxdpPort::open(&mut k, nic, 128, OptLevel::O5).unwrap()),
        );
        nics.push(nic);
    }

    // Route by full IPv6 destination: ::2 -> port 1, ::3 -> port 2.
    for (last, out) in [(2u8, 1u32), (3, 2)] {
        let mut key = FlowKey::default();
        key.set_in_port(0);
        key.set_eth_type(EtherType::Ipv6);
        key.set_nw_dst_v6(addr(last));
        let mask = FlowMask::of_fields(&[
            &fields::IN_PORT,
            &fields::ETH_TYPE,
            &fields::NW_DST_HI,
            &fields::NW_DST_LO64,
        ]);
        dp.ofproto.add_rule(OfRule {
            table: 0,
            priority: 10,
            key,
            mask,
            actions: vec![OfAction::Output(out)],
            cookie: 0,
        });
    }

    for (dst_last, sport) in [(2u8, 100u16), (3, 200), (2, 300), (3, 400)] {
        k.receive(nics[0], 0, v6_udp_frame(addr(1), addr(dst_last), sport, 53));
        dp.pmd_poll(&mut k, 0, 0, 1);
    }
    assert_eq!(k.device(nics[1]).tx_wire.len(), 2, "::2 traffic on eth1");
    assert_eq!(k.device(nics[2]).tx_wire.len(), 2, "::3 traffic on eth2");
    // Per-destination megaflows (the src/ports are wildcarded).
    assert_eq!(dp.stats.upcalls, 2);
    assert_eq!(dp.megaflow_count(), 2);
    // The forwarded frames are intact.
    let out = &k.device(nics[1]).tx_wire[0];
    let ip = ipv6::Ipv6Packet::new_checked(&out[14..]).unwrap();
    assert_eq!(ip.dst(), addr(2));
}

#[test]
fn unmatched_ipv6_dropped() {
    let mut k = Kernel::new(4);
    let mut dp = DpifNetdev::new();
    let nic = k.add_device(NetDevice::new(
        "eth0",
        MacAddr::new(2, 0, 0, 0, 0, 1),
        DeviceKind::Phys { link_gbps: 10.0 },
        1,
    ));
    dp.add_port(
        "eth0",
        PortType::Afxdp(AfxdpPort::open(&mut k, nic, 64, OptLevel::O5).unwrap()),
    );
    k.receive(nic, 0, v6_udp_frame(addr(1), addr(9), 1, 2));
    dp.pmd_poll(&mut k, 0, 0, 1);
    assert_eq!(
        dp.stats.dropped, 1,
        "empty pipeline drops (OpenFlow 1.3 default)"
    );
}
