/root/repo/target/debug/deps/ovs_sim-5c566ae4f101fd68.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/costs.rs crates/sim/src/cpu.rs crates/sim/src/ctx.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libovs_sim-5c566ae4f101fd68.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/costs.rs crates/sim/src/cpu.rs crates/sim/src/ctx.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/costs.rs:
crates/sim/src/cpu.rs:
crates/sim/src/ctx.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
