/root/repo/target/release/deps/ipv6_pipeline-452929e80a58752f.d: crates/core/tests/ipv6_pipeline.rs

/root/repo/target/release/deps/ipv6_pipeline-452929e80a58752f: crates/core/tests/ipv6_pipeline.rs

crates/core/tests/ipv6_pipeline.rs:
