/root/repo/target/debug/deps/repro-2e4b4c22f0ac56c7.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-2e4b4c22f0ac56c7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
