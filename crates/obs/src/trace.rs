//! Packet tracing — the `ofproto/trace` equivalent.
//!
//! A [`TraceCtx`] rides alongside one packet through the datapath and
//! records every pipeline decision as an indented line: flow extraction,
//! which cache tier answered, the matched rule, conntrack verdicts,
//! tunnel push/pop, recirculations, and the final action list. The
//! datapath only pays for formatting when a trace is attached.

/// Records one packet's walk through the pipeline.
#[derive(Debug, Default, Clone)]
pub struct TraceCtx {
    lines: Vec<(usize, String)>,
    depth: usize,
}

impl TraceCtx {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one decision at the current depth.
    pub fn note(&mut self, text: impl Into<String>) {
        self.lines.push((self.depth, text.into()));
    }

    /// Open a nested scope (bridge, recirculation, tunnel interior):
    /// the heading is recorded at the current depth and subsequent notes
    /// indent one level deeper.
    pub fn enter(&mut self, heading: impl Into<String>) {
        self.lines.push((self.depth, heading.into()));
        self.depth += 1;
    }

    /// Close the innermost scope.
    pub fn exit(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// True if any recorded line contains `needle` (test helper).
    pub fn contains(&self, needle: &str) -> bool {
        self.lines.iter().any(|(_, l)| l.contains(needle))
    }

    /// Render the multi-line trace text, four spaces per depth level.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (depth, line) in &self.lines {
            for _ in 0..*depth {
                out.push_str("    ");
            }
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_rendering() {
        let mut t = TraceCtx::new();
        t.note("Flow: in_port=1,tcp,nw_dst=10.0.0.2");
        t.enter("bridge(\"br-int\")");
        t.note("0. table 0: priority 100");
        t.enter("recirc(0x1)");
        t.note("ct(state=+trk+new)");
        t.exit();
        t.note("output:2");
        t.exit();
        let text = t.render();
        let expected = "Flow: in_port=1,tcp,nw_dst=10.0.0.2\n\
                        bridge(\"br-int\")\n    \
                        0. table 0: priority 100\n    \
                        recirc(0x1)\n        \
                        ct(state=+trk+new)\n    \
                        output:2\n";
        assert_eq!(text, expected);
        assert!(t.contains("recirc"));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn exit_never_underflows() {
        let mut t = TraceCtx::new();
        t.exit();
        t.note("still at depth zero");
        assert_eq!(t.render(), "still at depth zero\n");
    }
}
