//! A small, self-contained deterministic RNG.
//!
//! Experiments must be bit-for-bit reproducible across machines and across
//! `rand` crate upgrades, so the simulation core uses this fixed SplitMix64
//! generator instead of `rand`'s (whose `StdRng` algorithm is allowed to
//! change between major versions). Workload crates that only need "some"
//! randomness may still use `rand`, seeded, but anything that feeds reported
//! numbers goes through [`SimRng`].

/// Deterministic SplitMix64 generator with Box–Muller normal sampling.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small moduli used in workloads (<= millions).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Standard normal sample (Box–Muller, with the spare cached).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.f64();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }

    /// Log-normal sample: `exp(N(mu, sigma))`. Used for latency jitter,
    /// which is right-skewed (long tail at P99).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(4);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut r = SimRng::new(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = SimRng::new(6);
        for _ in 0..1_000 {
            assert!(r.log_normal(0.0, 1.0) > 0.0);
        }
    }
}
