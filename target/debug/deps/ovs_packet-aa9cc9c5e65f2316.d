/root/repo/target/debug/deps/ovs_packet-aa9cc9c5e65f2316.d: crates/packet/src/lib.rs crates/packet/src/arp.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/dp_packet.rs crates/packet/src/ethernet.rs crates/packet/src/flow.rs crates/packet/src/geneve.rs crates/packet/src/gre.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/ipv6.rs crates/packet/src/mac.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/vlan.rs crates/packet/src/vxlan.rs

/root/repo/target/debug/deps/ovs_packet-aa9cc9c5e65f2316: crates/packet/src/lib.rs crates/packet/src/arp.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/dp_packet.rs crates/packet/src/ethernet.rs crates/packet/src/flow.rs crates/packet/src/geneve.rs crates/packet/src/gre.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/ipv6.rs crates/packet/src/mac.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/vlan.rs crates/packet/src/vxlan.rs

crates/packet/src/lib.rs:
crates/packet/src/arp.rs:
crates/packet/src/builder.rs:
crates/packet/src/checksum.rs:
crates/packet/src/dp_packet.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/flow.rs:
crates/packet/src/geneve.rs:
crates/packet/src/gre.rs:
crates/packet/src/icmp.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/ipv6.rs:
crates/packet/src/mac.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
crates/packet/src/vlan.rs:
crates/packet/src/vxlan.rs:
