//! Tuple-space-search classifier scaling: lookup cost vs subtable count
//! and rule count — the structure behind the 1 vs 1,000 flow gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovs_core::classifier::{Classifier, Rule};
use ovs_packet::flow::{fields, FlowKey, FlowMask};
use std::hint::black_box;

fn key(ip: [u8; 4], port: u16) -> FlowKey {
    let mut k = FlowKey::default();
    k.set_nw_dst_v4(ip);
    k.set_tp_dst(port);
    k
}

/// Build a classifier with `subtables` distinct masks × `per_table` rules.
fn build(subtables: usize, per_table: usize) -> Classifier<u32> {
    let mut c = Classifier::new();
    for s in 0..subtables {
        // Distinct masks: different destination prefix lengths plus a
        // port bit for variety.
        let mut mask = FlowMask::EMPTY;
        mask.set_nw_dst_v4_prefix(8 + (s % 24) as u8);
        if s % 2 == 0 {
            mask.set_field(&fields::TP_DST);
        }
        for r in 0..per_table {
            c.insert(Rule {
                key: key(
                    [10, (s % 250) as u8, (r >> 8) as u8, r as u8],
                    (r % 1000) as u16,
                ),
                mask,
                priority: (s * 10) as i32,
                value: (s * per_table + r) as u32,
            });
        }
    }
    c
}

fn bench_subtable_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier/subtable_scaling");
    for subtables in [1usize, 4, 16, 40] {
        let mut cls = build(subtables, 256);
        let probe = key([10, 0, 0, 1], 80);
        g.bench_with_input(
            BenchmarkId::from_parameter(subtables),
            &subtables,
            |b, _| b.iter(|| black_box(cls.lookup(black_box(&probe)).is_some())),
        );
    }
    g.finish();
}

fn bench_rule_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier/rule_scaling");
    for rules in [100usize, 10_000, 100_000] {
        let mut cls = build(8, rules / 8);
        let probe = key([10, 3, 1, 7], 443);
        g.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, _| {
            b.iter(|| black_box(cls.lookup(black_box(&probe)).is_some()))
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("classifier/insert_100k_then_clear", |b| {
        b.iter(|| {
            let cls = build(40, 2_500);
            black_box(cls.len())
        })
    });
}

/// Short measurement windows keep the full `cargo bench --workspace`
/// run to a few minutes; pass `--measurement-time` to override.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_subtable_scaling, bench_rule_scaling, bench_insert
}
criterion_main!(benches);
