//! Rate and CPU-usage derivation.
//!
//! A scenario runs `n` packets through the full code path; every modelled
//! operation charged its core. The **maximum lossless rate** is then the
//! service rate of the bottleneck core (the pipeline stage that saturates
//! first), capped at line rate; CPU usage is each context's busy time over
//! the interval implied by operating *at* that rate — exactly how Table 4
//! counts hyperthreads.

use ovs_sim::rate::LineRate;
use ovs_sim::{CpuUsage, SimCtx};

/// A throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct RateMeasurement {
    /// Maximum lossless packet rate, Mpps.
    pub mpps: f64,
    /// The same rate as frame-bits throughput, Gbps.
    pub gbps: f64,
    /// Whether the wire, not the CPU, was the limit.
    pub line_limited: bool,
    /// CPU usage at the lossless operating point (hyperthread units).
    pub usage: CpuUsage,
}

impl RateMeasurement {
    /// Derive the measurement from a finished simulation.
    pub fn from_sim(sim: &SimCtx, n_pkts: usize, frame_len: usize, link_gbps: f64) -> Self {
        let line = LineRate::gbps(link_gbps);
        let busy_ns = sim.cpus.bottleneck_ns();
        let svc_pps = if busy_ns > 0.0 {
            n_pkts as f64 / busy_ns * 1e9
        } else {
            f64::INFINITY
        };
        let line_pps = line.max_pps(frame_len);
        let line_limited = line_pps <= svc_pps;
        let pps = svc_pps.min(line_pps);
        // Duration of the run if offered exactly the lossless rate.
        let duration_ns = n_pkts as f64 / pps * 1e9;
        Self {
            mpps: pps / 1e6,
            gbps: pps * (frame_len * 8) as f64 / 1e9,
            line_limited,
            usage: sim.cpus.usage(duration_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovs_sim::Context;

    #[test]
    fn cpu_bound_rate() {
        let mut sim = SimCtx::new(4);
        // 1000 packets, 500 ns each on core 0 => 2 Mpps.
        sim.charge(0, Context::Softirq, 500_000.0);
        let m = RateMeasurement::from_sim(&sim, 1000, 64, 100.0);
        assert!((m.mpps - 2.0).abs() < 1e-9);
        assert!(!m.line_limited);
        // Bottleneck core is 100% busy at the operating point.
        assert!((m.usage.softirq - 1.0).abs() < 1e-9);
    }

    #[test]
    fn line_limited_rate() {
        let mut sim = SimCtx::new(2);
        // 10 ns per packet of CPU: far faster than a 10G line at 64 B.
        sim.charge(0, Context::User, 10_000.0);
        let m = RateMeasurement::from_sim(&sim, 1000, 64, 10.0);
        assert!(m.line_limited);
        assert!((m.mpps - 14.88).abs() < 0.01);
        // At the line-limited point the core is mostly idle.
        assert!(m.usage.user < 0.2);
    }

    #[test]
    fn multi_core_bottleneck() {
        let mut sim = SimCtx::new(4);
        sim.charge(0, Context::Softirq, 200_000.0); // 200 ns/pkt
        sim.charge(1, Context::User, 400_000.0); // 400 ns/pkt <- bottleneck
        let m = RateMeasurement::from_sim(&sim, 1000, 64, 100.0);
        assert!((m.mpps - 2.5).abs() < 1e-9);
        assert!((m.usage.user - 1.0).abs() < 1e-9);
        assert!((m.usage.softirq - 0.5).abs() < 1e-9);
        assert!((m.usage.total() - 1.5).abs() < 1e-9);
    }
}
