/root/repo/target/debug/deps/repro-4e2bb8262db9f7ca.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4e2bb8262db9f7ca: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
