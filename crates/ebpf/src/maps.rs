//! eBPF maps: array, hash, devmap, and xskmap.
//!
//! Maps are the only mutable state an XDP program can keep. The OVS hook
//! program uses an **xskmap** (queue index → AF_XDP socket) to redirect
//! packets to userspace; the container fast path (§3.4, path C) uses a
//! **devmap** (slot → target device); the eBPF datapath and Table 5 task C
//! use a **hash map** for flow lookup. Note what is *absent*, faithfully:
//! there is no wildcard-matching map, which is why the megaflow cache
//! cannot be built in eBPF (§2.2.2).

use std::collections::HashMap as StdHashMap;

/// Errors from map operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// Key or value length does not match the map definition.
    BadSize,
    /// The map is at `max_entries`.
    Full,
    /// No such map fd or index.
    NotFound,
}

/// A fixed-size-value array map (`BPF_MAP_TYPE_ARRAY`).
#[derive(Debug, Clone)]
pub struct ArrayMap {
    value_size: usize,
    values: Vec<Vec<u8>>,
}

impl ArrayMap {
    /// An array map of `max_entries` zeroed values.
    pub fn new(value_size: usize, max_entries: usize) -> Self {
        Self {
            value_size,
            values: vec![vec![0; value_size]; max_entries],
        }
    }

    /// Value size in bytes.
    pub fn value_size(&self) -> usize {
        self.value_size
    }

    /// Number of entries (fixed).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the map has zero entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow entry `idx`.
    pub fn get(&self, idx: u32) -> Option<&[u8]> {
        self.values.get(idx as usize).map(|v| v.as_slice())
    }

    /// Mutably borrow entry `idx`.
    pub fn get_mut(&mut self, idx: u32) -> Option<&mut [u8]> {
        self.values.get_mut(idx as usize).map(|v| v.as_mut_slice())
    }
}

/// A fixed key/value-size hash map (`BPF_MAP_TYPE_HASH`).
///
/// Values live in stable slots so the VM can hand out value pointers.
#[derive(Debug, Clone)]
pub struct HashMap {
    key_size: usize,
    value_size: usize,
    max_entries: usize,
    index: StdHashMap<Vec<u8>, u32>,
    slots: Vec<Vec<u8>>,
    free_slots: Vec<u32>,
}

impl HashMap {
    /// An empty hash map.
    pub fn new(key_size: usize, value_size: usize, max_entries: usize) -> Self {
        Self {
            key_size,
            value_size,
            max_entries,
            index: StdHashMap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
        }
    }

    /// Key size in bytes.
    pub fn key_size(&self) -> usize {
        self.key_size
    }

    /// Value size in bytes.
    pub fn value_size(&self) -> usize {
        self.value_size
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Look up a key, returning the value slot id.
    pub fn lookup(&self, key: &[u8]) -> Option<u32> {
        if key.len() != self.key_size {
            return None;
        }
        self.index.get(key).copied()
    }

    /// Insert or update, returning the value slot id.
    pub fn update(&mut self, key: &[u8], value: &[u8]) -> Result<u32, MapError> {
        if key.len() != self.key_size || value.len() != self.value_size {
            return Err(MapError::BadSize);
        }
        if let Some(&slot) = self.index.get(key) {
            self.slots[slot as usize].copy_from_slice(value);
            return Ok(slot);
        }
        if self.index.len() >= self.max_entries {
            return Err(MapError::Full);
        }
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize].copy_from_slice(value);
                s
            }
            None => {
                self.slots.push(value.to_vec());
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(key.to_vec(), slot);
        Ok(slot)
    }

    /// Delete a key.
    pub fn delete(&mut self, key: &[u8]) -> Result<(), MapError> {
        match self.index.remove(key) {
            Some(slot) => {
                self.free_slots.push(slot);
                Ok(())
            }
            None => Err(MapError::NotFound),
        }
    }

    /// Borrow a value slot.
    pub fn slot(&self, slot: u32) -> Option<&[u8]> {
        self.slots.get(slot as usize).map(|v| v.as_slice())
    }

    /// Mutably borrow a value slot.
    pub fn slot_mut(&mut self, slot: u32) -> Option<&mut [u8]> {
        self.slots.get_mut(slot as usize).map(|v| v.as_mut_slice())
    }
}

/// A devmap (`BPF_MAP_TYPE_DEVMAP`): slot → interface index, the target
/// table for `XDP_REDIRECT` between devices.
#[derive(Debug, Clone)]
pub struct DevMap {
    entries: Vec<Option<u32>>,
}

impl DevMap {
    /// A devmap with `max_entries` empty slots.
    pub fn new(max_entries: usize) -> Self {
        Self {
            entries: vec![None; max_entries],
        }
    }

    /// Set slot `idx` to interface `ifindex`.
    pub fn set(&mut self, idx: u32, ifindex: u32) -> Result<(), MapError> {
        *self
            .entries
            .get_mut(idx as usize)
            .ok_or(MapError::NotFound)? = Some(ifindex);
        Ok(())
    }

    /// Look up slot `idx`.
    pub fn get(&self, idx: u32) -> Option<u32> {
        self.entries.get(idx as usize).copied().flatten()
    }
}

/// An xskmap (`BPF_MAP_TYPE_XSKMAP`): queue index → AF_XDP socket id, the
/// table the OVS hook program redirects through.
#[derive(Debug, Clone)]
pub struct XskMap {
    entries: Vec<Option<u32>>,
}

impl XskMap {
    /// An xskmap with `max_entries` empty slots.
    pub fn new(max_entries: usize) -> Self {
        Self {
            entries: vec![None; max_entries],
        }
    }

    /// Bind queue `idx` to socket `xsk_id`.
    pub fn set(&mut self, idx: u32, xsk_id: u32) -> Result<(), MapError> {
        *self
            .entries
            .get_mut(idx as usize)
            .ok_or(MapError::NotFound)? = Some(xsk_id);
        Ok(())
    }

    /// Look up queue `idx`.
    pub fn get(&self, idx: u32) -> Option<u32> {
        self.entries.get(idx as usize).copied().flatten()
    }
}

/// Any map, as stored in a [`MapSet`].
#[derive(Debug, Clone)]
pub enum Map {
    Array(ArrayMap),
    Hash(HashMap),
    Dev(DevMap),
    Xsk(XskMap),
}

/// The map registry a program runs against; map "fds" index into it.
#[derive(Debug, Default)]
pub struct MapSet {
    maps: Vec<Map>,
}

impl MapSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a map, returning its fd.
    pub fn add(&mut self, map: Map) -> u32 {
        self.maps.push(map);
        (self.maps.len() - 1) as u32
    }

    /// Borrow a map.
    pub fn get(&self, fd: u32) -> Option<&Map> {
        self.maps.get(fd as usize)
    }

    /// Mutably borrow a map.
    pub fn get_mut(&mut self, fd: u32) -> Option<&mut Map> {
        self.maps.get_mut(fd as usize)
    }

    /// Look up `key` in map `fd`, returning a value slot id for pointer
    /// formation. Array maps interpret the first 4 key bytes as the index
    /// (little-endian, as eBPF does).
    pub fn lookup_slot(&self, fd: u32, key: &[u8]) -> Option<u32> {
        match self.get(fd)? {
            Map::Array(a) => {
                let idx = u32::from_le_bytes(key.get(..4)?.try_into().ok()?);
                if (idx as usize) < a.len() {
                    Some(idx)
                } else {
                    None
                }
            }
            Map::Hash(h) => h.lookup(key),
            // Dev/Xsk maps are not value-addressable from programs.
            Map::Dev(_) | Map::Xsk(_) => None,
        }
    }

    /// The key size map `fd` expects for lookups.
    pub fn key_size(&self, fd: u32) -> Option<usize> {
        match self.get(fd)? {
            Map::Array(_) => Some(4),
            Map::Hash(h) => Some(h.key_size()),
            Map::Dev(_) | Map::Xsk(_) => Some(4),
        }
    }

    /// Borrow the value bytes for `(fd, slot)`.
    pub fn value(&self, fd: u32, slot: u32) -> Option<&[u8]> {
        match self.get(fd)? {
            Map::Array(a) => a.get(slot),
            Map::Hash(h) => h.slot(slot),
            _ => None,
        }
    }

    /// Mutably borrow the value bytes for `(fd, slot)`.
    pub fn value_mut(&mut self, fd: u32, slot: u32) -> Option<&mut [u8]> {
        match self.get_mut(fd)? {
            Map::Array(a) => a.get_mut(slot),
            Map::Hash(h) => h.slot_mut(slot),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_map_rw() {
        let mut a = ArrayMap::new(8, 4);
        a.get_mut(2).unwrap().copy_from_slice(&7u64.to_le_bytes());
        assert_eq!(a.get(2).unwrap(), &7u64.to_le_bytes());
        assert!(a.get(4).is_none());
    }

    #[test]
    fn hash_map_crud() {
        let mut h = HashMap::new(4, 8, 2);
        let s1 = h.update(b"key1", &1u64.to_le_bytes()).unwrap();
        assert_eq!(h.lookup(b"key1"), Some(s1));
        assert_eq!(h.slot(s1).unwrap(), &1u64.to_le_bytes());
        // Update in place keeps the slot.
        let s1b = h.update(b"key1", &2u64.to_le_bytes()).unwrap();
        assert_eq!(s1, s1b);
        // Capacity enforced.
        h.update(b"key2", &3u64.to_le_bytes()).unwrap();
        assert_eq!(h.update(b"key3", &4u64.to_le_bytes()), Err(MapError::Full));
        // Delete frees a slot for reuse.
        h.delete(b"key1").unwrap();
        let s3 = h.update(b"key3", &4u64.to_le_bytes()).unwrap();
        assert_eq!(s3, s1, "freed slot is reused");
        assert_eq!(h.lookup(b"key1"), None);
    }

    #[test]
    fn hash_map_size_checks() {
        let mut h = HashMap::new(4, 8, 4);
        assert_eq!(
            h.update(b"toolong!", &0u64.to_le_bytes()),
            Err(MapError::BadSize)
        );
        assert_eq!(h.update(b"key1", b"short"), Err(MapError::BadSize));
        assert_eq!(h.lookup(b"xy"), None);
    }

    #[test]
    fn dev_and_xsk_maps() {
        let mut d = DevMap::new(4);
        d.set(1, 42).unwrap();
        assert_eq!(d.get(1), Some(42));
        assert_eq!(d.get(0), None);
        assert_eq!(d.set(9, 1), Err(MapError::NotFound));

        let mut x = XskMap::new(2);
        x.set(0, 7).unwrap();
        assert_eq!(x.get(0), Some(7));
    }

    #[test]
    fn mapset_lookup_slot() {
        let mut set = MapSet::new();
        let afd = set.add(Map::Array(ArrayMap::new(8, 4)));
        let hfd = set.add(Map::Hash(HashMap::new(4, 8, 4)));
        // Array: key is the LE index.
        assert_eq!(set.lookup_slot(afd, &2u32.to_le_bytes()), Some(2));
        assert_eq!(set.lookup_slot(afd, &9u32.to_le_bytes()), None);
        // Hash: inserted key resolves.
        if let Some(Map::Hash(h)) = set.get_mut(hfd) {
            h.update(b"abcd", &5u64.to_le_bytes()).unwrap();
        }
        let slot = set.lookup_slot(hfd, b"abcd").unwrap();
        assert_eq!(set.value(hfd, slot).unwrap(), &5u64.to_le_bytes());
    }
}
