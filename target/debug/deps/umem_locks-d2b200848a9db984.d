/root/repo/target/debug/deps/umem_locks-d2b200848a9db984.d: crates/bench/benches/umem_locks.rs Cargo.toml

/root/repo/target/debug/deps/libumem_locks-d2b200848a9db984.rmeta: crates/bench/benches/umem_locks.rs Cargo.toml

crates/bench/benches/umem_locks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
