//! Extending OVS with eBPF (§3.5): an L4 load balancer in the XDP hook.
//!
//! Packets matching one UDP virtual-IP 5-tuple are rewritten and bounced
//! at the driver without ever reaching userspace; everything else takes
//! the normal AF_XDP path into the OVS datapath. This is the paper's
//! example of "dividing responsibility for packet processing" between the
//! hook program and userspace.
//!
//! Run with: `cargo run --example xdp_loadbalancer`

use ovs_ebpf::programs;
use ovs_kernel::dev::{DeviceKind, NetDevice, XdpMode};
use ovs_kernel::{Kernel, RxOutcome};
use ovs_packet::{builder, MacAddr};

fn main() {
    let mut kernel = Kernel::new(4);
    let eth0 = kernel.add_device(NetDevice::new(
        "eth0",
        MacAddr::new(2, 0, 0, 0, 0, 1),
        DeviceKind::Phys { link_gbps: 25.0 },
        1,
    ));

    // The virtual service: VIP 10.0.0.100:8080, backend at 192.168.1.10.
    let vip = [10, 0, 0, 100];
    let vport = 8080;
    let backend = [192, 168, 1, 10];
    let prog = programs::l4_lb(vip, vport, backend);
    println!(
        "loaded '{}' ({} instructions, verifier-approved)",
        prog.name(),
        prog.len()
    );
    kernel
        .attach_xdp(eth0, prog, XdpMode::Native, None)
        .unwrap();

    let mut balanced = 0;
    let mut passed = 0;
    for i in 0..1000u16 {
        // Every third packet targets the VIP; the rest is other traffic.
        let (dst, port) = if i % 3 == 0 {
            (vip, vport)
        } else {
            ([10, 0, 0, 50], 443)
        };
        let frame = builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 1, 1),
            MacAddr::new(2, 0, 0, 0, 0, 1),
            [172, 16, 5, (i % 200) as u8 + 1],
            dst,
            10_000 + i,
            port,
            64,
        );
        match kernel.receive(eth0, 0, frame) {
            RxOutcome::XdpTx => balanced += 1,
            RxOutcome::ToHost => passed += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    println!("VIP traffic load-balanced at the driver: {balanced}");
    println!("other traffic passed to the stack/OVS:   {passed}");

    // Every balanced packet was rewritten to the backend.
    let rewritten = kernel
        .device(eth0)
        .tx_wire
        .iter()
        .filter(|f| &f[30..34] == backend.as_slice())
        .count();
    println!("rewritten destination verified on {rewritten} frames");

    assert_eq!(balanced, 334);
    assert_eq!(passed, 666);
    assert_eq!(rewritten, balanced);
    println!("ok");
}
