/root/repo/target/debug/deps/ovs_afxdp_repro-2b6badc01e11a342.d: src/lib.rs

/root/repo/target/debug/deps/ovs_afxdp_repro-2b6badc01e11a342: src/lib.rs

src/lib.rs:
