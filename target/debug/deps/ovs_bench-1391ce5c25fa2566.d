/root/repo/target/debug/deps/ovs_bench-1391ce5c25fa2566.d: crates/bench/src/lib.rs crates/bench/src/fig1.rs

/root/repo/target/debug/deps/ovs_bench-1391ce5c25fa2566: crates/bench/src/lib.rs crates/bench/src/fig1.rs

crates/bench/src/lib.rs:
crates/bench/src/fig1.rs:
