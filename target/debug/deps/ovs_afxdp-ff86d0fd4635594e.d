/root/repo/target/debug/deps/ovs_afxdp-ff86d0fd4635594e.d: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/debug/deps/libovs_afxdp-ff86d0fd4635594e.rlib: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/debug/deps/libovs_afxdp-ff86d0fd4635594e.rmeta: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

crates/afxdp/src/lib.rs:
crates/afxdp/src/port.rs:
crates/afxdp/src/socket.rs:
