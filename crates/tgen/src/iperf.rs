//! Bulk-TCP throughput — the Fig 8 experiment engine.
//!
//! A sender VM (or container) pushes a single bulk TCP stream; each
//! `iperf` write becomes either one TSO super-frame (~64 kB, when the
//! virtio path offers segmentation offload) or a stream of MTU-sized
//! segments. The stream crosses the NSX pipeline — three datapath passes
//! with conntrack and, across hosts, Geneve encapsulation — and the
//! throughput is the sender's payload bytes over the bottleneck stage's
//! busy time, capped by the 10 GbE wire where applicable.

use ovs_afxdp::OptLevel;
use ovs_kernel::guest::GuestRole;
use ovs_kernel::namespace::ContainerRole;
use ovs_kernel::Kernel;
use ovs_nsx::ruleset::{self, NsxConfig};
use ovs_nsx::topology::{DatapathKind, Host, HostConfig, VmAttachment};
use ovs_packet::tcp::flags;
use ovs_packet::{builder, MacAddr};

/// Offload configuration of a Fig 8 bar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offloads {
    /// Checksum offload available end to end.
    pub csum: bool,
    /// TCP segmentation offload available end to end.
    pub tso: bool,
}

impl Offloads {
    pub const NONE: Offloads = Offloads {
        csum: false,
        tso: false,
    };
    pub const CSUM: Offloads = Offloads {
        csum: true,
        tso: false,
    };
    pub const FULL: Offloads = Offloads {
        csum: true,
        tso: true,
    };
}

/// A Fig 8 throughput result.
#[derive(Debug, Clone, Copy)]
pub struct TcpThroughput {
    /// Goodput in Gbps.
    pub gbps: f64,
    /// Whether the wire was the limit.
    pub line_limited: bool,
}

/// Number of sender writes driven per measurement.
const WRITES: usize = 256;
/// Software-checksum penalty per payload byte when checksum offload is
/// unavailable end to end, charged to the switching core (OVS fills and
/// verifies L4 checksums in software on the vhost path).
/// **[calibrated]** to Fig 8's offload-vs-no-offload gaps.
const SW_CSUM_NS_PER_BYTE: f64 = 0.45;
/// TSO super-frame payload (a 44-segment GSO packet).
const TSO_PAYLOAD: usize = 44 * 1460;
/// Plain-MTU payload.
const MTU_PAYLOAD: usize = 1460;

fn small_nsx(id: u8) -> NsxConfig {
    NsxConfig {
        vms: 2,
        tunnels: 8,
        target_rules: 2_000,
        local_vtep: [172, 16, 0, id],
        remote_vtep: [172, 16, 0, 3 - id],
        ..NsxConfig::default()
    }
}

fn bulk_frames(src_host: u8, dst_host: u8, payload: usize) -> Vec<Vec<u8>> {
    let data = vec![0x42u8; payload];
    (0..WRITES)
        .map(|i| {
            builder::tcp_ipv4(
                ruleset::vm_mac(src_host, 0, 0),
                ruleset::vm_mac(dst_host, 0, 0),
                ruleset::vm_ip(src_host, 0, 0),
                ruleset::vm_ip(dst_host, 0, 0),
                40_000,
                5201,
                (i * payload) as u32,
                0,
                flags::ACK,
                &data,
            )
        })
        .collect()
}

fn host(id: u8, datapath: DatapathKind, attachment: VmAttachment) -> Host {
    let mut cfg = HostConfig::nsx_default(id, datapath, attachment);
    cfg.nsx = small_nsx(id);
    cfg.guest_role = GuestRole::Sink;
    Host::build(&cfg)
}

fn drive_pair(h1: &mut Host, h2: &mut Host, frames: Vec<Vec<u8>>) {
    let g = h1.guest_of_vif[0];
    for f in frames {
        h1.kernel.guests[g].tx_ring.push_back(f);
        // Pump as we go so rings don't grow unboundedly.
        h1.pump();
        for w in h1.wire_take() {
            h2.wire_inject(w);
        }
        h2.pump();
        for w in h2.wire_take() {
            h1.wire_inject(w);
        }
        h1.pump();
    }
}

/// The bottleneck-derived throughput over both hosts.
fn throughput(h1: &Host, h2: &Host, payload_bytes: usize, link_gbps: Option<f64>) -> TcpThroughput {
    let busy = h1
        .kernel
        .sim
        .cpus
        .bottleneck_ns()
        .max(h2.kernel.sim.cpus.bottleneck_ns());
    let gbps_cpu = if busy > 0.0 {
        payload_bytes as f64 * 8.0 / busy
    } else {
        f64::INFINITY
    };
    match link_gbps {
        Some(l) if l < gbps_cpu => TcpThroughput {
            gbps: l,
            line_limited: true,
        },
        _ => TcpThroughput {
            gbps: gbps_cpu,
            line_limited: false,
        },
    }
}

/// Fig 8(a): VM→VM across hosts over Geneve on a 10 GbE link.
///
/// TSO is not usable over the tunnel (no tunnel-TSO), so senders emit
/// MTU-sized segments in every variant, as the paper's bar set implies
/// (8a has interrupt/polling/vhostuser/checksum variants, no TSO bar).
pub fn fig8a_cross_host(datapath: DatapathKind, attachment: VmAttachment) -> TcpThroughput {
    let mut h1 = host(1, datapath, attachment);
    let mut h2 = host(2, datapath, attachment);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());
    let frames = bulk_frames(1, 2, MTU_PAYLOAD);
    let payload = WRITES * MTU_PAYLOAD;
    drive_pair(&mut h1, &mut h2, frames);
    // Without end-to-end checksum offload the switch checksums in
    // software; charge it where the datapath runs.
    if let DatapathKind::UserspaceAfxdp { opt, .. } = datapath {
        if !opt.csum_offload() {
            let ns = payload as f64 * SW_CSUM_NS_PER_BYTE;
            let core = h2.switch_core;
            h2.kernel.sim.charge(core, ovs_sim::Context::User, ns);
        }
    }
    throughput(&h1, &h2, payload, Some(10.0))
}

/// Diagnostic: per-core busy breakdown of the 8a AF_XDP poll+tap run.
pub fn fig8a_debug(datapath: DatapathKind, attachment: VmAttachment) {
    let mut h1 = host(1, datapath, attachment);
    let mut h2 = host(2, datapath, attachment);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());
    let frames = bulk_frames(1, 2, MTU_PAYLOAD);
    drive_pair(&mut h1, &mut h2, frames);
    for (name, h) in [("h1", &h1), ("h2", &h2)] {
        for core in 0..16 {
            let c = h.kernel.sim.cpus.core(core);
            if c.total_ns() > 0.0 {
                println!(
                    "  {name} core{core}: user={:.0} sys={:.0} softirq={:.0} guest={:.0} (us total {:.0})",
                    c.ns(ovs_sim::Context::User) / 1000.0,
                    c.ns(ovs_sim::Context::System) / 1000.0,
                    c.ns(ovs_sim::Context::Softirq) / 1000.0,
                    c.ns(ovs_sim::Context::Guest) / 1000.0,
                    c.total_ns() / 1000.0
                );
            }
        }
        println!("  {name} dp stats: {:?}", h.dp.as_ref().map(|d| d.stats));
    }
}

/// Fig 8(b): VM→VM within one host.
pub fn fig8b_intra_host(
    datapath: DatapathKind,
    attachment: VmAttachment,
    offloads: Offloads,
) -> TcpThroughput {
    let mut h1 = host(1, datapath, attachment);
    let payload = if offloads.tso {
        TSO_PAYLOAD
    } else {
        MTU_PAYLOAD
    };
    // Sender VM0-if0 -> receiver VM1-if0, both local.
    let data = vec![0x42u8; payload];
    let frames: Vec<Vec<u8>> = (0..WRITES)
        .map(|i| {
            builder::tcp_ipv4(
                ruleset::vm_mac(1, 0, 0),
                ruleset::vm_mac(1, 1, 0),
                ruleset::vm_ip(1, 0, 0),
                ruleset::vm_ip(1, 1, 0),
                40_000,
                5201,
                (i * payload) as u32,
                0,
                flags::ACK,
                &data,
            )
        })
        .collect();
    let g = h1.guest_of_vif[0];
    for f in frames {
        h1.kernel.guests[g].tx_ring.push_back(f);
        h1.pump();
    }
    if !offloads.csum {
        let ns = (WRITES * payload) as f64 * SW_CSUM_NS_PER_BYTE;
        let core = h1.switch_core;
        h1.kernel.sim.charge(core, ovs_sim::Context::User, ns);
    }
    let busy = h1.kernel.sim.cpus.bottleneck_ns();
    TcpThroughput {
        gbps: (WRITES * payload) as f64 * 8.0 / busy.max(1.0),
        line_limited: false,
    }
}

/// How containers are switched in Fig 8(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    /// In-kernel OVS across the veth pair.
    Kernel,
    /// XDP redirection between the veths (Fig 5 path C).
    XdpRedirect,
    /// Userspace OVS over AF_XDP on the veths (Fig 5 path A).
    AfxdpUserspace(OptLevel),
}

/// Fig 8(c): container→container within one host.
pub fn fig8c_containers(mode: CcMode, offloads: Offloads) -> TcpThroughput {
    use ovs_core::dpif::{DpifNetdev, PortType};
    use ovs_core::ofproto::{OfAction, OfRule};
    use ovs_ebpf::maps::{DevMap, Map};
    use ovs_kernel::dev::{Attachment, XdpMode};
    use ovs_kernel::ovs_module::{KAction, Vport};
    use ovs_packet::flow::{fields, FlowKey, FlowMask};

    let mut k = Kernel::new(16);
    k.config.rss_cores = vec![0, 1];
    k.config.host_stack_core = 2;
    let mac_a = MacAddr::new(6, 0, 0, 0, 0, 1);
    let mac_b = MacAddr::new(6, 0, 0, 0, 0, 2);
    let (host_a, _ia, _na) = k.add_container("c0", [10, 77, 0, 1], mac_a, ContainerRole::Sink);
    let (host_b, _ib, _nb) = k.add_container("c1", [10, 77, 0, 2], mac_b, ContainerRole::Sink);

    // Native veth XDP exists upstream (used by the redirect fast path),
    // but zero-copy AF_XDP on veth does not (§3.4): the userspace mode
    // falls back to generic/copy mode.
    if mode == CcMode::XdpRedirect {
        k.dev_mut(host_a).caps.native_xdp = true;
        k.dev_mut(host_b).caps.native_xdp = true;
    }

    // TSO only works where no XDP/AF_XDP leg intervenes (§6: XDP lacks
    // TSO), so only the kernel mode may carry super-frames.
    let payload = if offloads.tso && mode == CcMode::Kernel {
        TSO_PAYLOAD
    } else {
        MTU_PAYLOAD
    };
    let data = vec![0x42u8; payload];
    let frames: Vec<Vec<u8>> = (0..WRITES)
        .map(|i| {
            builder::tcp_ipv4(
                mac_a,
                mac_b,
                [10, 77, 0, 1],
                [10, 77, 0, 2],
                40_000,
                5201,
                (i * payload) as u32,
                0,
                flags::ACK,
                &data,
            )
        })
        .collect();

    let mut dp: Option<DpifNetdev> = None;
    let mut pa = 0;
    match mode {
        CcMode::Kernel => {
            let va = k.ovs.add_vport(Vport::Netdev { ifindex: host_a });
            let vb = k.ovs.add_vport(Vport::Netdev { ifindex: host_b });
            k.dev_mut(host_a).attachment = Attachment::OvsBridge { port: va };
            k.dev_mut(host_b).attachment = Attachment::OvsBridge { port: vb };
            let mask = FlowMask::of_fields(&[&fields::IN_PORT]);
            let mut ka = FlowKey::default();
            ka.set_in_port(va);
            k.ovs.install_flow(&ka, &mask, vec![KAction::Output(vb)]);
            let mut kb = FlowKey::default();
            kb.set_in_port(vb);
            k.ovs.install_flow(&kb, &mask, vec![KAction::Output(va)]);
        }
        CcMode::XdpRedirect => {
            // Attaching XDP to a veth disables GRO, so the containers'
            // stacks handle every MTU frame individually where the plain
            // kernel path would aggregate; charged below per frame.
            let mut to_b = DevMap::new(1);
            to_b.set(0, host_b).unwrap();
            let fd_b = k.maps.add(Map::Dev(to_b));
            let mut to_a = DevMap::new(1);
            to_a.set(0, host_a).unwrap();
            let fd_a = k.maps.add(Map::Dev(to_a));
            k.attach_xdp(
                host_a,
                ovs_ebpf::programs::redirect_all_to_dev(fd_b, 0),
                XdpMode::Native,
                None,
            )
            .unwrap();
            k.attach_xdp(
                host_b,
                ovs_ebpf::programs::redirect_all_to_dev(fd_a, 0),
                XdpMode::Native,
                None,
            )
            .unwrap();
        }
        CcMode::AfxdpUserspace(opt) => {
            let mut dpn = DpifNetdev::new();
            let aa = ovs_afxdp::AfxdpPort::open(&mut k, host_a, 512, opt).unwrap();
            let ab = ovs_afxdp::AfxdpPort::open(&mut k, host_b, 512, opt).unwrap();
            pa = dpn.add_port("c0", PortType::Afxdp(aa));
            let pb = dpn.add_port("c1", PortType::Afxdp(ab));
            let mask = FlowMask::of_fields(&[&fields::IN_PORT]);
            let mut ka = FlowKey::default();
            ka.set_in_port(pa);
            dpn.ofproto.add_rule(OfRule {
                table: 0,
                priority: 1,
                key: ka,
                mask,
                actions: vec![OfAction::Output(pb)],
                cookie: 0,
            });
            let mut kb = FlowKey::default();
            kb.set_in_port(pb);
            dpn.ofproto.add_rule(OfRule {
                table: 0,
                priority: 1,
                key: kb,
                mask,
                actions: vec![OfAction::Output(pa)],
                cookie: 0,
            });
            dp = Some(dpn);
        }
    }

    // Container A "sends": frames leave its namespace through the veth.
    for f in frames {
        let inner_a = match k.device(host_a).kind {
            ovs_kernel::dev::DeviceKind::Veth { peer } => peer,
            _ => unreachable!(),
        };
        k.transmit(inner_a, f, 3);
        if let Some(dpn) = dp.as_mut() {
            dpn.pmd_poll(&mut k, pa, 0, 8);
        }
    }
    if let CcMode::AfxdpUserspace(opt) = mode {
        if !(offloads.csum && opt.csum_offload()) {
            let ns = (WRITES * payload) as f64 * SW_CSUM_NS_PER_BYTE;
            k.sim.charge(2, ovs_sim::Context::Softirq, ns);
        }
    }
    if mode == CcMode::XdpRedirect {
        // GRO loss: per-MTU-frame stack work the kernel path amortizes.
        let ns = WRITES as f64 * 250.0;
        k.sim.charge(2, ovs_sim::Context::Softirq, ns);
    }
    let busy = k.sim.cpus.bottleneck_ns();
    TcpThroughput {
        gbps: (WRITES * payload) as f64 * 8.0 / busy.max(1.0),
        line_limited: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AFXDP_POLL: DatapathKind = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O5,
        interrupt_mode: false,
    };
    const AFXDP_NO_CSUM: DatapathKind = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O4,
        interrupt_mode: false,
    };
    const AFXDP_INTR: DatapathKind = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O4,
        interrupt_mode: true,
    };

    #[test]
    fn fig8a_orderings() {
        let kernel = fig8a_cross_host(DatapathKind::Kernel, VmAttachment::Tap);
        let intr = fig8a_cross_host(AFXDP_INTR, VmAttachment::Tap);
        let poll_tap = fig8a_cross_host(AFXDP_NO_CSUM, VmAttachment::Tap);
        let vhost = fig8a_cross_host(AFXDP_NO_CSUM, VmAttachment::VhostUser);
        let vhost_csum = fig8a_cross_host(AFXDP_POLL, VmAttachment::VhostUser);
        // Paper: 1.9 < 2.2 < 3.0 < 4.4 < 6.5 Gbps.
        assert!(
            intr.gbps < kernel.gbps,
            "interrupt afxdp {} < kernel {}",
            intr.gbps,
            kernel.gbps
        );
        assert!(
            kernel.gbps < poll_tap.gbps,
            "kernel {} < polling {}",
            kernel.gbps,
            poll_tap.gbps
        );
        assert!(
            poll_tap.gbps < vhost.gbps,
            "tap {} < vhostuser {}",
            poll_tap.gbps,
            vhost.gbps
        );
        assert!(
            vhost.gbps < vhost_csum.gbps,
            "no-csum {} < csum {}",
            vhost.gbps,
            vhost_csum.gbps
        );
        assert!(vhost_csum.gbps < 10.0, "under the 10G wire");
    }

    #[test]
    fn fig8b_tso_dominates() {
        let kernel = fig8b_intra_host(DatapathKind::Kernel, VmAttachment::Tap, Offloads::FULL);
        let vhost_none = fig8b_intra_host(AFXDP_NO_CSUM, VmAttachment::VhostUser, Offloads::NONE);
        let vhost_csum = fig8b_intra_host(AFXDP_POLL, VmAttachment::VhostUser, Offloads::CSUM);
        let vhost_tso = fig8b_intra_host(AFXDP_POLL, VmAttachment::VhostUser, Offloads::FULL);
        // Paper: vhost 3.8 < csum 8.4 < kernel 12 < vhost+TSO 29.
        assert!(vhost_none.gbps < vhost_csum.gbps);
        assert!(vhost_csum.gbps < vhost_tso.gbps);
        assert!(
            kernel.gbps < vhost_tso.gbps,
            "vhostuser+TSO beats the kernel: {} vs {}",
            vhost_tso.gbps,
            kernel.gbps
        );
        assert!(
            kernel.gbps > vhost_none.gbps,
            "kernel TSO beats offload-less vhost"
        );
    }

    #[test]
    fn fig8c_kernel_tso_wins_for_containers() {
        let kern_off = fig8c_containers(CcMode::Kernel, Offloads::NONE);
        let kern_on = fig8c_containers(CcMode::Kernel, Offloads::FULL);
        let xdp = fig8c_containers(CcMode::XdpRedirect, Offloads::NONE);
        let afx = fig8c_containers(CcMode::AfxdpUserspace(OptLevel::O5), Offloads::CSUM);
        // Paper: 5.9 (kernel, no offload) ~ 5.7 (xdp) > 5.0 (afxdp+csum);
        // 49 (kernel full offload) dwarfs everything.
        assert!(
            kern_on.gbps > 3.0 * kern_off.gbps,
            "TSO+csum decisive: {} vs {}",
            kern_on.gbps,
            kern_off.gbps
        );
        assert!(
            kern_on.gbps > xdp.gbps,
            "kernel with offloads beats XDP redirect"
        );
        assert!(
            xdp.gbps > afx.gbps,
            "xdp redirect {} > afxdp userspace {}",
            xdp.gbps,
            afx.gbps
        );
    }
}
