/root/repo/target/debug/examples/nsx_deployment-47f3b077e7e43e0f.d: examples/nsx_deployment.rs

/root/repo/target/debug/examples/nsx_deployment-47f3b077e7e43e0f: examples/nsx_deployment.rs

examples/nsx_deployment.rs:
