//! Deployment topology: one NSX-managed hypervisor, buildable with either
//! datapath architecture, ready to wire back-to-back with a peer.
//!
//! This reproduces the §5.1 testbed: two servers, each running OVS plus an
//! NSX agent that programs ~103k rules, Geneve tunnelling between the
//! VTEPs, and VMs attached over tap (kernel mode) or tap/vhostuser
//! (userspace mode).

use crate::ruleset::{self, NsxConfig, NsxPorts, RulesetStats};
use ovs_afxdp::OptLevel;
use ovs_core::dpif::{DpifNetdev, DpifNetlink, PortNo, PortType};
use ovs_core::pmd::{AssignmentPolicy, PmdSet};
use ovs_core::tunnel::{TunnelConfig, TunnelKind};
use ovs_core::{ControllerSession, FailMode, HealthMonitor};
use ovs_dpdk::VhostUserDev;
use ovs_kernel::dev::{Attachment, DeviceKind, NetDevice};
use ovs_kernel::guest::{Guest, GuestRole, VirtioBackend};
use ovs_kernel::ovs_module::Vport;
use ovs_kernel::Kernel;
use ovs_packet::MacAddr;

/// How VMs attach to the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmAttachment {
    /// Kernel tap + vhost-net (path A in Fig 5).
    Tap,
    /// Shared-memory vhostuser (path B in Fig 5).
    VhostUser,
}

/// Which datapath architecture the host runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatapathKind {
    /// The traditional split design: OVS kernel module + upcalls.
    Kernel,
    /// The paper's design: userspace datapath fed by AF_XDP.
    UserspaceAfxdp { opt: OptLevel, interrupt_mode: bool },
}

/// Host construction parameters.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Host id (1 or 2); tags MACs and IPs.
    pub id: u8,
    /// The peer's host id.
    pub remote_id: u8,
    /// VTEP address of this host.
    pub vtep_ip: [u8; 4],
    /// Uplink NIC speed.
    pub nic_gbps: f64,
    /// Datapath architecture.
    pub datapath: DatapathKind,
    /// VM attachment type (kernel mode always uses taps).
    pub attachment: VmAttachment,
    /// Guest application role.
    pub guest_role: GuestRole,
    /// NSX rule-set configuration.
    pub nsx: NsxConfig,
    /// Host CPU count.
    pub cpus: usize,
    /// Core for PMD / upcall-handler work.
    pub switch_core: usize,
    /// First core for guest vCPUs.
    pub guest_core_base: usize,
}

impl HostConfig {
    /// The paper's §5.1 host: 8 cores + HT (16 threads), 10 GbE uplink.
    pub fn nsx_default(id: u8, datapath: DatapathKind, attachment: VmAttachment) -> Self {
        Self {
            id,
            remote_id: 3 - id,
            vtep_ip: [172, 16, 0, id],
            nic_gbps: 10.0,
            datapath,
            attachment,
            guest_role: GuestRole::Echo,
            nsx: NsxConfig {
                local_vtep: [172, 16, 0, id],
                remote_vtep: [172, 16, 0, 3 - id],
                ..NsxConfig::default()
            },
            cpus: 16,
            switch_core: 1,
            guest_core_base: 8,
        }
    }
}

/// Everything needed to (re)construct the userspace datapath from
/// scratch: the supervisor's restart path replays exactly this, the way
/// a restarted `ovs-vswitchd` re-reads the ovsdb and re-syncs OpenFlow
/// rules from the controller.
#[derive(Clone)]
struct DpBlueprint {
    id: u8,
    remote_id: u8,
    vtep_ip: [u8; 4],
    nsx: NsxConfig,
    opt: OptLevel,
    interrupt_mode: bool,
    uplink_if: u32,
    taps: Vec<Option<u32>>,
    guest_of_vif: Vec<usize>,
    ports: NsxPorts,
}

/// Construct the userspace datapath from its blueprint: ports opened
/// (walking the AF_XDP degradation ladder), the NSX rule set installed,
/// Netlink replica caches synced. Used for initial build and for every
/// supervised restart.
fn build_userspace_dp(kernel: &mut Kernel, bp: &DpBlueprint) -> (DpifNetdev, RulesetStats) {
    let mut dp = DpifNetdev::new();
    let p_up = dp.add_port_afxdp(kernel, "eth0", bp.uplink_if, 4096, bp.opt);
    assert_eq!(p_up, bp.ports.uplink);
    if bp.interrupt_mode {
        if let Some(p) = dp.port_mut(p_up) {
            if let PortType::Afxdp(a) = &mut p.ty {
                for s in &mut a.sockets {
                    s.interrupt_mode = true;
                }
            }
        }
    }
    let p_tun = dp.add_port(
        "gnv0",
        PortType::Tunnel(TunnelConfig {
            kind: TunnelKind::Geneve,
            local_ip: bp.vtep_ip,
        }),
    );
    assert_eq!(p_tun, bp.ports.tunnel);
    for (i, tap) in bp.taps.iter().enumerate() {
        let p = match tap {
            Some(t) => dp.add_port(&format!("tap{i}"), PortType::Tap { ifindex: *t }),
            None => dp.add_port(
                &format!("vhost{i}"),
                PortType::VhostUser(VhostUserDev::new(bp.guest_of_vif[i])),
            ),
        };
        assert_eq!(p, bp.ports.vifs[i]);
    }
    let mut of = ovs_core::Ofproto::new();
    let stats = ruleset::install(&bp.nsx, &bp.ports, bp.id, bp.remote_id, &mut of);
    dp.ofproto = of;
    dp.sync_rtnl(kernel);
    (dp, stats)
}

/// A built hypervisor.
pub struct Host {
    /// The simulated kernel (devices, guests, time, CPUs).
    pub kernel: Kernel,
    /// Userspace datapath (when running `UserspaceAfxdp`). `None` while
    /// a supervised datapath is down (crashed / backing off).
    pub dp: Option<DpifNetdev>,
    /// Kernel-datapath driver (when running `Kernel`).
    pub netlink: Option<DpifNetlink>,
    /// The datapath supervisor, when enabled; routes every PMD poll
    /// through its unwind boundary.
    pub health: Option<HealthMonitor>,
    /// The PMD scheduler driving the userspace datapath's polls (one
    /// PMD thread on `switch_core`, every port rxq assigned to it).
    /// `None` on a kernel-datapath host.
    pub pmds: Option<PmdSet>,
    /// Uplink NIC ifindex.
    pub uplink_if: u32,
    /// Datapath port numbers (same layout for both modes).
    pub ports: NsxPorts,
    /// Guest index per VIF.
    pub guest_of_vif: Vec<usize>,
    /// Rule-set statistics.
    pub ruleset: RulesetStats,
    /// The switch's core.
    pub switch_core: usize,
    /// The modeled NSX controller session, when connected; rides
    /// `ControllerDisconnect` faults and applies the fail-mode ladder.
    pub controller: Option<ControllerSession>,
    blueprint: Option<DpBlueprint>,
}

impl Host {
    /// Build a host per the configuration.
    pub fn build(cfg: &HostConfig) -> Host {
        let mut kernel = Kernel::new(cfg.cpus);
        kernel.config.rss_cores = vec![0];
        kernel.config.host_stack_core = 0;

        let uplink_mac = MacAddr::new(4, 0, 0, 0, 0, cfg.id);
        let uplink_if = kernel.add_device(NetDevice::new(
            "eth0",
            uplink_mac,
            DeviceKind::Phys {
                link_gbps: cfg.nic_gbps,
            },
            1,
        ));
        kernel.add_addr(uplink_if, cfg.vtep_ip, 24);

        let nvifs = cfg.nsx.vms * 2;
        let attachment = match cfg.datapath {
            DatapathKind::Kernel => VmAttachment::Tap,
            _ => cfg.attachment,
        };

        // Create guests and their attachment devices.
        let mut taps = Vec::new();
        let mut guest_of_vif = Vec::new();
        for i in 0..nvifs {
            let gmac = ruleset::vm_mac(cfg.id, i / 2, i % 2);
            let gip = ruleset::vm_ip(cfg.id, i / 2, i % 2);
            let core = cfg.guest_core_base + (i % (cfg.cpus - cfg.guest_core_base).max(1));
            match attachment {
                VmAttachment::Tap => {
                    let tap = kernel.add_device(NetDevice::new(
                        &format!("tap{i}"),
                        gmac,
                        DeviceKind::Tap,
                        1,
                    ));
                    let g = kernel.add_guest(Guest::new(
                        &format!("vm{}-{}", i / 2, i % 2),
                        gmac,
                        gip,
                        cfg.guest_role,
                        VirtioBackend::VhostNet { tap_ifindex: tap },
                        core,
                    ));
                    taps.push(Some(tap));
                    guest_of_vif.push(g);
                }
                VmAttachment::VhostUser => {
                    let g = kernel.add_guest(Guest::new(
                        &format!("vm{}-{}", i / 2, i % 2),
                        gmac,
                        gip,
                        cfg.guest_role,
                        VirtioBackend::VhostUser,
                        core,
                    ));
                    taps.push(None);
                    guest_of_vif.push(g);
                }
            }
        }

        let ports = NsxPorts {
            vifs: (2..(2 + nvifs as PortNo)).collect(),
            tunnel: 1,
            uplink: 0,
        };

        let (dp, netlink, ruleset_stats, blueprint) = match cfg.datapath {
            DatapathKind::UserspaceAfxdp {
                opt,
                interrupt_mode,
            } => {
                let bp = DpBlueprint {
                    id: cfg.id,
                    remote_id: cfg.remote_id,
                    vtep_ip: cfg.vtep_ip,
                    nsx: cfg.nsx.clone(),
                    opt,
                    interrupt_mode,
                    uplink_if,
                    taps: taps.clone(),
                    guest_of_vif: guest_of_vif.clone(),
                    ports: ports.clone(),
                };
                let (dp, stats) = build_userspace_dp(&mut kernel, &bp);
                (Some(dp), None, stats, Some(bp))
            }
            DatapathKind::Kernel => {
                // Kernel datapath: uplink + geneve vport + taps as vports.
                let p_up = kernel.ovs.add_vport(Vport::Netdev { ifindex: uplink_if });
                assert_eq!(p_up, ports.uplink);
                let p_tun = kernel.ovs.add_vport(Vport::Geneve {
                    local_ip: cfg.vtep_ip,
                });
                assert_eq!(p_tun, ports.tunnel);
                kernel.dev_mut(uplink_if).attachment = Attachment::OvsBridge { port: p_up };
                for (i, tap) in taps.iter().enumerate() {
                    let t = tap.expect("kernel mode uses taps");
                    let p = kernel.ovs.add_vport(Vport::Netdev { ifindex: t });
                    assert_eq!(p, ports.vifs[i]);
                    kernel.dev_mut(t).attachment = Attachment::OvsBridge { port: p };
                }
                let mut nl = DpifNetlink::new(cfg.vtep_ip);
                let stats =
                    ruleset::install(&cfg.nsx, &ports, cfg.id, cfg.remote_id, &mut nl.ofproto);
                (None, Some(nl), stats, None)
            }
        };

        // Userspace hosts poll through the PMD scheduler: one PMD
        // thread on the switch core, every datapath port's queue 0
        // assigned to it (uplink, tunnel, vifs — registration order is
        // poll order).
        let pmds = dp.as_ref().map(|_| {
            let mut set = PmdSet::new(&[cfg.switch_core], AssignmentPolicy::RoundRobin);
            for p in 0..(nvifs + 2) as PortNo {
                set.add_rxq(p, 0);
            }
            set.rebalance();
            set
        });

        Host {
            kernel,
            dp,
            netlink,
            health: None,
            pmds,
            uplink_if,
            ports,
            guest_of_vif,
            ruleset: ruleset_stats,
            switch_core: cfg.switch_core,
            controller: None,
            blueprint,
        }
    }

    /// Attach a modeled controller session with the given fail mode. The
    /// standalone fallback rule set is generated from this host's
    /// blueprint (L2 forwarding by destination MAC only). Requires the
    /// userspace datapath.
    pub fn connect_controller(&mut self, fail_mode: FailMode) {
        let bp = self
            .blueprint
            .as_ref()
            .expect("controller session requires the userspace datapath");
        let fallback = ruleset::standalone_fallback(&bp.nsx, &bp.ports, bp.id, bp.remote_id);
        self.controller = Some(ControllerSession::new(fail_mode, fallback, 0));
    }

    /// Put the userspace datapath under [`HealthMonitor`] supervision:
    /// every PMD poll from [`Host::pump`] then runs behind the
    /// supervisor's unwind boundary, and a crashed datapath is rebuilt
    /// from this host's blueprint after the backoff elapses.
    ///
    /// Panics on a kernel-datapath host (there is nothing to supervise:
    /// a kernel datapath bug takes the whole machine, which is the
    /// paper's point).
    pub fn enable_supervision(&mut self, initial_backoff_ns: u64, restart_budget: u64) {
        let bp = self
            .blueprint
            .clone()
            .expect("supervision requires the userspace datapath");
        self.health = Some(HealthMonitor::with_policy(
            move |k| build_userspace_dp(k, &bp).0,
            initial_backoff_ns,
            restart_budget,
        ));
    }

    /// Teach this host how to reach a peer VTEP (ARP + route), as the
    /// underlay control plane would.
    pub fn peer(&mut self, vtep_ip: [u8; 4], mac: MacAddr) {
        ovs_kernel::tools::ip_neigh_add(&mut self.kernel, vtep_ip, mac, "eth0")
            .expect("uplink exists");
        if let Some(dp) = &mut self.dp {
            dp.sync_rtnl(&self.kernel);
        }
    }

    /// The uplink's MAC (for peering).
    pub fn uplink_mac(&self) -> MacAddr {
        self.kernel.device(self.uplink_if).mac
    }

    /// Run switch + guest work until quiescent (bounded): PMD polls /
    /// upcall handling, vhost-net servicing, guest execution, vhostuser
    /// draining. Returns packets moved.
    pub fn pump(&mut self) -> usize {
        let mut total = 0;
        for _round in 0..64 {
            // Fire and clear any timed faults that have come due.
            self.kernel.fault_tick();
            // Advance the controller session against the fault plane
            // before polling, so a disconnect's fail mode is in force
            // for this round's packets.
            if let (Some(ctl), Some(dp)) = (self.controller.as_mut(), self.dp.as_mut()) {
                ctl.tick(dp, &self.kernel.sim.faults, self.kernel.sim.clock.now_ns());
            }
            let mut moved = 0;
            if let Some(h) = &mut self.health {
                // Supervised: every poll crosses the unwind boundary,
                // and polling while down drives the restart clock.
                let pmds = self.pmds.as_mut().expect("userspace host has a scheduler");
                moved += pmds.run_round_supervised(h, &mut self.dp, &mut self.kernel);
            } else if let Some(dp) = &mut self.dp {
                // Poll every port (uplink, taps, vhostuser) through the
                // scheduler, with per-PMD caches swapped in.
                let pmds = self.pmds.as_mut().expect("userspace host has a scheduler");
                moved += pmds.run_round(dp, &mut self.kernel);
            }
            if let Some(nl) = &mut self.netlink {
                moved += nl.handle_upcalls(&mut self.kernel, self.switch_core);
            }
            // Service guests.
            for g in 0..self.kernel.guests.len() {
                match self.kernel.guests[g].backend {
                    VirtioBackend::VhostNet { .. } => {
                        moved += self.kernel.vhost_net_service(g);
                    }
                    VirtioBackend::VhostUser => {
                        moved += self.kernel.run_guest(g);
                        // Frames awaiting the switch's vhost poll count as
                        // pending work for the next round.
                        moved += self.kernel.guests[g].tx_ring.len();
                    }
                }
            }
            if moved == 0 {
                break;
            }
            total += moved;
        }
        total
    }

    /// Take all frames this host has put on the uplink wire.
    pub fn wire_take(&mut self) -> Vec<Vec<u8>> {
        self.kernel
            .dev_mut(self.uplink_if)
            .tx_wire
            .drain(..)
            .collect()
    }

    /// Deliver one frame arriving on the uplink.
    pub fn wire_inject(&mut self, frame: Vec<u8>) {
        self.kernel.receive(self.uplink_if, 0, frame);
    }

    /// One revalidator sweep over the userspace datapath, including the
    /// PMD-side purge of dead-flagged cache entries. Returns `None` on a
    /// kernel-datapath host or while the datapath is down.
    pub fn revalidate(&mut self) -> Option<ovs_core::SweepSummary> {
        let dp = self.dp.as_mut()?;
        let core = self.switch_core;
        match self.pmds.as_mut() {
            Some(pmds) => Some(pmds.revalidate(dp, &mut self.kernel, core)),
            None => Some(dp.revalidate(&mut self.kernel, core)),
        }
    }

    /// Run an `ovs-appctl` command against this host's userspace
    /// datapath (health supervisor and PMD scheduler attached).
    pub fn appctl(&mut self, cmd: &str, args: &[&str]) -> Result<String, String> {
        let Some(dp) = self.dp.as_mut() else {
            return Err("datapath is down".to_string());
        };
        ovs_core::appctl::dispatch_ctl(
            dp,
            &mut self.kernel,
            self.health.as_ref(),
            self.pmds.as_mut(),
            self.controller.as_mut(),
            cmd,
            args,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovs_packet::builder;

    fn small_nsx(id: u8) -> NsxConfig {
        NsxConfig {
            vms: 2,
            tunnels: 4,
            target_rules: 800,
            local_vtep: [172, 16, 0, id],
            ..NsxConfig::default()
        }
    }

    fn small_host(id: u8, datapath: DatapathKind, attachment: VmAttachment) -> Host {
        let mut cfg = HostConfig::nsx_default(id, datapath, attachment);
        cfg.nsx = small_nsx(id);
        Host::build(&cfg)
    }

    fn vm_frame(src_host: u8, dst_host: u8) -> Vec<u8> {
        builder::udp_ipv4_frame(
            ruleset::vm_mac(src_host, 0, 0),
            ruleset::vm_mac(dst_host, 0, 0),
            ruleset::vm_ip(src_host, 0, 0),
            ruleset::vm_ip(dst_host, 0, 0),
            3333,
            4444,
            200,
        )
    }

    /// Wire two hosts back to back and pump until quiet.
    fn run_pair(a: &mut Host, b: &mut Host) {
        for _ in 0..32 {
            let mut moved = a.pump() + b.pump();
            for f in a.wire_take() {
                b.wire_inject(f);
                moved += 1;
            }
            for f in b.wire_take() {
                a.wire_inject(f);
                moved += 1;
            }
            if moved == 0 {
                break;
            }
        }
    }

    #[test]
    fn cross_host_vm_traffic_userspace_datapath() {
        let dpk = DatapathKind::UserspaceAfxdp {
            opt: OptLevel::O5,
            interrupt_mode: false,
        };
        let mut h1 = small_host(1, dpk, VmAttachment::VhostUser);
        let mut h2 = small_host(2, dpk, VmAttachment::VhostUser);
        h1.peer([172, 16, 0, 2], h2.uplink_mac());
        h2.peer([172, 16, 0, 1], h1.uplink_mac());

        // VM0 on host 1 sends to VM0 on host 2.
        let g = h1.guest_of_vif[0];
        h1.kernel.guests[g].tx_ring.push_back(vm_frame(1, 2));
        run_pair(&mut h1, &mut h2);

        let dp1 = h1.dp.as_ref().unwrap();
        assert!(dp1.stats.tunnel_encaps >= 1, "egress was tunnelled");
        let dp2 = h2.dp.as_ref().unwrap();
        assert!(dp2.stats.tunnel_decaps >= 1, "ingress was decapsulated");
        // The destination guest received the frame (echo also replied).
        let g2 = h2.guest_of_vif[0];
        assert!(
            h2.kernel.guests[g2].rx_count >= 1,
            "remote VM got the packet"
        );
        // Firewall tracked the connection on both hosts.
        assert!(!dp1.ct.is_empty());
        assert!(dp1.stats.recirculations >= 2, "three datapath passes");
    }

    #[test]
    fn cross_host_vm_traffic_kernel_datapath() {
        let mut h1 = small_host(1, DatapathKind::Kernel, VmAttachment::Tap);
        let mut h2 = small_host(2, DatapathKind::Kernel, VmAttachment::Tap);
        h1.peer([172, 16, 0, 2], h2.uplink_mac());
        h2.peer([172, 16, 0, 1], h1.uplink_mac());

        let g = h1.guest_of_vif[0];
        h1.kernel.guests[g].tx_ring.push_back(vm_frame(1, 2));
        run_pair(&mut h1, &mut h2);

        assert!(
            h1.kernel.ovs.stats.tunnel_encaps >= 1,
            "kernel dp tunnelled"
        );
        assert!(h2.kernel.ovs.stats.tunnel_decaps >= 1);
        assert!(
            h1.kernel.ovs.flow_count() >= 1,
            "megaflows installed in the kernel"
        );
        let g2 = h2.guest_of_vif[0];
        assert!(
            h2.kernel.guests[g2].rx_count >= 1,
            "remote VM got the packet"
        );
    }

    #[test]
    fn intra_host_vm_to_vm() {
        let dpk = DatapathKind::UserspaceAfxdp {
            opt: OptLevel::O5,
            interrupt_mode: false,
        };
        let mut h1 = small_host(1, dpk, VmAttachment::VhostUser);
        // VM0 iface0 -> VM0 iface1 (both local).
        let f = builder::udp_ipv4_frame(
            ruleset::vm_mac(1, 0, 0),
            ruleset::vm_mac(1, 0, 1),
            ruleset::vm_ip(1, 0, 0),
            ruleset::vm_ip(1, 0, 1),
            1111,
            2222,
            200,
        );
        let g = h1.guest_of_vif[0];
        h1.kernel.guests[g].tx_ring.push_back(f);
        h1.pump();
        let g1 = h1.guest_of_vif[1];
        assert!(h1.kernel.guests[g1].rx_count >= 1, "local delivery");
        assert_eq!(
            h1.dp.as_ref().unwrap().stats.tunnel_encaps,
            0,
            "no tunnel for local"
        );
    }
}
