//! Datapath state snapshot/restore — the hitless-restart substrate.
//!
//! The deployments the paper studies survive daemon upgrades because the
//! datapath keeps forwarding while the userspace process restarts and
//! re-adopts its flows (`ovs-vswitchd`'s `flow-restore-wait` +
//! `ofctl replace-flows` dance). This module is the in-memory analogue:
//! a versioned [`DpSnapshot`] serializes every installed megaflow — key,
//! mask, actions, hit counters, and the ukey pushback high-water marks —
//! plus every tracked conntrack connection, so a rebuilt
//! [`crate::dpif::DpifNetdev`] can resume forwarding *from the restored
//! megaflows* while upcalls are gated ([`RestoreState`]) and the
//! revalidator reconciles each flow against the repopulated rule table
//! (adopt or orphan, bounded per sweep).
//!
//! Invariants the restart window must preserve:
//! - **Ledger**: `offered == delivered + Σ(drops)` at every virtual-clock
//!   instant. Gated upcalls drop with the named `upcalls_gated` counter,
//!   never silently.
//! - **Stats pushback resumes exactly**: the snapshot pushes outstanding
//!   stats to the old rules first, carries `pushed_*` into the restored
//!   ukey, and the first post-adoption push credits the new rules
//!   precisely the packets forwarded since the snapshot.
//! - **Determinism**: flows and connections are sorted by key hash, so
//!   the same run produces a byte-identical snapshot.

use crate::dpif::DpAction;
use ovs_ct::{Conn, ConnKey};
use ovs_packet::{FlowKey, FlowMask};

/// Bumped whenever [`FlowRecord`]/[`DpSnapshot`] change shape; restore
/// refuses snapshots from a different layout generation.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One installed megaflow, serialized.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Masked key — the datapath flow's identity.
    pub key: FlowKey,
    /// The wildcard mask it was installed under.
    pub mask: FlowMask,
    /// Datapath actions, re-executed verbatim until reconciliation.
    pub actions: Vec<DpAction>,
    /// Lifetime hit counter at snapshot time.
    pub hits: u64,
    /// Lifetime byte counter at snapshot time.
    pub bytes: u64,
    /// Sim-time of the last hit.
    pub used_ns: u64,
    /// Sim-time of installation (hard-timeout base survives restart).
    pub created_ns: u64,
    /// Ukey pushback high-water marks (equal to `hits`/`bytes` after the
    /// pre-snapshot stats flush; kept separate for forward compatibility).
    pub pushed_packets: u64,
    pub pushed_bytes: u64,
}

/// A complete, versioned datapath state capture: every installed
/// megaflow and every tracked connection, deterministically ordered.
#[derive(Debug, Clone, Default)]
pub struct DpSnapshot {
    pub version: u32,
    /// Virtual-clock instant of the capture.
    pub taken_at_ns: u64,
    pub flows: Vec<FlowRecord>,
    pub conns: Vec<(ConnKey, Conn)>,
}

impl DpSnapshot {
    /// Rough in-memory footprint stand-in (record counts); what a wire
    /// format would size itself by.
    pub fn len(&self) -> usize {
        self.flows.len() + self.conns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.flows.is_empty() && self.conns.is_empty()
    }
}

/// How many restored flows one revalidator sweep may reconcile
/// (translate + adopt/orphan). Bounds the per-sweep slow-path work so
/// reconvergence never starves the fast path — exactly the reasoning
/// behind OVS's bounded revalidator dumps.
pub const RECONCILE_BUDGET_PER_SWEEP: usize = 256;

/// Live `flow-restore-wait` state riding inside the datapath.
#[derive(Debug, Clone, Default)]
pub struct RestoreState {
    /// While set, megaflow misses are gated (dropped with the
    /// `upcalls_gated` counter) instead of upcalled: the rule table is
    /// still being repopulated, so translations would be wrong, and the
    /// whole point is that restored megaflows keep forwarding.
    pub wait: bool,
    /// The gate lifts itself at this instant even if nobody calls
    /// `flow-restore/complete` (a crashed restorer must not wedge the
    /// slow path forever).
    pub gate_until_ns: u64,
    /// Virtual-clock instant of the restore.
    pub restored_at_ns: u64,
    /// Megaflows re-installed from the snapshot.
    pub restored_flows: u64,
    /// Conntrack entries re-inserted from the snapshot.
    pub restored_conns: u64,
    /// Cache-tier hits (EMC+SMC+dpcls) at restore time; the delta at
    /// gate-completion is the packets forwarded from restored flows
    /// while upcalls were gated — the hitless-restart proof.
    pub hits_at_restore: u64,
    /// Packets forwarded from restored megaflows during the gate window
    /// (finalized when the gate completes).
    pub gated_forwarded: u64,
    /// When the gate lifted; `None` while waiting or if never restored.
    pub completed_at_ns: Option<u64>,
    /// Per-sweep reconciliation bound.
    pub reconcile_budget: usize,
}

impl RestoreState {
    /// Fresh gate state for a restore at `now_ns`.
    pub fn begin(now_ns: u64, gate_ns: u64) -> Self {
        Self {
            wait: true,
            gate_until_ns: now_ns.saturating_add(gate_ns),
            restored_at_ns: now_ns,
            reconcile_budget: RECONCILE_BUDGET_PER_SWEEP,
            ..Default::default()
        }
    }

    /// Whether a restore ever happened (gate active or already lifted).
    pub fn active_or_done(&self) -> bool {
        self.wait || self.completed_at_ns.is_some() || self.restored_flows > 0
    }
}
