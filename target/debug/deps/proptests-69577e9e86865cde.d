/root/repo/target/debug/deps/proptests-69577e9e86865cde.d: crates/ebpf/tests/proptests.rs

/root/repo/target/debug/deps/proptests-69577e9e86865cde: crates/ebpf/tests/proptests.rs

crates/ebpf/tests/proptests.rs:
