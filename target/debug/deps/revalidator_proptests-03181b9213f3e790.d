/root/repo/target/debug/deps/revalidator_proptests-03181b9213f3e790.d: crates/core/tests/revalidator_proptests.rs Cargo.toml

/root/repo/target/debug/deps/librevalidator_proptests-03181b9213f3e790.rmeta: crates/core/tests/revalidator_proptests.rs Cargo.toml

crates/core/tests/revalidator_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
