//! Umbrella crate re-exporting the whole `ovs-afxdp-rs` workspace.
//!
//! Examples and cross-crate integration tests depend on this crate; library
//! users normally depend on the individual crates instead.

pub use ovs_afxdp as afxdp;
pub use ovs_core as ovs;
pub use ovs_dpdk as dpdk;
pub use ovs_ebpf as ebpf;
pub use ovs_kernel as kernel;
pub use ovs_nsx as nsx;
pub use ovs_obs as obs;
pub use ovs_packet as packet;
pub use ovs_ring as ring;
pub use ovs_sim as sim;
pub use ovs_tgen as tgen;
