/root/repo/target/debug/deps/ovs_afxdp_repro-e754264084855f1d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libovs_afxdp_repro-e754264084855f1d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
