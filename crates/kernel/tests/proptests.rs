//! Property tests for the kernel substrate: conntrack invariants, and
//! total robustness of the RX path against arbitrary bytes.

use ovs_kernel::conntrack::{apply_rewrite, ConnKey, CtAction, CtTable, NatRewrite, NatSpec};
use ovs_kernel::dev::{DeviceKind, NetDevice, XdpMode};
use ovs_kernel::Kernel;
use ovs_packet::dp_packet::ct_state;
use ovs_packet::MacAddr;
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = ConnKey> {
    (
        any::<u16>(),
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(zone, s, d, sp, dp, proto)| ConnKey {
            zone: zone % 8,
            src_ip: s,
            dst_ip: d,
            src_port: sp,
            dst_port: dp,
            proto: proto % 3 + 6, // 6, 7, 8 — includes TCP
        })
}

proptest! {
    /// A committed connection's reply is always recognized as REPLY and
    /// establishes the connection, regardless of tuple values.
    #[test]
    fn reply_always_recognized(key in arb_key()) {
        // Skip degenerate self-connections where both directions collide.
        prop_assume!(key.reversed() != key);
        let mut ct = CtTable::new();
        let v1 = ct.process(key, CtAction::commit(key.zone), 0);
        prop_assert!(v1.state & ct_state::NEW != 0);
        let v2 = ct.process(key.reversed(), CtAction::track(key.zone), 1);
        prop_assert!(v2.state & ct_state::REPLY != 0, "state {:02x}", v2.state);
        prop_assert!(v2.state & ct_state::ESTABLISHED != 0);
        // And the original direction is then established.
        let v3 = ct.process(key, CtAction::track(key.zone), 2);
        prop_assert!(v3.state & ct_state::ESTABLISHED != 0);
        prop_assert_eq!(ct.len(), 1);
    }

    /// Connections in different zones never interfere.
    #[test]
    fn zones_never_alias(key in arb_key()) {
        prop_assume!(key.zone != 7);
        let mut ct = CtTable::new();
        ct.process(key, CtAction::commit(key.zone), 0);
        let other_zone = ct.process(key, CtAction::track(7), 1);
        prop_assert!(other_zone.state & ct_state::NEW != 0, "other zone sees a new flow");
    }

    /// DNAT forward + reply rewrites compose to the identity on the wire:
    /// what the client sent is exactly restored on the reply path.
    #[test]
    fn nat_roundtrip_is_identity(
        client_ip in any::<[u8; 4]>(),
        vip in any::<[u8; 4]>(),
        backend in any::<[u8; 4]>(),
        cport in 1024u16..65000,
        vport in 1u16..1024,
        bport in 1024u16..65000,
    ) {
        prop_assume!(vip != backend && client_ip != vip);
        let mut ct = CtTable::new();
        let key = ConnKey {
            zone: 1, src_ip: client_ip, dst_ip: vip,
            src_port: cport, dst_port: vport, proto: 17,
        };
        let nat = NatSpec::Dnat { ip: backend, port: Some(bport) };
        let v = ct.process(key, CtAction { zone: 1, commit: true, mark: None, nat: Some(nat) }, 0);
        prop_assert_eq!(v.nat, Some(NatRewrite::Dst { ip: backend, port: Some(bport) }));
        // Reply from the backend:
        let reply = ConnKey {
            zone: 1, src_ip: backend, dst_ip: client_ip,
            src_port: bport, dst_port: cport, proto: 17,
        };
        let v = ct.process(reply, CtAction::track(1), 1);
        prop_assert_eq!(
            v.nat,
            Some(NatRewrite::Src { ip: vip, port: Some(vport) }),
            "reply restores exactly the client's original destination"
        );
    }

    /// apply_rewrite keeps frames parseable with valid checksums for any
    /// rewrite target.
    #[test]
    fn apply_rewrite_preserves_validity(
        ip in any::<[u8; 4]>(),
        port in any::<u16>(),
        src in prop::bool::ANY,
    ) {
        let mut f = ovs_packet::builder::udp_ipv4(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1111,
            2222,
            b"data",
        );
        let rw = if src {
            NatRewrite::Src { ip, port: Some(port) }
        } else {
            NatRewrite::Dst { ip, port: Some(port) }
        };
        prop_assert!(apply_rewrite(&mut f, &rw));
        let p = ovs_packet::ipv4::Ipv4Packet::new_checked(&f[14..]).unwrap();
        prop_assert!(p.verify_checksum());
        let u = ovs_packet::udp::UdpDatagram::new_checked(p.payload()).unwrap();
        prop_assert!(u.verify_checksum_ipv4(p.src(), p.dst()));
    }

    /// The full driver RX path — XDP program included — is total on
    /// arbitrary bytes: garbage frames never panic the kernel.
    #[test]
    fn rx_path_is_total_on_garbage(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            1..20
        ),
        queue in 0usize..4,
    ) {
        let mut k = Kernel::new(4);
        let eth0 = k.add_device(NetDevice::new(
            "eth0",
            MacAddr::new(2, 0, 0, 0, 0, 1),
            DeviceKind::Phys { link_gbps: 10.0 },
            4,
        ));
        k.add_addr(eth0, [10, 0, 0, 1], 24);
        // A parsing XDP program makes this a real robustness test.
        let l2 = k.maps.add(ovs_ebpf::maps::Map::Hash(ovs_ebpf::maps::HashMap::new(8, 8, 16)));
        k.attach_xdp(eth0, ovs_ebpf::programs::task_c_parse_lookup_drop(l2), XdpMode::Native, None)
            .unwrap();
        for f in frames {
            let _ = k.receive(eth0, queue, f);
        }
    }

    /// Conntrack expiry conserves the zone budget exactly.
    #[test]
    fn expiry_conserves_zone_budget(keys in proptest::collection::vec(arb_key(), 1..40)) {
        let mut ct = CtTable::new();
        ct.set_all_timeouts(100);
        for (i, k) in keys.iter().enumerate() {
            ct.process(*k, CtAction::commit(k.zone), i as u64);
        }
        let live = ct.len();
        let removed = ct.expire(1_000_000);
        prop_assert_eq!(removed, live);
        prop_assert!(ct.is_empty());
    }
}
