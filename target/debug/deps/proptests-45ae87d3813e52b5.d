/root/repo/target/debug/deps/proptests-45ae87d3813e52b5.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-45ae87d3813e52b5: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
