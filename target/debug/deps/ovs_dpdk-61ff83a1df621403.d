/root/repo/target/debug/deps/ovs_dpdk-61ff83a1df621403.d: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

/root/repo/target/debug/deps/libovs_dpdk-61ff83a1df621403.rlib: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

/root/repo/target/debug/deps/libovs_dpdk-61ff83a1df621403.rmeta: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

crates/dpdk/src/lib.rs:
crates/dpdk/src/af_packet.rs:
crates/dpdk/src/ethdev.rs:
crates/dpdk/src/mbuf.rs:
crates/dpdk/src/testpmd.rs:
crates/dpdk/src/vhost.rs:
