//! An AF_XDP port: one socket per NIC queue plus the OVS hook program.
//!
//! This is what `ovs-vswitchd` sets up when a port of type `afxdp` is
//! added to a bridge (§4): it creates an xskmap, binds one XSK per
//! configured queue, and loads the redirect program onto the device —
//! and unloads it when the port is removed.

use crate::socket::{OptLevel, XskSocket};
use ovs_ebpf::maps::{Map, XskMap};
use ovs_ebpf::programs;
use ovs_kernel::dev::XdpMode;
use ovs_kernel::Kernel;
use ovs_obs::coverage;
use ovs_ring::PacketBatch;

/// Which rung of the AF_XDP degradation ladder the port is running on
/// (§3.5: zero-copy → copy/skb mode; the tap rung lives above this
/// type, in the datapath's port fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AfxdpMode {
    /// Native driver XDP, zero-copy umem.
    ZeroCopy,
    /// Generic (skb) XDP, copy mode.
    Copy,
}

impl AfxdpMode {
    /// The `dpif-netdev/port-status` label.
    pub fn label(self) -> &'static str {
        match self {
            AfxdpMode::ZeroCopy => "zero-copy",
            AfxdpMode::Copy => "copy",
        }
    }
}

/// A multi-queue AF_XDP port.
#[derive(Debug)]
pub struct AfxdpPort {
    /// Device the port drives.
    pub ifindex: u32,
    /// One socket per queue.
    pub sockets: Vec<XskSocket>,
    /// The xskmap fd backing the hook program.
    pub xskmap_fd: u32,
    /// The rung of the degradation ladder in use.
    pub mode: AfxdpMode,
    /// Whether the driver supported zero-copy but attach was rejected —
    /// i.e. `mode` is a degradation rather than the driver's best.
    pub degraded: bool,
}

impl AfxdpPort {
    /// Open an AF_XDP port on `ifindex` with one socket per device queue,
    /// installing the OVS hook program. Walks the degradation ladder:
    /// native/zero-copy when the driver supports it, falling back to
    /// generic/copy (skb) mode when it doesn't or when the driver rejects
    /// the attach (§3.5 "Limitations"). Errors only when even generic
    /// attach fails; the caller's next rung is a tap port.
    pub fn open(
        kernel: &mut Kernel,
        ifindex: u32,
        nframes_per_queue: usize,
        opt: OptLevel,
    ) -> Result<Self, String> {
        let (num_queues, native) = {
            let d = kernel.device(ifindex);
            (d.num_queues, d.caps.native_xdp)
        };
        let mut xmap = XskMap::new(num_queues);
        let mut sockets = Vec::with_capacity(num_queues);
        for q in 0..num_queues {
            let sock =
                XskSocket::bind_with_mode(kernel, ifindex, q, nframes_per_queue, opt, native);
            xmap.set(q as u32, sock.xsk_id)
                .map_err(|e| format!("xskmap: {e:?}"))?;
            sockets.push(sock);
        }
        let xskmap_fd = kernel.maps.add(Map::Xsk(xmap));

        let mut mode = if native {
            AfxdpMode::ZeroCopy
        } else {
            AfxdpMode::Copy
        };
        let mut degraded = false;
        let attach = if native {
            kernel.attach_xdp(
                ifindex,
                programs::ovs_xsk_redirect(xskmap_fd),
                XdpMode::Native,
                None,
            )
        } else {
            Err("driver lacks native XDP support".to_string())
        };
        if let Err(first) = attach {
            // Next rung: generic (skb) copy mode. Only count it as a
            // degradation when the driver *could* have done better.
            if native {
                degraded = true;
                coverage!("xsk_degraded_mode");
            }
            mode = AfxdpMode::Copy;
            kernel
                .attach_xdp(
                    ifindex,
                    programs::ovs_xsk_redirect(xskmap_fd),
                    XdpMode::Generic,
                    None,
                )
                .map_err(|second| format!("{first}; generic fallback: {second}"))?;
            for s in &mut sockets {
                s.set_zero_copy(false);
            }
        }
        Ok(Self {
            ifindex,
            sockets,
            xskmap_fd,
            mode,
            degraded,
        })
    }

    /// Close the port: detach the hook program, as OVS does when the port
    /// is removed from the bridge. Packets still parked on the sockets'
    /// rings are gone with the socket — losable only *with a count*
    /// (`xsk_close_flushed`), which is what lets a crash-restart cycle
    /// account for every frame it took down with it.
    pub fn close(&mut self, kernel: &mut Kernel) {
        kernel.detach_xdp(self.ifindex);
        let flushed: u64 = self.sockets.iter().map(|s| s.pending_frames() as u64).sum();
        if flushed > 0 {
            coverage!("xsk_close_flushed", flushed);
        }
        // Tear down the kernel-side bindings too: once the parked frames
        // are counted, nothing (stale xskmap entries, a later recovery
        // kick) may resurrect them — that would count them twice.
        for s in &self.sockets {
            kernel.close_xsk(s.xsk_id);
        }
    }

    /// Number of queues/sockets.
    pub fn num_queues(&self) -> usize {
        self.sockets.len()
    }

    /// Receive a burst from one queue, charging `core`.
    pub fn rx_burst(&mut self, kernel: &mut Kernel, queue: usize, core: usize) -> PacketBatch {
        self.sockets[queue].rx_burst(kernel, core)
    }

    /// Transmit a batch on one queue, charging `core`.
    pub fn tx_burst(
        &mut self,
        kernel: &mut Kernel,
        queue: usize,
        core: usize,
        batch: PacketBatch,
    ) -> usize {
        self.sockets[queue].tx_burst(kernel, core, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovs_kernel::dev::{DeviceKind, NetDevice};
    use ovs_kernel::RxOutcome;
    use ovs_packet::{builder, MacAddr};

    const M1: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const M2: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);

    fn frame() -> Vec<u8> {
        builder::udp_ipv4_frame(M2, M1, [10, 0, 0, 2], [10, 0, 0, 1], 1, 2, 64)
    }

    #[test]
    fn multi_queue_port_routes_by_queue() {
        let mut k = Kernel::new(8);
        let eth0 = k.add_device(NetDevice::new(
            "eth0",
            M1,
            DeviceKind::Phys { link_gbps: 25.0 },
            4,
        ));
        let mut port = AfxdpPort::open(&mut k, eth0, 64, OptLevel::O5).unwrap();
        assert_eq!(port.num_queues(), 4);
        for q in 0..4 {
            let out = k.receive(eth0, q, frame());
            assert!(matches!(out, RxOutcome::ToXsk(_)), "queue {q}: {out:?}");
        }
        for q in 0..4 {
            let b = port.rx_burst(&mut k, q, 1);
            assert_eq!(b.len(), 1, "each queue's socket got its packet");
        }
    }

    #[test]
    fn generic_fallback_when_no_native_xdp() {
        let mut k = Kernel::new(2);
        let eth0 = k.add_device(NetDevice::new(
            "eth0",
            M1,
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        k.dev_mut(eth0).caps.native_xdp = false; // old driver
        let mut port = AfxdpPort::open(&mut k, eth0, 32, OptLevel::O5).unwrap();
        k.receive(eth0, 0, frame());
        let b = port.rx_burst(&mut k, 0, 0);
        assert_eq!(b.len(), 1, "copy-mode fallback still works");
    }

    #[test]
    fn close_detaches_hook() {
        let mut k = Kernel::new(2);
        let eth0 = k.add_device(NetDevice::new(
            "eth0",
            M1,
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        let mut port = AfxdpPort::open(&mut k, eth0, 32, OptLevel::O5).unwrap();
        assert!(k.device(eth0).xdp.is_some());
        port.close(&mut k);
        assert!(k.device(eth0).xdp.is_none());
        // Traffic now goes to the host stack instead of the socket.
        assert_eq!(k.receive(eth0, 0, frame()), RxOutcome::ToHost);
    }
}
