//! Coverage counters, modeled on OVS's `COVERAGE_INC` /
//! `ovs-appctl coverage/show`.
//!
//! A coverage counter is a named, process-wide event count that is cheap
//! enough to bump on every packet. Counters register themselves on first
//! use — callers just write `coverage!("emc_hit")` — and `coverage/show`
//! renders totals plus rates over the last epochs.
//!
//! The registry is thread-local: the workspace's datapaths are
//! single-threaded (`Rc`-based), and the Rust test harness runs each
//! test on its own thread, which gives tests isolation for free.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Number of closed epochs retained for the rate window.
pub const EPOCH_WINDOW: usize = 5;

#[derive(Debug, Default, Clone)]
struct Counter {
    total: u64,
    /// Total at the moment the current epoch opened.
    epoch_open: u64,
    /// Deltas of the most recent closed epochs, newest first.
    window: Vec<u64>,
}

thread_local! {
    static REGISTRY: RefCell<BTreeMap<&'static str, Counter>> =
        const { RefCell::new(BTreeMap::new()) };
    /// Count of closed epochs, and the sim-time length of the last one
    /// (for per-second rates when the caller supplies durations).
    static EPOCHS: RefCell<u64> = const { RefCell::new(0) };
}

/// Bump `name` by one.
#[inline]
pub fn inc(name: &'static str) {
    add(name, 1);
}

/// Bump `name` by `n`.
#[inline]
pub fn add(name: &'static str, n: u64) {
    REGISTRY.with(|r| r.borrow_mut().entry(name).or_default().total += n);
}

/// Current total for `name` (0 if never bumped).
pub fn total(name: &'static str) -> u64 {
    REGISTRY.with(|r| r.borrow().get(name).map(|c| c.total).unwrap_or(0))
}

/// Close the current epoch: each counter's delta since the last call is
/// pushed into its rate window. Pollers call this once per quiesce
/// period (OVS ties this to the main loop; here the appctl layer or a
/// scenario driver decides).
pub fn epoch() {
    REGISTRY.with(|r| {
        for c in r.borrow_mut().values_mut() {
            let delta = c.total - c.epoch_open;
            c.epoch_open = c.total;
            c.window.insert(0, delta);
            c.window.truncate(EPOCH_WINDOW);
        }
    });
    EPOCHS.with(|e| *e.borrow_mut() += 1);
}

/// Number of closed epochs so far.
pub fn epochs() -> u64 {
    EPOCHS.with(|e| *e.borrow())
}

/// Forget every counter and epoch (test isolation / `pmd-stats-clear`).
pub fn reset() {
    REGISTRY.with(|r| r.borrow_mut().clear());
    EPOCHS.with(|e| *e.borrow_mut() = 0);
}

/// Render the `coverage/show` text: one line per counter that has ever
/// fired, sorted by name, with the total, the delta in the current
/// (open) epoch, and the average over the last closed epochs.
pub fn show() -> String {
    REGISTRY.with(|r| {
        let reg = r.borrow();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>12}\n",
            "counter", "total", "epoch", "avg/epoch"
        ));
        for (name, c) in reg.iter() {
            let open = c.total - c.epoch_open;
            let avg = if c.window.is_empty() {
                open as f64
            } else {
                c.window.iter().sum::<u64>() as f64 / c.window.len() as f64
            };
            out.push_str(&format!(
                "{:<28} {:>12} {:>12} {:>12.1}\n",
                name, c.total, open, avg
            ));
        }
        if reg.is_empty() {
            out.push_str("(no events)\n");
        }
        out
    })
}

/// Snapshot of all counters, for wiring into `nstat`-style tools.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    REGISTRY.with(|r| r.borrow().iter().map(|(n, c)| (*n, c.total)).collect())
}

/// `coverage!("name")` / `coverage!("name", n)` — the `COVERAGE_INC`
/// equivalent.
#[macro_export]
macro_rules! coverage {
    ($name:literal) => {
        $crate::coverage::inc($name)
    };
    ($name:literal, $n:expr) => {
        $crate::coverage::add($name, $n as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_epochs() {
        reset();
        inc("a");
        inc("a");
        add("b", 10);
        assert_eq!(total("a"), 2);
        assert_eq!(total("b"), 10);
        assert_eq!(total("never"), 0);
        epoch();
        inc("a");
        let text = show();
        assert!(text.contains('a'), "{text}");
        // 'a': total 3, open epoch delta 1, one closed epoch of 2.
        let a_line = text.lines().find(|l| l.starts_with("a ")).unwrap();
        assert!(a_line.contains('3') && a_line.contains('1'), "{a_line}");
        assert_eq!(epochs(), 1);
        reset();
        assert_eq!(total("a"), 0);
    }

    #[test]
    fn macro_forms() {
        reset();
        coverage!("evt");
        coverage!("evt", 4);
        assert_eq!(total("evt"), 5);
        reset();
    }

    #[test]
    fn window_caps_at_five() {
        reset();
        for _ in 0..10 {
            inc("w");
            epoch();
        }
        let snap = snapshot();
        assert_eq!(snap, vec![("w", 10)]);
        reset();
    }
}
