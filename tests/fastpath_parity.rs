//! Parity between the scalar and batched receive paths: `process_burst`
//! must make bit-for-bit the same forwarding decisions — and count the
//! same datapath statistics — as the packets run one at a time through
//! `process_packet`, for any traffic mix and any burst partitioning.
//! Batching may only change *when* work happens (amortized per-batch
//! costs), never *what* the datapath does.
//!
//! Also pins the SMC lifecycle guarantee the revalidator relies on: once
//! a sweep invalidates a megaflow, the signature match cache must never
//! serve it again.

use ovs_afxdp_repro::afxdp::{AfxdpPort, OptLevel};
use ovs_afxdp_repro::kernel::dev::{DeviceKind, NetDevice};
use ovs_afxdp_repro::kernel::Kernel;
use ovs_afxdp_repro::ovs::dpif::{DpifNetdev, PortType};
use ovs_afxdp_repro::ovs::ofproto::{OfAction, OfRule, Ofproto};
use ovs_afxdp_repro::packet::flow::{fields, FlowKey, FlowMask};
use ovs_afxdp_repro::packet::{builder, DpPacket, MacAddr};
use proptest::prelude::*;

const N_PORTS: u32 = 4;

/// The multi-table pipeline from the datapath-parity suite: traffic from
/// port 0 is classified by destination /16 (with an overlapping /17 at
/// higher priority), VLAN-tagged, and delivered to ports 1–3 or dropped.
fn pipeline() -> Ofproto {
    let mut of = Ofproto::new();
    let mut k = FlowKey::default();
    k.set_in_port(0);
    of.add_rule(OfRule {
        table: 0,
        priority: 10,
        key: k,
        mask: FlowMask::of_fields(&[&fields::IN_PORT]),
        actions: vec![OfAction::SetMetadata(7), OfAction::Goto(1)],
        cookie: 1,
    });
    let dests: [([u8; 4], u8, i32, u32); 4] = [
        ([10, 1, 0, 0], 16, 10, 1),
        ([10, 2, 0, 0], 16, 10, 2),
        ([10, 2, 128, 0], 17, 20, 3),
        ([10, 3, 0, 0], 16, 10, 3),
    ];
    for (ip, plen, prio, port) in dests {
        let mut key = FlowKey::default();
        key.set_nw_dst_v4(ip);
        key.set_metadata(7);
        let mut mask = FlowMask::of_fields(&[&fields::METADATA]);
        mask.set_nw_dst_v4_prefix(plen);
        of.add_rule(OfRule {
            table: 1,
            priority: prio,
            key,
            mask,
            actions: vec![OfAction::PushVlan(100), OfAction::Output(port)],
            cookie: 2,
        });
    }
    of
}

struct Rig {
    kernel: Kernel,
    dp: DpifNetdev,
    nics: Vec<u32>,
}

fn build_rig(smc: bool) -> Rig {
    let mut kernel = Kernel::new(8);
    let mut dp = DpifNetdev::new();
    let mut nics = Vec::new();
    for p in 0..N_PORTS {
        let nic = kernel.add_device(NetDevice::new(
            &format!("eth{p}"),
            MacAddr::new(2, 0, 0, 0, 0, p as u8 + 1),
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        let port = dp.add_port(
            &format!("eth{p}"),
            PortType::Afxdp(AfxdpPort::open(&mut kernel, nic, 512, OptLevel::O5).unwrap()),
        );
        assert_eq!(port, p);
        nics.push(nic);
    }
    dp.ofproto = pipeline();
    dp.smc_enable = smc;
    // Deterministic EMC insertion so both paths populate the cache on
    // exactly the same packets.
    dp.set_emc_insert_inv_prob(1);
    Rig { kernel, dp, nics }
}

impl Rig {
    /// Drain every NIC's wire into per-port frame lists.
    fn drain(&mut self, out: &mut [Vec<Vec<u8>>]) {
        for (p, &nic) in self.nics.iter().enumerate() {
            while let Some(f) = self.kernel.dev_mut(nic).tx_wire.pop_front() {
                out[p].push(f);
            }
        }
    }
}

/// Run `frames` through a rig, partitioned into `bursts` (scalar when
/// `burst_of` yields 1s). Returns per-port delivered frames (sorted —
/// batching reorders across flows within a burst, never within one) and
/// the final datapath counters.
fn run(
    frames: &[Vec<u8>],
    bursts: &[usize],
    smc: bool,
    scalar: bool,
) -> (Vec<Vec<Vec<u8>>>, ovs_afxdp_repro::ovs::dpif::DpifStats) {
    let mut rig = build_rig(smc);
    let mut out: Vec<Vec<Vec<u8>>> = vec![Vec::new(); N_PORTS as usize];
    let mut it = frames.iter();
    'outer: for &n in bursts.iter().cycle() {
        let mut chunk = Vec::new();
        for _ in 0..n.max(1) {
            let Some(f) = it.next() else {
                break;
            };
            let mut p = DpPacket::from_data(f);
            p.in_port = 0;
            chunk.push(p);
        }
        if chunk.is_empty() {
            break 'outer;
        }
        if scalar {
            for p in chunk {
                rig.dp.process_packet(&mut rig.kernel, p, 0);
            }
        } else {
            rig.dp.process_burst(&mut rig.kernel, chunk, 0);
        }
        rig.drain(&mut out);
    }
    for v in &mut out {
        v.sort();
    }
    (out, rig.dp.stats)
}

fn frame(dst: [u8; 4], sport: u16) -> Vec<u8> {
    builder::udp_ipv4_frame(
        MacAddr::new(2, 0, 0, 0, 9, 9),
        MacAddr::new(2, 0, 0, 0, 0, 1),
        [172, 16, 9, 9],
        dst,
        sport,
        53,
        64,
    )
}

proptest! {
    /// Any frame mix, any burst partitioning: the batched pipeline (with
    /// and without the SMC tier) forwards the same bytes to the same
    /// ports as the scalar loop, and — SMC off, so the cache hierarchy
    /// is identical — counts exactly the same statistics.
    #[test]
    fn batched_pipeline_matches_scalar(
        picks in proptest::collection::vec((0u8..5, 0u8..=255, 1u8..=254, 0u16..8), 1..80),
        bursts in proptest::collection::vec(1usize..=32, 1..8),
    ) {
        let frames: Vec<Vec<u8>> = picks
            .iter()
            .map(|&(b, c, d, s)| frame([10, b, c, d], 1000 + s * 7))
            .collect();
        let ones = vec![1usize];

        let (fwd_scalar, stats_scalar) = run(&frames, &ones, false, true);
        let (fwd_batched, stats_batched) = run(&frames, &bursts, false, false);
        let (fwd_smc, stats_smc) = run(&frames, &bursts, true, false);

        prop_assert_eq!(&fwd_scalar, &fwd_batched, "forwarding diverged");
        prop_assert_eq!(stats_scalar, stats_batched, "stats diverged");
        prop_assert_eq!(&fwd_scalar, &fwd_smc, "SMC changed a forwarding decision");
        // The SMC shifts hits between cache tiers but never invents or
        // loses a packet.
        prop_assert_eq!(
            stats_smc.emc_hits + stats_smc.smc_hits + stats_smc.megaflow_hits
                + stats_smc.upcalls,
            stats_scalar.emc_hits + stats_scalar.megaflow_hits + stats_scalar.upcalls
        );
        prop_assert_eq!(stats_smc.tx_packets, stats_scalar.tx_packets);
        prop_assert_eq!(stats_smc.dropped, stats_scalar.dropped);
    }
}

/// A sweep that invalidates a megaflow must take it out of the SMC's
/// reach at once: after the rule change + `revalidate_changed`, the old
/// entry is never served again — the next packet upcalls and follows the
/// new pipeline.
#[test]
fn sweep_invalidated_flows_never_served_from_smc() {
    let mut rig = build_rig(true);
    let f = frame([10, 1, 7, 7], 4321);

    // Warm: first packet upcalls and installs; the second is served from
    // a cache tier and the flow's SMC entry exists.
    for _ in 0..2 {
        let mut p = DpPacket::from_data(&f);
        p.in_port = 0;
        rig.dp.process_packet(&mut rig.kernel, p, 0);
    }
    assert_eq!(rig.dp.stats.upcalls, 1);
    assert!(rig.dp.smc_count() > 0, "warm flow cached in the SMC");
    let mut out: Vec<Vec<Vec<u8>>> = vec![Vec::new(); N_PORTS as usize];
    rig.drain(&mut out);
    assert_eq!(out[1].len(), 2, "warm traffic delivered to port 1");

    // Control plane change: a higher-priority rule now drops this
    // destination. The sweep re-translates, sees the actions changed,
    // and kills the megaflow — which must also purge it from the SMC.
    let mut key = FlowKey::default();
    key.set_nw_dst_v4([10, 1, 0, 0]);
    key.set_metadata(7);
    let mut mask = FlowMask::of_fields(&[&fields::METADATA]);
    mask.set_nw_dst_v4_prefix(16);
    rig.dp.ofproto.add_rule(OfRule {
        table: 1,
        priority: 99,
        key,
        mask,
        actions: vec![], // drop
        cookie: 3,
    });
    let deleted = rig.dp.revalidate_changed();
    assert!(deleted >= 1, "sweep deleted the stale megaflow");

    // Replay the same flow: the dead entry must not be served from any
    // cache — the packet upcalls and the new pipeline drops it.
    let (smc_hits0, emc_hits0) = (rig.dp.stats.smc_hits, rig.dp.stats.emc_hits);
    let mut p = DpPacket::from_data(&f);
    p.in_port = 0;
    rig.dp.process_packet(&mut rig.kernel, p, 0);
    assert_eq!(
        rig.dp.stats.smc_hits, smc_hits0,
        "sweep-invalidated flow was served from the SMC"
    );
    assert_eq!(
        rig.dp.stats.emc_hits, emc_hits0,
        "sweep-invalidated flow was served from the EMC"
    );
    assert_eq!(rig.dp.stats.upcalls, 2, "replay re-upcalled");
    rig.drain(&mut out);
    assert_eq!(out[1].len(), 2, "dropped: nothing new on port 1");
    assert_eq!(rig.dp.stats.dropped, 1);
}

/// The lazy path to the same guarantee: even *without* the end-of-sweep
/// purge, an SMC probe that lands on a dead megaflow must miss (and
/// reclaim the slot) rather than forward with stale actions.
#[test]
fn dead_megaflow_misses_in_smc_on_lookup() {
    let mut rig = build_rig(true);
    let f = frame([10, 2, 1, 1], 1111);
    for _ in 0..2 {
        let mut p = DpPacket::from_data(&f);
        p.in_port = 0;
        rig.dp.process_packet(&mut rig.kernel, p, 0);
    }
    let cached = rig.dp.smc_count();
    assert!(cached > 0);

    // Idle the flow out via the periodic sweep (which also purges), then
    // re-insert a fresh megaflow and kill it *without* sweeping: the
    // next lookup must reclaim the dead reference in place.
    rig.kernel.sim.clock.advance(11_000_000_000);
    rig.dp.revalidate(&mut rig.kernel, 0);
    assert_eq!(rig.dp.megaflow_count(), 0, "idle sweep drained the table");
    assert_eq!(rig.dp.smc_count(), 0, "sweep purged the SMC");

    let smc_hits0 = rig.dp.stats.smc_hits;
    let mut p = DpPacket::from_data(&f);
    p.in_port = 0;
    rig.dp.process_packet(&mut rig.kernel, p, 0);
    assert_eq!(rig.dp.stats.smc_hits, smc_hits0, "no stale SMC service");
    assert_eq!(rig.dp.stats.upcalls, 2, "idle-expired flow re-upcalled");
}
