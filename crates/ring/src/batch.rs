//! The per-iteration packet batch.
//!
//! The OVS userspace datapath processes packets in batches of up to 32;
//! "the basic AF_XDP design assumes that packets arrive in a userspace rx
//! ring in batches" (§3.2, O3). A [`PacketBatch`] is the unit every netdev
//! `rx`/`tx` call and every datapath pass operates on.

use ovs_packet::DpPacket;

/// Maximum packets per batch, matching OVS's `NETDEV_MAX_BURST`.
pub const BATCH_SIZE: usize = 32;

/// A batch of up to [`BATCH_SIZE`] packets.
#[derive(Debug, Default)]
pub struct PacketBatch {
    pkts: Vec<DpPacket>,
}

impl PacketBatch {
    /// An empty batch with capacity reserved.
    pub fn new() -> Self {
        Self {
            pkts: Vec::with_capacity(BATCH_SIZE),
        }
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.pkts.len()
    }

    /// True when the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.pkts.is_empty()
    }

    /// True when the batch is at capacity.
    pub fn is_full(&self) -> bool {
        self.pkts.len() >= BATCH_SIZE
    }

    /// Add a packet. Returns `Err(pkt)` when full — the rejected packet
    /// goes back to the caller by value so it can be retried or counted,
    /// which is worth the large `Err` variant.
    #[allow(clippy::result_large_err)]
    pub fn push(&mut self, pkt: DpPacket) -> Result<(), DpPacket> {
        if self.is_full() {
            return Err(pkt);
        }
        self.pkts.push(pkt);
        Ok(())
    }

    /// Remove and return all packets.
    pub fn drain(&mut self) -> impl Iterator<Item = DpPacket> + '_ {
        self.pkts.drain(..)
    }

    /// Iterate over the packets.
    pub fn iter(&self) -> impl Iterator<Item = &DpPacket> {
        self.pkts.iter()
    }

    /// Iterate mutably over the packets.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut DpPacket> {
        self.pkts.iter_mut()
    }

    /// Total bytes across the batch.
    pub fn total_bytes(&self) -> usize {
        self.pkts.iter().map(|p| p.len()).sum()
    }
}

impl FromIterator<DpPacket> for PacketBatch {
    fn from_iter<I: IntoIterator<Item = DpPacket>>(iter: I) -> Self {
        let mut b = Self::new();
        for p in iter.into_iter().take(BATCH_SIZE) {
            let _ = b.push(p);
        }
        b
    }
}

impl IntoIterator for PacketBatch {
    type Item = DpPacket;
    type IntoIter = std::vec::IntoIter<DpPacket>;

    fn into_iter(self) -> Self::IntoIter {
        self.pkts.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_until_full() {
        let mut b = PacketBatch::new();
        for i in 0..BATCH_SIZE {
            assert!(b.push(DpPacket::from_data(&[i as u8])).is_ok());
        }
        assert!(b.is_full());
        assert!(b.push(DpPacket::from_data(&[0])).is_err());
        assert_eq!(b.len(), BATCH_SIZE);
    }

    #[test]
    fn drain_empties() {
        let mut b: PacketBatch = (0..5).map(|i| DpPacket::from_data(&[i])).collect();
        assert_eq!(b.len(), 5);
        let drained: Vec<_> = b.drain().collect();
        assert_eq!(drained.len(), 5);
        assert!(b.is_empty());
        assert_eq!(drained[3].data(), &[3]);
    }

    #[test]
    fn total_bytes() {
        let b: PacketBatch = [vec![0u8; 10], vec![0u8; 20]]
            .into_iter()
            .map(|d| DpPacket::from_data(&d))
            .collect();
        assert_eq!(b.total_bytes(), 30);
    }

    #[test]
    fn from_iter_caps_at_batch_size() {
        let b: PacketBatch = (0..100).map(|_| DpPacket::from_data(&[0])).collect();
        assert_eq!(b.len(), BATCH_SIZE);
    }
}
