/root/repo/target/debug/deps/ovs_dpdk-c37fcaac4b4a1cde.d: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

/root/repo/target/debug/deps/libovs_dpdk-c37fcaac4b4a1cde.rlib: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

/root/repo/target/debug/deps/libovs_dpdk-c37fcaac4b4a1cde.rmeta: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

crates/dpdk/src/lib.rs:
crates/dpdk/src/af_packet.rs:
crates/dpdk/src/ethdev.rs:
crates/dpdk/src/mbuf.rs:
crates/dpdk/src/testpmd.rs:
crates/dpdk/src/vhost.rs:
