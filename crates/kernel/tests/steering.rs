//! Fig 6's two XDP attachment models, demonstrated end to end:
//!
//! * (a) Intel model: the program owns the whole device; distinguishing
//!   management traffic requires logic *inside* the program.
//! * (b) Mellanox model: the program attaches to a subset of queues, and
//!   `ethtool --config-ntuple`-style hardware steering splits management
//!   from dataplane traffic before XDP ever runs.

use ovs_ebpf::maps::{Map, XskMap};
use ovs_ebpf::programs;
use ovs_kernel::dev::{DeviceKind, NetDevice, NtupleRule, XdpMode};
use ovs_kernel::{Kernel, RxOutcome};
use ovs_packet::{builder, MacAddr};

const NIC_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);

fn dataplane_frame() -> Vec<u8> {
    builder::udp_ipv4_frame(
        MacAddr::new(2, 0, 0, 0, 9, 9),
        NIC_MAC,
        [10, 0, 0, 9],
        [10, 0, 0, 1],
        40_000,
        4789,
        64,
    )
}

fn mgmt_frame() -> Vec<u8> {
    // SSH to the host: must reach the kernel stack.
    builder::tcp_ipv4(
        MacAddr::new(2, 0, 0, 0, 9, 9),
        NIC_MAC,
        [10, 0, 0, 9],
        [10, 0, 0, 1],
        50_000,
        22,
        1,
        0,
        ovs_packet::tcp::flags::SYN,
        &[],
    )
}

fn kernel_with_xsk(queues: usize) -> (Kernel, u32, u32) {
    let mut k = Kernel::new(4);
    let eth0 = k.add_device(NetDevice::new(
        "eth0",
        NIC_MAC,
        DeviceKind::Phys { link_gbps: 25.0 },
        queues,
    ));
    k.add_addr(eth0, [10, 0, 0, 1], 24);
    let mut xmap = XskMap::new(queues);
    for q in 0..queues {
        // One socket id per queue; ids are fake but resolvable.
        let h = ovs_kernel::XskBinding::new(eth0, q, 16, 2048, true).into_handle();
        for i in 0..8 {
            h.borrow()
                .umem
                .fill
                .push(ovs_ring::Desc { frame: i, len: 0 })
                .unwrap();
        }
        let id = k.register_xsk(h);
        xmap.set(q as u32, id).unwrap();
    }
    let fd = k.maps.add(Map::Xsk(xmap));
    (k, eth0, fd)
}

#[test]
fn mellanox_model_steers_management_around_xdp() {
    let (mut k, eth0, fd) = kernel_with_xsk(4);
    // XDP only on queues 2 and 3 (Fig 6b).
    k.attach_xdp(
        eth0,
        programs::ovs_xsk_redirect(fd),
        XdpMode::Native,
        Some(vec![2, 3]),
    )
    .unwrap();
    // Hardware steering: SSH (tcp/22) to queue 0; overlay UDP/4789 to
    // queue 2.
    k.dev_mut(eth0).ntuple = vec![
        NtupleRule {
            tp_dst: Some(22),
            ip_proto: Some(6),
            queue: 0,
        },
        NtupleRule {
            tp_dst: Some(4789),
            ip_proto: Some(17),
            queue: 2,
        },
    ];

    // Management traffic reaches the stack (queue 0 has no XDP).
    assert_eq!(k.receive_steered(eth0, mgmt_frame()), RxOutcome::ToHost);
    // Dataplane traffic lands in the AF_XDP socket on queue 2.
    assert!(matches!(
        k.receive_steered(eth0, dataplane_frame()),
        RxOutcome::ToXsk(_)
    ));
}

#[test]
fn intel_model_needs_program_logic() {
    let (mut k, eth0, fd) = kernel_with_xsk(1);
    k.dev_mut(eth0).caps.per_queue_xdp = false; // Intel model
                                                // Whole-device attach: EVERY packet runs the program — management
                                                // included — so a plain redirect-all hook swallows SSH too.
    k.attach_xdp(eth0, programs::ovs_xsk_redirect(fd), XdpMode::Native, None)
        .unwrap();
    assert!(matches!(
        k.receive_steered(eth0, mgmt_frame()),
        RxOutcome::ToXsk(_)
    ));
    // The fix is logic in the program itself: match the dataplane flow,
    // pass everything else to the stack — here via the L4 LB example
    // program, which passes non-matching traffic.
    k.detach_xdp(eth0);
    k.attach_xdp(
        eth0,
        programs::l4_lb([10, 0, 0, 1], 4789, [192, 168, 0, 1]),
        XdpMode::Native,
        None,
    )
    .unwrap();
    assert_eq!(k.receive_steered(eth0, mgmt_frame()), RxOutcome::ToHost);
}

#[test]
fn rss_spreads_when_no_ntuple_matches() {
    let (k, eth0, _fd) = kernel_with_xsk(4);
    let mut queues_hit = std::collections::HashSet::new();
    for i in 0..64u16 {
        let f = builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 9, 9),
            NIC_MAC,
            [10, (i >> 8) as u8, i as u8, 9],
            [10, 0, 0, 1],
            1000 + i,
            2000,
            64,
        );
        queues_hit.insert(k.device(eth0).hw_queue_for(&f));
    }
    assert!(
        queues_hit.len() >= 3,
        "RSS uses multiple queues: {queues_hit:?}"
    );
}
