//! ICMPv4 messages (echo request/reply, as used by `ping`).

use crate::checksum;
use crate::{ParseError, Result};

/// ICMP message types understood by the tools layer.
pub mod msg_type {
    pub const ECHO_REPLY: u8 = 0;
    pub const DEST_UNREACHABLE: u8 = 3;
    pub const ECHO_REQUEST: u8 = 8;
    pub const TIME_EXCEEDED: u8 = 11;
}

mod field {
    pub const TYPE: usize = 0;
    pub const CODE: usize = 1;
    pub const CHECKSUM: core::ops::Range<usize> = 2..4;
    pub const IDENT: core::ops::Range<usize> = 4..6;
    pub const SEQ: core::ops::Range<usize> = 6..8;
}

/// ICMP echo header length.
pub const HEADER_LEN: usize = 8;

/// A typed view over an ICMPv4 message (echo layout).
#[derive(Debug, Clone)]
pub struct IcmpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpPacket<T> {
    /// Wrap a buffer, validating the minimum length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Message type.
    pub fn msg_type(&self) -> u8 {
        self.buffer.as_ref()[field::TYPE]
    }

    /// Message code.
    pub fn code(&self) -> u8 {
        self.buffer.as_ref()[field::CODE]
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::CHECKSUM];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Echo identifier.
    pub fn ident(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::IDENT];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Echo sequence number.
    pub fn seq(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::SEQ];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Echo payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Verify the checksum over the whole message.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.buffer.as_ref())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> IcmpPacket<T> {
    /// Set the message type.
    pub fn set_msg_type(&mut self, t: u8) {
        self.buffer.as_mut()[field::TYPE] = t;
    }

    /// Set the message code.
    pub fn set_code(&mut self, c: u8) {
        self.buffer.as_mut()[field::CODE] = c;
    }

    /// Set the echo identifier.
    pub fn set_ident(&mut self, i: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&i.to_be_bytes());
    }

    /// Set the echo sequence number.
    pub fn set_seq(&mut self, s: u16) {
        self.buffer.as_mut()[field::SEQ].copy_from_slice(&s.to_be_bytes());
    }

    /// Compute and fill the checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let csum = checksum::checksum(self.buffer.as_ref());
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&csum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let mut buf = [0u8; HEADER_LEN + 8];
        let mut p = IcmpPacket::new_unchecked(&mut buf[..]);
        p.set_msg_type(msg_type::ECHO_REQUEST);
        p.set_code(0);
        p.set_ident(0x1234);
        p.set_seq(7);
        p.fill_checksum();
        let p = IcmpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.msg_type(), msg_type::ECHO_REQUEST);
        assert_eq!(p.ident(), 0x1234);
        assert_eq!(p.seq(), 7);
        assert!(p.verify_checksum());
    }

    #[test]
    fn corrupt_detected() {
        let mut buf = [0u8; HEADER_LEN];
        {
            let mut p = IcmpPacket::new_unchecked(&mut buf[..]);
            p.set_msg_type(msg_type::ECHO_REPLY);
            p.fill_checksum();
        }
        buf[7] ^= 0xff;
        assert!(!IcmpPacket::new_checked(&buf[..]).unwrap().verify_checksum());
    }

    #[test]
    fn truncated() {
        assert_eq!(
            IcmpPacket::new_checked(&[0u8; 7][..]).unwrap_err(),
            ParseError::Truncated
        );
    }
}
