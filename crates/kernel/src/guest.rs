//! Virtual machines.
//!
//! A guest is a VM with vCPUs, an application role, and a virtio
//! connection to the host switch: either **vhost-net** behind a tap device
//! (the kernel-mediated path) or **vhostuser** (shared-memory rings polled
//! directly by the userspace switch — path B in Fig 5). Guest processing
//! time is charged to the `Guest` CPU context, reproducing Table 4's
//! `guest` column.

use crate::namespace::reflect_frame;
use std::collections::VecDeque;

/// The guest application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestRole {
    /// A DPDK testpmd-style poll-mode forwarder inside the guest: swaps
    /// MACs and sends every packet back (the PVP loopback element).
    PmdForwarder,
    /// Reflect packets at L2–L4 (netperf/iperf server semantics).
    Echo,
    /// Consume packets.
    Sink,
}

/// How the guest's virtio queues reach the host switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtioBackend {
    /// Kernel vhost-net worker bridging to a tap device (path A in Fig 5).
    VhostNet { tap_ifindex: u32 },
    /// Userspace vhost: the switch maps the guest rings directly
    /// (path B in Fig 5).
    VhostUser,
}

/// A virtual machine.
#[derive(Debug)]
pub struct Guest {
    /// VM name.
    pub name: String,
    /// Guest MAC address.
    pub mac: ovs_packet::MacAddr,
    /// Guest IP address.
    pub ip: [u8; 4],
    /// Number of vCPUs (the paper's test VM has 2).
    pub vcpus: usize,
    /// Host hyperthread index its vCPU time is charged to.
    pub core: usize,
    /// Application behaviour.
    pub role: GuestRole,
    /// Connection to the host.
    pub backend: VirtioBackend,
    /// Host→guest queue (virtio RX from the guest's perspective).
    pub rx_ring: VecDeque<Vec<u8>>,
    /// Guest→host queue (virtio TX).
    pub tx_ring: VecDeque<Vec<u8>>,
    /// Packets the guest has received in total.
    pub rx_count: u64,
    /// Packets a `Sink` consumed.
    pub sunk: u64,
    /// Whether the vhost backend is connected. A disconnect (QEMU
    /// restart) tears the shared rings down; tx to a disconnected guest
    /// drops with a counter, never panics.
    pub connected: bool,
    /// Bumped on every reconnect: the ring renegotiation generation.
    pub ring_generation: u32,
}

impl Guest {
    /// Create a guest (2 vCPUs, as in §5.2's test VM).
    pub fn new(
        name: &str,
        mac: ovs_packet::MacAddr,
        ip: [u8; 4],
        role: GuestRole,
        backend: VirtioBackend,
        core: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            mac,
            ip,
            vcpus: 2,
            core,
            role,
            backend,
            rx_ring: VecDeque::new(),
            tx_ring: VecDeque::new(),
            rx_count: 0,
            sunk: 0,
            connected: true,
            ring_generation: 0,
        }
    }

    /// Run the guest application over everything in its RX ring, producing
    /// TX frames per its role. Returns the number of packets processed
    /// (the caller charges guest-context CPU per packet).
    pub fn run(&mut self) -> usize {
        let mut processed = 0;
        while let Some(frame) = self.rx_ring.pop_front() {
            processed += 1;
            self.rx_count += 1;
            match self.role {
                GuestRole::PmdForwarder => {
                    // l2fwd: swap MACs, bounce back.
                    let mut out = frame;
                    if out.len() >= 12 {
                        let (a, b) = out.split_at_mut(6);
                        a.swap_with_slice(&mut b[..6]);
                    }
                    self.tx_ring.push_back(out);
                }
                GuestRole::Echo => {
                    if let Some(reply) = reflect_frame(&frame) {
                        self.tx_ring.push_back(reply);
                    }
                }
                GuestRole::Sink => {
                    self.sunk += 1;
                }
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovs_packet::{builder, MacAddr};

    const A: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const B: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);

    fn guest(role: GuestRole) -> Guest {
        Guest::new("vm0", B, [10, 0, 0, 2], role, VirtioBackend::VhostUser, 3)
    }

    #[test]
    fn pmd_forwarder_swaps_macs() {
        let mut g = guest(GuestRole::PmdForwarder);
        let f = builder::udp_ipv4(A, B, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, b"x");
        g.rx_ring.push_back(f.clone());
        assert_eq!(g.run(), 1);
        let out = g.tx_ring.pop_front().unwrap();
        assert_eq!(&out[0..6], &f[6..12]);
        assert_eq!(&out[6..12], &f[0..6]);
        assert_eq!(&out[12..], &f[12..], "payload untouched by l2fwd");
    }

    #[test]
    fn echo_reflects() {
        let mut g = guest(GuestRole::Echo);
        let f = builder::udp_ipv4(A, B, [10, 0, 0, 1], [10, 0, 0, 2], 5, 6, b"y");
        g.rx_ring.push_back(f);
        g.run();
        let out = g.tx_ring.pop_front().unwrap();
        let ip = ovs_packet::ipv4::Ipv4Packet::new_checked(&out[14..]).unwrap();
        assert_eq!(ip.dst(), [10, 0, 0, 1]);
    }

    #[test]
    fn sink_consumes_everything() {
        let mut g = guest(GuestRole::Sink);
        for _ in 0..5 {
            g.rx_ring.push_back(vec![0u8; 64]);
        }
        assert_eq!(g.run(), 5);
        assert_eq!(g.sunk, 5);
        assert!(g.tx_ring.is_empty());
    }
}
