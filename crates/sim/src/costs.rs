//! The calibrated cost model.
//!
//! Every constant here is the modelled cost, in nanoseconds, of one operation
//! that the paper's testbed performed on real hardware and a real Linux 5.3
//! kernel. Constants marked **[paper]** are taken directly from a measurement
//! the paper reports (e.g. the 2 µs `sendto` cost in §3.3); constants marked
//! **[calibrated]** were fitted so that the reproduction harness regenerates
//! the paper's tables and figures with the right *shape* (ordering, ratios,
//! crossover points); constants marked **[estimate]** are order-of-magnitude
//! figures for operations the paper does not isolate.
//!
//! Centralizing the model here keeps the substitution auditable: changing a
//! single number here moves every experiment consistently.

/// The calibrated cost model for the paper's testbed
/// (Xeon E5 2620 v3 / E5 2440 v2 at 2.4 GHz, ConnectX-6 and X540 NICs,
/// Ubuntu kernel 5.3).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU frequency of both testbeds. **[paper]** (§3.1, §5.1, §5.2)
    pub cpu_hz: u64,

    // ------------------------------------------------------------------
    // Syscalls and context switches
    // ------------------------------------------------------------------
    /// One `sendto()` on a tap device. **[paper]**: "We measured the cost of
    /// this system call as 2 µs on average" (§3.3).
    pub syscall_sendto_ns: f64,
    /// A generic light syscall (`recvmsg`, `poll` returning ready).
    /// **[estimate]**
    pub syscall_light_ns: f64,
    /// A blocking wakeup: interrupt + scheduler + context switch back into
    /// the waiting thread. Governs interrupt-mode AF_XDP (Fig 8a) and tap
    /// reads. **[calibrated]** to the Fig 8a interrupt-vs-poll gap.
    pub wakeup_ns: f64,
    /// One process context switch. **[estimate]** ~1.2 µs on Xeon v3.
    pub context_switch_ns: f64,

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------
    /// Copying one byte between buffers (packet copies, user<->kernel).
    /// **[estimate]** ~0.08 ns/B (≈12 GB/s effective single-core memcpy).
    pub copy_per_byte_ns: f64,
    /// Software checksum over one byte, per direction (verify on RX, fill
    /// on TX). **[calibrated]** to the O4→O5 step in Table 2 (~24 ns over
    /// a 64-byte frame across both directions ⇒ 0.19 ns/B each way).
    pub csum_per_byte_ns: f64,
    /// One `mmap`-backed metadata allocation for a `dp_packet`.
    /// **[calibrated]** to the O3→O4 step in Table 2 (7.2 ns/packet
    /// amortized).
    pub dp_packet_alloc_ns: f64,
    /// Locking an uncontended POSIX mutex instead of a spinlock, per packet.
    /// **[calibrated]** to the O1→O2 step in Table 2: the paper saw ~5% CPU
    /// in `pthread_mutex_lock`; 4.8→6.0 Mpps ⇒ 41.6 ns/packet.
    pub mutex_extra_ns: f64,
    /// Extra per-packet cost of taking the umem spinlock per packet instead
    /// of once per batch. **[calibrated]** to the O2→O3 step in Table 2
    /// (6.0→6.3 Mpps ⇒ 8 ns/packet).
    pub unbatched_lock_extra_ns: f64,
    /// Contention penalty per *additional* AF_XDP queue sharing umem state,
    /// per packet. **[calibrated]** to Fig 12 (AF_XDP 64 B tops out ~12 Mpps
    /// at 6 queues).
    pub afxdp_queue_contention_ns: f64,
    /// Contention penalty per additional DPDK queue, per packet.
    /// **[calibrated]** to Fig 12 (DPDK scales close to linearly).
    pub dpdk_queue_contention_ns: f64,

    // ------------------------------------------------------------------
    // Kernel datapath (baseline OVS kernel module)
    // ------------------------------------------------------------------
    /// skb allocation + population, the "expensive step" XDP avoids (§2.2.3).
    /// **[estimate]**
    pub skb_alloc_ns: f64,
    /// NIC driver RX work per packet in softirq (DMA sync, descriptor).
    /// **[calibrated]** with `xdp_dispatch_ns` to Table 5 task A (14 Mpps
    /// ⇒ ~70 ns kernel-side for drop-without-looking).
    pub driver_rx_ns: f64,
    /// NIC driver TX work per packet. **[estimate]**
    pub driver_tx_ns: f64,
    /// OVS kernel-module datapath: flow-cache lookup + actions, per packet,
    /// simple L2 forward. **[calibrated]** so the single-core 64 B kernel
    /// forwarding rate lands near 1.9 Mpps (Fig 2, Fig 9a single flow).
    pub kernel_ovs_flow_ns: f64,
    /// Multiplicative penalty on all softirq work when RSS spreads one
    /// workload across all hyperthreads (cache bounce, HT sharing, tx-queue
    /// lock contention). **[calibrated]** to Table 4 P2P kernel: 9.7 softirq
    /// hyperthreads for ~4.6 Mpps ⇒ ~2.1 µs/packet aggregate.
    pub kernel_rss_penalty: f64,
    /// Kernel TCP/IP stack receive+deliver per MTU-sized segment (socket
    /// path, no GRO aggregation modelled separately). **[estimate]**
    pub kernel_tcp_segment_ns: f64,
    /// veth pair crossing (xmit into peer namespace, no copy). **[estimate]**
    pub veth_xmit_ns: f64,
    /// tap device kernel-side delivery (queue to fd / read by consumer).
    /// **[estimate]**
    pub tap_kernel_ns: f64,
    /// vhost-net kernel thread, per packet (kernel backend for tap-attached
    /// VMs). **[estimate]**
    pub vhost_net_ns: f64,
    /// Kernel conntrack lookup/update per packet. **[estimate]**
    pub kernel_conntrack_ns: f64,
    /// Kernel tunnel (Geneve/VXLAN) encap or decap per packet. **[estimate]**
    pub kernel_tunnel_ns: f64,

    // ------------------------------------------------------------------
    // eBPF / XDP
    // ------------------------------------------------------------------
    /// Interpreting one eBPF instruction. **[calibrated]** so the eBPF tc
    /// datapath is 10–20% slower than the kernel module (Fig 2) and so
    /// Table 5's task ladder (14 / 8.1 / 7.1 / 4.7 Mpps) reproduces.
    pub ebpf_insn_ns: f64,
    /// Fixed cost of the tc-hook eBPF datapath stage beyond the bytecode
    /// itself (skb context setup, action dispatch). **[calibrated]** so
    /// the Fig 2 eBPF bar lands 10–20% below the kernel module.
    pub tc_bpf_fixed_ns: f64,
    /// An eBPF helper call: hash-map lookup. **[calibrated]** Table 5 B→C.
    pub ebpf_map_lookup_ns: f64,
    /// XDP driver-hook fixed overhead per packet (program dispatch before
    /// skb allocation). **[calibrated]** Table 5 task A: 14 Mpps ⇒ ~70 ns
    /// total with the minimal program.
    pub xdp_dispatch_ns: f64,
    /// First touch of cold packet bytes by an XDP program ("the CPU now
    /// must read the packet, triggering cache misses" — Table 5 B).
    /// **[calibrated]** to the A→B step.
    pub xdp_pkt_touch_ns: f64,
    /// XDP_TX: re-post the frame to the same NIC's TX ring from the hook.
    /// **[calibrated]** to Table 5 task D (4.7 Mpps).
    pub xdp_tx_ns: f64,
    /// Kernel-side XSK delivery on redirect: fill-ring pop, DMA address
    /// setup, RX-ring push, wakeup check. **[calibrated]** so the minimal
    /// OVS hook's total kernel-side cost is ~140 ns/packet (Table 2 O5 at
    /// 7.1 Mpps with userspace at ~127 ns).
    pub xsk_deliver_ns: f64,
    /// XDP_REDIRECT to another device (devmap), excluding the target
    /// device's own cost. **[calibrated]** to Fig 8c/9c XDP fast path.
    pub xdp_redirect_ns: f64,

    // ------------------------------------------------------------------
    // AF_XDP
    // ------------------------------------------------------------------
    /// Kernel-side AF_XDP work per packet in zero-copy mode: driver RX +
    /// XSK descriptor handling (softirq). **[calibrated]** so O5 tops out
    /// at ~7.1 Mpps with the userspace side at ~127 ns/packet, and so
    /// Table 4 P2P AF_XDP shows softirq ≈ user.
    pub afxdp_kernel_zc_ns: f64,
    /// Extra kernel-side cost in copy (XDP_SKB / generic) mode: one packet
    /// copy into the umem plus skb handling. Universal fallback per §3.5
    /// "Limitations". **[estimate]**
    pub afxdp_copy_mode_extra_ns: f64,
    /// Userspace XSK rx-ring pop + fill-ring push, amortized per packet at
    /// the default 32-packet batch. **[calibrated]** part of the 127 ns/pkt
    /// userspace budget at O5 (Table 2).
    pub xsk_ring_ns: f64,
    /// Software rxhash (5-tuple hash for RSS) that AF_XDP must compute
    /// because XDP exposes no NIC hash hint yet (§5.5). **[calibrated]**
    pub sw_rxhash_ns: f64,
    /// `sendto` TX kick amortized per packet when need_wakeup is armed and
    /// the TX ring was idle; busy TX rings skip the kick. **[calibrated]**
    /// to §5.5's observed TX context-switch overhead.
    pub xsk_tx_kick_ns: f64,

    // ------------------------------------------------------------------
    // OVS userspace datapath
    // ------------------------------------------------------------------
    /// Miniflow extraction + dp_packet bookkeeping per packet. **[estimate]**
    pub dpif_extract_ns: f64,
    /// Sparse miniflow extraction: parse writes only the populated 8-byte
    /// slots (bitmap + packed array) instead of zeroing and filling a full
    /// 96-byte key, so a typical 5-tuple packet touches half the cache
    /// lines `dpif_extract_ns` models. **[estimate]**
    pub miniflow_extract_ns: f64,
    /// Hashing the populated miniflow slots once per packet; the result is
    /// cached in the `dp_packet` and reused by every cache tier probe
    /// (upstream's `dp_packet_get_rss_hash` behavior). **[estimate]**
    pub flow_hash_ns: f64,
    /// EMC probe against a miniflow: bitmap compare + packed-word compare
    /// over the populated slots only, hash already cached. **[estimate]**
    pub emc_mini_hit_ns: f64,
    /// SMC probe with a cached hash and a sparse masked verify (the
    /// `MiniMask` iterates its populated slots only). **[estimate]**
    pub smc_mini_hit_ns: f64,
    /// One wide-lane bulk dpcls step: hashing and probing up to `lane_width`
    /// keys against one subtable's signature array in a single pass with
    /// the next bucket prefetched — models the AVX-512 batched signature
    /// compare upstream ships. Charged per `ceil(keys/lane)` per subtable.
    /// **[estimate]**
    pub dpcls_bulk_step_ns: f64,
    /// Per-key masked verify inside a bulk dpcls step (walking the
    /// candidate rule's packed mask slots). **[estimate]**
    pub dpcls_bulk_key_ns: f64,
    /// Exact-match cache hit. **[estimate]** (a few cache lines + compare)
    pub emc_hit_ns: f64,
    /// Extra per-lookup cost when the flow working set no longer fits the
    /// L1/L2 caches (the 1,000-random-flow "worst case for the OVS caching
    /// layer" of §5.2). Charged once the EMC holds more than
    /// `emc_pressure_threshold` entries. **[calibrated]** to the 1 vs
    /// 1000 flow gap in Fig 9a.
    pub emc_pressure_ns: f64,
    /// EMC occupancy above which `emc_pressure_ns` applies. **[calibrated]**
    pub emc_pressure_threshold: usize,
    /// Signature match cache probe: one bucket of four 16-bit signatures
    /// plus the masked-key verify against the referenced megaflow.
    /// Cheaper than a dpcls walk, dearer than the EMC's single exact
    /// compare. **[estimate]** (OVS reports SMC ≈ half a dpcls probe.)
    pub smc_hit_ns: f64,
    /// Megaflow (dpcls, tuple-space search) lookup on EMC miss, per
    /// subtable probed ~20 ns; typical production pipeline probes ~4.
    /// **[calibrated]** to the 1 vs 1000 flow gap in Fig 9.
    pub dpcls_lookup_ns: f64,
    /// Each dpcls subtable probed *beyond the first* (hash + masked
    /// compare per tuple). The first probe is folded into
    /// `dpcls_lookup_ns`, so single-mask tables keep the calibrated base
    /// cost and subtable ranking has something to win back on skewed
    /// multi-mask tables. **[estimate]**
    pub dpcls_subtable_extra_ns: f64,
    /// Fixed per-batch cost of executing one megaflow's action batch:
    /// action-context setup, tx-queue locking, and the flush — paid once
    /// per `PacketBatch` rather than per packet, consistent with the
    /// O3/O4 lock/syscall batching on the AF_XDP side. A scalar
    /// (one-packet-batch) caller pays all of it per packet.
    /// **[estimate]**
    pub dp_batch_fixed_ns: f64,
    /// Marginal per-packet cost inside a batched action execution
    /// (pointer bumps, per-packet action dispatch). **[estimate]**
    pub dp_batch_pkt_ns: f64,
    /// Full upcall: slow-path trip through the OpenFlow tables, per table
    /// pass. Only hit on megaflow misses. **[estimate]**
    pub upcall_per_table_ns: f64,
    /// Revalidator work per dumped datapath flow: fetch the flow + stats,
    /// re-translate its masked key, compare actions, push stats. Drives
    /// the simulated dump duration that feeds the dynamic flow-limit
    /// algorithm. **[estimate]** (OVS revalidates a few hundred thousand
    /// flows per second per thread ⇒ a few µs each.)
    pub revalidate_flow_ns: f64,
    /// Executing a simple action list (output). **[estimate]**
    pub action_output_ns: f64,
    /// Userspace conntrack lookup/update. **[estimate]**
    pub userspace_ct_ns: f64,
    /// Userspace tunnel encap/decap (Geneve header build + route/ARP cache
    /// hit). **[estimate]**
    pub userspace_tunnel_ns: f64,
    /// One recirculation pass (re-extract + re-lookup bookkeeping, not
    /// counting the lookup itself). **[estimate]**
    pub recirc_ns: f64,
    /// Per-packet share of main-thread work when the datapath runs in the
    /// non-PMD general-purpose thread (O0 in Table 2: poll loop shared with
    /// OpenFlow/OVSDB processing ⇒ 0.8 Mpps). **[calibrated]**
    pub non_pmd_overhead_ns: f64,

    // ------------------------------------------------------------------
    // NFV (ovs-nfv service chains)
    // ------------------------------------------------------------------
    /// Fixed per-packet cost of one NF invocation (batch amortized: verdict
    /// dispatch, header re-parse, table touch) on top of whatever the NF's
    /// own logic costs. **[estimate]**
    pub nf_exec_ns: f64,
    /// One NF SPSC ring crossing per packet (descriptor push/pop + slot
    /// slab bookkeeping; the openNetVM shared-ring handoff). **[estimate]**
    pub nf_ring_ns: f64,

    // ------------------------------------------------------------------
    // DPDK-style PMD
    // ------------------------------------------------------------------
    /// DPDK ethdev burst RX+TX per packet, including mbuf management.
    /// **[calibrated]** so DPDK P2P single-flow lands near 9.5 Mpps (Fig 2,
    /// Fig 9a).
    pub dpdk_io_ns: f64,
    /// DPDK per-byte cost (mbuf copy/DMA-sync on the slower X540 path).
    /// **[calibrated]** to Fig 12's 1518 B series.
    pub dpdk_per_byte_ns: f64,
    /// AF_XDP per-byte cost (umem DMA sync + the copy the kernel still does
    /// on the ConnectX TX path). **[calibrated]** to Fig 12's 1518 B series
    /// (line rate only at 6 queues).
    pub afxdp_per_byte_ns: f64,
    /// DPDK af_packet vdev per packet (the container access path in Fig 11):
    /// a pair of user/kernel transitions plus a copy. **[calibrated]** to
    /// Fig 11's 81/136/241 µs DPDK container latency.
    pub dpdk_af_packet_ns: f64,

    // ------------------------------------------------------------------
    // Virtio / vhost
    // ------------------------------------------------------------------
    /// vhostuser ring push/pop + descriptor handling per packet (shared
    /// memory, no syscall). **[estimate]**
    pub vhostuser_ring_ns: f64,
    /// Guest-side virtio-net PMD forwarding per packet (testpmd-style guest,
    /// used in PVP). **[estimate]**
    pub guest_pmd_fwd_ns: f64,
    /// Guest kernel TCP/IP per MTU segment (netperf/iperf guests).
    /// **[estimate]**
    pub guest_tcp_segment_ns: f64,
    /// Per-packet guest->host notification cost charged as host system time
    /// (eventfd kick path) when the backend isn't busy-polling.
    /// **[calibrated]** to Table 4 PVP "system" columns.
    pub vhost_kick_ns: f64,

    // ------------------------------------------------------------------
    // Wire
    // ------------------------------------------------------------------
    /// One-way propagation + PHY latency of the back-to-back cable, ns.
    /// **[estimate]**
    pub wire_latency_ns: f64,
    /// NIC interrupt moderation delay under the adaptive interrupt scheme
    /// (kernel datapath latency tests, Fig 10). **[calibrated]**
    pub irq_moderation_ns: f64,
}

impl CostModel {
    /// The model calibrated against the paper's testbed. See the per-field
    /// docs for which constants are measured, calibrated, or estimated.
    pub fn paper_testbed() -> Self {
        Self {
            cpu_hz: 2_400_000_000,

            syscall_sendto_ns: 2_000.0, // [paper] §3.3
            syscall_light_ns: 600.0,
            wakeup_ns: 2_500.0,
            context_switch_ns: 1_200.0,

            copy_per_byte_ns: 0.08,
            csum_per_byte_ns: 0.14,
            dp_packet_alloc_ns: 7.2,
            mutex_extra_ns: 41.6,
            unbatched_lock_extra_ns: 8.0,
            afxdp_queue_contention_ns: 72.0,
            dpdk_queue_contention_ns: 14.0,

            skb_alloc_ns: 75.0,
            driver_rx_ns: 30.0,
            driver_tx_ns: 55.0,
            kernel_ovs_flow_ns: 365.0,
            kernel_rss_penalty: 4.3,
            kernel_tcp_segment_ns: 300.0,
            veth_xmit_ns: 120.0,
            tap_kernel_ns: 1_000.0,
            vhost_net_ns: 1_100.0,
            kernel_conntrack_ns: 800.0,
            kernel_tunnel_ns: 1_400.0,

            ebpf_insn_ns: 1.8,
            tc_bpf_fixed_ns: 372.0,
            ebpf_map_lookup_ns: 4.0,
            xdp_dispatch_ns: 31.0,
            xdp_pkt_touch_ns: 35.0,
            xdp_tx_ns: 35.0,
            xsk_deliver_ns: 67.0,
            xdp_redirect_ns: 80.0,

            afxdp_kernel_zc_ns: 140.0,
            afxdp_copy_mode_extra_ns: 120.0,
            xsk_ring_ns: 20.0,
            sw_rxhash_ns: 25.0,
            xsk_tx_kick_ns: 7.0,

            dpif_extract_ns: 25.0,
            miniflow_extract_ns: 16.0,
            flow_hash_ns: 6.0,
            emc_mini_hit_ns: 22.0,
            smc_mini_hit_ns: 30.0,
            dpcls_bulk_step_ns: 70.0,
            dpcls_bulk_key_ns: 12.0,
            emc_hit_ns: 30.0,
            emc_pressure_ns: 72.0,
            emc_pressure_threshold: 256,
            smc_hit_ns: 40.0,
            dpcls_lookup_ns: 80.0,
            dpcls_subtable_extra_ns: 20.0,
            dp_batch_fixed_ns: 100.0,
            dp_batch_pkt_ns: 4.0,
            upcall_per_table_ns: 800.0,
            revalidate_flow_ns: 2_500.0,
            action_output_ns: 15.0,
            userspace_ct_ns: 120.0,
            userspace_tunnel_ns: 180.0,
            recirc_ns: 35.0,
            non_pmd_overhead_ns: 1_040.0,

            nf_exec_ns: 40.0,
            nf_ring_ns: 18.0,

            dpdk_io_ns: 28.0,
            dpdk_per_byte_ns: 0.08,
            afxdp_per_byte_ns: 0.40,
            dpdk_af_packet_ns: 5_500.0,

            vhostuser_ring_ns: 25.0,
            guest_pmd_fwd_ns: 120.0,
            guest_tcp_segment_ns: 1_000.0,
            vhost_kick_ns: 55.0,

            wire_latency_ns: 1_000.0,
            irq_moderation_ns: 10_000.0,
        }
    }

    /// Nanoseconds for `n` CPU cycles at this model's clock.
    pub fn cycles_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * 1e9 / self.cpu_hz as f64
    }

    /// Cost of software-checksumming `len` bytes.
    pub fn csum_ns(&self, len: usize) -> f64 {
        self.csum_per_byte_ns * len as f64
    }

    /// Cost of copying `len` bytes.
    pub fn copy_ns(&self, len: usize) -> f64 {
        self.copy_per_byte_ns * len as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_present() {
        let c = CostModel::paper_testbed();
        // The one directly paper-quoted number must stay at 2 us.
        assert_eq!(c.syscall_sendto_ns, 2_000.0);
        assert_eq!(c.cpu_hz, 2_400_000_000);
    }

    #[test]
    fn cycles_conversion() {
        let c = CostModel::paper_testbed();
        // 2400 cycles at 2.4 GHz = 1000 ns.
        assert!((c.cycles_ns(2400) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn per_byte_helpers() {
        let c = CostModel::paper_testbed();
        assert!((c.csum_ns(100) - 14.0).abs() < 1e-9);
        assert!((c.copy_ns(1000) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn table2_ladder_consistency() {
        // The calibrated deltas must keep the Table 2 ordering:
        // mutex removal > lock batching ≈ metadata prealloc > 0.
        let c = CostModel::paper_testbed();
        assert!(c.mutex_extra_ns > c.unbatched_lock_extra_ns);
        assert!(c.unbatched_lock_extra_ns > 0.0);
        assert!(c.dp_packet_alloc_ns > 0.0);
    }

    #[test]
    fn cache_tier_costs_ordered() {
        // The fast-path tiers must keep their hierarchy: an EMC probe is
        // cheaper than an SMC probe, which is cheaper than a dpcls walk,
        // and a batched packet's marginal cost undercuts the fixed
        // per-batch setup it amortizes.
        let c = CostModel::paper_testbed();
        assert!(c.emc_hit_ns < c.smc_hit_ns);
        assert!(c.smc_hit_ns < c.dpcls_lookup_ns);
        assert!(c.dpcls_subtable_extra_ns > 0.0);
        assert!(c.dp_batch_pkt_ns < c.dp_batch_fixed_ns);
    }

    #[test]
    fn miniflow_costs_undercut_full_key_costs() {
        // The sparse path must be strictly cheaper tier-for-tier than the
        // full-key path it replaces, keep the cache hierarchy ordered, and
        // a full-lane bulk dpcls step must amortize below `lane` scalar
        // probes while a single-key step stays honest (≈ one scalar probe).
        let c = CostModel::paper_testbed();
        assert!(c.miniflow_extract_ns + c.flow_hash_ns < c.dpif_extract_ns);
        assert!(c.emc_mini_hit_ns < c.emc_hit_ns);
        assert!(c.smc_mini_hit_ns < c.smc_hit_ns);
        assert!(c.emc_mini_hit_ns < c.smc_mini_hit_ns);
        assert!(c.smc_mini_hit_ns < c.dpcls_bulk_step_ns + c.dpcls_bulk_key_ns);
        // Single key: no cheaper than ~one calibrated scalar probe.
        assert!(c.dpcls_bulk_step_ns + c.dpcls_bulk_key_ns >= c.dpcls_lookup_ns);
        // Full 8-lane step: well under 8 scalar probes.
        let lane8 = c.dpcls_bulk_step_ns + 8.0 * c.dpcls_bulk_key_ns;
        assert!(lane8 < 8.0 * c.dpcls_lookup_ns / 2.0);
    }
}
