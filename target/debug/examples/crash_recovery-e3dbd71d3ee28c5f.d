/root/repo/target/debug/examples/crash_recovery-e3dbd71d3ee28c5f.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-e3dbd71d3ee28c5f: examples/crash_recovery.rs

examples/crash_recovery.rs:
