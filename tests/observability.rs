//! Golden observability test: a deterministic two-host NSX scenario
//! exercises the full datapath, then asserts the rendered `coverage/show`
//! and `dpif-netdev/pmd-perf-show` text, the exact per-stage cycle
//! attribution, and the `ofproto/trace` of a Geneve-tunnelled VM frame
//! through the NSX pipeline.
//!
//! Coverage counters are thread-local and the sim clock is virtual, so
//! every number below is exactly reproducible; if a datapath change
//! legitimately shifts one, update the golden alongside it.

use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_afxdp_repro::kernel::tools;
use ovs_afxdp_repro::nsx::ruleset::{self, NsxConfig};
use ovs_afxdp_repro::nsx::topology::{DatapathKind, Host, HostConfig, VmAttachment};
use ovs_afxdp_repro::obs::coverage;
use ovs_afxdp_repro::ovs::appctl;
use ovs_afxdp_repro::packet::builder;
use ovs_core::dpif::PortType;
use ovs_core::DpifNetdev;
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_obs::latency::LatencySummary;
use ovs_packet::MacAddr;
use ovs_sim::FaultKind;

use proptest::prelude::*;

/// The deterministic 2-VM NSX host pair on the userspace AF_XDP datapath.
fn build_host(id: u8) -> Host {
    let dpk = DatapathKind::UserspaceAfxdp {
        opt: OptLevel::O5,
        interrupt_mode: false,
    };
    let mut cfg = HostConfig::nsx_default(id, dpk, VmAttachment::VhostUser);
    cfg.nsx = NsxConfig {
        vms: 2,
        tunnels: 4,
        target_rules: 800,
        local_vtep: [172, 16, 0, id],
        remote_vtep: [172, 16, 0, 3 - id],
        ..NsxConfig::default()
    };
    Host::build(&cfg)
}

fn vm_frame(src_host: u8, dst_host: u8) -> Vec<u8> {
    builder::udp_ipv4_frame(
        ruleset::vm_mac(src_host, 0, 0),
        ruleset::vm_mac(dst_host, 0, 0),
        ruleset::vm_ip(src_host, 0, 0),
        ruleset::vm_ip(dst_host, 0, 0),
        3333,
        4444,
        200,
    )
}

/// Shuttle frames between the two hosts until quiescent.
fn run_pair(a: &mut Host, b: &mut Host) {
    for _ in 0..32 {
        let mut moved = a.pump() + b.pump();
        for f in a.wire_take() {
            b.wire_inject(f);
            moved += 1;
        }
        for f in b.wire_take() {
            a.wire_inject(f);
            moved += 1;
        }
        if moved == 0 {
            break;
        }
    }
}

const GOLDEN_COVERAGE: &str = "\
counter                             total        epoch    avg/epoch
batch_flush                           159          159        159.0
bpf_helper_call                        32           32         32.0
bpf_insn_executed                     192          192        192.0
bpf_prog_run                           32           32         32.0
ct_established                          2            2          2.0
ct_hit                                 61           61         61.0
ct_new                                  2            2          2.0
dpif_ct_lookup                         96           96         96.0
dpif_megaflow_hit                     147          147        147.0
dpif_packet                            63           63         63.0
dpif_recirc                            96           96         96.0
dpif_rx                                63           63         63.0
dpif_tunnel_decap                      31           31         31.0
dpif_tunnel_encap                      32           32         32.0
dpif_tx                                63           63         63.0
dpif_upcall                            12           12         12.0
miniflow_expand                        12           12         12.0
xsk_rx_batch                           31           31         31.0
xsk_rx_packet                          31           31         31.0
xsk_tx_kick                            32           32         32.0
xsk_tx_packet                          32           32         32.0
";

const GOLDEN_PERF: &str = "\
pmd thread core 1:
  iterations: 378  packets: 31  busy: 60860 ns (146064 cycles)
  avg cycles/pkt: 4711.7
  rx                           2447 ns           5872 cycles    4.0%
  parse                        4416 ns          10598 cycles    7.3%
  emc lookup                   1716 ns           4118 cycles    2.8%
  smc lookup                      0 ns              0 cycles    0.0%
  megaflow lookup             18532 ns          44476 cycles   30.5%
  upcall/translate            13600 ns          32640 cycles   22.3%
  batch setup/flush            8112 ns          19468 cycles   13.3%
  actions                         0 ns              0 cycles    0.0%
  ct lookup                    5640 ns          13536 cycles    9.3%
  nf exec                         0 ns              0 cycles    0.0%
  recirc                       1645 ns           3948 cycles    2.7%
  tx                           4752 ns          11404 cycles    7.8%
  revalidate                      0 ns              0 cycles    0.0%
  per-packet ns: p50 2047 p90 2047 p99 10848 p99.9 10848 max 10848
all pmd threads:
  iterations: 378  packets: 31  busy: 60860 ns (146064 cycles)
  avg cycles/pkt: 4711.7
  rx                           2447 ns           5872 cycles    4.0%
  parse                        4416 ns          10598 cycles    7.3%
  emc lookup                   1716 ns           4118 cycles    2.8%
  smc lookup                      0 ns              0 cycles    0.0%
  megaflow lookup             18532 ns          44476 cycles   30.5%
  upcall/translate            13600 ns          32640 cycles   22.3%
  batch setup/flush            8112 ns          19468 cycles   13.3%
  actions                         0 ns              0 cycles    0.0%
  ct lookup                    5640 ns          13536 cycles    9.3%
  nf exec                         0 ns              0 cycles    0.0%
  recirc                       1645 ns           3948 cycles    2.7%
  tx                           4752 ns          11404 cycles    7.8%
  revalidate                      0 ns              0 cycles    0.0%
  per-packet ns: p50 2047 p90 2047 p99 10848 p99.9 10848 max 10848
";

const GOLDEN_RXQ: &str = "\
pmd thread core 1:
  isolated : false
  port: eth0             queue-id:  0  pmd usage:  45 %
  port: gnv0             queue-id:  0  pmd usage:   0 %
  port: vhost0           queue-id:  0  pmd usage:  54 %
  port: vhost1           queue-id:  0  pmd usage:   0 %
  port: vhost2           queue-id:  0  pmd usage:   0 %
  port: vhost3           queue-id:  0  pmd usage:   0 %
";

const GOLDEN_AUTO_LB: &str = "\
pmd-auto-lb: disabled
  assignment policy     : roundrobin
  improvement threshold : 25 %
  checks (dry runs)     : 0
  rebalances applied    : 0
  last improvement      : n/a
";

const GOLDEN_TRACE: &str = "\
Trace: 200 byte frame on in_port=2
pass 1: flow in_port=2,eth_type=0x0800,nw_src=10.101.0.2,nw_dst=10.102.0.2,nw_proto=17,tp_src=3333,tp_dst=4444
    cache: megaflow hit (mask 128 bits)
    Datapath actions: [Ct { zone: 1, commit: false, nat: None }, Recirc(1)]
    ct(zone=1,commit=false): verdict ct_state=0x03
    recirc(0x1)
pass 2: flow in_port=2,eth_type=0x0800,nw_src=10.101.0.2,nw_dst=10.102.0.2,nw_proto=17,tp_src=3333,tp_dst=4444,recirc_id=0x1,ct_state=0x03
    cache: megaflow hit (mask 234 bits)
    Datapath actions: [Ct { zone: 100, commit: true, nat: None }, Recirc(2)]
    ct(zone=100,commit=true): verdict ct_state=0x05
    recirc(0x2)
pass 3: flow in_port=2,eth_type=0x0800,nw_src=10.101.0.2,nw_dst=10.102.0.2,nw_proto=17,tp_src=3333,tp_dst=4444,recirc_id=0x2,ct_state=0x05
    cache: megaflow hit (mask 112 bits)
    Datapath actions: [SetTunnel { id: 5000, dst: [172, 16, 0, 2] }, Output(1)]
    tunnel encap (Geneve): tun_id=5000, dst=172.16.0.2, outer 250 bytes
    output: port 0 (eth0, afxdp(if1))
";

#[test]
fn golden_observability_two_host_nsx() {
    coverage::reset();
    let mut h1 = build_host(1);
    let mut h2 = build_host(2);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());

    // VM0 on host 1 sends one UDP datagram to VM0 on host 2; the echo
    // guest answers, so the flow crosses the overlay in both directions.
    let g = h1.guest_of_vif[0];
    h1.kernel.guests[g].tx_ring.push_back(vm_frame(1, 2));
    run_pair(&mut h1, &mut h2);

    // --- pmd-perf-show: exact stage attribution --------------------
    let dp1 = h1.dp.as_ref().unwrap();
    let perf = dp1.perf.get(&h1.switch_core).expect("switch core polled");
    assert!(perf.poll_ns_total() > 0, "sim time advanced");
    assert_eq!(
        perf.stage_ns_total(),
        perf.poll_ns_total(),
        "per-stage cycles sum exactly to total pmd_poll cycles"
    );

    let dp1 = h1.dp.as_mut().unwrap();
    let show = appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/pmd-perf-show", &[]).unwrap();
    assert_eq!(show, GOLDEN_PERF, "pmd-perf-show golden drifted:\n{show}");

    // --- coverage/show --------------------------------------------
    let dp1 = h1.dp.as_mut().unwrap();
    let cov = appctl::dispatch(dp1, &mut h1.kernel, "coverage/show", &[]).unwrap();
    assert_eq!(cov, GOLDEN_COVERAGE, "coverage/show golden drifted:\n{cov}");

    // --- ofproto/trace of the Geneve path -------------------------
    // The flow is warm, so each pass hits the megaflow cache; the trace
    // shows the two firewall ct/recirc passes and the Geneve encap —
    // the NSX two-bridge pipeline end to end.
    h1.kernel.capture_start(h1.uplink_if);
    let dp1 = h1.dp.as_mut().unwrap();
    let vif0 = h1.ports.vifs[0];
    let trace = dp1.ofproto_trace(&mut h1.kernel, &vm_frame(1, 2), vif0, h1.switch_core);
    assert_eq!(
        trace, GOLDEN_TRACE,
        "ofproto/trace golden drifted:\n{trace}"
    );

    // Attribution stays exact with the traced packet folded in.
    let dp1 = h1.dp.as_ref().unwrap();
    let perf = dp1.perf.get(&h1.switch_core).unwrap();
    assert_eq!(perf.stage_ns_total(), perf.poll_ns_total());

    // --- tcpdump correlates the traced frame ----------------------
    // The encapsulated outer frame left on the uplink while the trace
    // was attached, so the capture tags it.
    let lines = tools::tcpdump(&mut h1.kernel, "eth0", 64).unwrap();
    let tagged: Vec<_> = lines.iter().filter(|l| l.contains("[traced]")).collect();
    assert_eq!(
        tagged.len(),
        1,
        "exactly the traced egress is tagged: {lines:?}"
    );
    assert!(
        tagged[0].contains("172.16.0.1 > 172.16.0.2"),
        "outer Geneve header: {}",
        tagged[0]
    );

    // --- nstat carries the coverage counters ----------------------
    let ns = tools::nstat(&h1.kernel);
    assert!(ns.contains("dpif_tunnel_encap"), "{ns}");
    assert!(ns.contains("xsk_tx_packet"), "{ns}");

    // --- ethtool -S shows driver-boundary coverage ----------------
    let es = tools::ethtool_stats(&h1.kernel, "eth0").unwrap();
    assert!(es.contains("xsk_rx_batch"), "{es}");

    // --- pmd-rxq-show / pmd-auto-lb-show --------------------------
    let rxq = h1.appctl("dpif-netdev/pmd-rxq-show", &[]).unwrap();
    assert_eq!(rxq, GOLDEN_RXQ, "pmd-rxq-show golden drifted:\n{rxq}");
    let lb = h1.appctl("dpif-netdev/pmd-auto-lb-show", &[]).unwrap();
    assert_eq!(lb, GOLDEN_AUTO_LB, "pmd-auto-lb-show golden drifted:\n{lb}");

    // --- pmd-stats-clear resets both stats and perf ---------------
    let dp1 = h1.dp.as_mut().unwrap();
    let out = appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/pmd-stats-clear", &[]).unwrap();
    assert!(out.contains("cleared"));
    assert!(dp1.perf.is_empty());
    assert_eq!(dp1.stats.rx_packets, 0);
}

// ----------------------------------------------------------------------
// Latency goldens: rx→tx histograms and the per-stage decomposition on
// the same deterministic two-host scenario
// ----------------------------------------------------------------------

const GOLDEN_LATENCY: &str = "\
rx-to-tx latency (ns):
  all ports: samples 31  min 1494 p50 2047 p90 2047 p99 10848 p99.9 10848 max 10848
  port 0 (eth0): samples 16  min 1494 p50 2047 p90 2047 p99 10848 p99.9 10848 max 10848
  port 2 (vhost0): samples 15  min 1584 p50 2047 p90 2047 p99 5420 p99.9 5420 max 5420
  pmd core 1: samples 31  min 1494 p50 2047 p90 2047 p99 10848 p99.9 10848 max 10848
per-stage latency (delivered-weighted):
  rx                           2447 ns (  4.0%)
  parse                        4416 ns (  7.3%)
  emc lookup                   1716 ns (  2.8%)
  megaflow lookup             18532 ns ( 30.5%)
  upcall/translate            13600 ns ( 22.3%)
  batch setup/flush            8112 ns ( 13.3%)
  ct lookup                    5640 ns (  9.3%)
  recirc                       1645 ns (  2.7%)
  tx                           4752 ns (  7.8%)
  stage-weighted total: 60860 ns (== delivered-weighted poll 60860 ns)
  end-to-end total    : 60860 ns (amortization gap 0.0%)
";

const GOLDEN_LATENCY_HIST: &str = "\
rx-to-tx latency histogram (ns):
  all ports: samples 31  min 1494 p50 2047 p90 2047 p99 10848 p99.9 10848 max 10848
  [        1024,         2047]         29 ########################################
  [        4096,         8191]          1 #
  [        8192,        16383]          1 #
  pmd core 1: samples 31  min 1494 p50 2047 p90 2047 p99 10848 p99.9 10848 max 10848
  [        1024,         2047]         29 ########################################
  [        4096,         8191]          1 #
  [        8192,        16383]          1 #
";

#[test]
fn golden_latency_two_host_nsx() {
    let mut h1 = build_host(1);
    let mut h2 = build_host(2);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());
    let g = h1.guest_of_vif[0];
    h1.kernel.guests[g].tx_ring.push_back(vm_frame(1, 2));
    run_pair(&mut h1, &mut h2);

    // The decomposition invariant: the per-stage latency attribution is
    // exact (sums to the delivered-weighted poll total), and the
    // end-to-end total can only be smaller — the difference is batch
    // amortization, never unattributed time.
    let dp1 = h1.dp.as_ref().unwrap();
    assert!(dp1.latency.samples() > 0, "delivered packets were sampled");
    assert_eq!(
        dp1.latency.stage_latency_total(),
        dp1.latency.weighted_poll_ns(),
        "stage latency attribution must be exact"
    );
    assert!(
        dp1.latency.end_to_end_ns() <= dp1.latency.weighted_poll_ns(),
        "end-to-end latency cannot exceed the delivered-weighted poll time"
    );

    // --- latency-show / latency-hist goldens ----------------------
    let dp1 = h1.dp.as_mut().unwrap();
    let show = appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/latency-show", &[]).unwrap();
    assert_eq!(show, GOLDEN_LATENCY, "latency-show golden drifted:\n{show}");
    let hist = appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/latency-hist", &[]).unwrap();
    assert_eq!(
        hist, GOLDEN_LATENCY_HIST,
        "latency-hist golden drifted:\n{hist}"
    );

    // --- the per-stage section is opt-in --------------------------
    // Default pmd-perf-show is pinned byte-for-byte above; the latency
    // decomposition only appears under `-hist`.
    let dp1 = h1.dp.as_mut().unwrap();
    let plain = appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/pmd-perf-show", &[]).unwrap();
    assert!(!plain.contains("per-stage latency"));
    let detail =
        appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/pmd-perf-show", &["-hist"]).unwrap();
    assert!(detail.starts_with(&plain), "-hist only appends");
    assert!(detail.contains("per-stage latency (delivered-weighted):"));

    // --- pmd-stats carries the headline summary -------------------
    let dp1 = h1.dp.as_mut().unwrap();
    let stats = appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/pmd-stats-show", &[]).unwrap();
    assert!(stats.contains("rx-to-tx latency:"), "{stats}");

    // --- pmd-stats-clear also resets the tracker ------------------
    let dp1 = h1.dp.as_mut().unwrap();
    appctl::dispatch(dp1, &mut h1.kernel, "dpif-netdev/pmd-stats-clear", &[]).unwrap();
    assert_eq!(dp1.latency.samples(), 0);
    assert_eq!(dp1.latency.weighted_poll_ns(), 0);
}

// ----------------------------------------------------------------------
// Timestamp conservation: every packet entering the pipeline either
// leaves exactly one rx→tx latency sample (delivered) or is claimed by
// a drop counter — never both, never neither
// ----------------------------------------------------------------------

proptest! {
    /// Seeded AF_XDP forward rig with a deliberately small egress ring:
    /// a random mix of forwarded and unmatched (dropped) flows, and for
    /// one seed in three a mid-run egress ring stall that forces
    /// tx-full drops. The ledger must balance exactly:
    ///
    /// * `samples == tx_packets − tx_full_drops` — only frames the
    ///   backend actually accepted are sampled;
    /// * `packets_processed == samples + dropped` — everything else is
    ///   claimed by the drop counter.
    #[test]
    fn timestamp_conservation(seed in 0u64..1_000_000) {
        let mut k = Kernel::new(16);
        let nic0 = k.add_device(NetDevice::new(
            "eth0",
            MacAddr::new(2, 0, 0, 0, 0, 1),
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        let nic1 = k.add_device(NetDevice::new(
            "eth1",
            MacAddr::new(2, 0, 0, 0, 0, 2),
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        let mut dp = DpifNetdev::new();
        let p0 = dp.add_port(
            "eth0",
            PortType::Afxdp(AfxdpPort::open(&mut k, nic0, 512, OptLevel::O5).unwrap()),
        );
        let p1 = dp.add_port(
            "eth1",
            PortType::Afxdp(AfxdpPort::open(&mut k, nic1, 64, OptLevel::O5).unwrap()),
        );
        dp.add_flows(&format!(
            "table=0, priority=10, in_port={p0}, udp, tp_dst=6000, actions=output:{p1}"
        ))
        .unwrap();
        dp.set_emc_insert_inv_prob(1);

        let mut lcg = seed;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let inject = |k: &mut Kernel, next: &mut dyn FnMut() -> u64, matched: bool| {
            let f = builder::udp_ipv4_frame(
                MacAddr::new(2, 0, 0, 0, 9, 9),
                MacAddr::new(2, 0, 0, 0, 0, 1),
                [10, 0, 0, (next() % 8) as u8 + 1],
                [10, 0, 0, 200],
                1000 + (next() % 16) as u16,
                if matched { 6000 } else { 7000 },
                96,
            );
            k.receive(nic0, 0, f);
        };

        // One guaranteed frame of each fate, then the random schedule.
        let mut offered = 2u64;
        inject(&mut k, &mut next, true);
        inject(&mut k, &mut next, false);
        dp.pmd_poll(&mut k, p0, 0, 8);

        let rounds = 24 + (next() % 24) as usize;
        let stall_at = (seed % 3 == 0).then_some(rounds / 2);
        for round in 0..rounds {
            if stall_at == Some(round) {
                // The egress NIC loses its tx kick: the kernel stops
                // draining the tx ring, so sustained tx exhausts the
                // 64-frame pool and flush_tx starts counting drops.
                k.inject_fault(FaultKind::RxRingStall, nic1, 0, 0);
            }
            let burst = 1 + (next() % 8) as usize;
            for _ in 0..burst {
                let matched = next() % 4 != 0;
                inject(&mut k, &mut next, matched);
                offered += 1;
            }
            dp.pmd_poll(&mut k, p0, 0, 8);
        }
        if stall_at.is_some() {
            // Enough matched traffic to guarantee the stalled pool runs
            // dry regardless of what the schedule already sent.
            for _ in 0..12 {
                for _ in 0..8 {
                    inject(&mut k, &mut next, true);
                    offered += 1;
                }
                dp.pmd_poll(&mut k, p0, 0, 8);
            }
        }
        // Drain anything still parked in the ingress ring.
        for _ in 0..16 {
            if dp.pmd_poll(&mut k, p0, 0, 8) == 0 {
                break;
            }
        }

        let s = &dp.stats;
        prop_assert!(s.coherent(), "stats incoherent: {s:?}");
        prop_assert_eq!(
            s.packets_processed, offered,
            "every offered frame entered the pipeline"
        );
        let samples = dp.latency.samples();
        prop_assert_eq!(
            samples,
            s.tx_packets - s.tx_full_drops,
            "exactly the delivered frames are sampled (tx {} full {})",
            s.tx_packets,
            s.tx_full_drops
        );
        prop_assert_eq!(
            s.packets_processed,
            samples + s.dropped,
            "sampled + counted drops must cover the pipeline exactly"
        );
        prop_assert!(samples > 0, "the matched flow delivered");
        prop_assert!(s.dropped > 0, "the unmatched flow was counted");
        if stall_at.is_some() {
            prop_assert!(
                s.tx_full_drops > 0,
                "the stalled egress ring forced tx-full drops"
            );
        }
        let sum = LatencySummary::of(&dp.latency.all);
        prop_assert!(sum.min_ns > 0, "rx precedes tx on every sample: {sum:?}");
        prop_assert!(sum.max_ns >= sum.min_ns);
    }
}

// ----------------------------------------------------------------------
// Conntrack introspection goldens: ct-dump / ct-stats / ct/flush on the
// same deterministic two-host scenario
// ----------------------------------------------------------------------

const GOLDEN_CT_DUMP: &str = "\
udp,orig=(src=10.101.0.2,dst=10.102.0.2,sport=3333,dport=4444),zone=100,state=ESTABLISHED,age=0s,packets=31
ct: 1 connection(s)
";

const GOLDEN_CT_STATS: &str = "\
conns: 1 / 4194304 max (64 shards, occupancy min 0 max 1)
policy: early-drop on (pressure 90%), tcp loose
zone 100: 1
ops:47 hits:30 misses:17 commits:1 established:1
drops: zone-limit:0 table-full:0 invalid:0
evictions:0 (early-drop:0) expired:0 flushed:0
sweeps:0 shards-swept:0 pmd-affinity hits:44 migrations:0
";

#[test]
fn golden_conntrack_introspection_two_host_nsx() {
    let mut h1 = build_host(1);
    let mut h2 = build_host(2);
    h1.peer([172, 16, 0, 2], h2.uplink_mac());
    h2.peer([172, 16, 0, 1], h1.uplink_mac());
    let g = h1.guest_of_vif[0];
    h1.kernel.guests[g].tx_ring.push_back(vm_frame(1, 2));
    run_pair(&mut h1, &mut h2);

    // The NSX firewall tracks the VM flow in both its zones; the dump
    // is sorted and fully deterministic under the virtual clock.
    let dump = h1.appctl("dpctl/ct-dump", &[]).unwrap();
    assert_eq!(dump, GOLDEN_CT_DUMP, "ct-dump golden drifted:\n{dump}");

    // Zone filtering: the firewall's first ct pass (zone 1) only
    // tracks, so all committed state lives in zone 100.
    let z1 = h1.appctl("dpctl/ct-dump", &["zone=1"]).unwrap();
    assert!(z1.trim_end().ends_with("ct: 0 connection(s)"), "{z1}");
    let z100 = h1.appctl("dpctl/ct-dump", &["zone=100"]).unwrap();
    assert_eq!(z100, GOLDEN_CT_DUMP, "zone filter must match the dump");

    let stats = h1.appctl("dpctl/ct-stats", &[]).unwrap();
    assert_eq!(stats, GOLDEN_CT_STATS, "ct-stats golden drifted:\n{stats}");

    // Flush one zone, then everything; the occupancy ledger follows.
    let f1 = h1.appctl("ct/flush", &["zone=100"]).unwrap();
    assert_eq!(f1, "1 connection(s) flushed from zone 100\n");
    let f2 = h1.appctl("ct/flush", &[]).unwrap();
    assert_eq!(f2, "0 connection(s) flushed\n");
    let empty = h1.appctl("dpctl/ct-dump", &[]).unwrap();
    assert!(empty.trim_end().ends_with("ct: 0 connection(s)"), "{empty}");

    // list-commands advertises the new surface.
    let cmds = h1.appctl("list-commands", &[]).unwrap();
    for c in ["dpctl/ct-dump", "dpctl/ct-stats", "ct/flush"] {
        assert!(cmds.contains(c), "{c} missing from list-commands:\n{cmds}");
    }
}

// ----------------------------------------------------------------------
// NFV goldens: nfv/show, nfv/chain-show, nfv/stats on a deterministic
// two-tenant chain rig
// ----------------------------------------------------------------------

const GOLDEN_NFV_SHOW: &str = "\
nfv manager: 3 NFs, 2 chains, backoff 1000 us, restart budget 8
nf   0 edge-fw      (firewall   ) running  chain   0 rx        4 tx        3 drops      1 ring   0/8   restarts 0
nf   1 flowmon      (monitor    ) running  chain   0 rx        3 tx        3 drops      0 ring   0/8   restarts 0
nf   2 audit        (monitor    ) running  chain   1 rx        2 tx        2 drops      0 ring   0/8   restarts 0
";

const GOLDEN_NFV_CHAIN_SHOW: &str = "\
tenant 0 chain 0 (policy bypass, default output 1):
  [0] nf 0 edge-fw (firewall) state running pmd core 1 ring 0/8
  [1] nf 1 flowmon (monitor) state running pmd core 1 ring 0/8
  in-flight: 0
";

const GOLDEN_NFV_STATS: &str = "\
nfv totals: rx 9 tx 8 steered 0 verdict-drops 1 ring-full 0 crash-drops 0 fail-closed 0
nfv health: crashes 0 restarts 0
nfv mempool: reuses 6 fresh-allocs 0
";

/// Two tenants — a bypass firewall+monitor chain and a fail-closed
/// monitor chain — fed a fixed frame mix (one frame firewall-dropped),
/// then the three `nfv/*` surfaces asserted byte-exactly, including the
/// PMD core placement the scheduler reports for each NF.
#[test]
fn golden_nfv_surfaces() {
    use ovs_core::nfv::{ChainPolicy, FwRule, NfSpec};
    use ovs_core::{AssignmentPolicy, PmdSet};

    coverage::reset();
    let mut k = Kernel::new(4);
    let nic0 = k.add_device(NetDevice::new(
        "eth0",
        MacAddr::new(2, 0, 0, 0, 0, 1),
        DeviceKind::Phys { link_gbps: 10.0 },
        1,
    ));
    let nic1 = k.add_device(NetDevice::new(
        "eth1",
        MacAddr::new(2, 0, 0, 0, 0, 2),
        DeviceKind::Phys { link_gbps: 10.0 },
        1,
    ));
    let mut dp = DpifNetdev::new();
    let p0 = dp.add_port(
        "eth0",
        PortType::Afxdp(AfxdpPort::open(&mut k, nic0, 256, OptLevel::O5).unwrap()),
    );
    let p1 = dp.add_port(
        "eth1",
        PortType::Afxdp(AfxdpPort::open(&mut k, nic1, 256, OptLevel::O5).unwrap()),
    );

    let c0 = dp.nfv.add_chain(
        0,
        vec![
            (
                "edge-fw".to_string(),
                NfSpec::Firewall {
                    rules: vec![FwRule {
                        proto: Some(17),
                        dport_lo: 4001,
                        dport_hi: 4001,
                        allow: false,
                    }],
                    default_allow: true,
                },
            ),
            ("flowmon".to_string(), NfSpec::Monitor),
        ],
        8,
        p1,
        ChainPolicy::Bypass,
    );
    let c1 = dp.nfv.add_chain(
        1,
        vec![("audit".to_string(), NfSpec::Monitor)],
        8,
        p1,
        ChainPolicy::FailClosed,
    );
    dp.add_flows(&format!(
        "table=0, priority=10, udp, tp_dst=4000, actions=nf_chain:{c0}\n\
         table=0, priority=11, udp, tp_dst=4001, actions=nf_chain:{c0}\n\
         table=0, priority=12, udp, tp_dst=4100, actions=nf_chain:{c1}\n"
    ))
    .unwrap();

    let mut pmds = PmdSet::new(&[1], AssignmentPolicy::RoundRobin);
    pmds.add_port_rxqs(p0, 1);
    pmds.add_nf_units(3);
    pmds.rebalance();

    // Tenant 0: three allowed frames plus one the firewall rule drops;
    // tenant 1: two audited frames.
    for (sport, dport) in [
        (7000, 4000),
        (7001, 4000),
        (7002, 4000),
        (7003, 4001),
        (7004, 4100),
        (7005, 4100),
    ] {
        let f = builder::udp_ipv4(
            MacAddr::new(2, 0, 0, 0, 9, 9),
            MacAddr::new(2, 0, 0, 0, 0, 1),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            sport,
            dport,
            &[0x5a; 40],
        );
        k.receive(nic0, 0, f);
    }
    for _ in 0..64 {
        let moved = pmds.run_round(&mut dp, &mut k);
        k.sim.clock.advance(100_000);
        let parked: usize = dp
            .nfv
            .chains()
            .iter()
            .map(|c| dp.nfv.chain_occupancy(c))
            .sum();
        if moved == 0 && parked == 0 {
            break;
        }
    }
    assert_eq!(
        k.device(nic1).tx_wire.len(),
        5,
        "5 of 6 frames must forward"
    );

    let show =
        appctl::dispatch_full(&mut dp, &mut k, None, Some(&mut pmds), "nfv/show", &[]).unwrap();
    assert_eq!(show, GOLDEN_NFV_SHOW);
    let chain = appctl::dispatch_full(
        &mut dp,
        &mut k,
        None,
        Some(&mut pmds),
        "nfv/chain-show",
        &["0"],
    )
    .unwrap();
    assert_eq!(chain, GOLDEN_NFV_CHAIN_SHOW);
    let stats =
        appctl::dispatch_full(&mut dp, &mut k, None, Some(&mut pmds), "nfv/stats", &[]).unwrap();
    assert_eq!(stats, GOLDEN_NFV_STATS);
}
