/root/repo/target/debug/deps/proptests-288e64da2e22c51d.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-288e64da2e22c51d: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
