//! One hash shard of the table: its connections, the slice of the NAT
//! translation index whose *translated* keys hash here, and a
//! second-chance CLOCK queue driving eviction. Shards are sized so the
//! per-PMD access pattern (flows pinned to rxqs pinned to PMDs) keeps
//! each shard hot in one thread's cache.

use std::collections::{HashMap, VecDeque};

use crate::expiry::CtTimeouts;
use crate::{ConnKey, NatSpec, ProtoState};

/// One tracked connection.
#[derive(Debug, Clone, Copy)]
pub struct Conn {
    pub state: ProtoState,
    pub created_ns: u64,
    pub last_seen_ns: u64,
    pub mark: u32,
    pub nat: Option<NatSpec>,
    /// The translated reply key this connection indexed under, kept so
    /// removal can clean the NAT index in O(1).
    pub nat_tkey: Option<ConnKey>,
    /// Second-chance bit: set on every hit, cleared (with a requeue)
    /// when the CLOCK hand passes.
    pub referenced: bool,
    pub packets: u64,
}

/// How many CLOCK entries one eviction attempt may examine. Bounds the
/// worst-case work a single commit can trigger.
const CLOCK_PROBES: usize = 8;

#[derive(Debug, Default)]
pub struct Shard {
    pub conns: HashMap<ConnKey, Conn>,
    /// Reply-direction *translated* keys → (original key, spec) for
    /// NATed connections whose translated key hashes to this shard.
    pub nat_index: HashMap<ConnKey, (ConnKey, NatSpec)>,
    /// Insertion-ordered CLOCK queue over this shard's keys. May hold
    /// stale keys (removed connections); they are discarded when the
    /// hand reaches them and purged wholesale by `compact_clock`.
    clock: VecDeque<ConnKey>,
}

impl Shard {
    pub fn insert(&mut self, key: ConnKey, conn: Conn) {
        self.clock.push_back(key);
        self.conns.insert(key, conn);
    }

    /// Advance the CLOCK hand up to [`CLOCK_PROBES`] steps and return a
    /// victim. With `allow_established` false (the early-drop defense)
    /// the hand honours second chances and only ever returns expired or
    /// never-established entries — ESTABLISHED connections are immune.
    /// With it true (an undefended bounded table) eviction degrades to
    /// naive oldest-first FIFO: exactly the policy a state-exhaustion
    /// attack feasts on, since the oldest entries are the legitimate
    /// long-lived connections.
    pub fn evict_candidate(
        &mut self,
        now_ns: u64,
        timeouts: &CtTimeouts,
        allow_established: bool,
    ) -> Option<ConnKey> {
        for _ in 0..CLOCK_PROBES.min(self.clock.len().max(1)) {
            let key = self.clock.pop_front()?;
            let Some(conn) = self.conns.get_mut(&key) else {
                continue; // stale: connection already removed
            };
            if now_ns.saturating_sub(conn.last_seen_ns) > conn.state.timeout(timeouts) {
                return Some(key); // expired: free regardless of policy
            }
            if allow_established {
                return Some(key); // undefended: oldest-first, no immunity
            }
            if conn.referenced {
                conn.referenced = false;
                self.clock.push_back(key);
                continue; // second chance
            }
            if conn.state.is_established() {
                self.clock.push_back(key);
                continue; // immune under the early-drop policy
            }
            return Some(key);
        }
        None
    }

    /// Keys of every expired connection in this shard (sweep path).
    pub fn expired_keys(&self, now_ns: u64, timeouts: &CtTimeouts) -> Vec<ConnKey> {
        self.conns
            .iter()
            .filter(|(_, c)| now_ns.saturating_sub(c.last_seen_ns) > c.state.timeout(timeouts))
            .map(|(k, _)| *k)
            .collect()
    }

    /// Drop stale CLOCK entries so the queue tracks the live population
    /// (called once per sweep visit; keeps memory bounded between
    /// evictions).
    pub fn compact_clock(&mut self) {
        if self.clock.len() > self.conns.len() {
            self.clock.retain(|k| self.conns.contains_key(k));
        }
    }
}
