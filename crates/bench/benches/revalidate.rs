//! Revalidator sweep cost vs installed megaflow count: each sweep dumps
//! every datapath flow, re-checks its translation against the OpenFlow
//! tables, and pushes the stats delta into the matched rules — so the
//! cost should scale linearly with the table size. This is the per-flow
//! overhead that bounds how large a flow limit a revalidator core can
//! sustain at a given sweep interval.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovs_afxdp::{AfxdpPort, OptLevel};
use ovs_core::dpif::{DpifNetdev, PortType};
use ovs_core::ofproto::{OfAction, OfRule};
use ovs_kernel::dev::{DeviceKind, NetDevice};
use ovs_kernel::Kernel;
use ovs_packet::ethernet::EtherType;
use ovs_packet::flow::{fields, FlowKey, FlowMask};
use ovs_packet::{builder, MacAddr};
use std::hint::black_box;

fn tp_src_rule(tp: u16) -> OfRule {
    let mut key = FlowKey::default();
    key.set_eth_type(EtherType::Ipv4);
    key.set_nw_proto(17);
    key.set_tp_src(tp);
    OfRule {
        table: 0,
        priority: 10,
        key,
        mask: FlowMask::of_fields(&[&fields::ETH_TYPE, &fields::NW_PROTO, &fields::TP_SRC]),
        actions: vec![OfAction::Output(1)],
        cookie: 0,
    }
}

/// A datapath warmed with `flows` distinct megaflows, one per tp_src
/// rule, installed through real upcalls.
fn warm_datapath(flows: u16) -> (Kernel, DpifNetdev, u32) {
    let mut k = Kernel::new(4);
    let mut dp = DpifNetdev::new();
    dp.revalidator.cfg.flow_limit_max = 1 << 20;
    dp.revalidator.flow_limit = 1 << 20;
    let mut rx_nic = 0;
    for i in 0..2u8 {
        let nic = k.add_device(NetDevice::new(
            &format!("eth{i}"),
            MacAddr::new(2, 0, 0, 0, 0, i + 1),
            DeviceKind::Phys { link_gbps: 10.0 },
            1,
        ));
        dp.add_port(
            &format!("eth{i}"),
            PortType::Afxdp(AfxdpPort::open(&mut k, nic, 256, OptLevel::O5).unwrap()),
        );
        if i == 0 {
            rx_nic = nic;
        }
    }
    for tp in 0..flows {
        dp.ofproto.add_rule(tp_src_rule(1000 + tp));
    }
    for tp in 0..flows {
        let f = builder::udp_ipv4_frame(
            MacAddr::new(2, 0, 0, 0, 9, 9),
            MacAddr::new(2, 0, 0, 0, 0, 1),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1000 + tp,
            6000,
            96,
        );
        k.receive(rx_nic, 0, f);
        dp.pmd_poll(&mut k, 0, 0, 1);
    }
    assert_eq!(dp.megaflow_count(), flows as usize);
    (k, dp, rx_nic)
}

fn bench_sweep(c: &mut Criterion) {
    // The virtual clock never advances inside the measurement loop, so
    // every flow stays within its idle timeout and each sweep does the
    // steady-state work: dump, re-translate, push a zero stats delta.
    let mut g = c.benchmark_group("revalidate/sweep");
    for flows in [16u16, 128, 1024, 8192] {
        let (mut k, mut dp, _) = warm_datapath(flows);
        g.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &n| {
            b.iter(|| {
                let s = dp.revalidate(&mut k, 0);
                assert_eq!(s.dumped, u64::from(n));
                black_box(s.dumped)
            })
        });
    }
    g.finish();
}

fn bench_sweep_with_stats_delta(c: &mut Criterion) {
    // Same sweep, but every flow has fresh traffic since the last one,
    // so each push carries a non-zero delta into the rule counters.
    let mut g = c.benchmark_group("revalidate/sweep_hot");
    for flows in [16u16, 1024] {
        let (mut k, mut dp, rx_nic) = warm_datapath(flows);
        let frames: Vec<Vec<u8>> = (0..flows)
            .map(|tp| {
                builder::udp_ipv4_frame(
                    MacAddr::new(2, 0, 0, 0, 9, 9),
                    MacAddr::new(2, 0, 0, 0, 0, 1),
                    [10, 0, 0, 1],
                    [10, 0, 0, 2],
                    1000 + tp,
                    6000,
                    96,
                )
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &n| {
            b.iter(|| {
                for f in &frames {
                    k.receive(rx_nic, 0, f.clone());
                }
                while dp.pmd_poll(&mut k, 0, 0, 1) > 0 {}
                let s = dp.revalidate(&mut k, 0);
                assert_eq!(s.dumped, u64::from(n));
                black_box(s.dumped)
            })
        });
    }
    g.finish();
}

/// Short measurement windows keep the full `cargo bench --workspace`
/// run to a few minutes; pass `--measurement-time` to override.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_sweep, bench_sweep_with_stats_delta
}
criterion_main!(benches);
