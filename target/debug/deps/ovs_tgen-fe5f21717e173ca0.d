/root/repo/target/debug/deps/ovs_tgen-fe5f21717e173ca0.d: crates/tgen/src/lib.rs crates/tgen/src/flood.rs crates/tgen/src/iperf.rs crates/tgen/src/measure.rs crates/tgen/src/netperf.rs crates/tgen/src/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libovs_tgen-fe5f21717e173ca0.rmeta: crates/tgen/src/lib.rs crates/tgen/src/flood.rs crates/tgen/src/iperf.rs crates/tgen/src/measure.rs crates/tgen/src/netperf.rs crates/tgen/src/scenarios.rs Cargo.toml

crates/tgen/src/lib.rs:
crates/tgen/src/flood.rs:
crates/tgen/src/iperf.rs:
crates/tgen/src/measure.rs:
crates/tgen/src/netperf.rs:
crates/tgen/src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
