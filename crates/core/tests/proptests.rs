//! Property tests for the classifier and caches: the classifier must
//! agree with a brute-force linear scan on every lookup, and cache
//! install/lookup must be consistent.

use ovs_core::cache::MegaflowCache;
use ovs_core::classifier::{Classifier, Rule};
use ovs_core::meter::Meter;
use ovs_packet::flow::{FlowKey, FlowMask, WORDS};
use proptest::prelude::*;

/// A generated rule: masks restricted to a few plausible shapes so that
/// rules actually overlap with probe keys.
fn arb_rule() -> impl Strategy<Value = Rule<u32>> {
    (
        0u8..4,           // mask shape
        any::<[u8; 4]>(), // dst ip
        any::<u16>(),     // port
        0i32..100,        // priority
        any::<u32>(),     // value
        0u8..33,          // prefix length
    )
        .prop_map(|(shape, ip, port, priority, value, plen)| {
            let mut key = FlowKey::default();
            let mut mask = FlowMask::EMPTY;
            match shape {
                0 => {
                    key.set_nw_dst_v4(ip);
                    mask.set_nw_dst_v4_prefix(plen);
                }
                1 => {
                    key.set_tp_dst(port);
                    mask.set_field(&ovs_packet::flow::fields::TP_DST);
                }
                2 => {
                    key.set_nw_dst_v4(ip);
                    key.set_tp_dst(port);
                    mask.set_nw_dst_v4_prefix(plen);
                    mask.set_field(&ovs_packet::flow::fields::TP_DST);
                }
                _ => { /* match-all */ }
            }
            Rule {
                key,
                mask,
                priority,
                value,
            }
        })
}

fn arb_probe() -> impl Strategy<Value = FlowKey> {
    (any::<[u8; 4]>(), any::<u16>()).prop_map(|(ip, port)| {
        let mut k = FlowKey::default();
        // Cluster probes into a small space so rules sometimes match.
        k.set_nw_dst_v4([10, ip[1] % 4, ip[2] % 4, ip[3] % 8]);
        k.set_tp_dst(port % 16);
        k
    })
}

/// Brute force: the highest-priority rule whose masked key matches.
fn linear_scan<'a>(rules: &'a [Rule<u32>], key: &FlowKey) -> Option<&'a Rule<u32>> {
    rules
        .iter()
        .filter(|r| key.matches(&r.key, &r.mask))
        .max_by_key(|r| r.priority)
}

proptest! {
    #[test]
    fn classifier_agrees_with_linear_scan(
        rules in proptest::collection::vec(arb_rule(), 0..40),
        probes in proptest::collection::vec(arb_probe(), 1..20),
    ) {
        let mut cls = Classifier::new();
        // Deduplicate (key,mask,priority) collisions the same way the
        // classifier does (last insert wins) by inserting in order.
        for r in &rules {
            cls.insert(r.clone());
        }
        // Build the reference WITHOUT duplicate (masked-key, mask, prio)
        // entries: keep the last.
        let mut dedup: Vec<Rule<u32>> = Vec::new();
        for r in &rules {
            let masked = r.key.masked(&r.mask);
            if let Some(existing) = dedup.iter_mut().find(|e| {
                e.mask == r.mask && e.priority == r.priority && e.key.masked(&e.mask) == masked
            }) {
                *existing = r.clone();
            } else {
                dedup.push(r.clone());
            }
        }
        for p in &probes {
            let got = cls.lookup(p).map(|r| r.priority);
            let want = linear_scan(&dedup, p).map(|r| r.priority);
            // Priorities must agree (values may differ among equal-priority
            // matches, which is unspecified in OVS too).
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn classifier_insert_remove_roundtrip(
        rules in proptest::collection::vec(arb_rule(), 1..20),
    ) {
        let mut cls = Classifier::new();
        for r in &rules {
            cls.insert(r.clone());
        }
        let total = cls.len();
        // Remove everything that was inserted; the classifier must empty.
        for r in &rules {
            cls.remove(&r.key, &r.mask);
        }
        prop_assert_eq!(cls.len(), 0, "started with {} rules", total);
        prop_assert_eq!(cls.subtable_count(), 0);
    }

    #[test]
    fn megaflow_lookup_finds_what_was_installed(
        ips in proptest::collection::vec(any::<[u8; 4]>(), 1..30),
    ) {
        let mut mf: MegaflowCache<usize> = MegaflowCache::new();
        let mut mask = FlowMask::EMPTY;
        mask.set_nw_dst_v4_prefix(32);
        for (i, ip) in ips.iter().enumerate() {
            let mut k = FlowKey::default();
            k.set_nw_dst_v4(*ip);
            mf.install(k, mask, i);
        }
        for ip in &ips {
            let mut k = FlowKey::default();
            k.set_nw_dst_v4(*ip);
            // Wildcarded fields must not affect the hit.
            k.set_tp_src(9999);
            prop_assert!(mf.lookup(&k).is_some());
        }
    }

    #[test]
    fn meter_never_exceeds_rate_plus_burst(
        rate_kbps in 1u64..10_000,
        burst_bits in 64u64..100_000,
        pkts in proptest::collection::vec((1u64..100, 64usize..1500), 1..200),
    ) {
        let mut m = Meter::new(rate_kbps * 1000, burst_bits);
        let mut now = 0u64;
        let mut passed_bits = 0u64;
        for (gap_us, len) in &pkts {
            now += gap_us * 1000;
            if m.offer(now, *len) {
                passed_bits += (*len as u64) * 8;
            }
        }
        // Conservation: passed bits <= rate * elapsed + burst.
        let budget = rate_kbps * 1000 * now / 1_000_000_000 + burst_bits + 1;
        prop_assert!(
            passed_bits <= budget,
            "passed {passed_bits} bits > budget {budget}"
        );
    }

    #[test]
    fn flow_mask_words_survive_masking(w in proptest::array::uniform12(any::<u64>())) {
        // Trivial but load-bearing: WORDS is the contract between the
        // classifier and the key layout.
        prop_assert_eq!(WORDS, 12);
        let k = FlowKey::from_words(w);
        prop_assert_eq!(k.masked(&FlowMask::EXACT), k);
        prop_assert_eq!(k.masked(&FlowMask::EMPTY), FlowKey::default());
    }
}
