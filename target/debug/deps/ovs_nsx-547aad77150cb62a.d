/root/repo/target/debug/deps/ovs_nsx-547aad77150cb62a.d: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

/root/repo/target/debug/deps/ovs_nsx-547aad77150cb62a: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

crates/nsx/src/lib.rs:
crates/nsx/src/ruleset.rs:
crates/nsx/src/topology.rs:
