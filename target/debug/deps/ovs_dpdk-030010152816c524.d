/root/repo/target/debug/deps/ovs_dpdk-030010152816c524.d: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

/root/repo/target/debug/deps/ovs_dpdk-030010152816c524: crates/dpdk/src/lib.rs crates/dpdk/src/af_packet.rs crates/dpdk/src/ethdev.rs crates/dpdk/src/mbuf.rs crates/dpdk/src/testpmd.rs crates/dpdk/src/vhost.rs

crates/dpdk/src/lib.rs:
crates/dpdk/src/af_packet.rs:
crates/dpdk/src/ethdev.rs:
crates/dpdk/src/mbuf.rs:
crates/dpdk/src/testpmd.rs:
crates/dpdk/src/vhost.rs:
