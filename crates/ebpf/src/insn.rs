//! The instruction set: a typed rendering of eBPF.
//!
//! Structurally equivalent to kernel eBPF — 11 registers (`r0`–`r10`),
//! 64-bit ALU with 32-bit variants, sized loads/stores, compare-and-jump
//! with signed 16-bit offsets, helper calls, `exit` — but spelled as a Rust
//! enum rather than packed bytes, which keeps the verifier and interpreter
//! honest without a disassembler. One deviation is documented on
//! [`crate::vm`]: pointers are 64-bit region-tagged values, so the XDP
//! context carries 64-bit `data`/`data_end` fields where the kernel's
//! `struct xdp_md` has 32-bit ones.

/// A register, `r0` through `r10`.
///
/// Conventions follow eBPF: `r0` = return value, `r1`–`r5` = arguments
/// (clobbered by calls), `r6`–`r9` = callee-saved, `r10` = read-only frame
/// pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// Registers by conventional name.
pub mod reg {
    use super::Reg;
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    /// Frame pointer (top of the 512-byte stack); read-only.
    pub const R10: Reg = Reg(10);
}

/// Second operand of ALU and jump instructions: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    Reg(Reg),
    Imm(i64),
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Or,
    And,
    Lsh,
    Rsh,
    Neg,
    Mod,
    Xor,
    Mov,
    Arsh,
    /// Byte-swap to/from big-endian (eBPF `BPF_END`); the operand is the
    /// width in bits (16/32/64).
    ToBe,
}

/// Jump conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Gt,
    Ge,
    Lt,
    Le,
    /// Bitwise test: jump if `dst & operand != 0`.
    Set,
    SGt,
    SGe,
    SLt,
    SLe,
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    B,
    H,
    W,
    DW,
}

impl Size {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Size::B => 1,
            Size::H => 2,
            Size::W => 4,
            Size::DW => 8,
        }
    }
}

/// Helper functions callable from programs, a subset of the kernel's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Helper {
    /// `r0 = map_lookup_elem(r1 = map_fd, r2 = key_ptr)` — returns a
    /// pointer to the value or 0.
    MapLookup,
    /// `map_update_elem(r1 = map_fd, r2 = key_ptr, r3 = value_ptr)`.
    MapUpdate,
    /// `r0 = redirect_map(r1 = map_fd, r2 = key, r3 = flags)` — arranges an
    /// `XDP_REDIRECT` through a devmap or xskmap.
    RedirectMap,
    /// `r0 = ktime_get_ns()` — virtual time in tests.
    KtimeGetNs,
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insn {
    /// 64-bit ALU: `dst = dst op operand` (`Neg`: `dst = -dst`).
    Alu64(AluOp, Reg, Operand),
    /// 32-bit ALU: as above, truncating the result to 32 bits.
    Alu32(AluOp, Reg, Operand),
    /// `dst = imm` (the eBPF `lddw` double-word immediate).
    LoadImm64(Reg, u64),
    /// `dst = *(size*)(base + off)`.
    Load(Size, Reg, Reg, i16),
    /// `*(size*)(base + off) = operand`.
    Store(Size, Reg, i16, Operand),
    /// Unconditional relative jump (offset counts instructions, from the
    /// next instruction).
    Jmp(i16),
    /// Conditional relative jump: `if dst cmp operand`.
    JmpIf(CmpOp, Reg, Operand, i16),
    /// Call a helper.
    Call(Helper),
    /// Return `r0`.
    Exit,
}

/// Maximum instructions per program, matching the classic kernel cap.
pub const MAX_INSNS: usize = 4096;

/// eBPF stack size in bytes.
pub const STACK_SIZE: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_bytes() {
        assert_eq!(Size::B.bytes(), 1);
        assert_eq!(Size::H.bytes(), 2);
        assert_eq!(Size::W.bytes(), 4);
        assert_eq!(Size::DW.bytes(), 8);
    }

    #[test]
    fn reg_names() {
        assert_eq!(reg::R0, Reg(0));
        assert_eq!(reg::R10, Reg(10));
    }
}
