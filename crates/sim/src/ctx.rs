//! The simulation context bundle every substrate charges against.

use crate::clock::VirtualClock;
use crate::costs::CostModel;
use crate::cpu::{Context, CpuSet};
use crate::faults::FaultState;

/// Clock + CPUs + cost model, threaded through the simulated kernel, the
/// AF_XDP sockets, and the DPDK-style PMD.
#[derive(Debug, Clone)]
pub struct SimCtx {
    /// Virtual wall clock (advanced by experiment harnesses).
    pub clock: VirtualClock,
    /// The machine's hyperthreads with per-context accounting.
    pub cpus: CpuSet,
    /// The calibrated cost model.
    pub costs: CostModel,
    /// Seeded fault-injection state (default: no faults armed).
    pub faults: FaultState,
}

impl SimCtx {
    /// A context with `n_cpus` hyperthreads and the paper-testbed costs.
    pub fn new(n_cpus: usize) -> Self {
        let costs = CostModel::paper_testbed();
        Self {
            clock: VirtualClock::new(),
            cpus: CpuSet::new(n_cpus, costs.cpu_hz),
            costs,
            faults: FaultState::default(),
        }
    }

    /// Charge `ns` to `(core, ctx)`.
    pub fn charge(&mut self, core: usize, ctx: Context, ns: f64) {
        self.cpus.charge(core, ctx, ns);
    }

    /// Reset all CPU accounting (between experiment runs).
    pub fn reset(&mut self) {
        self.cpus.reset();
        self.clock = VirtualClock::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_flows_through() {
        let mut sim = SimCtx::new(4);
        sim.charge(1, Context::Softirq, 500.0);
        assert_eq!(sim.cpus.core(1).ns(Context::Softirq), 500.0);
    }

    #[test]
    fn reset_clears() {
        let mut sim = SimCtx::new(2);
        sim.charge(0, Context::User, 10.0);
        sim.clock.advance(99);
        sim.reset();
        assert_eq!(sim.cpus.core(0).total_ns(), 0.0);
        assert_eq!(sim.clock.now_ns(), 0);
    }
}
