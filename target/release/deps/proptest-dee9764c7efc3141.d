/root/repo/target/release/deps/proptest-dee9764c7efc3141.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-dee9764c7efc3141.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-dee9764c7efc3141.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
