/root/repo/target/debug/examples/quickstart-793d8e9124505d74.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-793d8e9124505d74: examples/quickstart.rs

examples/quickstart.rs:
