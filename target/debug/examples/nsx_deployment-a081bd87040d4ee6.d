/root/repo/target/debug/examples/nsx_deployment-a081bd87040d4ee6.d: examples/nsx_deployment.rs

/root/repo/target/debug/examples/nsx_deployment-a081bd87040d4ee6: examples/nsx_deployment.rs

examples/nsx_deployment.rs:
