//! Connection tracking with zones — the kernel netfilter feature NSX's
//! distributed firewall depends on (§4), including the per-zone connection
//! limiting whose out-of-tree backport cost 700+ lines (§2.1.1).

use ovs_packet::dp_packet::ct_state;
use std::collections::HashMap;

/// A direction-oriented 5-tuple plus zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnKey {
    pub zone: u16,
    pub src_ip: [u8; 4],
    pub dst_ip: [u8; 4],
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: u8,
}

impl ConnKey {
    /// The same connection seen from the reply direction.
    pub fn reversed(&self) -> ConnKey {
        ConnKey {
            zone: self.zone,
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

/// Connection lifecycle (TCP-lite; non-TCP uses New/Established only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Seen one direction only.
    New,
    /// Seen traffic in both directions.
    Established,
}

#[derive(Debug, Clone, Copy)]
struct Conn {
    state: ConnState,
    last_seen_ns: u64,
    mark: u32,
    nat: Option<NatSpec>,
}

/// NAT rewrite to apply when committing a connection, mirroring the OVS
/// `ct(nat(...))` action. The reverse mapping is applied automatically to
/// reply-direction traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NatSpec {
    /// Source NAT: rewrite the source address (and optionally port).
    Snat { ip: [u8; 4], port: Option<u16> },
    /// Destination NAT: rewrite the destination address (and optionally
    /// port) — the load-balancer/VIP case.
    Dnat { ip: [u8; 4], port: Option<u16> },
}

/// What the caller asked conntrack to do, mirroring the OVS `ct()` action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtAction {
    /// Zone to track in.
    pub zone: u16,
    /// Add the connection to the table if it is new.
    pub commit: bool,
    /// Set the connection mark on commit.
    pub mark: Option<u32>,
    /// NAT to set up on commit (ignored without `commit`).
    pub nat: Option<NatSpec>,
}

impl CtAction {
    /// A plain tracking action for `zone`.
    pub fn track(zone: u16) -> Self {
        Self {
            zone,
            commit: false,
            mark: None,
            nat: None,
        }
    }

    /// A committing action for `zone`.
    pub fn commit(zone: u16) -> Self {
        Self {
            zone,
            commit: true,
            mark: None,
            nat: None,
        }
    }
}

/// A concrete header rewrite the datapath must apply to this packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NatRewrite {
    /// Rewrite the source address/port (forward direction of SNAT, or the
    /// reply direction of DNAT).
    Src { ip: [u8; 4], port: Option<u16> },
    /// Rewrite the destination address/port.
    Dst { ip: [u8; 4], port: Option<u16> },
}

/// Result of a conntrack pass: the `ct_state` bits for the packet, the
/// connection mark, and any NAT rewrite the datapath must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtVerdict {
    /// Bits from [`ovs_packet::dp_packet::ct_state`].
    pub state: u8,
    /// Connection mark (0 if none).
    pub mark: u32,
    /// Header rewrite to apply, if the connection is NATed.
    pub nat: Option<NatRewrite>,
}

/// The connection-tracking table.
#[derive(Debug, Default)]
pub struct Conntrack {
    conns: HashMap<ConnKey, Conn>,
    /// Per-zone connection limits (the nf_conncount feature).
    zone_limits: HashMap<u16, usize>,
    /// Per-zone current counts.
    zone_counts: HashMap<u16, usize>,
    /// Reply-direction keys of NATed connections → (original key, spec).
    nat_index: HashMap<ConnKey, (ConnKey, NatSpec)>,
    /// Idle timeout before a connection expires.
    pub timeout_ns: u64,
    /// Total commits refused by a zone limit.
    pub limit_drops: u64,
    /// Total `process` calls (for cost accounting).
    pub ops: u64,
}

impl Conntrack {
    /// An empty table with a 120 s idle timeout.
    pub fn new() -> Self {
        Self {
            timeout_ns: 120_000_000_000,
            ..Self::default()
        }
    }

    /// Number of tracked connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Set a per-zone connection limit.
    pub fn set_zone_limit(&mut self, zone: u16, limit: usize) {
        self.zone_limits.insert(zone, limit);
    }

    /// Track one packet. Looks the 5-tuple up in both directions, sets
    /// state bits, optionally commits new connections, and updates
    /// liveness. TCP RST/FIN are treated as normal traffic (timeout-based
    /// expiry, as with the default kernel behaviour at this fidelity).
    pub fn process(&mut self, key: ConnKey, action: CtAction, now_ns: u64) -> CtVerdict {
        self.ops += 1;
        let key = ConnKey {
            zone: action.zone,
            ..key
        };
        // Original direction?
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.last_seen_ns = now_ns;
            let bits = ct_state::TRACKED
                | match conn.state {
                    ConnState::New => ct_state::NEW,
                    ConnState::Established => ct_state::ESTABLISHED,
                };
            return CtVerdict {
                state: bits,
                mark: conn.mark,
                nat: conn.nat.map(forward_rewrite),
            };
        }
        // Reply direction? For NATed connections the reply arrives with
        // the *translated* addresses, so the stored key is probed with the
        // translation undone.
        let rkey = key.reversed();
        if let Some(conn) = self.conns.get_mut(&rkey) {
            conn.last_seen_ns = now_ns;
            // Seeing the reply establishes the connection.
            conn.state = ConnState::Established;
            let mark = conn.mark;
            let nat = conn.nat.map(|n| reply_rewrite(&rkey, n));
            return CtVerdict {
                state: ct_state::TRACKED | ct_state::ESTABLISHED | ct_state::REPLY,
                mark,
                nat,
            };
        }
        // NATed reply: the reply arrives with the *translated* tuple, so
        // probe the translation index and restore the original addresses.
        if let Some((orig_key, nat)) = self.reverse_nat_probe(&key) {
            if let Some(conn) = self.conns.get_mut(&orig_key) {
                conn.last_seen_ns = now_ns;
                conn.state = ConnState::Established;
                let mark = conn.mark;
                return CtVerdict {
                    state: ct_state::TRACKED | ct_state::ESTABLISHED | ct_state::REPLY,
                    mark,
                    nat: Some(reply_rewrite(&orig_key, nat)),
                };
            }
        }
        // New connection.
        if action.commit {
            let count = self.zone_counts.entry(action.zone).or_insert(0);
            if let Some(&limit) = self.zone_limits.get(&action.zone) {
                if *count >= limit {
                    self.limit_drops += 1;
                    return CtVerdict {
                        state: ct_state::TRACKED | ct_state::INVALID,
                        mark: 0,
                        nat: None,
                    };
                }
            }
            *count += 1;
            self.conns.insert(
                key,
                Conn {
                    state: ConnState::New,
                    last_seen_ns: now_ns,
                    mark: action.mark.unwrap_or(0),
                    nat: action.nat,
                },
            );
            if let Some(nat) = action.nat {
                // Index the translated 5-tuple so replies can be matched.
                self.nat_index
                    .insert(translated_reply_key(&key, nat), (key, nat));
            }
        }
        CtVerdict {
            state: ct_state::TRACKED | ct_state::NEW,
            mark: action.mark.unwrap_or(0),
            nat: action.nat.map(forward_rewrite),
        }
    }

    /// Look up a reply-direction key of a NATed connection.
    fn reverse_nat_probe(&self, key: &ConnKey) -> Option<(ConnKey, NatSpec)> {
        self.nat_index.get(key).copied()
    }

    /// Expire idle connections. Returns how many were removed.
    pub fn expire(&mut self, now_ns: u64) -> usize {
        let timeout = self.timeout_ns;
        let mut removed = 0;
        let expired: Vec<ConnKey> = self
            .conns
            .iter()
            .filter(|(_, c)| now_ns.saturating_sub(c.last_seen_ns) > timeout)
            .map(|(k, _)| *k)
            .collect();
        for k in expired {
            if let Some(conn) = self.conns.remove(&k) {
                if let Some(nat) = conn.nat {
                    self.nat_index.remove(&translated_reply_key(&k, nat));
                }
            }
            if let Some(c) = self.zone_counts.get_mut(&k.zone) {
                *c = c.saturating_sub(1);
            }
            removed += 1;
        }
        removed
    }
}

/// The rewrite applied to forward-direction packets of a NATed connection.
fn forward_rewrite(nat: NatSpec) -> NatRewrite {
    match nat {
        NatSpec::Snat { ip, port } => NatRewrite::Src { ip, port },
        NatSpec::Dnat { ip, port } => NatRewrite::Dst { ip, port },
    }
}

/// The rewrite applied to reply-direction packets: the inverse mapping,
/// restoring the addresses the connection's originator used. `orig` is the
/// stored (pre-NAT) forward key.
fn reply_rewrite(orig: &ConnKey, nat: NatSpec) -> NatRewrite {
    match nat {
        // SNAT rewrote the forward source; the reply's destination must be
        // restored to the original (private) source address.
        NatSpec::Snat { .. } => NatRewrite::Dst {
            ip: orig.src_ip,
            port: Some(orig.src_port),
        },
        // DNAT rewrote the forward destination; the reply's source must be
        // restored to the original (virtual) destination address.
        NatSpec::Dnat { .. } => NatRewrite::Src {
            ip: orig.dst_ip,
            port: Some(orig.dst_port),
        },
    }
}

/// Apply a NAT rewrite to an Ethernet/IPv4/{TCP,UDP} frame in place,
/// repairing the IP header checksum and the L4 checksum.
pub fn apply_rewrite(frame: &mut [u8], rw: &NatRewrite) -> bool {
    use ovs_packet::ethernet::{self, EthernetFrame};
    use ovs_packet::ipv4::{self, Ipv4Packet};
    use ovs_packet::{tcp, udp, EtherType};

    let Ok(eth) = EthernetFrame::new_checked(&*frame) else {
        return false;
    };
    if eth.ethertype() != EtherType::Ipv4 {
        return false;
    }
    let l3 = ethernet::HEADER_LEN;
    let (proto, header_len) = {
        let Ok(ip) = Ipv4Packet::new_checked(&frame[l3..]) else {
            return false;
        };
        (ip.protocol(), ip.header_len())
    };
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut frame[l3..]);
        match rw {
            NatRewrite::Src { ip: a, .. } => ip.set_src(*a),
            NatRewrite::Dst { ip: a, .. } => ip.set_dst(*a),
        }
        ip.fill_checksum();
    }
    let (src, dst) = {
        let ip = Ipv4Packet::new_unchecked(&frame[l3..]);
        (ip.src(), ip.dst())
    };
    let l4 = l3 + header_len;
    match proto {
        ipv4::protocol::TCP => {
            if let Ok(mut t) = tcp::TcpSegment::new_checked(&mut frame[l4..]) {
                match rw {
                    NatRewrite::Src { port: Some(p), .. } => t.set_src_port(*p),
                    NatRewrite::Dst { port: Some(p), .. } => t.set_dst_port(*p),
                    _ => {}
                }
                t.fill_checksum_ipv4(src, dst);
            }
        }
        ipv4::protocol::UDP => {
            if let Ok(mut u) = udp::UdpDatagram::new_checked(&mut frame[l4..]) {
                match rw {
                    NatRewrite::Src { port: Some(p), .. } => u.set_src_port(*p),
                    NatRewrite::Dst { port: Some(p), .. } => u.set_dst_port(*p),
                    _ => {}
                }
                u.fill_checksum_ipv4(src, dst);
            }
        }
        _ => {}
    }
    true
}

/// The 5-tuple a reply to a NATed connection arrives with.
fn translated_reply_key(orig: &ConnKey, nat: NatSpec) -> ConnKey {
    let mut fwd = *orig;
    match nat {
        NatSpec::Snat { ip, port } => {
            fwd.src_ip = ip;
            if let Some(p) = port {
                fwd.src_port = p;
            }
        }
        NatSpec::Dnat { ip, port } => {
            fwd.dst_ip = ip;
            if let Some(p) = port {
                fwd.dst_port = p;
            }
        }
    }
    fwd.reversed()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(zone: u16) -> ConnKey {
        ConnKey {
            zone,
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            src_port: 1234,
            dst_port: 80,
            proto: 6,
        }
    }

    const COMMIT: CtAction = CtAction {
        zone: 1,
        commit: true,
        mark: None,
        nat: None,
    };
    const TRACK: CtAction = CtAction {
        zone: 1,
        commit: false,
        mark: None,
        nat: None,
    };

    #[test]
    fn new_then_reply_establishes() {
        let mut ct = Conntrack::new();
        let v = ct.process(key(1), COMMIT, 0);
        assert_eq!(v.state, ct_state::TRACKED | ct_state::NEW);
        assert_eq!(ct.len(), 1);

        // Reply direction.
        let v = ct.process(key(1).reversed(), TRACK, 10);
        assert_eq!(
            v.state,
            ct_state::TRACKED | ct_state::ESTABLISHED | ct_state::REPLY
        );

        // Original direction again: established now.
        let v = ct.process(key(1), TRACK, 20);
        assert_eq!(v.state, ct_state::TRACKED | ct_state::ESTABLISHED);
    }

    #[test]
    fn uncommitted_new_is_not_stored() {
        let mut ct = Conntrack::new();
        let v = ct.process(key(1), TRACK, 0);
        assert_eq!(v.state, ct_state::TRACKED | ct_state::NEW);
        assert!(ct.is_empty());
    }

    #[test]
    fn zones_are_isolated() {
        let mut ct = Conntrack::new();
        ct.process(key(1), COMMIT, 0);
        // Same tuple, different zone: still new.
        let v = ct.process(key(2), CtAction::track(2), 0);
        assert_eq!(v.state, ct_state::TRACKED | ct_state::NEW);
    }

    #[test]
    fn zone_limit_enforced() {
        let mut ct = Conntrack::new();
        ct.set_zone_limit(1, 2);
        for port in 0..2u16 {
            let mut k = key(1);
            k.src_port = 1000 + port;
            let v = ct.process(k, COMMIT, 0);
            assert!(v.state & ct_state::INVALID == 0);
        }
        let mut k3 = key(1);
        k3.src_port = 1002;
        let v = ct.process(k3, COMMIT, 0);
        assert!(
            v.state & ct_state::INVALID != 0,
            "over-limit commit marked invalid"
        );
        assert_eq!(ct.limit_drops, 1);
        assert_eq!(ct.len(), 2);
    }

    #[test]
    fn expiry_frees_zone_budget() {
        let mut ct = Conntrack::new();
        ct.set_zone_limit(1, 1);
        ct.timeout_ns = 100;
        ct.process(key(1), COMMIT, 0);
        assert_eq!(ct.expire(50), 0, "not yet idle long enough");
        assert_eq!(ct.expire(200), 1);
        assert!(ct.is_empty());
        // Zone budget is back.
        let v = ct.process(key(1), COMMIT, 300);
        assert!(v.state & ct_state::INVALID == 0);
    }

    #[test]
    fn snat_forward_and_reply_rewrites() {
        let mut ct = Conntrack::new();
        let nat = NatSpec::Snat {
            ip: [203, 0, 113, 1],
            port: Some(40_000),
        };
        let act = CtAction {
            zone: 1,
            commit: true,
            mark: None,
            nat: Some(nat),
        };
        // Forward: rewrite source to the public address.
        let v = ct.process(key(1), act, 0);
        assert_eq!(
            v.nat,
            Some(NatRewrite::Src {
                ip: [203, 0, 113, 1],
                port: Some(40_000)
            })
        );

        // The reply arrives addressed to the *translated* source.
        let reply = ConnKey {
            zone: 1,
            src_ip: [10, 0, 0, 2],
            dst_ip: [203, 0, 113, 1],
            src_port: 80,
            dst_port: 40_000,
            proto: 6,
        };
        let v = ct.process(reply, CtAction::track(1), 1);
        assert!(
            v.state & ct_state::REPLY != 0,
            "recognized as reply: {:02x}",
            v.state
        );
        // ... and must be rewritten back to the original private address.
        assert_eq!(
            v.nat,
            Some(NatRewrite::Dst {
                ip: [10, 0, 0, 1],
                port: Some(1234)
            })
        );
    }

    #[test]
    fn dnat_maps_vip_to_backend() {
        let mut ct = Conntrack::new();
        let nat = NatSpec::Dnat {
            ip: [192, 168, 1, 10],
            port: Some(8080),
        };
        let act = CtAction {
            zone: 9,
            commit: true,
            mark: None,
            nat: Some(nat),
        };
        let v = ct.process(key(9), CtAction { zone: 9, ..act }, 0);
        assert_eq!(
            v.nat,
            Some(NatRewrite::Dst {
                ip: [192, 168, 1, 10],
                port: Some(8080)
            })
        );
        // Reply comes FROM the backend.
        let reply = ConnKey {
            zone: 9,
            src_ip: [192, 168, 1, 10],
            dst_ip: [10, 0, 0, 1],
            src_port: 8080,
            dst_port: 1234,
            proto: 6,
        };
        let v = ct.process(reply, CtAction::track(9), 1);
        assert!(v.state & ct_state::REPLY != 0);
        // Restored to the VIP the client originally targeted.
        assert_eq!(
            v.nat,
            Some(NatRewrite::Src {
                ip: [10, 0, 0, 2],
                port: Some(80)
            })
        );
    }

    #[test]
    fn apply_rewrite_fixes_checksums() {
        use ovs_packet::{builder, MacAddr};
        let mut f = builder::udp_ipv4(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1234,
            80,
            b"payload",
        );
        assert!(apply_rewrite(
            &mut f,
            &NatRewrite::Src {
                ip: [203, 0, 113, 7],
                port: Some(55_555)
            }
        ));
        let ip = ovs_packet::ipv4::Ipv4Packet::new_checked(&f[14..]).unwrap();
        assert_eq!(ip.src(), [203, 0, 113, 7]);
        assert!(ip.verify_checksum());
        let u = ovs_packet::udp::UdpDatagram::new_checked(ip.payload()).unwrap();
        assert_eq!(u.src_port(), 55_555);
        assert!(u.verify_checksum_ipv4(ip.src(), ip.dst()));
    }

    #[test]
    fn nat_index_cleaned_on_expiry() {
        let mut ct = Conntrack::new();
        ct.timeout_ns = 10;
        let nat = NatSpec::Snat {
            ip: [203, 0, 113, 1],
            port: None,
        };
        ct.process(
            key(1),
            CtAction {
                zone: 1,
                commit: true,
                mark: None,
                nat: Some(nat),
            },
            0,
        );
        assert_eq!(ct.expire(100), 1);
        // Reply after expiry is just a new, untracked flow.
        let reply = ConnKey {
            zone: 1,
            src_ip: [10, 0, 0, 2],
            dst_ip: [203, 0, 113, 1],
            src_port: 80,
            dst_port: 1234,
            proto: 6,
        };
        let v = ct.process(reply, CtAction::track(1), 101);
        assert!(v.state & ct_state::NEW != 0);
        assert_eq!(v.nat, None);
    }

    #[test]
    fn mark_set_on_commit_and_returned() {
        let mut ct = Conntrack::new();
        ct.process(
            key(1),
            CtAction {
                zone: 1,
                commit: true,
                mark: Some(0xbeef),
                nat: None,
            },
            0,
        );
        let v = ct.process(key(1).reversed(), TRACK, 1);
        assert_eq!(v.mark, 0xbeef);
    }
}
