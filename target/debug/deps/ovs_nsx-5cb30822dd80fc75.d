/root/repo/target/debug/deps/ovs_nsx-5cb30822dd80fc75.d: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

/root/repo/target/debug/deps/ovs_nsx-5cb30822dd80fc75: crates/nsx/src/lib.rs crates/nsx/src/ruleset.rs crates/nsx/src/topology.rs

crates/nsx/src/lib.rs:
crates/nsx/src/ruleset.rs:
crates/nsx/src/topology.rs:
