/root/repo/target/debug/deps/ovs_afxdp-e56fec6a33b30519.d: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

/root/repo/target/debug/deps/ovs_afxdp-e56fec6a33b30519: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs

crates/afxdp/src/lib.rs:
crates/afxdp/src/port.rs:
crates/afxdp/src/socket.rs:
