//! XDP program attachment and execution.
//!
//! An [`XdpProgram`] is a verified program plus a name; [`XdpProgram::run`]
//! executes it against one packet and interprets the return code as an XDP
//! action, resolving `redirect_map` targets through the attached maps.

use crate::insn::Insn;
use crate::maps::{Map, MapSet};
use crate::verifier::{verify, VerifyError};
use crate::vm::{ExecError, Vm};

/// XDP return codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XdpAction {
    /// Program error; the driver drops the packet.
    Aborted,
    /// Drop the packet at the driver.
    Drop,
    /// Pass the packet up the normal kernel stack.
    Pass,
    /// Bounce the packet back out the same NIC.
    Tx,
    /// Redirect: to a device (devmap) or an AF_XDP socket (xskmap).
    Redirect(RedirectTarget),
}

/// Resolved target of an `XDP_REDIRECT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirectTarget {
    /// Another net device, by ifindex (devmap).
    Device(u32),
    /// An AF_XDP socket, by socket id (xskmap).
    Xsk(u32),
    /// The redirect target was missing or the map empty at that key; the
    /// kernel drops such packets.
    Invalid,
}

/// Result of running an XDP program over a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XdpRunResult {
    /// The action to take.
    pub action: XdpAction,
    /// Instructions executed (for cycle accounting).
    pub insns: u64,
    /// Map lookups performed (each costs a hash probe).
    pub map_lookups: u64,
    /// Loads/stores touching packet bytes (cache-miss cost signal).
    pub pkt_accesses: u64,
}

/// A verified, attachable XDP program.
#[derive(Debug, Clone)]
pub struct XdpProgram {
    name: String,
    insns: Vec<Insn>,
}

impl XdpProgram {
    /// Verify and wrap a program. Mirrors the kernel's load-time check: an
    /// unverifiable program never attaches (Figure 4's "in-kernel
    /// verifier" step).
    pub fn load(name: &str, insns: Vec<Insn>) -> Result<Self, VerifyError> {
        verify(&insns)?;
        Ok(Self {
            name: name.to_string(),
            insns,
        })
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction count (program "complexity" in Table 5 terms).
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True for a zero-length program (cannot occur for loaded programs).
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Run over one packet arriving on `rx_queue`. The packet is writable
    /// (XDP programs may rewrite headers).
    pub fn run(
        &self,
        vm: &mut Vm,
        packet: &mut [u8],
        rx_queue: u32,
        maps: &mut MapSet,
    ) -> Result<XdpRunResult, ExecError> {
        vm.rx_queue = rx_queue;
        let res = vm.run(&self.insns, packet, maps)?;
        let action = match res.ret {
            0 => XdpAction::Aborted,
            1 => XdpAction::Drop,
            2 => XdpAction::Pass,
            3 => XdpAction::Tx,
            4 => {
                let target = res
                    .redirect
                    .map(|(fd, key)| match maps.get(fd) {
                        Some(Map::Dev(d)) => d
                            .get(key)
                            .map(RedirectTarget::Device)
                            .unwrap_or(RedirectTarget::Invalid),
                        Some(Map::Xsk(x)) => x
                            .get(key)
                            .map(RedirectTarget::Xsk)
                            .unwrap_or(RedirectTarget::Invalid),
                        _ => RedirectTarget::Invalid,
                    })
                    .unwrap_or(RedirectTarget::Invalid);
                XdpAction::Redirect(target)
            }
            _ => XdpAction::Aborted,
        };
        Ok(XdpRunResult {
            action,
            insns: res.insns,
            map_lookups: res.map_lookups,
            pkt_accesses: res.pkt_accesses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::reg::*;
    use crate::insn::{AluOp::*, Helper, Insn::*, Operand::*, Size};
    use crate::maps::XskMap;

    #[test]
    fn load_rejects_unverifiable() {
        assert!(XdpProgram::load("bad", vec![Jmp(-1), Exit]).is_err());
    }

    #[test]
    fn drop_program() {
        let prog = XdpProgram::load("drop", vec![Alu64(Mov, R0, Imm(1)), Exit]).unwrap();
        let mut vm = Vm::new();
        let mut maps = MapSet::new();
        let r = prog.run(&mut vm, &mut [0u8; 64], 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Drop);
        assert_eq!(r.insns, 2);
    }

    #[test]
    fn redirect_resolves_through_xskmap() {
        let mut maps = MapSet::new();
        let mut xsk = XskMap::new(4);
        xsk.set(1, 77).unwrap();
        let fd = maps.add(Map::Xsk(xsk));
        // Redirect using ctx->rx_queue_index as the key.
        let prog = XdpProgram::load(
            "to-xsk",
            vec![
                Load(Size::DW, R6, R1, 16),
                Alu64(Mov, R1, Imm(fd as i64)),
                Alu64(Mov, R2, Reg(R6)),
                Alu64(Mov, R3, Imm(0)),
                Call(Helper::RedirectMap),
                Exit,
            ],
        )
        .unwrap();
        let mut vm = Vm::new();
        let r = prog.run(&mut vm, &mut [0u8; 64], 1, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Redirect(RedirectTarget::Xsk(77)));
        // Queue with no socket bound resolves to Invalid (kernel drops).
        let r = prog.run(&mut vm, &mut [0u8; 64], 3, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Redirect(RedirectTarget::Invalid));
    }

    #[test]
    fn unknown_return_is_aborted() {
        let prog = XdpProgram::load("weird", vec![Alu64(Mov, R0, Imm(99)), Exit]).unwrap();
        let mut vm = Vm::new();
        let mut maps = MapSet::new();
        let r = prog.run(&mut vm, &mut [0u8; 4], 0, &mut maps).unwrap();
        assert_eq!(r.action, XdpAction::Aborted);
    }
}
