//! Per-tenant service chains.

use crate::manager::NfId;

pub type ChainId = u32;

/// What a chain does about a dead NF (crashed, waiting out its restart
/// backoff, or out of restart budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainPolicy {
    /// Skip the dead NF; traffic keeps flowing through the survivors.
    Bypass,
    /// Refuse to forward past the dead NF: packets that would enter it
    /// are dropped as named `nf_fail_closed` losses. For tenants whose
    /// NF is a security function, a bypassed firewall is worse than an
    /// outage.
    FailClosed,
}

impl ChainPolicy {
    pub fn label(&self) -> &'static str {
        match self {
            ChainPolicy::Bypass => "bypass",
            ChainPolicy::FailClosed => "fail-closed",
        }
    }
}

/// An ordered list of NF instances traffic traverses, owned by a tenant.
/// NF instances are not shared between chains — each position is a
/// dedicated instance, which keeps "next hop" a pure function of
/// (instance, position) and lets the scheduler attribute cycles to one
/// tenant.
#[derive(Debug, Clone)]
pub struct NfChain {
    pub id: ChainId,
    pub tenant: u32,
    pub nfs: Vec<NfId>,
    /// Port a surviving packet exits on when the last NF says Forward.
    pub default_output: u32,
    pub policy: ChainPolicy,
}
