/root/repo/target/debug/deps/ovs_core-1fc9fefc545fb7e5.d: crates/core/src/lib.rs crates/core/src/appctl.rs crates/core/src/cache.rs crates/core/src/classifier.rs crates/core/src/dpif.rs crates/core/src/meter.rs crates/core/src/mirror.rs crates/core/src/ofctl.rs crates/core/src/ofproto.rs crates/core/src/revalidator.rs crates/core/src/tso.rs crates/core/src/tunnel.rs Cargo.toml

/root/repo/target/debug/deps/libovs_core-1fc9fefc545fb7e5.rmeta: crates/core/src/lib.rs crates/core/src/appctl.rs crates/core/src/cache.rs crates/core/src/classifier.rs crates/core/src/dpif.rs crates/core/src/meter.rs crates/core/src/mirror.rs crates/core/src/ofctl.rs crates/core/src/ofproto.rs crates/core/src/revalidator.rs crates/core/src/tso.rs crates/core/src/tunnel.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/appctl.rs:
crates/core/src/cache.rs:
crates/core/src/classifier.rs:
crates/core/src/dpif.rs:
crates/core/src/meter.rs:
crates/core/src/mirror.rs:
crates/core/src/ofctl.rs:
crates/core/src/ofproto.rs:
crates/core/src/revalidator.rs:
crates/core/src/tso.rs:
crates/core/src/tunnel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
