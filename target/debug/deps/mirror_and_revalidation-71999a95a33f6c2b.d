/root/repo/target/debug/deps/mirror_and_revalidation-71999a95a33f6c2b.d: crates/core/tests/mirror_and_revalidation.rs

/root/repo/target/debug/deps/mirror_and_revalidation-71999a95a33f6c2b: crates/core/tests/mirror_and_revalidation.rs

crates/core/tests/mirror_and_revalidation.rs:
