/root/repo/target/debug/deps/proptests-b928ac411c21eb74.d: crates/kernel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b928ac411c21eb74: crates/kernel/tests/proptests.rs

crates/kernel/tests/proptests.rs:
