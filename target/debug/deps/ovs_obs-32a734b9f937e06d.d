/root/repo/target/debug/deps/ovs_obs-32a734b9f937e06d.d: crates/obs/src/lib.rs crates/obs/src/coverage.rs crates/obs/src/hist.rs crates/obs/src/perf.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libovs_obs-32a734b9f937e06d.rlib: crates/obs/src/lib.rs crates/obs/src/coverage.rs crates/obs/src/hist.rs crates/obs/src/perf.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libovs_obs-32a734b9f937e06d.rmeta: crates/obs/src/lib.rs crates/obs/src/coverage.rs crates/obs/src/hist.rs crates/obs/src/perf.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/coverage.rs:
crates/obs/src/hist.rs:
crates/obs/src/perf.rs:
crates/obs/src/trace.rs:
