/root/repo/target/debug/deps/ovs_afxdp-5d89c06bd8bcf720.d: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs Cargo.toml

/root/repo/target/debug/deps/libovs_afxdp-5d89c06bd8bcf720.rmeta: crates/afxdp/src/lib.rs crates/afxdp/src/port.rs crates/afxdp/src/socket.rs Cargo.toml

crates/afxdp/src/lib.rs:
crates/afxdp/src/port.rs:
crates/afxdp/src/socket.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
