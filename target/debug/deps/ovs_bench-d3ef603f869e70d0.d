/root/repo/target/debug/deps/ovs_bench-d3ef603f869e70d0.d: crates/bench/src/lib.rs crates/bench/src/fig1.rs

/root/repo/target/debug/deps/libovs_bench-d3ef603f869e70d0.rlib: crates/bench/src/lib.rs crates/bench/src/fig1.rs

/root/repo/target/debug/deps/libovs_bench-d3ef603f869e70d0.rmeta: crates/bench/src/lib.rs crates/bench/src/fig1.rs

crates/bench/src/lib.rs:
crates/bench/src/fig1.rs:
