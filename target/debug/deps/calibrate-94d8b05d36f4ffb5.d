/root/repo/target/debug/deps/calibrate-94d8b05d36f4ffb5.d: crates/tgen/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-94d8b05d36f4ffb5.rmeta: crates/tgen/src/bin/calibrate.rs Cargo.toml

crates/tgen/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
