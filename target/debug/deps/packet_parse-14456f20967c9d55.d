/root/repo/target/debug/deps/packet_parse-14456f20967c9d55.d: crates/bench/benches/packet_parse.rs Cargo.toml

/root/repo/target/debug/deps/libpacket_parse-14456f20967c9d55.rmeta: crates/bench/benches/packet_parse.rs Cargo.toml

crates/bench/benches/packet_parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
