//! # ovs-nsx — a network-virtualization control plane in the NSX mould
//!
//! §4 of the paper: NSX overlays virtual L2/L3 networks, firewalling and
//! NAT over hypervisors by programming OVS through OVSDB and OpenFlow.
//! Its agent builds two bridges (integration + underlay), installs tens of
//! thousands of rules, and relies on Geneve tunnelling plus a distributed
//! firewall with conntrack zones. The §5.1 evaluation runs against a rule
//! set captured from a production hypervisor, whose shape Table 3 gives:
//!
//! | property | value |
//! |---|---|
//! | Geneve tunnels | 291 |
//! | VMs (two interfaces per VM) | 15 |
//! | OpenFlow rules | 103,302 |
//! | OpenFlow tables | 40 |
//! | matching fields among all rules | 31 |
//!
//! [`ruleset`] deterministically generates a pipeline with exactly that
//! shape — functional backbone rules the test traffic actually traverses
//! (classification → distributed firewall with `ct()` recirculation →
//! forwarding/tunnelling, three datapath passes as in §5.1) plus
//! production-grade filler sections. [`topology`] assembles the two-host
//! deployment the §5.1/Fig 8 experiments run on.

pub mod ruleset;
pub mod topology;

pub use ruleset::{NsxConfig, NsxPorts, RulesetStats};
pub use topology::{Host, HostConfig, VmAttachment};
