//! TCP segments.

use crate::checksum;
use crate::{ParseError, Result};

/// TCP flag bits, as found in byte 13 of the header.
pub mod flags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
    pub const URG: u8 = 0x20;
}

mod field {
    pub const SRC_PORT: core::ops::Range<usize> = 0..2;
    pub const DST_PORT: core::ops::Range<usize> = 2..4;
    pub const SEQ: core::ops::Range<usize> = 4..8;
    pub const ACK: core::ops::Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: core::ops::Range<usize> = 14..16;
    pub const CHECKSUM: core::ops::Range<usize> = 16..18;
    pub const URGENT: core::ops::Range<usize> = 18..20;
}

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// A typed view over a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wrap a buffer, validating lengths.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let s = Self { buffer };
        let hl = s.header_len();
        if hl < HEADER_LEN || hl > len {
            return Err(ParseError::BadLength);
        }
        Ok(s)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::SRC_PORT];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::DST_PORT];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let b = &self.buffer.as_ref()[field::SEQ];
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        let b = &self.buffer.as_ref()[field::ACK];
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Header length in bytes (data offset * 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::DATA_OFF] >> 4) * 4
    }

    /// Flag byte (see [`flags`]).
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[field::FLAGS]
    }

    /// True if a given flag bit is set.
    pub fn has_flag(&self, flag: u8) -> bool {
        self.flags() & flag != 0
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::WINDOW];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = &self.buffer.as_ref()[field::CHECKSUM];
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Payload bytes after the header (and any options).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verify the checksum over an IPv4 pseudo-header.
    pub fn verify_checksum_ipv4(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        let data = self.buffer.as_ref();
        let pseudo =
            checksum::pseudo_header_ipv4(src, dst, crate::ipv4::protocol::TCP, data.len() as u16);
        checksum::combine(&[pseudo, checksum::ones_complement_sum(data)]) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, v: u32) {
        self.buffer.as_mut()[field::SEQ].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the acknowledgment number.
    pub fn set_ack(&mut self, v: u32) {
        self.buffer.as_mut()[field::ACK].copy_from_slice(&v.to_be_bytes());
    }

    /// Set header length in bytes (multiple of 4).
    pub fn set_header_len(&mut self, bytes: usize) {
        self.buffer.as_mut()[field::DATA_OFF] = ((bytes / 4) as u8) << 4;
    }

    /// Set the flag byte.
    pub fn set_flags(&mut self, f: u8) {
        self.buffer.as_mut()[field::FLAGS] = f;
    }

    /// Set the receive window.
    pub fn set_window(&mut self, w: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&w.to_be_bytes());
    }

    /// Write the checksum field.
    pub fn set_checksum(&mut self, c: u16) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&c.to_be_bytes());
    }

    /// Set the urgent pointer.
    pub fn set_urgent(&mut self, u: u16) {
        self.buffer.as_mut()[field::URGENT].copy_from_slice(&u.to_be_bytes());
    }

    /// Compute and fill the checksum over an IPv4 pseudo-header.
    pub fn fill_checksum_ipv4(&mut self, src: [u8; 4], dst: [u8; 4]) {
        self.set_checksum(0);
        let data = self.buffer.as_ref();
        let pseudo =
            checksum::pseudo_header_ipv4(src, dst, crate::ipv4::protocol::TCP, data.len() as u16);
        let csum = !checksum::combine(&[pseudo, checksum::ones_complement_sum(data)]);
        self.set_checksum(csum);
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        &mut self.buffer.as_mut()[hl..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 4];
        let mut s = TcpSegment::new_unchecked(&mut buf[..]);
        s.set_src_port(45000);
        s.set_dst_port(80);
        s.set_seq(0x01020304);
        s.set_ack(0x0a0b0c0d);
        s.set_header_len(HEADER_LEN);
        s.set_flags(flags::SYN | flags::ACK);
        s.set_window(65535);
        s.payload_mut().copy_from_slice(b"data");
        s.fill_checksum_ipv4([192, 168, 1, 1], [192, 168, 1, 2]);
        buf
    }

    #[test]
    fn roundtrip_and_checksum() {
        let buf = sample();
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(s.src_port(), 45000);
        assert_eq!(s.dst_port(), 80);
        assert_eq!(s.seq(), 0x01020304);
        assert_eq!(s.ack(), 0x0a0b0c0d);
        assert!(s.has_flag(flags::SYN));
        assert!(s.has_flag(flags::ACK));
        assert!(!s.has_flag(flags::FIN));
        assert_eq!(s.window(), 65535);
        assert_eq!(s.payload(), b"data");
        assert!(s.verify_checksum_ipv4([192, 168, 1, 1], [192, 168, 1, 2]));
        assert!(!s.verify_checksum_ipv4([192, 168, 1, 1], [192, 168, 1, 9]));
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = sample();
        buf[12] = 2 << 4; // 8-byte header < minimum
        assert_eq!(
            TcpSegment::new_checked(&buf[..]).unwrap_err(),
            ParseError::BadLength
        );
    }

    #[test]
    fn truncated() {
        assert_eq!(
            TcpSegment::new_checked(&[0u8; 19][..]).unwrap_err(),
            ParseError::Truncated
        );
    }
}
