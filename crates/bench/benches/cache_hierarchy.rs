//! The EMC → megaflow → full-pipeline hierarchy ablation: real lookup
//! costs at each cache level, and the effect of working-set size — the
//! mechanism behind the paper's 1 vs 1,000 flow results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovs_core::cache::{Emc, MegaflowCache};
use ovs_core::ofproto::Ofproto;
use ovs_packet::flow::{fields, FlowKey, FlowMask, Miniflow};
use std::hint::black_box;
use std::rc::Rc;

fn flow_key(i: u32) -> FlowKey {
    let mut k = FlowKey::default();
    k.set_in_port(0);
    k.set_nw_src_v4([10, (i >> 16) as u8, (i >> 8) as u8, i as u8]);
    k.set_nw_dst_v4([10, 1, (i >> 8) as u8, i as u8]);
    k.set_tp_src((1000 + i % 50_000) as u16);
    k.set_tp_dst(80);
    k
}

fn bench_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_hierarchy/levels");

    // Level 1: EMC hit.
    let mut emc: Emc<u32> = Emc::new();
    let mut mf: MegaflowCache<u32> = MegaflowCache::new();
    let mask = FlowMask::of_fields(&[&fields::IN_PORT, &fields::NW_DST]);
    let entry = mf.install(flow_key(1), mask, 7);
    let mini = Miniflow::from_key(&flow_key(1));
    let hash = mini.hash();
    emc.insert(mini, hash, Rc::clone(&entry));
    g.bench_function("emc_hit", |b| {
        b.iter(|| black_box(emc.lookup(black_box(&mini), black_box(hash)).is_some()))
    });

    // Level 2: megaflow (dpcls) hit, probed with the sparse key.
    g.bench_function("megaflow_hit", |b| {
        b.iter(|| black_box(mf.lookup_mini(black_box(&mini)).is_some()))
    });

    // Level 3: full OpenFlow translation (the upcall slow path) with an
    // NSX-scale table set.
    let mut of = Ofproto::new();
    let cfg = ovs_nsx::ruleset::NsxConfig {
        target_rules: 20_000,
        ..Default::default()
    };
    let ports = ovs_nsx::ruleset::NsxPorts {
        vifs: (2..32).collect(),
        tunnel: 1,
        uplink: 0,
    };
    ovs_nsx::ruleset::install(&cfg, &ports, 1, 2, &mut of);
    let mut upcall_key = flow_key(1);
    upcall_key.set_in_port(2);
    upcall_key.set_eth_type(ovs_packet::EtherType::Ipv4);
    g.bench_function("upcall_translation_20k_rules", |b| {
        b.iter(|| black_box(of.translate(black_box(&upcall_key)).tables_visited))
    });

    g.finish();
}

fn bench_working_set(c: &mut Criterion) {
    // EMC hit cost as the cached flow count grows: the cache-pressure
    // mechanism the simulation charges for 1,000-flow workloads.
    let mut g = c.benchmark_group("cache_hierarchy/emc_working_set");
    for flows in [1u32, 100, 1000, 8000] {
        let mut emc: Emc<u32> = Emc::new();
        let mut mf: MegaflowCache<u32> = MegaflowCache::new();
        let mask = FlowMask::of_fields(&[&fields::IN_PORT, &fields::NW_DST]);
        for i in 0..flows {
            let e = mf.install(flow_key(i), mask, i);
            let m = Miniflow::from_key(&flow_key(i));
            let h = m.hash();
            emc.insert(m, h, e);
        }
        let probes: Vec<(Miniflow, u64)> = (0..flows)
            .map(|i| {
                let m = Miniflow::from_key(&flow_key(i));
                let h = m.hash();
                (m, h)
            })
            .collect();
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, _| {
            b.iter(|| {
                i = (i + 1) % probes.len();
                let (m, h) = &probes[i];
                black_box(emc.lookup(black_box(m), black_box(*h)).is_some())
            })
        });
    }
    g.finish();
}

fn bench_megaflow_subtables(c: &mut Criterion) {
    // Megaflow lookup vs distinct-mask count (subtables probed on miss).
    let mut g = c.benchmark_group("cache_hierarchy/megaflow_subtables");
    for masks in [1usize, 4, 16] {
        let mut mf: MegaflowCache<u32> = MegaflowCache::new();
        for m in 0..masks {
            let mut mask = FlowMask::of_fields(&[&fields::IN_PORT]);
            mask.set_nw_dst_v4_prefix(8 + m as u8);
            for i in 0..64u32 {
                let mut k = flow_key(i);
                k.set_nw_dst_v4([10 + m as u8, 1, 0, i as u8]);
                mf.install(k, mask, i);
            }
        }
        let probe = flow_key(9_999_999); // miss: probes every subtable
        g.bench_with_input(BenchmarkId::from_parameter(masks), &masks, |b, _| {
            b.iter(|| black_box(mf.lookup(black_box(&probe)).is_none()))
        });
    }
    g.finish();
}

/// Short measurement windows keep the full `cargo bench --workspace`
/// run to a few minutes; pass `--measurement-time` to override.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_levels, bench_working_set, bench_megaflow_subtables
}
criterion_main!(benches);
