/root/repo/target/debug/deps/ipv6_pipeline-75a8f3f4eaf7d36d.d: crates/core/tests/ipv6_pipeline.rs

/root/repo/target/debug/deps/ipv6_pipeline-75a8f3f4eaf7d36d: crates/core/tests/ipv6_pipeline.rs

crates/core/tests/ipv6_pipeline.rs:
