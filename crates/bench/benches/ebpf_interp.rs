//! eBPF interpreter dispatch cost: real wall-clock per-program runs of
//! the Table 5 task ladder — the sandboxed-bytecode overhead that
//! disqualified the eBPF datapath (§2.2.2).

use criterion::{criterion_group, criterion_main, Criterion};
use ovs_ebpf::maps::{HashMap as BpfHashMap, Map, MapSet};
use ovs_ebpf::{programs, Vm};
use ovs_packet::{builder, MacAddr};
use std::hint::black_box;

fn frame() -> Vec<u8> {
    builder::udp_ipv4_frame(
        MacAddr::new(2, 0, 0, 0, 0, 1),
        MacAddr::new(2, 0, 0, 0, 0, 2),
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        1000,
        2000,
        64,
    )
}

fn bench_task_ladder(c: &mut Criterion) {
    let mut g = c.benchmark_group("ebpf_interp/table5_tasks");
    let mut maps = MapSet::new();
    let l2 = maps.add(Map::Hash(BpfHashMap::new(8, 8, 64)));
    if let Some(Map::Hash(h)) = maps.get_mut(l2) {
        h.update(&programs::l2_key([2, 0, 0, 0, 0, 2]), &1u64.to_le_bytes())
            .unwrap();
    }
    let progs = [
        ("A_drop", programs::task_a_drop()),
        ("B_parse_drop", programs::task_b_parse_drop()),
        (
            "C_parse_lookup_drop",
            programs::task_c_parse_lookup_drop(l2),
        ),
        ("D_swap_fwd", programs::task_d_swap_fwd()),
    ];
    let mut vm = Vm::new();
    let mut pkt = frame();
    for (name, prog) in progs {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = prog
                    .run(&mut vm, black_box(&mut pkt), 0, &mut maps)
                    .unwrap();
                black_box(r.insns)
            })
        });
    }
    g.finish();
}

fn bench_per_instruction(c: &mut Criterion) {
    // A pure-ALU program to isolate dispatch overhead per instruction.
    use ovs_ebpf::insn::reg::*;
    use ovs_ebpf::insn::Operand::Imm;
    use ovs_ebpf::insn::{AluOp::*, Insn::*};
    let mut insns = vec![Alu64(Mov, R0, Imm(0))];
    for i in 0..200 {
        insns.push(Alu64(Add, R0, Imm(i)));
        insns.push(Alu64(Xor, R0, Imm(0x5a)));
    }
    insns.push(Exit);
    let n = insns.len() as u64;
    let prog = ovs_ebpf::XdpProgram::load("alu_chain", insns).unwrap();
    let mut vm = Vm::new();
    let mut maps = MapSet::new();
    let mut g = c.benchmark_group("ebpf_interp/dispatch");
    g.throughput(criterion::Throughput::Elements(n));
    g.bench_function("alu_chain_401_insns", |b| {
        b.iter(|| {
            let r = prog.run(&mut vm, black_box(&mut []), 0, &mut maps).unwrap();
            black_box(r.insns)
        })
    });
    g.finish();
}

/// Short measurement windows keep the full `cargo bench --workspace`
/// run to a few minutes; pass `--measurement-time` to override.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_task_ladder, bench_per_instruction
}
criterion_main!(benches);
