//! Per-packet rx→tx latency accounting — tail latency as a first-class
//! signal (the `dpif-netdev/latency-show` substrate).
//!
//! The datapath stamps every packet with the PMD's virtual time when it
//! enters the pipeline (rx ingestion) and records the delta when the
//! packet really leaves in the end-of-burst tx flush. Only *delivered*
//! packets produce a sample; every dropped packet is claimed by a drop
//! counter instead — the same lossless-accounting contract the fault
//! soak pins, extended to timestamps (no ghost samples, no lost
//! timestamps).
//!
//! Samples land in HDR-style log2-bucketed histograms ([`Log2Hist`]),
//! kept per egress port, per PMD core, and merged — cheap to record on
//! the hot path, mergeable, and good enough for p99/p99.9. Scenarios
//! that need exact percentiles (the empirical delay model fit) can
//! additionally enable bounded raw-sample capture.
//!
//! **The latency decomposition invariant.** Per-burst, the tracker also
//! accumulates each pipeline stage's time weighted by the number of
//! packets delivered from that burst. Because a `StageTimer`'s stage
//! times sum exactly to its poll total, the stage-weighted latency
//! contributions sum *exactly* to the delivered-weighted poll total —
//! the cycle-attribution invariant extended to latency. The sum of
//! recorded per-packet latencies is bounded above by that same total
//! (every packet's rx→tx window is contained in its burst's poll
//! window); the gap is the batch-amortization error: time a packet's
//! burst spent before the packet was stamped or after its port flushed.
//!
//! Like all of `obs`, this module depends on nothing outside `std`.

use crate::hist::Log2Hist;
use crate::perf::{StageTimer, STAGES};
use std::collections::BTreeMap;

/// Percentile summary of one latency histogram, in nanoseconds.
/// Percentiles are bucket upper bounds clamped to the observed range —
/// exact percentiles come from raw-sample capture, not from here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    pub samples: u64,
    pub min_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
}

impl LatencySummary {
    /// Summarize a histogram.
    pub fn of(h: &Log2Hist) -> Self {
        LatencySummary {
            samples: h.count(),
            min_ns: h.min(),
            p50_ns: h.percentile(50.0),
            p90_ns: h.percentile(90.0),
            p99_ns: h.percentile(99.0),
            p999_ns: h.percentile(99.9),
            max_ns: h.max(),
            mean_ns: h.mean(),
        }
    }

    /// The `min/p50/p99/p99.9/max` line both appctl surfaces print.
    pub fn render_line(&self) -> String {
        format!(
            "samples {}  min {} p50 {} p90 {} p99 {} p99.9 {} max {}",
            self.samples,
            self.min_ns,
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.p999_ns,
            self.max_ns
        )
    }
}

/// Default cap on raw-sample capture when enabled: enough for every
/// scenario sweep window, bounded so a forgotten flag cannot grow
/// without limit.
pub const RAW_SAMPLE_CAP: usize = 1 << 16;

/// Per-datapath rx→tx latency accounting: merged / per-port / per-PMD
/// histograms, the per-stage latency decomposition, and optional raw
/// sample capture.
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    /// All delivered packets, merged across ports and PMDs.
    pub all: Log2Hist,
    /// Keyed by egress datapath port number.
    pub per_port: BTreeMap<u32, Log2Hist>,
    /// Keyed by the polling core.
    pub per_pmd: BTreeMap<usize, Log2Hist>,
    /// Σ over bursts of (stage time × packets delivered from the burst).
    stage_latency_ns: [u64; STAGES.len()],
    /// Σ over bursts of (poll total × packets delivered from the burst).
    /// Equals `stage_latency_total()` exactly, and bounds
    /// `end_to_end_ns()` from above.
    weighted_poll_ns: u64,
    /// Packets delivered since the last `commit_burst`.
    burst_delivered: u64,
    /// Bounded raw samples, when capture is enabled.
    raw: Option<Vec<u64>>,
}

impl LatencyTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one delivered packet's rx→tx latency.
    pub fn record(&mut self, port: u32, pmd: usize, ns: u64) {
        self.all.record(ns);
        self.per_port.entry(port).or_default().record(ns);
        self.per_pmd.entry(pmd).or_default().record(ns);
        self.burst_delivered += 1;
        if let Some(raw) = &mut self.raw {
            if raw.len() < RAW_SAMPLE_CAP {
                raw.push(ns);
            }
        }
    }

    /// Fold one finished burst's stage attribution in, weighted by the
    /// packets delivered from it, and reset the delivered counter.
    pub fn commit_burst(&mut self, timer: &StageTimer) {
        let n = std::mem::take(&mut self.burst_delivered);
        if n == 0 {
            return;
        }
        for (acc, stage) in self.stage_latency_ns.iter_mut().zip(STAGES) {
            *acc += timer.stage_ns(stage) * n;
        }
        self.weighted_poll_ns += timer.total_ns() * n;
    }

    /// Delivered-packet sample count.
    pub fn samples(&self) -> u64 {
        self.all.count()
    }

    /// Σ of recorded per-packet latencies.
    pub fn end_to_end_ns(&self) -> u64 {
        self.all.sum()
    }

    /// Per-stage latency contributions, in `STAGES` display order.
    pub fn stage_latency_ns(&self) -> &[u64; STAGES.len()] {
        &self.stage_latency_ns
    }

    /// Σ of the per-stage contributions. Equals `weighted_poll_ns()`
    /// exactly — the latency analogue of stage-sum == poll-total.
    pub fn stage_latency_total(&self) -> u64 {
        self.stage_latency_ns.iter().sum()
    }

    /// Delivered-weighted poll total: the upper bound the end-to-end
    /// sum approaches as batch amortization error shrinks.
    pub fn weighted_poll_ns(&self) -> u64 {
        self.weighted_poll_ns
    }

    /// The batch-amortization gap: the fraction of the stage-weighted
    /// total not covered by measured end-to-end latency (0 when every
    /// packet spans its entire burst window).
    pub fn amortization_gap(&self) -> f64 {
        let total = self.stage_latency_total();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.end_to_end_ns() as f64 / total as f64
    }

    /// Start (or restart) bounded raw-sample capture.
    pub fn enable_raw(&mut self) {
        self.raw = Some(Vec::new());
    }

    /// Take the captured raw samples, leaving capture enabled.
    pub fn drain_raw(&mut self) -> Vec<u64> {
        match &mut self.raw {
            Some(raw) => std::mem::take(raw),
            None => Vec::new(),
        }
    }

    /// Reset every histogram and accumulator (capture state survives).
    pub fn clear(&mut self) {
        let capture = self.raw.is_some();
        *self = Self::default();
        if capture {
            self.raw = Some(Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::Stage;

    #[test]
    fn record_routes_to_all_three_histograms() {
        let mut t = LatencyTracker::new();
        t.record(3, 8, 100);
        t.record(3, 9, 300);
        t.record(4, 8, 500);
        assert_eq!(t.samples(), 3);
        assert_eq!(t.end_to_end_ns(), 900);
        assert_eq!(t.per_port[&3].count(), 2);
        assert_eq!(t.per_port[&4].count(), 1);
        assert_eq!(t.per_pmd[&8].count(), 2);
        assert_eq!(t.per_pmd[&9].count(), 1);
    }

    #[test]
    fn stage_sum_equals_weighted_poll_total() {
        let mut t = LatencyTracker::new();
        let mut timer = StageTimer::new(1000);
        timer.mark(Stage::Rx, 1040);
        timer.mark(Stage::Parse, 1100);
        timer.mark(Stage::Tx, 1200);
        t.record(0, 1, 150);
        t.record(0, 1, 180);
        t.commit_burst(&timer);
        // 2 delivered × 200 ns poll total.
        assert_eq!(t.weighted_poll_ns(), 400);
        assert_eq!(t.stage_latency_total(), t.weighted_poll_ns());
        // End-to-end (330) ≤ weighted total (400); the gap is the
        // amortization error.
        assert!(t.end_to_end_ns() <= t.weighted_poll_ns());
        assert!((t.amortization_gap() - (1.0 - 330.0 / 400.0)).abs() < 1e-12);
    }

    #[test]
    fn burst_with_no_deliveries_contributes_nothing() {
        let mut t = LatencyTracker::new();
        let mut timer = StageTimer::new(0);
        timer.mark(Stage::Rx, 500);
        t.commit_burst(&timer);
        assert_eq!(t.weighted_poll_ns(), 0);
        assert_eq!(t.stage_latency_total(), 0);
    }

    #[test]
    fn raw_capture_is_bounded_and_drains() {
        let mut t = LatencyTracker::new();
        assert!(t.drain_raw().is_empty(), "capture off by default");
        t.enable_raw();
        for i in 0..10 {
            t.record(0, 0, i);
        }
        let raw = t.drain_raw();
        assert_eq!(raw.len(), 10);
        assert_eq!(raw[3], 3);
        assert!(t.drain_raw().is_empty(), "drained");
        t.record(0, 0, 7);
        assert_eq!(t.drain_raw(), vec![7], "capture survives draining");
    }

    #[test]
    fn clear_resets_but_keeps_capture_mode() {
        let mut t = LatencyTracker::new();
        t.enable_raw();
        t.record(1, 2, 99);
        t.clear();
        assert_eq!(t.samples(), 0);
        assert_eq!(t.stage_latency_total(), 0);
        t.record(1, 2, 42);
        assert_eq!(t.drain_raw(), vec![42]);
    }

    #[test]
    fn summary_lines_up_with_the_histogram() {
        let mut h = Log2Hist::new();
        for v in [10u64, 20, 30, 4000] {
            h.record(v);
        }
        let s = LatencySummary::of(&h);
        assert_eq!(s.samples, 4);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 4000);
        assert!(s.p999_ns >= s.p50_ns);
        let line = s.render_line();
        assert!(line.contains("p99.9"), "{line}");
        assert!(line.contains("samples 4"), "{line}");
    }
}
